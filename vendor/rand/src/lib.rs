//! Vendored, dependency-free subset of the `rand` 0.8 API.
//!
//! The build environment has no access to crates.io, so the workspace ships
//! this minimal implementation: the [`RngCore`]/[`Rng`]/[`SeedableRng`]
//! traits, a [`Standard`] distribution over the primitive types the
//! workspace draws, and [`rngs::StdRng`] — a xoshiro256++ generator seeded
//! through SplitMix64. It is deterministic, statistically solid for
//! simulation use, and API-compatible with the calls made in this repo
//! (`gen::<T>()`, `seed_from_u64`). It is NOT a reimplementation of
//! upstream rand's stream: seeds produce different sequences than the real
//! crate, which is fine — nothing here depends on upstream's exact stream.

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Uniform draw from `[low, high)`; `T` is `f64` or an integer type.
    fn gen_range<T: UniformSample>(&mut self, range: std::ops::Range<T>) -> T {
        T::uniform(self, range.start, range.end)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A distribution that can produce values of type `T`.
pub trait Distribution<T> {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The standard distribution: uniform over the full domain for integers and
/// `bool`, uniform over `[0, 1)` for floats.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 random mantissa bits -> uniform on [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Distribution<u64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Distribution<u32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Distribution<u16> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u16 {
        (rng.next_u64() >> 48) as u16
    }
}

impl Distribution<u8> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u8 {
        (rng.next_u64() >> 56) as u8
    }
}

impl Distribution<usize> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl Distribution<i64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> i64 {
        rng.next_u64() as i64
    }
}

impl Distribution<i32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> i32 {
        rng.next_u32() as i32
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() >> 63 == 1
    }
}

/// Types [`Rng::gen_range`] can draw uniformly.
pub trait UniformSample: Sized {
    /// Uniform draw from `[low, high)`.
    fn uniform<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

impl UniformSample for f64 {
    fn uniform<R: RngCore + ?Sized>(rng: &mut R, low: f64, high: f64) -> f64 {
        let u: f64 = Standard.sample(rng);
        low + (high - low) * u
    }
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            fn uniform<R: RngCore + ?Sized>(rng: &mut R, low: $t, high: $t) -> $t {
                assert!(low < high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128;
                // Multiply-shift bounded draw; bias is < 2^-64, irrelevant
                // for simulation use.
                let r = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (low as i128 + r) as $t
            }
        }
    )*};
}

impl_uniform_int!(usize, u64, u32, u16, u8, i64, i32, i16, i8);

/// Rngs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (SplitMix64 state expansion).
    fn seed_from_u64(state: u64) -> Self;

    /// Creates a generator from OS entropy. Offline vendored build: derived
    /// from the monotonic clock, good enough for non-cryptographic use.
    fn from_entropy() -> Self {
        let t = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9e3779b97f4a7c15);
        Self::seed_from_u64(t)
    }
}

/// SplitMix64 step — used for seeding and as a standalone mixer.
#[inline]
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    ///
    /// Not the upstream `StdRng` algorithm (ChaCha12); streams differ from
    /// upstream for the same seed, which nothing in this workspace relies
    /// on.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(mut state: u64) -> Self {
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut state);
            }
            // All-zero state is invalid for xoshiro; SplitMix64 cannot
            // produce four zero words from any seed, but guard anyway.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9e3779b97f4a7c15;
            }
            StdRng { s }
        }
    }

    /// Alias kept for API compatibility.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn f64_in_unit_interval_with_uniform_moments() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
            sum_sq += x * x;
        }
        let mean = sum / n as f64;
        let var = sum_sq / n as f64 - mean * mean;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
        assert!((var - 1.0 / 12.0).abs() < 0.005, "var {var}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0f64..5.0);
            assert!((-2.0..5.0).contains(&f));
        }
    }
}
