//! Vendored stand-in for `parking_lot` (offline build): thin wrappers over
//! `std::sync` primitives with parking_lot's panic-free, guard-returning
//! API. Poisoned locks are recovered transparently — parking_lot has no
//! poisoning, so this matches its semantics.

use std::sync::{self, TryLockError};

/// A mutex whose `lock` returns the guard directly (no `Result`).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard type alias; identical to the std guard.
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock with parking_lot's guard-returning API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Read guard alias.
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Write guard alias.
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires the exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(1);
        *l.write() = 2;
        assert_eq!(*l.read(), 2);
    }
}
