//! Vendored stand-in for `serde` (the build environment is offline).
//!
//! The workspace only uses `#[derive(Serialize, Deserialize)]` as a
//! forward-compatibility marker — no code path actually serializes — so the
//! traits here are empty markers and the derive macros (from the sibling
//! `serde_derive` stub) emit empty impls. Swapping in real serde later is a
//! manifest-only change.

/// Marker for serializable types (vendored stub — no methods).
pub trait Serialize {}

/// Marker for deserializable types (vendored stub — no methods, no
/// deserializer lifetime).
pub trait Deserialize {}

pub use serde_derive::{Deserialize, Serialize};

macro_rules! impl_markers {
    ($($t:ty),*) => {$(
        impl Serialize for $t {}
        impl Deserialize for $t {}
    )*};
}

impl_markers!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64, bool, char, String);

impl<T: Serialize> Serialize for Vec<T> {}
impl<T: Deserialize> Deserialize for Vec<T> {}
impl<T: Serialize> Serialize for Option<T> {}
impl<T: Deserialize> Deserialize for Option<T> {}
impl<T: Serialize + ?Sized> Serialize for &T {}
impl<T: Serialize + ?Sized> Serialize for Box<T> {}
impl<T: Deserialize> Deserialize for Box<T> {}
impl<A: Serialize, B: Serialize> Serialize for (A, B) {}
impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {}
impl Serialize for str {}
