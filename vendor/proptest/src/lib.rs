//! Vendored mini `proptest` (offline build).
//!
//! Implements the subset of the proptest API this workspace's tests use:
//! the [`proptest!`] macro, `prop_assert!`/`prop_assert_eq!`, range
//! strategies over numeric types, tuple strategies, `collection::vec`, and
//! `bool::ANY`. Cases are generated from a deterministic per-test seed
//! (stable across runs and platforms). There is **no shrinking** — a
//! failing case panics with the standard assert message; reproduce it by
//! rerunning the test, which replays the identical case sequence.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// RNG handed to strategies.
pub type TestRng = StdRng;

/// Number of cases per property.
pub const CASES: usize = 64;

/// A generator of test-case values.
pub trait Strategy {
    /// The value type produced.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let u: f64 = rng.gen();
                self.start + (self.end - self.start) * u as $t
            }
        }
    )*};
}
impl_float_range!(f64, f32);

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_int_range!(usize, u64, u32, u16, u8, i64, i32, i16, i8);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )+};
}
impl_tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// A strategy that always yields the same value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Strategy for `Vec`s with lengths drawn from `len` and elements from
    /// `elem`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        len: std::ops::Range<usize>,
    }

    /// Creates a [`VecStrategy`].
    pub fn vec<S: Strategy>(elem: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(
            !len.is_empty(),
            "vec strategy requires a non-empty length range"
        );
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// Boolean strategies.
pub mod bool {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Uniform over `{true, false}`.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The uniform boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.gen::<bool>()
        }
    }
}

/// Runs `f` for [`CASES`] deterministic cases derived from `name`.
pub fn run_cases(name: &str, f: impl FnMut(&mut TestRng)) {
    run_n_cases(name, CASES, f)
}

/// Runs `f` for `n` deterministic cases derived from `name`.
pub fn run_n_cases(name: &str, n: usize, mut f: impl FnMut(&mut TestRng)) {
    // FNV-1a over the test name gives a stable per-test seed.
    let mut seed: u64 = 0xcbf29ce484222325;
    for b in name.bytes() {
        seed ^= b as u64;
        seed = seed.wrapping_mul(0x100000001b3);
    }
    for case in 0..n {
        let mut rng = TestRng::seed_from_u64(seed ^ (case as u64).wrapping_mul(0x9e3779b97f4a7c15));
        f(&mut rng);
    }
}

/// The proptest entry macro: declares `#[test]` functions whose arguments
/// are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_cases(stringify!($name), |__pt_rng| {
                    $(let $arg = $crate::Strategy::sample(&($strat), __pt_rng);)+
                    $body
                });
            }
        )+
    };
}

/// Property assertion (no shrinking: panics like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Property equality assertion (no shrinking: panics like `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Property inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Case precondition: silently skips the current case when false (the
/// surrounding generated closure returns unit, so an early return discards
/// the case).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

/// Everything tests usually import.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        /// Ranges stay in bounds and tuples/vecs compose.
        #[test]
        fn strategies_stay_in_bounds(
            x in -5.0f64..5.0,
            n in 1usize..9,
            pair in (0usize..10, 0usize..10),
            v in crate::collection::vec(0u32..100, 1..20),
            b in crate::bool::ANY,
        ) {
            prop_assert!((-5.0..5.0).contains(&x));
            prop_assert!((1..9).contains(&n));
            prop_assert!(pair.0 < 10 && pair.1 < 10);
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert!(v.iter().all(|&e| e < 100));
            let _ = b;
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = Vec::new();
        crate::run_n_cases("det", 5, |rng| a.push((0.0f64..1.0).sample(rng)));
        let mut b = Vec::new();
        crate::run_n_cases("det", 5, |rng| b.push((0.0f64..1.0).sample(rng)));
        assert_eq!(a, b);
    }
}
