//! Vendored `serde_derive` stub (offline build): the real serde traits are
//! replaced by empty marker traits in the sibling `serde` stub, so the
//! derives only need to emit `impl serde::Serialize for T {}` — no field
//! inspection, no `syn`/`quote`. Plain generic parameters (lifetimes, types,
//! consts, with or without bounds/defaults) are supported; that covers every
//! derive site in this workspace.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "Serialize")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "Deserialize")
}

fn marker_impl(input: TokenStream, trait_name: &str) -> TokenStream {
    let (name, params) = parse_item(input);
    let code = if params.is_empty() {
        format!("impl serde::{trait_name} for {name} {{}}")
    } else {
        let args = params.join(", ");
        format!("impl<{args}> serde::{trait_name} for {name}<{args}> {{}}")
    };
    code.parse().expect("generated marker impl parses")
}

/// Extracts the item name and its generic parameter *names* (bounds and
/// defaults stripped) from a struct/enum/union definition.
fn parse_item(input: TokenStream) -> (String, Vec<String>) {
    let mut trees = input.into_iter().peekable();
    // Skip attributes and visibility until the item keyword.
    while let Some(tt) = trees.next() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                // Consume the bracketed attribute body.
                if let Some(TokenTree::Group(g)) = trees.peek() {
                    if g.delimiter() == Delimiter::Bracket {
                        trees.next();
                    }
                }
            }
            TokenTree::Ident(id)
                if id.to_string() == "struct"
                    || id.to_string() == "enum"
                    || id.to_string() == "union" =>
            {
                break;
            }
            _ => {}
        }
    }
    let name = match trees.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive stub: expected item name, got {other:?}"),
    };
    // Generic parameters, if any.
    let mut params = Vec::new();
    if let Some(TokenTree::Punct(p)) = trees.peek() {
        if p.as_char() == '<' {
            trees.next();
            let mut depth = 1usize;
            let mut current: Vec<String> = Vec::new();
            let mut in_bound_or_default = false;
            for tt in trees.by_ref() {
                match &tt {
                    TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                    TokenTree::Punct(p) if p.as_char() == '>' => {
                        depth -= 1;
                        if depth == 0 {
                            if !current.is_empty() {
                                params.push(current.concat());
                            }
                            break;
                        }
                    }
                    TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => {
                        if !current.is_empty() {
                            params.push(current.concat());
                        }
                        current.clear();
                        in_bound_or_default = false;
                        continue;
                    }
                    TokenTree::Punct(p)
                        if (p.as_char() == ':' || p.as_char() == '=') && depth == 1 =>
                    {
                        in_bound_or_default = true;
                        continue;
                    }
                    _ => {}
                }
                if !in_bound_or_default && depth >= 1 {
                    match &tt {
                        TokenTree::Ident(id) if id.to_string() == "const" => {}
                        TokenTree::Ident(id) => current.push(id.to_string()),
                        TokenTree::Punct(p) if p.as_char() == '\'' => current.push("'".to_string()),
                        _ => {}
                    }
                }
            }
        }
    }
    (name, params)
}
