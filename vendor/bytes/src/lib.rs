//! Vendored minimal subset of the `bytes` crate (offline build): a growable
//! [`BytesMut`] write buffer, an immutable [`Bytes`] read cursor, and the
//! [`Buf`]/[`BufMut`] accessor traits for the little-endian fixed-width
//! reads/writes the sample wire format uses. No refcounted zero-copy slices
//! — `freeze` transfers ownership of the backing vector.

use std::borrow::Cow;

/// Read-side accessor trait (little-endian getters).
pub trait Buf {
    /// Bytes remaining to read.
    fn remaining(&self) -> usize;

    /// Reads `n` bytes, advancing the cursor.
    fn take_bytes(&mut self, n: usize) -> &[u8];

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        u16::from_le_bytes(self.take_bytes(2).try_into().unwrap())
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.take_bytes(4).try_into().unwrap())
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.take_bytes(8).try_into().unwrap())
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        self.take_bytes(1)[0]
    }
}

/// Write-side accessor trait (little-endian putters).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
}

/// A growable byte buffer for encoding.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty buffer with `cap` reserved bytes.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes written.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Clears the buffer, keeping capacity.
    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// Converts into an immutable [`Bytes`] cursor.
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: Cow::Owned(self.data),
            pos: 0,
        }
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// An immutable byte cursor for decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bytes {
    data: Cow<'static, [u8]>,
    pos: usize,
}

impl Bytes {
    /// Wraps a static byte slice without copying.
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes {
            data: Cow::Borrowed(data),
            pos: 0,
        }
    }

    /// Copies a byte slice into an owned cursor.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: Cow::Owned(data.to_vec()),
            pos: 0,
        }
    }

    /// Total length including already-consumed bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the cursor was created empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes {
            data: Cow::Owned(data),
            pos: 0,
        }
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn take_bytes(&mut self, n: usize) -> &[u8] {
        assert!(self.remaining() >= n, "buffer underflow");
        let start = self.pos;
        self.pos += n;
        &self.data[start..self.pos]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut buf = BytesMut::new();
        buf.put_u16_le(0xBEEF);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(0x0123_4567_89AB_CDEF);
        buf.put_f64_le(-1234.5);
        assert_eq!(buf.len(), 2 + 4 + 8 + 8);
        let mut b = buf.freeze();
        assert_eq!(b.get_u16_le(), 0xBEEF);
        assert_eq!(b.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(b.get_u64_le(), 0x0123_4567_89AB_CDEF);
        assert_eq!(b.get_f64_le(), -1234.5);
        assert_eq!(b.remaining(), 0);
    }

    #[test]
    fn static_bytes_report_remaining() {
        let b = Bytes::from_static(&[1, 2, 3]);
        assert_eq!(b.remaining(), 3);
    }
}
