//! Vendored mini `criterion` (offline build).
//!
//! Provides the API surface the workspace's benches use — `Criterion`,
//! `bench_function`, `Bencher::iter`, `criterion_group!`/`criterion_main!`,
//! `black_box` — backed by a small but statistically honest harness
//! (following the cbdr advice in SNIPPETS.md): per benchmark it collects
//! `sample_size` wall-clock samples, each batched to amortize timer
//! overhead, and reports the sample mean with a 95% confidence interval
//! computed from the sample standard deviation. Environment knobs:
//!
//! * `BENCH_QUICK=1` — smoke mode: 2 samples, minimal batching (CI).

use std::time::{Duration, Instant};

/// Opaque value sink preventing the optimizer from deleting benchmarked
/// work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Harness configuration and registry.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    /// Minimum measured duration per sample (batched iterations).
    min_sample_time: Duration,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let quick = std::env::var_os("BENCH_QUICK").is_some();
        Criterion {
            sample_size: if quick { 2 } else { 20 },
            min_sample_time: if quick {
                Duration::from_millis(1)
            } else {
                Duration::from_millis(40)
            },
            filter: std::env::args().skip(1).find(|a| !a.starts_with('-')),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        if std::env::var_os("BENCH_QUICK").is_none() {
            self.sample_size = n.max(2);
        }
        self
    }

    /// Sets the measurement time budget hint per sample.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.min_sample_time = t / self.sample_size.max(1) as u32;
        self
    }

    /// Runs one benchmark closure.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return self;
            }
        }
        let mut b = Bencher {
            min_sample_time: self.min_sample_time,
            sample_size: self.sample_size,
            samples_ns: Vec::new(),
        };
        f(&mut b);
        b.report(id);
        self
    }
}

/// Passed to the benchmark closure; drives the timing loop.
pub struct Bencher {
    min_sample_time: Duration,
    sample_size: usize,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Times `f`, collecting the configured number of samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up + batch sizing: grow the batch until one batch exceeds
        // the per-sample floor, so timer overhead is amortized.
        let mut batch = 1usize;
        loop {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = t.elapsed();
            if elapsed >= self.min_sample_time || batch >= 1 << 20 {
                break;
            }
            // Aim directly for the floor with 50% headroom.
            let scale = self.min_sample_time.as_secs_f64() / elapsed.as_secs_f64().max(1e-9);
            batch = ((batch as f64 * scale * 1.5).ceil() as usize).clamp(batch + 1, 1 << 20);
        }
        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            self.samples_ns
                .push(t.elapsed().as_nanos() as f64 / batch as f64);
        }
    }

    /// Mean per-iteration time of the last `iter` run, in nanoseconds.
    pub fn mean_ns(&self) -> f64 {
        if self.samples_ns.is_empty() {
            return 0.0;
        }
        self.samples_ns.iter().sum::<f64>() / self.samples_ns.len() as f64
    }

    fn report(&self, id: &str) {
        if self.samples_ns.is_empty() {
            println!("{id:<40} (no samples collected)");
            return;
        }
        let n = self.samples_ns.len() as f64;
        let mean = self.mean_ns();
        let var = self
            .samples_ns
            .iter()
            .map(|s| (s - mean) * (s - mean))
            .sum::<f64>()
            / (n - 1.0).max(1.0);
        // 95% CI half-width under a normal approximation of the sample mean.
        let half = 1.96 * (var / n).sqrt();
        println!(
            "{id:<40} time: [{} {} {}]",
            fmt_ns(mean - half),
            fmt_ns(mean),
            fmt_ns(mean + half),
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    let ns = ns.max(0.0);
    if ns < 1e3 {
        format!("{ns:.2} ns")
    } else if ns < 1e6 {
        format!("{:.3} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.3} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Declares a benchmark group function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench`/`cargo test` pass harness flags (`--bench`,
            // `--test`); only `--bench` mode should execute benchmarks.
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_and_reports() {
        std::env::set_var("BENCH_QUICK", "1");
        let mut c = Criterion::default().sample_size(3);
        let mut ran = false;
        c.bench_function("noop", |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
            assert!(b.mean_ns() >= 0.0);
        });
        assert!(ran);
    }
}
