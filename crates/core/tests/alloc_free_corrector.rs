//! Proof that the steady-state warm-started corrector loop is
//! allocation-free: after the first chunk has grown every buffer (engine
//! caches, workspaces, cavity history), pushing further chunks through the
//! streaming API at `threads = 1` must not change the global allocation
//! counter — observation swap, prior re-seat, EP sweeps, MCMC chains,
//! chain-prior capture and posterior reads included.
//!
//! This file holds exactly one test so no concurrent test can pollute the
//! global counter.

use bayesperf_core::corrector::{Corrector, CorrectorConfig};
use bayesperf_events::{Arch, Catalog, Semantic};
use bayesperf_simcpu::{pack_round_robin, Pmu, PmuConfig, Sample};
use bayesperf_workloads::kmeans;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_corrector_loop_allocates_nothing() {
    let cat = Catalog::new(Arch::X86SkyLake);
    let mut truth = kmeans().instantiate(&cat, 0);
    let pmu = Pmu::new(&cat, PmuConfig::for_catalog(&cat));
    let events = vec![
        cat.require(Semantic::L1dMisses),
        cat.require(Semantic::LlcMisses),
    ];
    let schedule = pack_round_robin(&cat, &events).unwrap();
    let n_windows = 12;
    let run = pmu.run_multiplexed(&mut truth, &schedule, n_windows);

    let mut config = CorrectorConfig::for_run(&run);
    config.model.slices = 2;
    config.threads = 1; // thread spawns allocate; the sequential farm must not
    let mut corrector = Corrector::new(&cat, config);

    // Pre-build all chunk slices outside the measured region.
    let windows: Vec<&[Sample]> = run.windows.iter().map(|w| w.samples.as_slice()).collect();
    let chunks: Vec<&[&[Sample]]> = windows.chunks(2).collect();
    let probe = cat.require(Semantic::LlcReferences);

    // Chunk 1 (cold): grows the engine caches, workspaces and history.
    corrector.push_chunk(chunks[0]);

    // Windows 2+ (every later chunk): the warm loop must be allocation-free,
    // including reading posteriors back out.
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    let mut checksum = 0.0f64;
    for chunk in &chunks[1..] {
        let stats = corrector.push_chunk(chunk);
        assert!(stats.sweeps_run >= 1);
        for t in 0..2 {
            checksum += corrector.posterior(t, probe).mean;
        }
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "steady-state push_chunk must not allocate ({} allocations observed \
         across {} chunks)",
        after - before,
        chunks.len() - 1
    );

    // Sanity: the loop really inferred something.
    assert!(checksum.is_finite() && checksum > 0.0);
}
