//! Service-level shim tests: concurrent sessions against the background
//! inference thread, determinism vs the single-threaded corrector, and
//! ring backpressure.

use bayesperf_core::corrector::{Corrector, CorrectorConfig};
use bayesperf_core::service::Monitor;
use bayesperf_core::ShimError;
use bayesperf_events::{Arch, Catalog, Semantic};
use bayesperf_simcpu::{pack_round_robin, MultiplexRun, Sample};
use bayesperf_workloads::kmeans;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::SeqCst};

fn recorded_run(cat: &Catalog, n_windows: usize, seed: u64) -> MultiplexRun {
    use bayesperf_simcpu::{NoiseModel, Pmu, PmuConfig};
    let mut truth = kmeans().instantiate(cat, 0);
    let pmu = Pmu::new(
        cat,
        PmuConfig {
            noise: NoiseModel::default(),
            seed,
            ..PmuConfig::for_catalog(cat)
        },
    );
    let events = vec![
        cat.require(Semantic::L1dMisses),
        cat.require(Semantic::LlcHits),
        cat.require(Semantic::LlcMisses),
    ];
    let schedule = pack_round_robin(cat, &events).expect("schedule fits");
    pmu.run_multiplexed(&mut truth, &schedule, n_windows)
}

/// ≥4 concurrent sessions poll while the inference thread corrects a
/// live stream: every read returns (non-blocking), every group read is
/// internally consistent (one snapshot: chunk-boundary window, finite
/// values, windows monotone per reader), and the final posteriors are
/// bit-identical to a single-threaded [`Corrector`] fed the same sample
/// stream.
#[test]
fn concurrent_sessions_read_consistent_snapshots_matching_the_corrector() {
    let cat = Catalog::new(Arch::X86SkyLake);
    let n_windows = 24;
    let run = recorded_run(&cat, n_windows, 11);
    let cfg = CorrectorConfig::for_run(&run);
    let k = cfg.model.slices;
    assert_eq!(n_windows % k, 0, "fixture chunk-aligned");

    let monitor = Monitor::new(&cat, cfg.clone(), 1 << 16).expect("spawn monitor");
    let session = monitor.session().open().expect("open");
    let stop = AtomicBool::new(false);
    let reads_during_run = AtomicU64::new(0);

    std::thread::scope(|s| {
        // 4 concurrent readers polling while inference is mid-chunk.
        for _ in 0..4 {
            let session = session.clone();
            let stop = &stop;
            let reads = &reads_during_run;
            let cat = &cat;
            s.spawn(move || {
                let ev = cat.require(Semantic::L1dMisses);
                let mut last_window = 0u32;
                loop {
                    match session.read(ev) {
                        Ok(r) => assert!(r.value.is_finite() && r.std_dev >= 0.0),
                        Err(ShimError::NoPosteriorYet) => {}
                        Err(e) => panic!("unexpected read error: {e}"),
                    }
                    if let Ok(group) = session.read_group() {
                        // Snapshot consistency: the window is a chunk
                        // boundary, never moves backwards for one reader,
                        // and every reading in the group is finite.
                        assert_eq!(
                            (group.window as usize + 1) % k,
                            0,
                            "snapshot window {} is a chunk boundary",
                            group.window
                        );
                        assert!(group.window >= last_window, "snapshots never regress");
                        last_window = group.window;
                        assert_eq!(group.readings.len(), cat.len());
                        assert!(group
                            .readings
                            .iter()
                            .all(|(_, r)| r.value.is_finite() && r.std_dev.is_finite()));
                        reads.fetch_add(1, SeqCst);
                    }
                    if stop.load(SeqCst) {
                        break;
                    }
                }
            });
        }

        // Producer: streams the whole recorded run into the ring.
        for w in &run.windows {
            for s in &w.samples {
                monitor.push_sample(*s).expect("ring sized for the run");
            }
        }
        monitor.sync().expect("sync");
        monitor.flush().expect("flush");
        stop.store(true, SeqCst);
    });

    assert!(
        reads_during_run.load(SeqCst) > 0,
        "readers made progress concurrently with inference"
    );
    assert_eq!(monitor.windows_published(), n_windows as u64);
    assert_eq!(monitor.late_samples(), 0);

    // Reference: the same stream through a single-threaded corrector,
    // chunk by chunk (the service's exact ingestion order).
    let mut reference = Corrector::new(&cat, cfg);
    let windows: Vec<&[Sample]> = run.windows.iter().map(|w| w.samples.as_slice()).collect();
    for chunk in windows.chunks(k) {
        reference.push_chunk(chunk);
    }
    let group = session.read_group().expect("final snapshot");
    assert_eq!(group.window as usize, n_windows - 1);
    for (ev, reading) in &group.readings {
        let expect = reference.posterior(k - 1, *ev);
        assert_eq!(
            reading.value, expect.mean,
            "bit-identical posterior mean for {ev}"
        );
        assert_eq!(
            reading.std_dev,
            expect.std_dev(),
            "bit-identical posterior sd for {ev}"
        );
    }
}

/// The flushed ragged tail matches the batch corrector's ragged-tail path
/// bit for bit: streaming `Monitor` + `flush` == `Corrector::correct_run`.
#[test]
fn streamed_run_with_flush_matches_batch_correction_including_tail() {
    let cat = Catalog::new(Arch::X86SkyLake);
    // 21 windows with k = 6: three full chunks + a 3-window tail.
    let n_windows = 21;
    let run = recorded_run(&cat, n_windows, 5);
    let cfg = CorrectorConfig::for_run(&run);
    let k = cfg.model.slices;
    assert!(!n_windows.is_multiple_of(k), "fixture needs a ragged tail");

    let monitor = Monitor::new(&cat, cfg.clone(), 1 << 16).expect("spawn monitor");
    let session = monitor.session().open().expect("open");
    let mut updates = session.subscribe();
    for w in &run.windows {
        for s in &w.samples {
            monitor.push_sample(*s).expect("ring sized for the run");
        }
    }
    monitor.flush().expect("flush");
    assert_eq!(monitor.windows_published(), n_windows as u64);

    let series = Corrector::new(&cat, cfg).correct_run(&run);
    let ev = cat.require(Semantic::L1dMisses);
    let mut streamed = Vec::new();
    while let Ok(Some(u)) = updates.try_next() {
        streamed.push((u.window, u.gaussian(ev).expect("selected")));
    }
    assert_eq!(streamed.len(), n_windows);
    for (w, g) in streamed {
        let expect = series.posterior(w as usize, ev);
        assert_eq!(g.mean, expect.mean, "window {w}: bit-identical mean");
        assert_eq!(g.var, expect.var, "window {w}: bit-identical variance");
    }
}

/// Backpressure: with the service paused, an overflowing producer gets
/// typed `RingOverflow` errors whose counts agree with `dropped()`; after
/// resuming, posteriors still publish, stay finite, and window indices
/// stay monotone.
#[test]
fn ring_backpressure_surfaces_typed_errors_and_keeps_posteriors_sane() {
    let cat = Catalog::new(Arch::X86SkyLake);
    let run = recorded_run(&cat, 12, 7);
    let cfg = CorrectorConfig::for_run(&run);
    let capacity = 32;
    let monitor = Monitor::new(&cat, cfg, capacity).expect("spawn monitor");
    let session = monitor.session().open().expect("open");
    let mut updates = session.subscribe();

    monitor.pause().expect("pause");
    let mut overflows = 0u64;
    let mut last_reported = 0u64;
    for w in &run.windows {
        for s in &w.samples {
            match monitor.push_sample(*s) {
                Ok(()) => {}
                Err(ShimError::RingOverflow { dropped }) => {
                    overflows += 1;
                    assert!(dropped > last_reported, "drop count grows");
                    last_reported = dropped;
                }
                Err(e) => panic!("unexpected push error: {e}"),
            }
        }
    }
    assert!(overflows > 0, "tiny ring must overflow while paused");
    assert_eq!(monitor.dropped(), overflows);

    monitor.resume().expect("resume");
    monitor.flush().expect("flush");
    // Only `capacity` samples survived, but inference over sparse windows
    // must still publish finite posteriors in window order.
    assert!(monitor.windows_published() > 0, "survivors were corrected");
    let mut last_window = None;
    let mut seen = 0;
    while let Ok(Some(u)) = updates.try_next() {
        if let Some(prev) = last_window {
            assert!(u.window > prev, "windows monotone after drops");
        }
        last_window = Some(u.window);
        for (_, g) in &u.posteriors {
            assert!(g.mean.is_finite() && g.var.is_finite() && g.var >= 0.0);
        }
        seen += 1;
    }
    assert!(seen > 0);
    let group = session.read_group().expect("snapshot after drops");
    assert!(group.readings.iter().all(|(_, r)| r.value.is_finite()));
}

/// Regression for the lossy-subscriber path: a consumer whose bounded
/// queue overflows must see the skipped windows **explicitly** via
/// `PosteriorUpdate::gap` on the next delivered update — not just
/// implicitly as non-consecutive `window` indices.
#[test]
fn lossy_subscriber_gets_explicit_gap_counts() {
    let cat = Catalog::new(Arch::X86SkyLake);
    let run = recorded_run(&cat, 24, 13);
    let cfg = CorrectorConfig::for_run(&run);
    let k = cfg.model.slices;
    assert_eq!(k, 6, "fixture assumes the default chunk size");

    let monitor = Monitor::new(&cat, cfg, 1 << 16).expect("spawn monitor");
    let session = monitor.session().open().expect("open");
    // Queue of 2: everything beyond two updates between drains is lost.
    let mut updates = session.subscribe_with_capacity(2);

    let feed_windows = |range: std::ops::Range<usize>| {
        for w in &run.windows[range] {
            for s in &w.samples {
                monitor.push_sample(*s).expect("room");
            }
        }
    };

    // First half: windows 0..12 publish while the consumer sleeps; only
    // w0 and w1 fit, w2..=w11 overflow.
    feed_windows(0..12);
    monitor.flush().expect("flush");
    let mut got = Vec::new();
    while let Ok(Some(u)) = updates.try_next() {
        got.push((u.window, u.gap));
    }
    assert_eq!(got, vec![(0, 0), (1, 0)], "no gap before the overflow");

    // Second half: windows 12..24 publish; the first delivered one must
    // carry the ten windows (w2..=w11) this subscriber lost.
    feed_windows(12..24);
    monitor.flush().expect("flush");
    let mut got = Vec::new();
    while let Ok(Some(u)) = updates.try_next() {
        got.push((u.window, u.gap));
    }
    assert_eq!(
        got,
        vec![(12, 10), (13, 0)],
        "gap = windows skipped since the last enqueued update"
    );

    // A keeping-up subscriber never sees a gap: `window` deltas and `gap`
    // agree (both zero-loss) across a fresh subscription.
    let mut fresh = session.subscribe();
    feed_windows(0..0); // nothing new; flush republishes nothing
    monitor.flush().expect("flush");
    assert!(matches!(fresh.try_next(), Ok(None)), "nothing republished");
}
