//! Property tests for the cross-source invariant factors (the coupling
//! the observation plane adds between PMU and gauge events).
//!
//! The model under test is the §4.2 error model at factor granularity:
//! one PMU variable `x` with a Student-t observation, one gauge variable
//! `y` observed through [`gauge_observation`], and the coupled invariant
//! `y = c·x` as a Gaussian factor on the residual — exactly the shape
//! `build_chunk_model` emits for `disk_dma_bytes` / `power_activity`.
//! Over random truths, couplings, and noise draws:
//!
//! * the invariant only **tightens or preserves** the fused posterior on
//!   consistent sources (an unobserved gauge slice inherits the PMU's
//!   evidence; a consistently observed one gets sharper, never wider);
//! * a corrupted gauge read (the `DataFaultProfile` corruption class: a
//!   huge bogus multiplier) **never oversharpens** either marginal and
//!   never produces non-finite moments — the same
//!   `assert_never_oversharpened` contract the fleet's net-fault harness
//!   enforces one layer up. Mean *accuracy* under corruption is not part
//!   of the factor-level contract: EP re-initialises a site's MCMC chain
//!   at its observation hint every sweep with steps capped at the cavity
//!   scale, so a bogus-magnitude read costs accuracy until quarantine or
//!   later windows correct it — what it must never do is manufacture
//!   confidence.

use bayesperf_core::{gauge_observation, observation};
use bayesperf_events::{EventId, SourceId};
use bayesperf_inference::{EpConfig, ExpectationPropagation, FactorSite, Gaussian, StudentT};
use bayesperf_simcpu::Sample;
use proptest::Strategy;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A window-total sample in normalized units (scale 1).
fn sample(value: f64, sub_sd: f64, sub_n: u32, source: u16) -> Sample {
    Sample {
        event: EventId::from_raw(0),
        window: 0,
        value,
        sub_mean: value,
        sub_sd,
        sub_n,
        time_enabled: 4,
        time_running: 4,
        source: SourceId::from_raw(source),
    }
}

/// Posterior marginals `(x, y)` of the two-variable model.
///
/// `x` always carries its PMU observation; `obs_y` optionally adds the
/// gauge's; `invariant` optionally adds the coupled factor
/// `y - c·x ~ N(0, (0.01·max(c,1))²)` (the catalog's exact-invariant
/// width on the relative residual).
fn fused(
    obs_x: StudentT,
    obs_y: Option<StudentT>,
    invariant: Option<f64>,
    seed: u64,
) -> (Gaussian, Gaussian) {
    let prior = vec![Gaussian::new(1.0, 25.0), Gaussian::new(1.0, 25.0)];
    // Long chains: variance comparisons at a few-percent tolerance need
    // MCMC moment noise well below that (the sites are tiny, so this
    // stays cheap).
    let config = EpConfig {
        mcmc: bayesperf_inference::McmcConfig {
            burn_in: 500,
            samples: 4000,
            ..Default::default()
        },
        ..EpConfig::default()
    };
    let mut ep = ExpectationPropagation::new(prior, config);
    // Hints mirror SliceSite::set_window: init at the observation's
    // location, propose at 3× its scale.
    let (hint_x, scale_x) = (obs_x.loc, obs_x.scale * 3.0);
    ep.add_site(
        FactorSite::builder(vec![0])
            .factor(&[0], move |v| obs_x.log_pdf(v[0]))
            .init_hint(0, hint_x)
            .scale_hint(0, scale_x)
            .build(),
    );
    if let Some(t) = obs_y {
        let (hint_y, scale_y) = (t.loc, t.scale * 3.0);
        ep.add_site(
            FactorSite::builder(vec![1])
                .factor(&[0], move |v| t.log_pdf(v[0]))
                .init_hint(0, hint_y)
                .scale_hint(0, scale_y)
                .build(),
        );
    }
    if let Some(c) = invariant {
        let width = 0.01 * c.max(1.0);
        ep.add_site(
            FactorSite::builder(vec![0, 1])
                .gaussian_linear(&[0, 1], &[-c, 1.0], 0.0, width * width)
                .build(),
        );
    }
    let mut rng = StdRng::seed_from_u64(seed);
    ep.run(&mut rng);
    (ep.marginal(0), ep.marginal(1))
}

/// The fleet net-fault harness's contract, at factor level: relative to
/// the all-consistent posterior, a degraded input may only widen — both
/// marginals stay finite with positive variance and neither comes out
/// sharper (beyond MCMC moment noise).
fn assert_never_oversharpened(degraded: (Gaussian, Gaussian), consistent: (Gaussian, Gaussian)) {
    for (d, c) in [(degraded.0, consistent.0), (degraded.1, consistent.1)] {
        assert!(
            d.mean.is_finite() && d.var.is_finite() && d.var > 0.0,
            "degraded marginal corrupted: {d:?}"
        );
        assert!(
            d.var >= c.var * 0.8,
            "degraded marginal oversharpened: {} vs consistent {}",
            d.var,
            c.var
        );
    }
}

#[test]
fn coupled_invariants_tighten_on_consistent_sources_and_widen_under_faults() {
    proptest::run_n_cases("cross_source_invariant", 24, |rng| {
        let x_true = (0.5f64..2.0).sample(rng);
        let c = (0.5f64..4.0).sample(rng);
        let pmu_eps = (-0.02f64..0.02).sample(rng);
        let gauge_eps = (-0.015f64..0.015).sample(rng);
        let seed = (0u64..u64::MAX - 1).sample(rng);
        let y_true = c * x_true;

        let sx = sample(x_true * (1.0 + pmu_eps), 0.01 * x_true, 4, 0);
        let obs_x = observation(&sx, 1.0, 0.02);
        let sy = sample(y_true * (1.0 + gauge_eps), 0.0, 1, 2);
        let obs_y = gauge_observation(&sy, 1.0, 0.03, 0.02);
        // The DataFaultProfile corruption class: same read, bogus scale.
        let sy_bad = sample(sy.value * 1.0e9, 0.0, 1, 2);
        let obs_y_bad = gauge_observation(&sy_bad, 1.0, 0.03, 0.02);

        // Unobserved gauge slice: the invariant is the only y evidence.
        // It must tighten y massively versus the prior-only marginal and
        // must not degrade x.
        let (x_solo, y_solo) = fused(obs_x, None, None, seed);
        let (x_inv, y_inv) = fused(obs_x, None, Some(c), seed);
        assert!(
            y_inv.var <= y_solo.var * (1.0 + 1e-9),
            "invariant widened an unobserved gauge: {} vs {}",
            y_inv.var,
            y_solo.var
        );
        assert!(
            x_inv.var <= x_solo.var * 1.5,
            "invariant degraded the PMU marginal: {} vs {}",
            x_inv.var,
            x_solo.var
        );
        assert!(
            (y_inv.mean - y_true).abs() < 0.5 * y_true.max(1.0),
            "invariant-only gauge estimate way off: {} vs {}",
            y_inv.mean,
            y_true
        );

        // Consistent gauge observation: more evidence, so the fused
        // posterior tightens (or at worst preserves, modulo MCMC moment
        // noise) relative to the invariant-only marginal.
        let consistent = fused(obs_x, Some(obs_y), Some(c), seed);
        assert!(
            consistent.1.var <= y_inv.var * 1.1,
            "consistent gauge evidence widened the fused posterior: {} vs {}",
            consistent.1.var,
            y_inv.var
        );
        assert!(
            (consistent.1.mean - y_true).abs() < 0.5 * y_true.max(1.0),
            "fused gauge estimate way off: {} vs {}",
            consistent.1.mean,
            y_true
        );

        // Corrupted gauge read: the value-proportional factor scale makes
        // the bogus observation weak evidence. The fused posterior may
        // lose mean accuracy (the site chain re-inits at the bogus hint
        // each sweep), but it must stay finite and must never come out
        // *sharper* than the consistent run — corruption can cost
        // information, never fabricate it.
        let faulted = fused(obs_x, Some(obs_y_bad), Some(c), seed);
        assert_never_oversharpened(faulted, consistent);
    });
}
