//! Supervision soak: the inference service is crashed and fed corrupted
//! data over and over while readers watch. The contract under test is
//! the whole robustness tentpole at once:
//!
//! * every published snapshot stays finite and chunk-consistent across
//!   hundreds of crash/restart cycles — no torn or poisoned reads, no
//!   variance collapse to a false certainty;
//! * warm restarts resume from the last published snapshot: the window
//!   frontier never regresses and subscribers never see a duplicate;
//! * divergent samples (NaN/Inf values, broken PMI sub-moments from a
//!   seeded [`DataFaultProfile`]) are contained and *counted*, never
//!   silently absorbed;
//! * a service whose restart budget is exhausted fails **loudly**: reads
//!   flip from serving data to typed [`ShimError::ServiceDown`] — the
//!   regression test for the silent-freeze failure mode where a dead
//!   inference thread left sessions returning stale posteriors forever.
//!
//! Runs a short soak by default; set `CRASH_SOAK=1` (the CI `crash-soak`
//! leg) for the hundreds-of-cycles version.

use bayesperf_core::corrector::CorrectorConfig;
use bayesperf_core::service::{Monitor, ServiceState, SupervisorPolicy};
use bayesperf_core::ShimError;
use bayesperf_events::{Arch, Catalog, Semantic};
use bayesperf_simcpu::{
    pack_round_robin, DataFaultProfile, DataFaultState, MultiplexRun, NoiseModel, Pmu, PmuConfig,
};
use bayesperf_workloads::kmeans;
use std::time::{Duration, Instant};

fn recorded_run(cat: &Catalog, n_windows: usize, seed: u64) -> MultiplexRun {
    let mut truth = kmeans().instantiate(cat, 0);
    let pmu = Pmu::new(
        cat,
        PmuConfig {
            noise: NoiseModel::default(),
            seed,
            ..PmuConfig::for_catalog(cat)
        },
    );
    let events = vec![
        cat.require(Semantic::L1dMisses),
        cat.require(Semantic::LlcHits),
        cat.require(Semantic::LlcMisses),
    ];
    let schedule = pack_round_robin(cat, &events).expect("schedule fits");
    pmu.run_multiplexed(&mut truth, &schedule, n_windows)
}

/// Spins until `pred` holds or the deadline passes; panics on timeout so
/// a wedged supervisor fails the test instead of hanging it.
fn wait_until(what: &str, mut pred: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while !pred() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::yield_now();
    }
}

/// The main soak: crash the service once per streamed chunk, with the
/// sample stream itself corrupted by a seeded fault model, and assert
/// the read surface never degrades.
#[test]
fn crash_soak_restarts_stay_warm_and_snapshots_stay_sane() {
    let cycles: usize = if std::env::var("CRASH_SOAK").is_ok() {
        250
    } else {
        40
    };
    let windows_per_cycle = 2;

    let cat = Catalog::new(Arch::X86SkyLake);
    let run = recorded_run(&cat, cycles * windows_per_cycle, 17);
    let cfg = CorrectorConfig::for_run(&run);
    let monitor = Monitor::new(&cat, cfg, 1 << 16).expect("spawn monitor");
    let session = monitor.session().open().expect("open");
    let mut updates = session.subscribe_with_capacity(cycles * windows_per_cycle + 8);

    // A hostile but finite-rate fault stream: NaN/Inf reads, scaled
    // corruption, stuck counters, poisoned sub-moments.
    let mut faults = DataFaultState::new(DataFaultProfile::noisy(0xBAD));
    let ev = cat.require(Semantic::L1dMisses);
    let mut last_window: Option<u32> = None;

    for cycle in 0..cycles {
        // Stream one slice of the run through the fault model.
        let lo = cycle * windows_per_cycle;
        for w in &run.windows[lo..lo + windows_per_cycle] {
            for s in &w.samples {
                let mut s = *s;
                faults.apply(&mut s);
                monitor.push_sample(s).expect("ring sized for the run");
            }
        }
        monitor.flush().expect("service alive");

        // The read surface after every flush: finite, never regressing,
        // never collapsed to a false certainty.
        let r = session.read(ev).expect("posterior published");
        assert!(r.value.is_finite(), "cycle {cycle}: non-finite mean");
        assert!(
            r.std_dev.is_finite() && r.std_dev > 0.0,
            "cycle {cycle}: posterior oversharpened (sd = {})",
            r.std_dev
        );
        let group = session.read_group().expect("snapshot");
        assert!(group
            .readings
            .iter()
            .all(|(_, r)| r.value.is_finite() && r.std_dev > 0.0));
        if let Some(prev) = last_window {
            assert!(group.window >= prev, "cycle {cycle}: window regressed");
        }
        last_window = Some(group.window);

        // Kill the service and wait for the supervisor to restart it.
        // Progress since the previous crash (the flush above) keeps the
        // consecutive-crash budget at zero, so the soak can run for far
        // more cycles than `max_consecutive_restarts` allows in a row.
        monitor.inject_panic().expect("service alive");
        let target = (cycle + 1) as u64;
        wait_until("supervisor restart", || monitor.restarts() >= target);
        wait_until("service running again", || {
            monitor.service_state() == ServiceState::Running
        });
    }

    assert_eq!(monitor.restarts(), cycles as u64);
    assert!(
        monitor.divergences() > 0,
        "the noisy fault profile must have tripped the containment guards"
    );

    // The flight recorder carries the whole incident history (bounded
    // ring, newest events always retained): the injected panics, the
    // supervised restarts, and the quarantined-divergence counts must
    // all be in the dump — a postmortem needs no other source.
    let flight = monitor.telemetry().flight();
    let dump = bayesperf_obs::FlightRecorder::render(&flight.dump());
    assert!(
        dump.contains("panic injected (test hook)"),
        "flight dump missing the injected panic:\n{dump}"
    );
    assert!(
        dump.contains(&format!("service restart #{}", cycles)),
        "flight dump missing the last supervised restart:\n{dump}"
    );
    assert!(
        dump.contains("quarantined") && dump.contains("diverged site(s)"),
        "flight dump missing the divergence quarantine trail:\n{dump}"
    );

    // Warm restart correctness: subscribers saw every published window
    // exactly once, in order — no duplicates from re-published chunks,
    // no regressions from a cold-reset frontier.
    let mut seen = Vec::new();
    while let Ok(Some(u)) = updates.try_next() {
        assert_eq!(u.gap, 0, "queue sized for the whole soak");
        for (_, g) in &u.posteriors {
            assert!(g.mean.is_finite() && g.var.is_finite() && g.var > 0.0);
        }
        seen.push(u.window);
    }
    let mut sorted = seen.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(seen, sorted, "windows duplicated or out of order: {seen:?}");
    assert_eq!(
        seen.last().copied(),
        last_window,
        "final subscriber window matches the read surface"
    );
}

/// A restart budget of zero turns the first crash into a terminal,
/// **typed** failure: `ServiceDown { cause }` on every subsequent read,
/// even though a perfectly good snapshot was published before the crash.
/// This is the silent-freeze regression test — the failure mode where a
/// dead inference thread left sessions happily serving stale posteriors.
#[test]
fn exhausted_restart_budget_fails_loudly_not_frozen() {
    let cat = Catalog::new(Arch::X86SkyLake);
    let run = recorded_run(&cat, 6, 3);
    let cfg = CorrectorConfig::for_run(&run);
    let monitor = Monitor::with_policy(
        &cat,
        cfg,
        1 << 14,
        SupervisorPolicy {
            max_consecutive_restarts: 0,
            ..SupervisorPolicy::default()
        },
    )
    .expect("spawn monitor");
    let session = monitor.session().open().expect("open");

    // Publish something real first: the freeze bug needs stale data to
    // serve.
    for w in &run.windows {
        for s in &w.samples {
            monitor.push_sample(*s).expect("room");
        }
    }
    monitor.flush().expect("alive");
    let ev = cat.require(Semantic::L1dMisses);
    let healthy = session.read(ev).expect("published before the crash");
    assert!(healthy.value.is_finite());

    monitor.inject_panic().expect("alive");
    wait_until("terminal failure", || {
        matches!(monitor.service_state(), ServiceState::Failed { .. })
    });
    assert_eq!(monitor.restarts(), 0, "budget 0 never restarts");

    // Reads must now fail with the crash cause — not hang, not keep
    // serving the pre-crash posterior.
    match session.read(ev) {
        Err(ShimError::ServiceDown { cause }) => {
            assert!(
                cause.contains("injected service panic"),
                "cause carries the panic message, got {cause:?}"
            );
        }
        other => panic!("expected ServiceDown, got {other:?}"),
    }
    assert!(matches!(
        session.read_group(),
        Err(ShimError::ServiceDown { .. })
    ));
    assert!(matches!(
        session.snapshot(),
        Err(ShimError::ServiceDown { .. })
    ));
    match monitor.service_state() {
        ServiceState::Failed { cause } => assert!(cause.contains("injected service panic")),
        other => panic!("expected Failed, got {other:?}"),
    }

    // New work is refused with a typed error too.
    assert!(monitor.push_sample(run.windows[0].samples[0]).is_err());
    // A subscription stream opened before the crash terminates instead
    // of blocking forever.
    let mut updates = session.subscribe();
    while let Ok(Some(_)) = updates.try_next() {}
    assert!(matches!(updates.try_next(), Err(ShimError::SessionClosed)));
}

/// Divergence containment in isolation (no crashes): a stream where
/// *every* value for one stretch is non-finite still yields a finite
/// snapshot, and the drops are visible in the divergence counter.
#[test]
fn non_finite_streams_are_contained_and_counted() {
    let cat = Catalog::new(Arch::X86SkyLake);
    let run = recorded_run(&cat, 12, 9);
    let cfg = CorrectorConfig::for_run(&run);
    let monitor = Monitor::new(&cat, cfg, 1 << 16).expect("spawn monitor");
    let session = monitor.session().open().expect("open");

    let mut poisoned = 0u64;
    for (i, w) in run.windows.iter().enumerate() {
        for s in &w.samples {
            let mut s = *s;
            // Windows 4..8: poison every sample, alternating fault kind.
            if (4..8).contains(&i) {
                if poisoned.is_multiple_of(3) {
                    s.value = f64::NAN;
                } else if poisoned % 3 == 1 {
                    s.value = f64::INFINITY;
                } else {
                    s.sub_sd = -1.0;
                }
                poisoned += 1;
            }
            monitor.push_sample(s).expect("room");
        }
    }
    monitor.flush().expect("alive");

    assert!(poisoned > 0);
    assert_eq!(
        monitor.divergences(),
        poisoned,
        "every poisoned sample dropped at the ingest guard, none leaked"
    );
    assert_eq!(monitor.restarts(), 0, "containment, not crashes");
    let group = session.read_group().expect("snapshot");
    assert!(group
        .readings
        .iter()
        .all(|(_, r)| r.value.is_finite() && r.std_dev.is_finite() && r.std_dev > 0.0));
    assert_eq!(group.window as usize, run.windows.len() - 1);
}
