//! The BayesPerf shim: perf-compatible readers over asynchronous inference.
//!
//! §5 / Fig. 3 of the paper: monitoring applications talk to a userspace
//! "shim" whose API mirrors the Linux perf subsystem; the kernel enqueues
//! samples into a shared ring buffer; inference runs **asynchronously**
//! (on the accelerator in hardware, on the background service thread
//! here), and the monitoring application's *reads are served from
//! already-computed posteriors in host memory*. A read therefore costs a
//! lock-free snapshot acquisition — never an EP sweep — which is how the
//! accelerator masks inference latency behind the read path.
//!
//! The full session API lives in [`crate::service`]: a shared
//! [`Monitor`] owns the ring and the inference
//! thread, and hands out `Clone + Send` [`Session`]
//! handles with typed errors, consistent group reads and a streaming
//! [`Session::subscribe`] feed.
//!
//! This module keeps the original single-client reader surface on top of
//! it:
//!
//! * [`HpcReader`] — the perf-like trait any monitoring loop can be
//!   written against;
//! * [`LinuxReader`] — models `read()` on a perf fd: latest sample, point
//!   value, no uncertainty;
//! * [`BayesPerfShim`] — a compat adapter over a single-session
//!   [`Monitor`]: `push_sample` feeds the
//!   service's ring, `read` synchronizes with the service (so results are
//!   deterministic for recorded runs) and serves the posterior snapshot.
//!
//! Migrating off the adapter: replace `BayesPerfShim::new` with
//! [`Monitor::new`] +
//! [`Monitor::session`], push samples
//! through the monitor, and poll sessions from as many threads as needed
//! — see the README's "Shim API" section for the lifecycle.

use crate::corrector::CorrectorConfig;
use crate::error::ShimError;
use crate::service::{Monitor, Session};
use bayesperf_events::{Catalog, EventId};
use bayesperf_inference::Gaussian;
use bayesperf_simcpu::Sample;
use std::collections::HashMap;

/// The value returned by a reader: an estimate with quantified uncertainty.
///
/// For the Linux reader the uncertainty is zero (perf reports a point
/// value); for BayesPerf it is the posterior spread, and `interval95` the
/// 95% credible interval (the paper's §4.2 confidence level).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Reading {
    /// Point estimate of the event's per-window count (MLE / posterior mean).
    pub value: f64,
    /// Posterior standard deviation (0 for point estimators).
    pub std_dev: f64,
    /// 95% credible interval.
    pub interval95: (f64, f64),
}

impl Reading {
    pub(crate) fn point(value: f64) -> Self {
        Reading {
            value,
            std_dev: 0.0,
            interval95: (value, value),
        }
    }

    /// The reading of a Gaussian posterior: mean, spread, 95% credible
    /// interval (used by both the per-machine and the fleet read paths).
    pub fn from_gaussian(g: &Gaussian) -> Self {
        Reading {
            value: g.mean,
            std_dev: g.std_dev(),
            interval95: g.interval(1.96),
        }
    }
}

/// A perf-like counter reader: samples in, per-event readings out.
pub trait HpcReader {
    /// Delivers one kernel sample (ring-buffer enqueue path).
    fn push_sample(&mut self, sample: Sample);

    /// Reads the current estimate for an event, if one is available yet.
    fn read(&mut self, event: EventId) -> Option<Reading>;
}

/// Linux perf semantics: the latest sample, time-scaled.
#[derive(Debug, Clone, Default)]
pub struct LinuxReader {
    latest: HashMap<EventId, Sample>,
}

impl LinuxReader {
    /// Creates an empty reader.
    pub fn new() -> Self {
        Self::default()
    }
}

impl HpcReader for LinuxReader {
    fn push_sample(&mut self, sample: Sample) {
        self.latest.insert(sample.event, sample);
    }

    fn read(&mut self, event: EventId) -> Option<Reading> {
        self.latest.get(&event).map(|s| {
            // A whole-window sample needs no rescaling (the window was
            // fully scheduled); perf's scaling matters for cumulative
            // reads, which `linux_scaled` models.
            Reading::point(s.value)
        })
    }
}

/// Single-client compat adapter over the session service: the original
/// `BayesPerfShim` surface, now backed by a dedicated
/// [`Monitor`] (background inference thread,
/// lock-free snapshot reads).
///
/// `read` synchronizes with the service before serving, so a recorded run
/// pushed through the adapter yields the same posteriors as the batch
/// [`Corrector`](crate::corrector::Corrector) — at the cost of a blocking
/// barrier per call. Multi-threaded monitors should open
/// [`Session`]s directly and poll without
/// syncing.
pub struct BayesPerfShim {
    monitor: Monitor,
    session: Session,
}

impl std::fmt::Debug for BayesPerfShim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BayesPerfShim")
            .field("chunks_run", &self.monitor.chunks_run())
            .finish()
    }
}

impl BayesPerfShim {
    /// Creates a shim with the given corrector configuration and ring
    /// capacity (spawns the monitor's inference thread).
    ///
    /// # Panics
    ///
    /// Panics if the OS refuses the inference thread; use
    /// [`BayesPerfShim::try_new`] to handle that as a typed error.
    pub fn new(catalog: &Catalog, config: CorrectorConfig, ring_capacity: usize) -> Self {
        Self::try_new(catalog, config, ring_capacity).expect("spawn inference service thread")
    }

    /// Fallible [`BayesPerfShim::new`]: surfaces a thread-spawn failure
    /// as [`ShimError::SpawnFailed`] instead of panicking.
    pub fn try_new(
        catalog: &Catalog,
        config: CorrectorConfig,
        ring_capacity: usize,
    ) -> Result<Self, ShimError> {
        let monitor = Monitor::new(catalog, config, ring_capacity)?;
        let session = monitor.session().open()?;
        Ok(BayesPerfShim { monitor, session })
    }

    /// The underlying monitor service (to open further read sessions,
    /// flush, or inspect stats). Sample pushes must stay window-ordered —
    /// see [`Monitor::push_sample`].
    pub fn monitor(&self) -> &Monitor {
        &self.monitor
    }

    /// A read session on the monitor (cloneable, sendable).
    pub fn session(&self) -> &Session {
        &self.session
    }

    /// Number of inference chunks executed so far (a cheap counter read;
    /// call [`BayesPerfShim::process`] first for an up-to-the-push value).
    pub fn chunks_run(&self) -> usize {
        self.monitor.chunks_run() as usize
    }

    /// Samples dropped at the ring buffer (backpressure).
    pub fn dropped(&self) -> u64 {
        self.monitor.dropped()
    }

    /// Samples dropped for arriving after their window completed.
    pub fn late_samples(&self) -> u64 {
        self.monitor.late_samples()
    }

    /// Blocks until everything pushed so far has been ingested and every
    /// complete chunk corrected (kept for compatibility with the old
    /// inline-inference `process`; the service normally runs by itself).
    pub fn process(&mut self) {
        let _ = self.monitor.sync();
    }

    /// Corrects the stream's partial final chunk (windows that never
    /// filled a complete chunk) and publishes the result. Also runs
    /// automatically when the shim is dropped.
    pub fn flush(&mut self) {
        let _ = self.monitor.flush();
    }
}

impl HpcReader for BayesPerfShim {
    fn push_sample(&mut self, sample: Sample) {
        // Overflow is counted by the service and surfaced via `dropped()`;
        // the trait's enqueue path is fire-and-forget like the kernel's.
        let _ = self.monitor.push_sample(sample);
    }

    fn read(&mut self, event: EventId) -> Option<Reading> {
        self.monitor.sync().ok()?;
        self.session.read(event).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bayesperf_events::{Arch, Semantic};
    use bayesperf_simcpu::{pack_round_robin, NoiseModel, Pmu, PmuConfig};
    use bayesperf_workloads::kmeans;

    fn recorded_run(cat: &Catalog) -> bayesperf_simcpu::MultiplexRun {
        let mut truth = kmeans().instantiate(cat, 0);
        let pmu = Pmu::new(
            cat,
            PmuConfig {
                noise: NoiseModel::default(),
                seed: 3,
                ..PmuConfig::for_catalog(cat)
            },
        );
        let events = vec![
            cat.require(Semantic::L1dMisses),
            cat.require(Semantic::IcacheMisses),
            cat.require(Semantic::LlcHits),
            cat.require(Semantic::LlcMisses),
        ];
        let schedule = pack_round_robin(cat, &events).unwrap();
        pmu.run_multiplexed(&mut truth, &schedule, 10)
    }

    #[test]
    fn linux_reader_returns_latest_point_value() {
        let cat = Catalog::new(Arch::X86SkyLake);
        let run = recorded_run(&cat);
        let mut reader = LinuxReader::new();
        let ev = cat.require(Semantic::L1dMisses);
        assert!(reader.read(ev).is_none());
        for w in &run.windows {
            for s in &w.samples {
                reader.push_sample(*s);
            }
        }
        let r = reader.read(ev).unwrap();
        assert!(r.value > 0.0);
        assert_eq!(r.std_dev, 0.0);
    }

    #[test]
    fn shim_reads_posteriors_after_a_chunk() {
        let cat = Catalog::new(Arch::X86SkyLake);
        let run = recorded_run(&cat);
        let cfg = CorrectorConfig::for_run(&run);
        let mut shim = BayesPerfShim::new(&cat, cfg, 4096);
        let ev = cat.require(Semantic::L1dMisses);
        assert!(shim.read(ev).is_none(), "no chunk complete yet");

        for w in &run.windows {
            for s in &w.samples {
                shim.push_sample(*s);
            }
        }
        let r = shim.read(ev).expect("posterior after a chunk");
        assert!(r.value > 0.0);
        assert!(r.std_dev > 0.0, "BayesPerf quantifies uncertainty");
        assert!(r.interval95.0 < r.value && r.value < r.interval95.1);
        assert!(shim.chunks_run() >= 1, "10 windows -> at least one chunk");
    }

    #[test]
    fn shim_reports_uncertainty_for_unmeasured_events() {
        let cat = Catalog::new(Arch::X86SkyLake);
        let run = recorded_run(&cat);
        let cfg = CorrectorConfig::for_run(&run);
        let mut shim = BayesPerfShim::new(&cat, cfg, 4096);
        for w in &run.windows {
            for s in &w.samples {
                shim.push_sample(*s);
            }
        }
        // LlcReferences is never scheduled but is invariant-linked.
        let linked = shim.read(cat.require(Semantic::LlcReferences)).unwrap();
        // DtlbMisses is unlinked to any measured event.
        let unlinked = shim.read(cat.require(Semantic::DtlbMisses)).unwrap();
        let rel = |r: &Reading| r.std_dev / r.value.abs().max(1.0);
        assert!(
            rel(&unlinked) > rel(&linked),
            "unlinked {} should be more uncertain than linked {}",
            rel(&unlinked),
            rel(&linked)
        );
    }

    #[test]
    fn ring_backpressure_drops_are_counted() {
        let cat = Catalog::new(Arch::X86SkyLake);
        let run = recorded_run(&cat);
        let cfg = CorrectorConfig::for_run(&run);
        let shim = BayesPerfShim::new(&cat, cfg, 2);
        // Pause the service so the tiny ring deterministically overflows.
        shim.monitor().pause().expect("pause");
        for w in run.windows.iter().take(2) {
            for s in &w.samples {
                let _ = shim.monitor().push_sample(*s);
            }
        }
        assert!(shim.dropped() > 0);
        shim.monitor().resume().expect("resume");
    }

    #[test]
    fn flush_serves_tail_windows_through_the_compat_adapter() {
        let cat = Catalog::new(Arch::X86SkyLake);
        let run = recorded_run(&cat);
        let cfg = CorrectorConfig::for_run(&run);
        let k = cfg.model.slices;
        let mut shim = BayesPerfShim::new(&cat, cfg, 4096);
        for w in &run.windows {
            for s in &w.samples {
                shim.push_sample(*s);
            }
        }
        let before = shim.chunks_run();
        shim.flush();
        assert!(
            shim.monitor().windows_published() as usize == run.windows.len(),
            "flush corrected the {} tail windows",
            run.windows.len() % k
        );
        assert!(shim.chunks_run() > before, "tail ran as an extra chunk");
    }
}
