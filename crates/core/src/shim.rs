//! The BayesPerf shim: a perf-compatible userspace reader API.
//!
//! §5 of the paper: monitoring applications talk to a userspace "shim"
//! whose API is identical to the Linux perf subsystem; the kernel enqueues
//! samples into a shared ring buffer; inference runs asynchronously (on the
//! accelerator in hardware, in the background here) and the monitoring
//! application's *reads are served from already-computed posteriors in host
//! memory* — which is how the accelerator masks inference latency (Fig. 3).
//!
//! Two readers share the [`HpcReader`] trait so any monitoring tool can
//! switch transparently:
//!
//! * [`LinuxReader`] — models `read()` on a perf fd: latest sample, scaled
//!   by enabled/running time;
//! * [`BayesPerfShim`] — consumes the ring buffer, runs chunked EP, and
//!   serves full posteriors.

use crate::corrector::{Corrector, CorrectorConfig};
use bayesperf_events::{Catalog, EventId};
use bayesperf_inference::Gaussian;
use bayesperf_simcpu::{RingBuffer, Sample};
use parking_lot::Mutex;
use std::collections::HashMap;

/// The value returned by a reader: an estimate with quantified uncertainty.
///
/// For the Linux reader the uncertainty is zero (perf reports a point
/// value); for BayesPerf it is the posterior spread, and `interval95` the
/// 95% credible interval (the paper's §4.2 confidence level).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Reading {
    /// Point estimate of the event's per-window count (MLE / posterior mean).
    pub value: f64,
    /// Posterior standard deviation (0 for point estimators).
    pub std_dev: f64,
    /// 95% credible interval.
    pub interval95: (f64, f64),
}

impl Reading {
    fn point(value: f64) -> Self {
        Reading {
            value,
            std_dev: 0.0,
            interval95: (value, value),
        }
    }

    fn from_gaussian(g: &Gaussian) -> Self {
        Reading {
            value: g.mean,
            std_dev: g.std_dev(),
            interval95: g.interval(1.96),
        }
    }
}

/// A perf-like counter reader: samples in, per-event readings out.
pub trait HpcReader {
    /// Delivers one kernel sample (ring-buffer enqueue path).
    fn push_sample(&mut self, sample: Sample);

    /// Reads the current estimate for an event, if one is available yet.
    fn read(&mut self, event: EventId) -> Option<Reading>;
}

/// Linux perf semantics: the latest sample, time-scaled.
#[derive(Debug, Clone, Default)]
pub struct LinuxReader {
    latest: HashMap<EventId, Sample>,
}

impl LinuxReader {
    /// Creates an empty reader.
    pub fn new() -> Self {
        Self::default()
    }
}

impl HpcReader for LinuxReader {
    fn push_sample(&mut self, sample: Sample) {
        self.latest.insert(sample.event, sample);
    }

    fn read(&mut self, event: EventId) -> Option<Reading> {
        self.latest.get(&event).map(|s| {
            // A whole-window sample needs no rescaling (the window was
            // fully scheduled); perf's scaling matters for cumulative
            // reads, which `linux_scaled` models.
            Reading::point(s.value)
        })
    }
}

/// The BayesPerf shim: ring-buffered ingestion, chunked EP inference,
/// posterior cache.
pub struct BayesPerfShim<'a> {
    catalog: &'a Catalog,
    corrector: Corrector<'a>,
    ring: Mutex<RingBuffer<Sample>>,
    /// Windows being assembled from ring samples, keyed by window index.
    assembling: HashMap<u32, Vec<Sample>>,
    /// Complete windows awaiting a full chunk.
    pending: Vec<(u32, Vec<Sample>)>,
    /// Highest window index seen (windows below it are complete).
    frontier: Option<u32>,
    /// Latest posterior per event (count units).
    cache: HashMap<EventId, Gaussian>,
    /// Normalized posterior of the last inferred slice (chunk chaining).
    chunks_run: usize,
}

impl std::fmt::Debug for BayesPerfShim<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BayesPerfShim")
            .field("pending_windows", &self.pending.len())
            .field("chunks_run", &self.chunks_run)
            .finish()
    }
}

impl<'a> BayesPerfShim<'a> {
    /// Creates a shim with the given corrector configuration and ring
    /// capacity.
    pub fn new(catalog: &'a Catalog, config: CorrectorConfig, ring_capacity: usize) -> Self {
        BayesPerfShim {
            catalog,
            corrector: Corrector::new(catalog, config),
            ring: Mutex::new(RingBuffer::new(ring_capacity)),
            assembling: HashMap::new(),
            pending: Vec::new(),
            frontier: None,
            cache: HashMap::new(),
            chunks_run: 0,
        }
    }

    /// Number of inference chunks executed so far.
    pub fn chunks_run(&self) -> usize {
        self.chunks_run
    }

    /// Samples dropped at the ring buffer (backpressure).
    pub fn dropped(&self) -> u64 {
        self.ring.lock().dropped()
    }

    /// Drains the ring buffer, assembles windows, and runs inference when a
    /// full chunk of windows is available. Called from `read`, but exposed
    /// so background processing (the accelerator model) can drive it too.
    pub fn process(&mut self) {
        let drained: Vec<Sample> = self.ring.lock().drain();
        for s in drained {
            // A sample for window w means all windows < w are complete.
            if self.frontier.is_none_or(|f| s.window > f) {
                let newly_complete: Vec<u32> = self
                    .assembling
                    .keys()
                    .copied()
                    .filter(|&w| w < s.window)
                    .collect();
                for w in newly_complete {
                    if let Some(samples) = self.assembling.remove(&w) {
                        self.pending.push((w, samples));
                    }
                }
                self.frontier = Some(s.window);
            }
            self.assembling.entry(s.window).or_default().push(s);
        }
        self.pending.sort_by_key(|(w, _)| *w);

        let k = self.corrector.config().model.slices.max(1);
        while self.pending.len() >= k {
            let chunk: Vec<Vec<Sample>> = self
                .pending
                .drain(..k)
                .map(|(_, samples)| samples)
                .collect();
            let refs: Vec<&[Sample]> = chunk.iter().map(Vec::as_slice).collect();
            // Streaming correction: chains and warm-starts across chunks,
            // so steady-state shim inference pays the incremental (1–2
            // sweep, floor-budget) cost instead of a cold EP run.
            self.corrector.push_chunk(&refs);
            for e in self.catalog.iter() {
                self.cache
                    .insert(e.id, self.corrector.posterior(k - 1, e.id));
            }
            self.chunks_run += 1;
        }
    }
}

impl HpcReader for BayesPerfShim<'_> {
    fn push_sample(&mut self, sample: Sample) {
        self.ring.lock().push(sample);
    }

    fn read(&mut self, event: EventId) -> Option<Reading> {
        self.process();
        self.cache.get(&event).map(Reading::from_gaussian)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bayesperf_events::{Arch, Semantic};
    use bayesperf_simcpu::{pack_round_robin, NoiseModel, Pmu, PmuConfig};
    use bayesperf_workloads::kmeans;

    fn recorded_run(cat: &Catalog) -> bayesperf_simcpu::MultiplexRun {
        let mut truth = kmeans().instantiate(cat, 0);
        let pmu = Pmu::new(
            cat,
            PmuConfig {
                noise: NoiseModel::default(),
                seed: 3,
                ..PmuConfig::for_catalog(cat)
            },
        );
        let events = vec![
            cat.require(Semantic::L1dMisses),
            cat.require(Semantic::IcacheMisses),
            cat.require(Semantic::LlcHits),
            cat.require(Semantic::LlcMisses),
        ];
        let schedule = pack_round_robin(cat, &events).unwrap();
        pmu.run_multiplexed(&mut truth, &schedule, 10)
    }

    #[test]
    fn linux_reader_returns_latest_point_value() {
        let cat = Catalog::new(Arch::X86SkyLake);
        let run = recorded_run(&cat);
        let mut reader = LinuxReader::new();
        let ev = cat.require(Semantic::L1dMisses);
        assert!(reader.read(ev).is_none());
        for w in &run.windows {
            for s in &w.samples {
                reader.push_sample(*s);
            }
        }
        let r = reader.read(ev).unwrap();
        assert!(r.value > 0.0);
        assert_eq!(r.std_dev, 0.0);
    }

    #[test]
    fn shim_reads_posteriors_after_a_chunk() {
        let cat = Catalog::new(Arch::X86SkyLake);
        let run = recorded_run(&cat);
        let cfg = CorrectorConfig::for_run(&run);
        let mut shim = BayesPerfShim::new(&cat, cfg, 4096);
        let ev = cat.require(Semantic::L1dMisses);
        assert!(shim.read(ev).is_none(), "no chunk complete yet");

        for w in &run.windows {
            for s in &w.samples {
                shim.push_sample(*s);
            }
        }
        let r = shim.read(ev).expect("posterior after two chunks");
        assert!(r.value > 0.0);
        assert!(r.std_dev > 0.0, "BayesPerf quantifies uncertainty");
        assert!(r.interval95.0 < r.value && r.value < r.interval95.1);
        assert!(shim.chunks_run() >= 1, "10 windows -> at least one chunk");
    }

    #[test]
    fn shim_reports_uncertainty_for_unmeasured_events() {
        let cat = Catalog::new(Arch::X86SkyLake);
        let run = recorded_run(&cat);
        let cfg = CorrectorConfig::for_run(&run);
        let mut shim = BayesPerfShim::new(&cat, cfg, 4096);
        for w in &run.windows {
            for s in &w.samples {
                shim.push_sample(*s);
            }
        }
        // LlcReferences is never scheduled but is invariant-linked.
        let linked = shim.read(cat.require(Semantic::LlcReferences)).unwrap();
        // DtlbMisses is unlinked to any measured event.
        let unlinked = shim.read(cat.require(Semantic::DtlbMisses)).unwrap();
        let rel = |r: &Reading| r.std_dev / r.value.abs().max(1.0);
        assert!(
            rel(&unlinked) > rel(&linked),
            "unlinked {} should be more uncertain than linked {}",
            rel(&unlinked),
            rel(&linked)
        );
    }

    #[test]
    fn ring_backpressure_drops_are_counted() {
        let cat = Catalog::new(Arch::X86SkyLake);
        let run = recorded_run(&cat);
        let cfg = CorrectorConfig::for_run(&run);
        let mut shim = BayesPerfShim::new(&cat, cfg, 2);
        for w in run.windows.iter().take(2) {
            for s in &w.samples {
                shim.push_sample(*s);
            }
        }
        assert!(shim.dropped() > 0);
    }
}
