//! Dynamic time warping and the paper's HPC-error metric.
//!
//! §2 defines HPC error as the magnitude of difference between
//! corresponding measurements of two runs — one polled, one sampled — where
//! correspondence is established by dynamic time warping (Berndt &
//! Clifford). §6.2 additionally normalizes by the similarity of two polling
//! runs, cancelling OS-nondeterminism that even polling cannot avoid.

/// Computes the DTW alignment path between `a` and `b` with a Sakoe-Chiba
/// band of half-width `band` (use `usize::MAX` for unconstrained DTW).
///
/// Local cost is `|a[i] - b[j]|`; returns the optimal warping path as
/// index pairs from `(0, 0)` to `(a.len()-1, b.len()-1)`.
///
/// # Panics
///
/// Panics if either series is empty.
pub fn dtw_align(a: &[f64], b: &[f64], band: usize) -> Vec<(usize, usize)> {
    assert!(!a.is_empty() && !b.is_empty(), "series must be non-empty");
    let (n, m) = (a.len(), b.len());
    // Effective band must at least cover the diagonal offset.
    let band = band.max(n.abs_diff(m));
    let inf = f64::INFINITY;
    let mut cost = vec![inf; n * m];
    let mut from = vec![0u8; n * m]; // 0: start, 1: (i-1,j), 2: (i,j-1), 3: (i-1,j-1)
    let idx = |i: usize, j: usize| i * m + j;

    for i in 0..n {
        let lo = i.saturating_sub(band);
        let hi = i.saturating_add(band).saturating_add(1).min(m);
        for j in lo..hi {
            let d = (a[i] - b[j]).abs();
            if i == 0 && j == 0 {
                cost[idx(0, 0)] = d;
                continue;
            }
            let mut best = inf;
            let mut dir = 0u8;
            if i > 0 && cost[idx(i - 1, j)] < best {
                best = cost[idx(i - 1, j)];
                dir = 1;
            }
            if j > 0 && cost[idx(i, j - 1)] < best {
                best = cost[idx(i, j - 1)];
                dir = 2;
            }
            if i > 0 && j > 0 && cost[idx(i - 1, j - 1)] <= best {
                best = cost[idx(i - 1, j - 1)];
                dir = 3;
            }
            if best < inf {
                cost[idx(i, j)] = best + d;
                from[idx(i, j)] = dir;
            }
        }
    }

    // Backtrack.
    let mut path = Vec::with_capacity(n + m);
    let (mut i, mut j) = (n - 1, m - 1);
    loop {
        path.push((i, j));
        match from[idx(i, j)] {
            1 => i -= 1,
            2 => j -= 1,
            3 => {
                i -= 1;
                j -= 1;
            }
            _ => break,
        }
    }
    path.reverse();
    path
}

/// Mean relative error of `target` against `reference` along the DTW
/// alignment: `mean(|t - r| / max(|r|, floor))`, as a fraction (×100
/// for %). The denominator is floored at 5% of the reference-series mean
/// magnitude so near-zero windows of bursty counters do not dominate.
pub fn dtw_relative_error(target: &[f64], reference: &[f64], band: usize) -> f64 {
    let path = dtw_align(target, reference, band);
    let mean_ref = reference.iter().map(|r| r.abs()).sum::<f64>() / reference.len() as f64;
    let floor = (0.05 * mean_ref).max(1e-9);
    let mut acc = 0.0;
    for &(i, j) in &path {
        let r = reference[j];
        acc += (target[i] - r).abs() / r.abs().max(floor);
    }
    acc / path.len() as f64
}

/// The paper's normalized error: the DTW error of `target` vs `reference`,
/// minus the error between two independent polling runs of the same
/// workload (`reference2` vs `reference`), floored at zero.
///
/// This cancels run-to-run OS nondeterminism so the reported number
/// reflects only sampling/multiplexing error and whatever the corrector
/// failed to fix.
pub fn adjusted_error(target: &[f64], reference: &[f64], reference2: &[f64], band: usize) -> f64 {
    let raw = dtw_relative_error(target, reference, band);
    let floor = dtw_relative_error(reference2, reference, band);
    (raw - floor).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn identical_series_have_zero_error() {
        let a = vec![1.0, 2.0, 3.0, 2.0, 1.0];
        assert_eq!(dtw_relative_error(&a, &a, usize::MAX), 0.0);
        let path = dtw_align(&a, &a, usize::MAX);
        // Perfect alignment is the diagonal.
        assert_eq!(path, (0..5).map(|i| (i, i)).collect::<Vec<_>>());
    }

    #[test]
    fn time_shift_is_absorbed_by_warping() {
        // The same pulse shifted by one step: DTW aligns it nearly
        // perfectly, Euclidean matching would not.
        let a = vec![0.0, 0.0, 5.0, 0.0, 0.0, 0.0];
        let b = vec![0.0, 0.0, 0.0, 5.0, 0.0, 0.0];
        let dtw_err: f64 = {
            let path = dtw_align(&a, &b, usize::MAX);
            path.iter().map(|&(i, j)| (a[i] - b[j]).abs()).sum()
        };
        let euclid: f64 = a.iter().zip(&b).map(|(x, y)| (x - y).abs()).sum();
        assert_eq!(dtw_err, 0.0);
        assert_eq!(euclid, 10.0);
    }

    #[test]
    fn hand_computed_alignment() {
        let a = vec![1.0, 3.0, 4.0];
        let b = vec![1.0, 4.0];
        let path = dtw_align(&a, &b, usize::MAX);
        // Optimal: (0,0), (1,1), (2,1) with cost 0 + 1 + 0 = 1.
        assert_eq!(path, vec![(0, 0), (1, 1), (2, 1)]);
    }

    #[test]
    fn band_limits_warping() {
        let a = vec![0.0, 0.0, 0.0, 0.0, 5.0];
        let b = vec![5.0, 0.0, 0.0, 0.0, 0.0];
        let banded = dtw_relative_error(&a, &b, 1);
        let free = dtw_relative_error(&a, &b, usize::MAX);
        assert!(banded >= free);
    }

    #[test]
    fn adjusted_error_subtracts_nondeterminism_floor() {
        let reference = vec![10.0, 20.0, 30.0, 20.0, 10.0];
        let reference2 = vec![10.5, 19.0, 31.0, 21.0, 9.5]; // another polling run
        let target = vec![14.0, 26.0, 39.0, 26.0, 13.0]; // 30% high
        let adj = adjusted_error(&target, &reference, &reference2, usize::MAX);
        let raw = dtw_relative_error(&target, &reference, usize::MAX);
        assert!(adj < raw);
        assert!(adj > 0.0);
    }

    #[test]
    fn adjusted_error_floors_at_zero() {
        let r = vec![1.0, 2.0, 3.0];
        let r2 = vec![2.0, 3.0, 4.0]; // very noisy polling baseline
        let t = vec![1.0, 2.0, 3.0]; // perfect target
        assert_eq!(adjusted_error(&t, &r, &r2, usize::MAX), 0.0);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_series_rejected() {
        dtw_align(&[], &[1.0], usize::MAX);
    }

    proptest! {
        /// The DTW path is monotone, connected, and spans both series.
        #[test]
        fn path_is_a_valid_warping(
            a in proptest::collection::vec(-10.0f64..10.0, 1..20),
            b in proptest::collection::vec(-10.0f64..10.0, 1..20),
        ) {
            let path = dtw_align(&a, &b, usize::MAX);
            prop_assert_eq!(path[0], (0, 0));
            prop_assert_eq!(*path.last().unwrap(), (a.len() - 1, b.len() - 1));
            for w in path.windows(2) {
                let (i0, j0) = w[0];
                let (i1, j1) = w[1];
                prop_assert!(i1 == i0 || i1 == i0 + 1);
                prop_assert!(j1 == j0 || j1 == j0 + 1);
                prop_assert!(i1 + j1 > i0 + j0);
            }
        }

        /// Error against itself is always zero; error is non-negative.
        #[test]
        fn error_properties(
            a in proptest::collection::vec(0.1f64..10.0, 2..15),
            b in proptest::collection::vec(0.1f64..10.0, 2..15),
        ) {
            prop_assert_eq!(dtw_relative_error(&a, &a, usize::MAX), 0.0);
            prop_assert!(dtw_relative_error(&a, &b, usize::MAX) >= 0.0);
        }
    }
}
