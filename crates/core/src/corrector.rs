//! Batch correction of a recorded PMU run.
//!
//! Two execution strategies, selected by [`CorrectorConfig`]:
//!
//! * **chained** (the paper's default): chunks run sequentially, each
//!   chunk's slice-0 prior seeded from the previous chunk's final-slice
//!   posterior. Within a chunk the EP engine farm still parallelizes site
//!   updates when `threads > 1`.
//! * **independent**: prior chaining disabled, which removes the only
//!   cross-chunk data dependency — chunks then run concurrently on
//!   `std::thread::scope` workers, each chunk on its own deterministic
//!   seed. Results are assembled in chunk order, so output is a pure
//!   function of `(windows, config)` at any thread count.
//!
//! Both paths borrow sample windows as slices end-to-end (no per-window
//! clone on either the [`Corrector::correct_run`] or
//! [`Corrector::correct_windows`] path).

use crate::model::{build_chunk_model, ChunkPosterior, ModelConfig};
use bayesperf_events::{Catalog, EventId};
use bayesperf_inference::{derive_stream_seed, EpConfig, Gaussian};
use bayesperf_simcpu::{MultiplexRun, Sample};

/// Configuration of the [`Corrector`].
#[derive(Debug, Clone)]
pub struct CorrectorConfig {
    /// Model hyperparameters (chunk size, priors, factor widths).
    pub model: ModelConfig,
    /// EP settings.
    pub ep: EpConfig,
    /// RNG seed for the MCMC chains.
    pub seed: u64,
    /// Chain each chunk's slice-0 prior from the previous chunk's
    /// posterior (the paper's temporal coupling). Disabling it makes
    /// chunks independent, unlocking chunk-level parallelism.
    pub chain_chunks: bool,
    /// Worker threads: within-chunk EP engine farm workers in chained
    /// mode, concurrent chunks in independent mode. `1` means fully
    /// sequential.
    pub threads: usize,
}

impl CorrectorConfig {
    /// Default configuration for a recorded run: chained chunks,
    /// sequential execution.
    pub fn for_run(run: &MultiplexRun) -> Self {
        let model = ModelConfig::for_run(run);
        let ep = model.fast_ep();
        CorrectorConfig {
            model,
            ep,
            seed: 0,
            chain_chunks: true,
            threads: 1,
        }
    }

    /// Sets the worker-thread budget.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Disables prior chaining so chunks can be corrected concurrently.
    pub fn independent_chunks(mut self) -> Self {
        self.chain_chunks = false;
        self
    }
}

/// Posterior distributions for every catalog event across all windows of a
/// run — BayesPerf's output.
#[derive(Debug, Clone)]
pub struct PosteriorSeries {
    n_events: usize,
    data: Vec<Gaussian>,
    /// Fraction of chunks whose EP run converged within tolerance.
    pub convergence_rate: f64,
}

impl PosteriorSeries {
    /// Number of windows covered.
    pub fn windows(&self) -> usize {
        self.data.len() / self.n_events
    }

    /// The posterior of `event` at window `w`.
    ///
    /// # Panics
    ///
    /// Panics if `w` is out of range.
    pub fn posterior(&self, w: usize, event: EventId) -> Gaussian {
        assert!(w < self.windows(), "window {w} out of range");
        self.data[w * self.n_events + event.index()]
    }

    /// The maximum-likelihood (posterior-mean) series of an event — what
    /// §6.2 feeds to the DTW error metric.
    pub fn mle_series(&self, event: EventId) -> Vec<f64> {
        (0..self.windows())
            .map(|w| self.posterior(w, event).mean)
            .collect()
    }

    /// The posterior standard-deviation series of an event.
    pub fn sd_series(&self, event: EventId) -> Vec<f64> {
        (0..self.windows())
            .map(|w| self.posterior(w, event).std_dev())
            .collect()
    }
}

/// Runs BayesPerf inference over a recorded run, chunk by chunk.
#[derive(Debug, Clone)]
pub struct Corrector<'a> {
    catalog: &'a Catalog,
    config: CorrectorConfig,
}

impl<'a> Corrector<'a> {
    /// Creates a corrector.
    pub fn new(catalog: &'a Catalog, config: CorrectorConfig) -> Self {
        Corrector { catalog, config }
    }

    /// Corrects a recorded run into posterior series, borrowing the run's
    /// sample windows in place.
    pub fn correct_run(&self, run: &MultiplexRun) -> PosteriorSeries {
        let windows: Vec<&[Sample]> = run.windows.iter().map(|w| w.samples.as_slice()).collect();
        self.correct_slices(&windows)
    }

    /// Corrects a sequence of owned sample windows (the shim path).
    pub fn correct_windows(&self, windows: &[Vec<Sample>]) -> PosteriorSeries {
        let refs: Vec<&[Sample]> = windows.iter().map(Vec::as_slice).collect();
        self.correct_slices(&refs)
    }

    /// Corrects borrowed sample windows.
    pub fn correct_slices(&self, windows: &[&[Sample]]) -> PosteriorSeries {
        let k = self.config.model.slices.max(1);
        let chunks: Vec<&[&[Sample]]> = windows.chunks(k).collect();
        let posteriors = if self.config.chain_chunks {
            self.run_chained(&chunks)
        } else {
            self.run_independent(&chunks)
        };

        let ne = self.catalog.len();
        let mut data: Vec<Gaussian> = Vec::with_capacity(windows.len() * ne);
        let mut converged = 0usize;
        for post in &posteriors {
            if post.converged {
                converged += 1;
            }
            for t in 0..post.slices() {
                for e in self.catalog.iter() {
                    data.push(post.posterior(t, e.id));
                }
            }
        }
        PosteriorSeries {
            n_events: ne,
            data,
            convergence_rate: if posteriors.is_empty() {
                1.0
            } else {
                converged as f64 / posteriors.len() as f64
            },
        }
    }

    /// Sequential chunk loop with prior chaining. Every chunk runs on the
    /// deterministic engine farm with its own derived seed, so thread count
    /// is purely a throughput knob here too — `threads = 1` and
    /// `threads = 8` produce bit-identical series.
    fn run_chained(&self, chunks: &[&[&[Sample]]]) -> Vec<ChunkPosterior> {
        let mut prior: Option<Vec<Gaussian>> = None;
        let mut out = Vec::with_capacity(chunks.len());
        for (c, chunk) in chunks.iter().enumerate() {
            let model = build_chunk_model(
                self.catalog,
                chunk,
                &self.config.model,
                prior.as_deref(),
                self.config.ep,
            );
            let post =
                model.run_parallel(derive_stream_seed(self.config.seed, c), self.config.threads);
            prior = Some(post.last_slice_normalized());
            out.push(post);
        }
        out
    }

    /// Concurrent chunk execution (requires `chain_chunks == false`):
    /// chunks are data-independent, so workers process disjoint contiguous
    /// ranges and results are reassembled in chunk order. Per-chunk seeds
    /// make the output identical to the sequential un-chained run.
    fn run_independent(&self, chunks: &[&[&[Sample]]]) -> Vec<ChunkPosterior> {
        let workers = self.config.threads.clamp(1, chunks.len().max(1));
        let per = chunks.len().div_ceil(workers).max(1);
        // Threads left over when there are fewer chunks than workers go to
        // each chunk's inner EP farm (bit-identical at any count, so this
        // only affects speed).
        let inner_threads = (self.config.threads / workers).max(1);
        let mut results: Vec<Option<ChunkPosterior>> = vec![None; chunks.len()];
        std::thread::scope(|scope| {
            for (w, (chunk_range, out_range)) in
                chunks.chunks(per).zip(results.chunks_mut(per)).enumerate()
            {
                let base = w * per;
                scope.spawn(move || {
                    for (i, (chunk, slot)) in
                        chunk_range.iter().zip(out_range.iter_mut()).enumerate()
                    {
                        let model = build_chunk_model(
                            self.catalog,
                            chunk,
                            &self.config.model,
                            None,
                            self.config.ep,
                        );
                        *slot = Some(model.run_parallel(
                            derive_stream_seed(self.config.seed, base + i),
                            inner_threads,
                        ));
                    }
                });
            }
        });
        results
            .into_iter()
            .map(|p| p.expect("every chunk processed"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bayesperf_events::{Arch, Semantic};
    use bayesperf_simcpu::{pack_round_robin, NoiseModel, Pmu, PmuConfig};
    use bayesperf_workloads::kmeans;

    #[test]
    fn corrector_beats_linux_scaling_on_phased_workload() {
        let cat = Catalog::new(Arch::X86SkyLake);
        let prog = kmeans();
        let mut truth = prog.instantiate(&cat, 0);
        let pmu = Pmu::new(
            &cat,
            PmuConfig {
                noise: NoiseModel::default(),
                seed: 11,
                ..PmuConfig::for_catalog(&cat)
            },
        );
        // 12 core events -> 3 configurations rotating.
        let events: Vec<EventId> = [
            Semantic::L1dMisses,
            Semantic::IcacheMisses,
            Semantic::L2References,
            Semantic::L2Misses,
            Semantic::LlcHits,
            Semantic::LlcMisses,
            Semantic::BrInst,
            Semantic::BrMisp,
            Semantic::UopsIssued,
            Semantic::UopsRetired,
            Semantic::UopsBadSpec,
            Semantic::IdqUopsNotDelivered,
        ]
        .iter()
        .map(|&s| cat.require(s))
        .collect();
        let schedule = pack_round_robin(&cat, &events).unwrap();
        assert_eq!(schedule.len(), 3);
        let n_windows = 24;
        let run = pmu.run_multiplexed(&mut truth, &schedule, n_windows);

        let corrector = Corrector::new(&cat, CorrectorConfig::for_run(&run));
        let series = corrector.correct_run(&run);
        assert_eq!(series.windows(), n_windows);

        // Compare average relative error over all windows for a rotated
        // event: BayesPerf posterior mean vs Linux zero-order hold.
        let ev = cat.require(Semantic::L1dMisses);
        let truth_series = run.truth_series(ev);
        let bayes = series.mle_series(ev);

        // Linux estimate: deltas of the cumulative enabled/running-scaled
        // count, the value perf's read() reports in sampling mode. During
        // unscheduled windows the delta reflects the *run-average* rate —
        // the §2 smearing error.
        let mut linux = Vec::with_capacity(n_windows);
        let mut cum_raw = 0.0;
        let mut prev_scaled = 0.0;
        let mut running = 0u64;
        for w in &run.windows {
            if let Some(s) = w.sample_for(ev) {
                cum_raw += s.value;
                running = s.time_running;
            }
            let enabled = (w.index as u64 + 1) * run.quantum_ticks;
            let scaled = if running == 0 {
                0.0
            } else {
                cum_raw * enabled as f64 / running as f64
            };
            linux.push(scaled - prev_scaled);
            prev_scaled = scaled;
        }

        let err = |est: &[f64]| -> f64 {
            est.iter()
                .zip(&truth_series)
                .skip(3) // let estimators warm up
                .map(|(e, t)| (e - t).abs() / t.max(1.0))
                .sum::<f64>()
                / (n_windows - 3) as f64
        };
        let e_bayes = err(&bayes);
        let e_linux = err(&linux);
        assert!(
            e_bayes < e_linux,
            "BayesPerf {e_bayes:.3} should beat Linux hold {e_linux:.3}"
        );
    }

    #[test]
    fn posterior_series_shape_and_access() {
        let cat = Catalog::new(Arch::X86SkyLake);
        let prog = kmeans();
        let mut truth = prog.instantiate(&cat, 0);
        let pmu = Pmu::new(&cat, PmuConfig::for_catalog(&cat));
        let events = vec![cat.require(Semantic::L1dMisses)];
        let schedule = pack_round_robin(&cat, &events).unwrap();
        let run = pmu.run_multiplexed(&mut truth, &schedule, 6);
        let corrector = Corrector::new(&cat, CorrectorConfig::for_run(&run));
        let series = corrector.correct_run(&run);
        assert_eq!(series.windows(), 6);
        let ev = cat.require(Semantic::Cycles);
        assert_eq!(series.mle_series(ev).len(), 6);
        assert_eq!(series.sd_series(ev).len(), 6);
        assert!(series.convergence_rate >= 0.0 && series.convergence_rate <= 1.0);
    }

    #[test]
    fn independent_chunks_identical_at_any_thread_count() {
        let cat = Catalog::new(Arch::X86SkyLake);
        let prog = kmeans();
        let mut truth = prog.instantiate(&cat, 0);
        let pmu = Pmu::new(&cat, PmuConfig::for_catalog(&cat));
        let events = vec![
            cat.require(Semantic::L1dMisses),
            cat.require(Semantic::LlcMisses),
        ];
        let schedule = pack_round_robin(&cat, &events).unwrap();
        let run = pmu.run_multiplexed(&mut truth, &schedule, 12);

        let series_for = |threads: usize| {
            let cfg = CorrectorConfig::for_run(&run)
                .independent_chunks()
                .with_threads(threads);
            Corrector::new(&cat, cfg).correct_run(&run)
        };
        let a = series_for(1);
        let b = series_for(4);
        assert_eq!(a.windows(), b.windows());
        let ev = cat.require(Semantic::L1dMisses);
        assert_eq!(a.mle_series(ev), b.mle_series(ev), "bit-identical MLE");
        assert_eq!(a.sd_series(ev), b.sd_series(ev), "bit-identical SD");
        assert_eq!(a.convergence_rate, b.convergence_rate);
    }

    #[test]
    fn chained_mode_identical_at_any_thread_count() {
        // Chained chunks serialize on the prior, but each chunk's EP farm
        // is bit-identical at any thread count — so the whole series is.
        let cat = Catalog::new(Arch::X86SkyLake);
        let prog = kmeans();
        let mut truth = prog.instantiate(&cat, 0);
        let pmu = Pmu::new(&cat, PmuConfig::for_catalog(&cat));
        let events = vec![cat.require(Semantic::L1dMisses)];
        let schedule = pack_round_robin(&cat, &events).unwrap();
        let run = pmu.run_multiplexed(&mut truth, &schedule, 8);
        let series_for = |threads: usize| {
            let cfg = CorrectorConfig::for_run(&run).with_threads(threads);
            Corrector::new(&cat, cfg).correct_run(&run)
        };
        let a = series_for(1);
        let b = series_for(2);
        assert_eq!(a.windows(), 8);
        let ev = cat.require(Semantic::L1dMisses);
        assert_eq!(a.mle_series(ev), b.mle_series(ev), "bit-identical MLE");
        assert_eq!(a.sd_series(ev), b.sd_series(ev), "bit-identical SD");
    }
}
