//! Batch correction of a recorded PMU run.
//!
//! Two execution strategies, selected by [`CorrectorConfig`]:
//!
//! * **chained** (the paper's default): chunks run sequentially, each
//!   chunk's slice-0 prior seeded from the previous chunk's final-slice
//!   posterior. With [`CorrectorConfig::warm_start`] (the default) the
//!   corrector keeps **one** [`ChunkEngine`] alive across the whole run:
//!   the factor-graph topology, sweep schedule, EP site messages and all
//!   MCMC/analytic scratch survive from window to window, and each chunk
//!   only swaps observations and warm-starts — the steady-state loop
//!   (chunk 2+) performs **zero heap allocations** at `threads = 1` and
//!   converges in 1–2 sweeps with shrunken MCMC budgets instead of the
//!   full cold budget. Disabling `warm_start` restores the paper-faithful
//!   cold rebuild per chunk (the benchmark baseline).
//! * **independent**: prior chaining disabled, which removes the only
//!   cross-chunk data dependency — chunks then run concurrently on
//!   `std::thread::scope` workers, each chunk on its own deterministic
//!   seed. Each worker still reuses one engine *structurally*
//!   ([`ChunkEngine::load_cold`] keeps the schedule and buffers but resets
//!   all statistical state), so results are a pure function of
//!   `(windows, config)` at any thread count.
//!
//! Both paths borrow sample windows as slices end-to-end (no per-window
//! clone on either the [`Corrector::correct_run`] or
//! [`Corrector::correct_windows`] path).

use crate::error::ShimError;
use crate::model::{build_chunk_model, ChunkEngine, ChunkPosterior, ModelConfig};
use bayesperf_events::{Catalog, EventId};
use bayesperf_inference::{derive_stream_seed, EpConfig, EpRunStats, Gaussian};
use bayesperf_simcpu::{MultiplexRun, Sample};

/// Configuration of the [`Corrector`].
#[derive(Debug, Clone)]
pub struct CorrectorConfig {
    /// Model hyperparameters (chunk size, priors, factor widths).
    pub model: ModelConfig,
    /// EP settings.
    pub ep: EpConfig,
    /// RNG seed for the MCMC chains.
    pub seed: u64,
    /// Chain each chunk's slice-0 prior from the previous chunk's
    /// posterior (the paper's temporal coupling). Disabling it makes
    /// chunks independent, unlocking chunk-level parallelism.
    pub chain_chunks: bool,
    /// Worker threads: within-chunk EP engine farm workers in chained
    /// mode, concurrent chunks in independent mode. `1` means fully
    /// sequential.
    pub threads: usize,
    /// Carry the EP approximation across chained chunks (incremental
    /// correction). Ignored in independent mode, where statistical state
    /// never crosses chunks by construction.
    pub warm_start: bool,
    /// Selective change-point reset threshold: a window (slice) at least
    /// this fraction of whose observations moved by more than `jump_ratio`
    /// since each event was last seen has its EP sites reset to vacuous
    /// before the warm run ([`ChunkEngine::load_warm_adaptive`]) — a data
    /// phase change re-solves the affected slices from scratch instead of
    /// dragging a confidently-wrong approximation along, while unaffected
    /// slices keep the cheap warm path. Set above 1.0 to never reset.
    pub jump_frac: f64,
    /// Multiplicative threshold an observation must move by (vs the same
    /// event's previous observation) to count as jumped in the
    /// change-point detector.
    pub jump_ratio: f64,
}

impl CorrectorConfig {
    /// Default configuration for a recorded run: chained chunks,
    /// sequential execution, warm-started engine reuse.
    pub fn for_run(run: &MultiplexRun) -> Self {
        let model = ModelConfig::for_run(run);
        let ep = model.fast_ep();
        CorrectorConfig {
            model,
            ep,
            seed: 0,
            chain_chunks: true,
            threads: 1,
            warm_start: true,
            jump_frac: 0.45,
            jump_ratio: 2.0,
        }
    }

    /// Sets the worker-thread budget.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Disables prior chaining so chunks can be corrected concurrently.
    pub fn independent_chunks(mut self) -> Self {
        self.chain_chunks = false;
        self
    }

    /// Disables warm-start: every chained chunk rebuilds and runs cold
    /// EP from scratch (the pre-incremental baseline the warm-vs-cold
    /// benchmark pairs against).
    pub fn cold_start(mut self) -> Self {
        self.warm_start = false;
        self
    }
}

/// Aggregate work counters of one correction run — the observability
/// behind `BENCH_inference.json` and the warm-vs-cold comparison.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CorrectionStats {
    /// Chunks processed.
    pub chunks: u64,
    /// Chunks whose EP run met its tolerance.
    pub converged_chunks: u64,
    /// Chunks that ran warm-started.
    pub warm_chunks: u64,
    /// EP sites selectively reset because the change-point detector
    /// flagged their slice's data as jumped.
    pub jump_site_resets: u64,
    /// EP sweeps executed across all chunks.
    pub sweeps: u64,
    /// Site updates that estimated moments by MCMC.
    pub mcmc_site_updates: u64,
    /// Site updates that computed moments analytically.
    pub analytic_site_updates: u64,
    /// Total MCMC samples collected.
    pub mcmc_samples: u64,
}

impl CorrectionStats {
    /// Folds one EP run's counters into the aggregate (`warm` marks the
    /// chunk as warm-started). Public so external harnesses (e.g. the
    /// `bench_json` baseline emitter) accumulate the same fields the
    /// corrector does instead of re-implementing the bookkeeping.
    pub fn absorb_run(&mut self, s: &EpRunStats, warm: bool) {
        self.chunks += 1;
        if s.converged {
            self.converged_chunks += 1;
        }
        if warm {
            self.warm_chunks += 1;
        }
        self.sweeps += s.sweeps_run as u64;
        self.mcmc_site_updates += s.mcmc_site_updates;
        self.analytic_site_updates += s.analytic_site_updates;
        self.mcmc_samples += s.mcmc_samples;
    }

    /// Mean MCMC samples per MCMC-path site update (0 when none ran).
    pub fn samples_per_site_update(&self) -> f64 {
        if self.mcmc_site_updates == 0 {
            0.0
        } else {
            self.mcmc_samples as f64 / self.mcmc_site_updates as f64
        }
    }

    /// Mean EP sweeps per chunk (0 when no chunks ran).
    pub fn sweeps_per_chunk(&self) -> f64 {
        if self.chunks == 0 {
            0.0
        } else {
            self.sweeps as f64 / self.chunks as f64
        }
    }
}

/// Posterior distributions for every catalog event across all windows of a
/// run — BayesPerf's output.
#[derive(Debug, Clone)]
pub struct PosteriorSeries {
    n_events: usize,
    data: Vec<Gaussian>,
    /// Fraction of chunks whose EP run converged within tolerance.
    pub convergence_rate: f64,
    /// Work counters of the correction run.
    pub stats: CorrectionStats,
}

impl PosteriorSeries {
    /// Number of windows covered.
    pub fn windows(&self) -> usize {
        self.data.len() / self.n_events
    }

    /// The posterior of `event` at window `w`.
    ///
    /// # Panics
    ///
    /// Panics if `w` is out of range; [`PosteriorSeries::try_posterior`] is
    /// the fallible variant.
    pub fn posterior(&self, w: usize, event: EventId) -> Gaussian {
        assert!(w < self.windows(), "window {w} out of range");
        self.data[w * self.n_events + event.index()]
    }

    /// The posterior of `event` at window `w`, or
    /// [`ShimError::SliceOutOfRange`] when `w` is outside the series.
    pub fn try_posterior(&self, w: usize, event: EventId) -> Result<Gaussian, ShimError> {
        if w >= self.windows() {
            return Err(ShimError::SliceOutOfRange {
                slice: w,
                slices: self.windows(),
            });
        }
        Ok(self.data[w * self.n_events + event.index()])
    }

    /// The maximum-likelihood (posterior-mean) series of an event — what
    /// §6.2 feeds to the DTW error metric.
    pub fn mle_series(&self, event: EventId) -> Vec<f64> {
        (0..self.windows())
            .map(|w| self.posterior(w, event).mean)
            .collect()
    }

    /// The posterior standard-deviation series of an event.
    pub fn sd_series(&self, event: EventId) -> Vec<f64> {
        (0..self.windows())
            .map(|w| self.posterior(w, event).std_dev())
            .collect()
    }
}

/// Runs BayesPerf inference over a recorded run, chunk by chunk.
///
/// The corrector owns one persistent [`ChunkEngine`] — built in
/// [`Corrector::new`] because the factor-graph topology is a pure function
/// of the catalog — and reuses it across every
/// [`Corrector::correct_run`]/[`Corrector::correct_windows`] call in
/// chained mode. Correction therefore takes `&mut self`.
#[derive(Debug)]
pub struct Corrector<'a> {
    catalog: &'a Catalog,
    config: CorrectorConfig,
    /// The chained-mode engine (slice count = `config.model.slices`).
    engine: ChunkEngine,
    /// Chunks pushed through the streaming API since the last reset.
    stream_count: u64,
    /// Sites reset by the last push's change-point detector.
    jump_resets: u64,
    /// Whether a [`Corrector::resume_from`] prior is pending: the next
    /// push solves cold (the poisoned chunk's messages are gone) but
    /// composes the recovered chain prior — a *statistically* warm
    /// restart.
    resume_pending: bool,
}

impl<'a> Corrector<'a> {
    /// Creates a corrector; builds the per-catalog inference engine once.
    pub fn new(catalog: &'a Catalog, config: CorrectorConfig) -> Self {
        let engine = ChunkEngine::new(catalog, &config.model, config.ep);
        Corrector {
            catalog,
            config,
            engine,
            stream_count: 0,
            jump_resets: 0,
            resume_pending: false,
        }
    }

    /// Seeds a freshly built (or reset) corrector from **count-unit**
    /// posterior marginals — the last published snapshot a supervisor
    /// recovered after a crash. The next [`Corrector::push_chunk`] solves
    /// cold (the crashed engine's in-flight messages are discarded — only
    /// the poisoned chunk is lost) but chains off the recovered posterior,
    /// so steady-state accuracy survives the restart. Non-finite entries
    /// of `posteriors` fall back to the base prior; in unchained mode this
    /// is a no-op (chunks are independent anyway). Returns how many events
    /// were seeded.
    pub fn resume_from(&mut self, posteriors: &[Gaussian]) -> Result<usize, ShimError> {
        if posteriors.len() != self.engine.n_events() {
            return Err(ShimError::CatalogMismatch {
                expected: self.engine.n_events(),
                got: posteriors.len(),
            });
        }
        if !self.config.chain_chunks {
            return Ok(0);
        }
        let seeded = self.engine.set_chain_prior_counts(posteriors);
        self.resume_pending = true;
        Ok(seeded)
    }

    /// The corrector's configuration.
    pub fn config(&self) -> &CorrectorConfig {
        &self.config
    }

    /// Retunes the worker-thread budget mid-stream. Purely a throughput
    /// knob: the engine farm is bit-identical at any thread count, so this
    /// never changes results.
    pub fn set_threads(&mut self, threads: usize) {
        self.config.threads = threads.max(1);
    }

    /// Streaming correction: corrects exactly one chunk of
    /// `config.model.slices` windows, chaining the prior and warm-starting
    /// the engine from the previous [`Corrector::push_chunk`] call (the
    /// first chunk after a reset runs cold). This is the shim's online
    /// path; after warm-up (chunk 2+) a push performs **zero heap
    /// allocations** at `threads = 1`. Read results back through
    /// [`Corrector::posterior`].
    ///
    /// With `chain_chunks` disabled each push is independent (cold, base
    /// prior), matching the batch independent mode chunk for chunk.
    ///
    /// # Panics
    ///
    /// Panics if `windows.len() != config.model.slices`;
    /// [`Corrector::try_push_chunk`] is the fallible variant.
    pub fn push_chunk(&mut self, windows: &[&[Sample]]) -> EpRunStats {
        match self.try_push_chunk(windows) {
            Ok(stats) => stats,
            Err(e) => panic!("push_chunk: {e}"),
        }
    }

    /// [`Corrector::push_chunk`] that reports a wrong-sized chunk as
    /// [`ShimError::WindowMismatch`] (or [`ShimError::EmptyChunk`]) instead
    /// of panicking — the background inference service's ingestion path.
    pub fn try_push_chunk(&mut self, windows: &[&[Sample]]) -> Result<EpRunStats, ShimError> {
        let k = self.config.model.slices.max(1);
        if windows.is_empty() {
            return Err(ShimError::EmptyChunk);
        }
        if windows.len() != k {
            return Err(ShimError::WindowMismatch {
                expected: k,
                got: windows.len(),
            });
        }
        let c = self.stream_count;
        let chained = self.config.chain_chunks;
        // A pending resume prior survives the first-chunk clear: the push
        // runs cold (no stale messages) but composes the recovered chain
        // prior, making the restart warm in the statistical sense.
        if (c == 0 && !self.resume_pending) || !chained {
            self.engine.clear_chain_prior();
        }
        self.resume_pending = false;
        if c > 0 && chained && self.config.warm_start {
            // Warm load with selective change-point resets: slices whose
            // data jumped re-solve from vacuous messages, the rest stay
            // warm.
            self.jump_resets = self.engine.load_warm_adaptive(
                windows,
                self.config.jump_ratio,
                self.config.jump_frac,
            ) as u64;
        } else {
            self.jump_resets = 0;
            self.engine.load_cold(windows);
        }
        let stats = self.engine.run_farm(
            derive_stream_seed(self.config.seed, c as usize),
            self.config.threads,
        );
        if chained {
            self.engine.capture_chain_prior();
        }
        self.stream_count += 1;
        Ok(stats)
    }

    /// Corrects a **partial** final chunk (fewer than `config.model.slices`
    /// windows) — the stream's ragged tail that [`Corrector::push_chunk`]
    /// cannot accept. Runs a one-shot cold model chained off the last full
    /// chunk's posterior (the batch [`Corrector::correct_slices`] warm
    /// path calls this too, so a streamed run followed by `push_tail`
    /// reproduces the batch series bit for bit). The persistent engine's
    /// chain state and stream count are untouched: the tail is terminal,
    /// and a later [`Corrector::push_chunk`] continues chained from the
    /// last *full* chunk — the tail therefore derives its seed from a
    /// disjoint domain (`seed ^ TAIL_SEED_TAG`) so it never shares an RNG
    /// stream with that next chunk.
    pub fn push_tail(
        &mut self,
        windows: &[&[Sample]],
    ) -> Result<(ChunkPosterior, EpRunStats), ShimError> {
        let k = self.config.model.slices.max(1);
        if windows.is_empty() {
            return Err(ShimError::EmptyChunk);
        }
        if windows.len() >= k {
            // The tail must be strictly shorter than a full chunk; a
            // chunk of `k` (or more) windows belongs on `push_chunk`.
            return Err(ShimError::WindowMismatch {
                expected: k,
                got: windows.len(),
            });
        }
        let chained = self.config.chain_chunks && (self.stream_count > 0 || self.resume_pending);
        let prior = chained.then(|| self.engine.chain_prior().to_vec());
        let model = build_chunk_model(
            self.catalog,
            windows,
            &self.config.model,
            prior.as_deref(),
            self.config.ep,
        );
        let (post, stats) = model.run_parallel_with_stats(
            derive_stream_seed(
                self.config.seed ^ Self::TAIL_SEED_TAG,
                self.stream_count as usize,
            ),
            self.config.threads,
        );
        Ok((post, stats))
    }

    /// Seed-domain separator for ragged tails: `push_tail` does not
    /// advance `stream_count`, so without the tag the tail and the *next*
    /// full chunk would derive the same per-chunk seed and share an MCMC
    /// RNG stream.
    const TAIL_SEED_TAG: u64 = 0x7A11_5EED_7A11_5EED;

    /// How many sites the most recent [`Corrector::push_chunk`] selectively
    /// reset on a change-point.
    pub fn last_push_jump_resets(&self) -> u64 {
        self.jump_resets
    }

    /// Posterior of `event` at `slice` of the most recent
    /// [`Corrector::push_chunk`], in count units.
    ///
    /// # Panics
    ///
    /// Panics if `slice` is out of range; [`Corrector::try_posterior`] is
    /// the fallible variant.
    pub fn posterior(&self, slice: usize, event: EventId) -> Gaussian {
        self.engine.posterior(slice, event)
    }

    /// Posterior of `event` at `slice` of the most recent
    /// [`Corrector::push_chunk`], or [`ShimError::SliceOutOfRange`].
    pub fn try_posterior(&self, slice: usize, event: EventId) -> Result<Gaussian, ShimError> {
        if slice >= self.engine.slices() {
            return Err(ShimError::SliceOutOfRange {
                slice,
                slices: self.engine.slices(),
            });
        }
        Ok(self.engine.posterior(slice, event))
    }

    /// Resets the streaming state: the next [`Corrector::push_chunk`] runs
    /// cold from the base prior (any pending resume prior is discarded).
    pub fn reset_stream(&mut self) {
        self.stream_count = 0;
        self.resume_pending = false;
    }

    /// Corrects a recorded run into posterior series, borrowing the run's
    /// sample windows in place.
    pub fn correct_run(&mut self, run: &MultiplexRun) -> PosteriorSeries {
        let windows: Vec<&[Sample]> = run.windows.iter().map(|w| w.samples.as_slice()).collect();
        self.correct_slices(&windows)
    }

    /// Corrects a sequence of owned sample windows (the shim path).
    pub fn correct_windows(&mut self, windows: &[Vec<Sample>]) -> PosteriorSeries {
        let refs: Vec<&[Sample]> = windows.iter().map(Vec::as_slice).collect();
        self.correct_slices(&refs)
    }

    /// Corrects borrowed sample windows.
    pub fn correct_slices(&mut self, windows: &[&[Sample]]) -> PosteriorSeries {
        let ne = self.catalog.len();
        let mut data: Vec<Gaussian> = Vec::with_capacity(windows.len() * ne);
        let mut stats = CorrectionStats::default();

        if self.config.chain_chunks {
            if self.config.warm_start {
                self.run_chained_warm(windows, &mut data, &mut stats);
            } else {
                self.run_chained_cold(windows, &mut data, &mut stats);
            }
        } else {
            self.run_independent(windows, &mut data, &mut stats);
        }

        PosteriorSeries {
            n_events: ne,
            data,
            convergence_rate: if stats.chunks == 0 {
                1.0
            } else {
                stats.converged_chunks as f64 / stats.chunks as f64
            },
            stats,
        }
    }

    /// Appends one chunk's denormalized posteriors from the engine.
    fn push_engine_posteriors(
        catalog: &Catalog,
        engine: &ChunkEngine,
        slices: usize,
        data: &mut Vec<Gaussian>,
    ) {
        for t in 0..slices {
            for e in catalog.iter() {
                data.push(engine.posterior(t, e.id));
            }
        }
    }

    /// Appends one chunk's posteriors from an owned [`ChunkPosterior`].
    fn push_chunk_posteriors(catalog: &Catalog, post: &ChunkPosterior, data: &mut Vec<Gaussian>) {
        for t in 0..post.slices() {
            for e in catalog.iter() {
                data.push(post.posterior(t, e.id));
            }
        }
    }

    /// The incremental chained loop: one persistent engine; chunk 0 cold,
    /// every later full chunk warm-started with observations swapped in
    /// place. A ragged tail chunk (fewer windows than `slices`) falls back
    /// to a one-shot cold model chained off the engine's captured prior.
    /// Steady state (chunk 2+) is allocation-free at `threads = 1`.
    ///
    /// Every chunk runs on the deterministic engine farm with its own
    /// derived seed, so thread count is purely a throughput knob —
    /// `threads = 1` and `threads = 8` produce bit-identical series.
    fn run_chained_warm(
        &mut self,
        windows: &[&[Sample]],
        data: &mut Vec<Gaussian>,
        stats: &mut CorrectionStats,
    ) {
        let k = self.config.model.slices.max(1);
        self.reset_stream();
        for (c, chunk) in windows.chunks(k).enumerate() {
            if chunk.len() == k {
                let s = self.push_chunk(chunk);
                let warm = c > 0;
                stats.jump_site_resets += self.jump_resets;
                Self::push_engine_posteriors(self.catalog, &self.engine, k, data);
                stats.absorb_run(&s, warm);
            } else {
                // Ragged tail: topology differs (fewer slices) — the same
                // one-shot chained model the streaming flush path runs,
                // so batch and streamed series stay bit-identical.
                let (post, s) = self
                    .push_tail(chunk)
                    .expect("chunks() yields a non-empty tail shorter than k");
                Self::push_chunk_posteriors(self.catalog, &post, data);
                stats.absorb_run(&s, false);
            }
        }
    }

    /// The pre-incremental chained loop (the `cold_start` baseline): every
    /// chunk rebuilds its model and runs cold EP with the full budget.
    fn run_chained_cold(
        &mut self,
        windows: &[&[Sample]],
        data: &mut Vec<Gaussian>,
        stats: &mut CorrectionStats,
    ) {
        let k = self.config.model.slices.max(1);
        let mut prior: Option<Vec<Gaussian>> = None;
        for (c, chunk) in windows.chunks(k).enumerate() {
            let model = build_chunk_model(
                self.catalog,
                chunk,
                &self.config.model,
                prior.as_deref(),
                self.config.ep,
            );
            let (post, s) = model.run_parallel_with_stats(
                derive_stream_seed(self.config.seed, c),
                self.config.threads,
            );
            prior = Some(post.last_slice_normalized());
            Self::push_chunk_posteriors(self.catalog, &post, data);
            stats.absorb_run(&s, false);
        }
    }

    /// Concurrent chunk execution (requires `chain_chunks == false`):
    /// chunks are data-independent, so workers process disjoint contiguous
    /// ranges and results are reassembled in chunk order. Each worker
    /// builds one engine and cold-resets it per chunk (structural reuse:
    /// schedule and buffers survive, statistical state does not), so
    /// per-chunk seeds make the output identical to the sequential
    /// un-chained run at any thread count.
    fn run_independent(
        &mut self,
        windows: &[&[Sample]],
        data: &mut Vec<Gaussian>,
        stats: &mut CorrectionStats,
    ) {
        let k = self.config.model.slices.max(1);
        let chunks: Vec<&[&[Sample]]> = windows.chunks(k).collect();
        let workers = self.config.threads.clamp(1, chunks.len().max(1));
        let per = chunks.len().div_ceil(workers).max(1);
        // Threads left over when there are fewer chunks than workers go to
        // each chunk's inner EP farm (bit-identical at any count, so this
        // only affects speed).
        let inner_threads = (self.config.threads / workers).max(1);
        let mut results: Vec<Option<(ChunkPosterior, EpRunStats)>> = vec![None; chunks.len()];
        let catalog = self.catalog;
        let config = &self.config;
        std::thread::scope(|scope| {
            for (w, (chunk_range, out_range)) in
                chunks.chunks(per).zip(results.chunks_mut(per)).enumerate()
            {
                let base = w * per;
                scope.spawn(move || {
                    // One engine per worker, cold-reset per chunk.
                    let mut engine: Option<ChunkEngine> = None;
                    for (i, (chunk, slot)) in
                        chunk_range.iter().zip(out_range.iter_mut()).enumerate()
                    {
                        let seed = derive_stream_seed(config.seed, base + i);
                        if chunk.len() == k {
                            let eng = engine.get_or_insert_with(|| {
                                ChunkEngine::new(catalog, &config.model, config.ep)
                            });
                            eng.clear_chain_prior();
                            eng.load_cold(chunk);
                            let s = eng.run_farm(seed, inner_threads);
                            *slot = Some((eng.to_posterior(s.converged), s));
                        } else {
                            let model =
                                build_chunk_model(catalog, chunk, &config.model, None, config.ep);
                            let (post, s) = model.run_parallel_with_stats(seed, inner_threads);
                            *slot = Some((post, s));
                        }
                    }
                });
            }
        });
        for result in results {
            let (post, s) = result.expect("every chunk processed");
            Self::push_chunk_posteriors(self.catalog, &post, data);
            stats.absorb_run(&s, false);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bayesperf_events::{Arch, Semantic};
    use bayesperf_simcpu::{pack_round_robin, NoiseModel, Pmu, PmuConfig};
    use bayesperf_workloads::kmeans;

    #[test]
    fn corrector_beats_linux_scaling_on_phased_workload() {
        let cat = Catalog::new(Arch::X86SkyLake);
        let prog = kmeans();
        let mut truth = prog.instantiate(&cat, 0);
        let pmu = Pmu::new(
            &cat,
            PmuConfig {
                noise: NoiseModel::default(),
                seed: 11,
                ..PmuConfig::for_catalog(&cat)
            },
        );
        // 12 core events -> 3 configurations rotating.
        let events: Vec<EventId> = [
            Semantic::L1dMisses,
            Semantic::IcacheMisses,
            Semantic::L2References,
            Semantic::L2Misses,
            Semantic::LlcHits,
            Semantic::LlcMisses,
            Semantic::BrInst,
            Semantic::BrMisp,
            Semantic::UopsIssued,
            Semantic::UopsRetired,
            Semantic::UopsBadSpec,
            Semantic::IdqUopsNotDelivered,
        ]
        .iter()
        .map(|&s| cat.require(s))
        .collect();
        let schedule = pack_round_robin(&cat, &events).unwrap();
        assert_eq!(schedule.len(), 3);
        let n_windows = 24;
        let run = pmu.run_multiplexed(&mut truth, &schedule, n_windows);

        let mut corrector = Corrector::new(&cat, CorrectorConfig::for_run(&run));
        let series = corrector.correct_run(&run);
        assert_eq!(series.windows(), n_windows);

        // Compare average relative error over all windows for a rotated
        // event: BayesPerf posterior mean vs Linux zero-order hold.
        let ev = cat.require(Semantic::L1dMisses);
        let truth_series = run.truth_series(ev);
        let bayes = series.mle_series(ev);

        // Linux estimate: deltas of the cumulative enabled/running-scaled
        // count, the value perf's read() reports in sampling mode. During
        // unscheduled windows the delta reflects the *run-average* rate —
        // the §2 smearing error.
        let mut linux = Vec::with_capacity(n_windows);
        let mut cum_raw = 0.0;
        let mut prev_scaled = 0.0;
        let mut running = 0u64;
        for w in &run.windows {
            if let Some(s) = w.sample_for(ev) {
                cum_raw += s.value;
                running = s.time_running;
            }
            let enabled = (w.index as u64 + 1) * run.quantum_ticks;
            let scaled = if running == 0 {
                0.0
            } else {
                cum_raw * enabled as f64 / running as f64
            };
            linux.push(scaled - prev_scaled);
            prev_scaled = scaled;
        }

        let err = |est: &[f64]| -> f64 {
            est.iter()
                .zip(&truth_series)
                .skip(3) // let estimators warm up
                .map(|(e, t)| (e - t).abs() / t.max(1.0))
                .sum::<f64>()
                / (n_windows - 3) as f64
        };
        let e_bayes = err(&bayes);
        let e_linux = err(&linux);
        assert!(
            e_bayes < e_linux,
            "BayesPerf {e_bayes:.3} should beat Linux hold {e_linux:.3}"
        );
    }

    #[test]
    fn posterior_series_shape_and_access() {
        let cat = Catalog::new(Arch::X86SkyLake);
        let prog = kmeans();
        let mut truth = prog.instantiate(&cat, 0);
        let pmu = Pmu::new(&cat, PmuConfig::for_catalog(&cat));
        let events = vec![cat.require(Semantic::L1dMisses)];
        let schedule = pack_round_robin(&cat, &events).unwrap();
        let run = pmu.run_multiplexed(&mut truth, &schedule, 6);
        let mut corrector = Corrector::new(&cat, CorrectorConfig::for_run(&run));
        let series = corrector.correct_run(&run);
        assert_eq!(series.windows(), 6);
        let ev = cat.require(Semantic::Cycles);
        assert_eq!(series.mle_series(ev).len(), 6);
        assert_eq!(series.sd_series(ev).len(), 6);
        assert!(series.convergence_rate >= 0.0 && series.convergence_rate <= 1.0);
        assert!(series.stats.chunks > 0);
        assert!(series.stats.mcmc_site_updates > 0);
    }

    #[test]
    fn independent_chunks_identical_at_any_thread_count() {
        let cat = Catalog::new(Arch::X86SkyLake);
        let prog = kmeans();
        let mut truth = prog.instantiate(&cat, 0);
        let pmu = Pmu::new(&cat, PmuConfig::for_catalog(&cat));
        let events = vec![
            cat.require(Semantic::L1dMisses),
            cat.require(Semantic::LlcMisses),
        ];
        let schedule = pack_round_robin(&cat, &events).unwrap();
        let run = pmu.run_multiplexed(&mut truth, &schedule, 12);

        let series_for = |threads: usize| {
            let cfg = CorrectorConfig::for_run(&run)
                .independent_chunks()
                .with_threads(threads);
            Corrector::new(&cat, cfg).correct_run(&run)
        };
        let a = series_for(1);
        let b = series_for(4);
        assert_eq!(a.windows(), b.windows());
        let ev = cat.require(Semantic::L1dMisses);
        assert_eq!(a.mle_series(ev), b.mle_series(ev), "bit-identical MLE");
        assert_eq!(a.sd_series(ev), b.sd_series(ev), "bit-identical SD");
        assert_eq!(a.convergence_rate, b.convergence_rate);
    }

    #[test]
    fn chained_mode_identical_at_any_thread_count() {
        // Chained chunks serialize on the prior, but each chunk's EP farm
        // is bit-identical at any thread count — so the whole warm-started
        // series is, including the adaptive-budget decisions (derived from
        // deterministically merged cavity history).
        let cat = Catalog::new(Arch::X86SkyLake);
        let prog = kmeans();
        let mut truth = prog.instantiate(&cat, 0);
        let pmu = Pmu::new(&cat, PmuConfig::for_catalog(&cat));
        let events = vec![cat.require(Semantic::L1dMisses)];
        let schedule = pack_round_robin(&cat, &events).unwrap();
        let run = pmu.run_multiplexed(&mut truth, &schedule, 8);
        let series_for = |threads: usize| {
            let cfg = CorrectorConfig::for_run(&run).with_threads(threads);
            Corrector::new(&cat, cfg).correct_run(&run)
        };
        let a = series_for(1);
        let b = series_for(2);
        assert_eq!(a.windows(), 8);
        let ev = cat.require(Semantic::L1dMisses);
        assert_eq!(a.mle_series(ev), b.mle_series(ev), "bit-identical MLE");
        assert_eq!(a.sd_series(ev), b.sd_series(ev), "bit-identical SD");
        assert_eq!(a.stats, b.stats, "identical work accounting");
    }

    #[test]
    fn resume_from_seeds_the_chain_prior_across_a_restart() {
        let cat = Catalog::new(Arch::X86SkyLake);
        let prog = kmeans();
        let mut truth = prog.instantiate(&cat, 0);
        let pmu = Pmu::new(&cat, PmuConfig::for_catalog(&cat));
        let events = vec![
            cat.require(Semantic::L1dMisses),
            cat.require(Semantic::LlcMisses),
        ];
        let schedule = pack_round_robin(&cat, &events).unwrap();
        let run = pmu.run_multiplexed(&mut truth, &schedule, 18);
        let cfg = CorrectorConfig::for_run(&run);
        let k = cfg.model.slices;

        // Stream two chunks, then "crash": capture the last snapshot the
        // service would have published (count-unit last-slice posteriors).
        let mut a = Corrector::new(&cat, cfg.clone());
        for chunk in 0..2 {
            let windows: Vec<&[Sample]> = run.windows[chunk * k..(chunk + 1) * k]
                .iter()
                .map(|w| w.samples.as_slice())
                .collect();
            a.push_chunk(&windows);
        }
        let published: Vec<Gaussian> = cat.iter().map(|d| a.posterior(k - 1, d.id)).collect();

        let next: Vec<&[Sample]> = run.windows[2 * k..3 * k]
            .iter()
            .map(|w| w.samples.as_slice())
            .collect();

        // Restarted corrector seeded from the snapshot vs a cold one.
        let mut resumed = Corrector::new(&cat, cfg.clone());
        let seeded = resumed.resume_from(&published).unwrap();
        assert_eq!(seeded, cat.len(), "every event seeds from the snapshot");
        resumed.push_chunk(&next);
        let mut cold = Corrector::new(&cat, cfg.clone());
        cold.push_chunk(&next);

        // The recovered chain prior is composed at slice 0, so the
        // restarted corrector is strictly better informed there than the
        // cold one (smaller mean posterior variance).
        let mean_var = |c: &Corrector| -> f64 {
            cat.iter().map(|d| c.posterior(0, d.id).var).sum::<f64>() / cat.len() as f64
        };
        assert!(
            mean_var(&resumed) < mean_var(&cold),
            "resumed {:.3e} must beat cold {:.3e} at slice 0",
            mean_var(&resumed),
            mean_var(&cold)
        );

        // Poisoned snapshot entries fall back to the base prior instead of
        // re-ingesting the poison that may have caused the crash.
        let mut poisoned = published.clone();
        poisoned[0] = Gaussian::new(f64::NAN, 1.0);
        let mut b = Corrector::new(&cat, cfg.clone());
        assert_eq!(b.resume_from(&poisoned).unwrap(), cat.len() - 1);
        b.push_chunk(&next);
        for d in cat.iter() {
            let g = b.posterior(0, d.id);
            assert!(g.mean.is_finite() && g.var.is_finite() && g.var > 0.0);
        }

        // Wrong-length snapshots are a typed error; unchained correctors
        // ignore the resume (chunks are independent anyway).
        let mut c = Corrector::new(&cat, cfg.clone());
        assert!(matches!(
            c.resume_from(&published[..1]),
            Err(ShimError::CatalogMismatch { .. })
        ));
        let mut ind = Corrector::new(&cat, cfg.independent_chunks());
        assert_eq!(ind.resume_from(&published).unwrap(), 0);
    }

    #[test]
    fn warm_start_does_much_less_work_than_cold() {
        let cat = Catalog::new(Arch::X86SkyLake);
        let prog = kmeans();
        let mut truth = prog.instantiate(&cat, 0);
        let pmu = Pmu::new(&cat, PmuConfig::for_catalog(&cat));
        let events = vec![
            cat.require(Semantic::L1dMisses),
            cat.require(Semantic::LlcMisses),
        ];
        let schedule = pack_round_robin(&cat, &events).unwrap();
        let run = pmu.run_multiplexed(&mut truth, &schedule, 24);

        let warm = Corrector::new(&cat, CorrectorConfig::for_run(&run)).correct_run(&run);
        let cold =
            Corrector::new(&cat, CorrectorConfig::for_run(&run).cold_start()).correct_run(&run);
        assert_eq!(warm.windows(), cold.windows());
        assert!(warm.stats.warm_chunks > 0);
        assert_eq!(cold.stats.warm_chunks, 0);
        // The algorithmic win: warm chunks run fewer sweeps and far fewer
        // MCMC samples.
        assert!(
            warm.stats.mcmc_samples * 2 < cold.stats.mcmc_samples,
            "warm {} samples vs cold {}",
            warm.stats.mcmc_samples,
            cold.stats.mcmc_samples
        );
        assert!(warm.stats.sweeps < cold.stats.sweeps);
    }

    #[test]
    fn warm_marginals_stay_close_to_cold_marginals() {
        // Warm-start is an approximation accelerator, not a model change:
        // posterior means must stay within a few percent of the cold path
        // (MCMC noise dominates the difference).
        let cat = Catalog::new(Arch::X86SkyLake);
        let prog = kmeans();
        let mut truth = prog.instantiate(&cat, 0);
        let pmu = Pmu::new(&cat, PmuConfig::for_catalog(&cat));
        let events = vec![
            cat.require(Semantic::L1dMisses),
            cat.require(Semantic::LlcMisses),
        ];
        let schedule = pack_round_robin(&cat, &events).unwrap();
        let run = pmu.run_multiplexed(&mut truth, &schedule, 12);

        let warm = Corrector::new(&cat, CorrectorConfig::for_run(&run)).correct_run(&run);
        let cold =
            Corrector::new(&cat, CorrectorConfig::for_run(&run).cold_start()).correct_run(&run);
        let ev = cat.require(Semantic::L1dMisses);
        let (w, c) = (warm.mle_series(ev), cold.mle_series(ev));
        let rels: Vec<f64> = w
            .iter()
            .zip(&c)
            .map(|(a, b)| (a - b).abs() / b.abs().max(1.0))
            .collect();
        let mean_rel = rels.iter().sum::<f64>() / rels.len() as f64;
        let max_rel = rels.iter().fold(0.0f64, |a, &b| a.max(b));
        // Tight on average; a single phase-boundary window may deviate
        // further (both paths carry MCMC noise and settle the transient
        // on different trajectories).
        assert!(mean_rel < 0.12, "mean relative deviation {mean_rel:.3}");
        assert!(max_rel < 0.6, "max relative deviation {max_rel:.3}");
    }
}
