//! Batch correction of a recorded PMU run.

use crate::model::{build_chunk_model, ModelConfig};
use bayesperf_events::{Catalog, EventId};
use bayesperf_inference::{EpConfig, Gaussian};
use bayesperf_simcpu::{MultiplexRun, Sample};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration of the [`Corrector`].
#[derive(Debug, Clone)]
pub struct CorrectorConfig {
    /// Model hyperparameters (chunk size, priors, factor widths).
    pub model: ModelConfig,
    /// EP settings.
    pub ep: EpConfig,
    /// RNG seed for the MCMC chains.
    pub seed: u64,
}

impl CorrectorConfig {
    /// Default configuration for a recorded run.
    pub fn for_run(run: &MultiplexRun) -> Self {
        let model = ModelConfig::for_run(run);
        let ep = model.fast_ep();
        CorrectorConfig { model, ep, seed: 0 }
    }
}

/// Posterior distributions for every catalog event across all windows of a
/// run — BayesPerf's output.
#[derive(Debug, Clone)]
pub struct PosteriorSeries {
    n_events: usize,
    data: Vec<Gaussian>,
    /// Fraction of chunks whose EP run converged within tolerance.
    pub convergence_rate: f64,
}

impl PosteriorSeries {
    /// Number of windows covered.
    pub fn windows(&self) -> usize {
        self.data.len() / self.n_events
    }

    /// The posterior of `event` at window `w`.
    ///
    /// # Panics
    ///
    /// Panics if `w` is out of range.
    pub fn posterior(&self, w: usize, event: EventId) -> Gaussian {
        assert!(w < self.windows(), "window {w} out of range");
        self.data[w * self.n_events + event.index()]
    }

    /// The maximum-likelihood (posterior-mean) series of an event — what
    /// §6.2 feeds to the DTW error metric.
    pub fn mle_series(&self, event: EventId) -> Vec<f64> {
        (0..self.windows())
            .map(|w| self.posterior(w, event).mean)
            .collect()
    }

    /// The posterior standard-deviation series of an event.
    pub fn sd_series(&self, event: EventId) -> Vec<f64> {
        (0..self.windows())
            .map(|w| self.posterior(w, event).std_dev())
            .collect()
    }
}

/// Runs BayesPerf inference over a recorded run, chunk by chunk, chaining
/// posteriors across chunk boundaries.
#[derive(Debug, Clone)]
pub struct Corrector<'a> {
    catalog: &'a Catalog,
    config: CorrectorConfig,
}

impl<'a> Corrector<'a> {
    /// Creates a corrector.
    pub fn new(catalog: &'a Catalog, config: CorrectorConfig) -> Self {
        Corrector { catalog, config }
    }

    /// Corrects a recorded run into posterior series.
    pub fn correct_run(&self, run: &MultiplexRun) -> PosteriorSeries {
        let windows: Vec<Vec<Sample>> = run.windows.iter().map(|w| w.samples.clone()).collect();
        self.correct_windows(&windows)
    }

    /// Corrects a sequence of sample windows (the shim path).
    pub fn correct_windows(&self, windows: &[Vec<Sample>]) -> PosteriorSeries {
        let ne = self.catalog.len();
        let k = self.config.model.slices.max(1);
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut data: Vec<Gaussian> = Vec::with_capacity(windows.len() * ne);
        let mut prior: Option<Vec<Gaussian>> = None;
        let mut converged = 0usize;
        let mut chunks = 0usize;

        let mut start = 0;
        while start < windows.len() {
            let end = (start + k).min(windows.len());
            let chunk = windows[start..end].to_vec();
            let model = build_chunk_model(
                self.catalog,
                &chunk,
                &self.config.model,
                prior.as_deref(),
                self.config.ep,
            );
            let post = model.run(&mut rng);
            chunks += 1;
            if post.converged {
                converged += 1;
            }
            for t in 0..post.slices() {
                for e in self.catalog.iter() {
                    data.push(post.posterior(t, e.id));
                }
            }
            prior = Some(post.last_slice_normalized());
            start = end;
        }

        PosteriorSeries {
            n_events: ne,
            data,
            convergence_rate: if chunks == 0 {
                1.0
            } else {
                converged as f64 / chunks as f64
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bayesperf_events::{Arch, Semantic};
    use bayesperf_simcpu::{pack_round_robin, NoiseModel, Pmu, PmuConfig};
    use bayesperf_workloads::kmeans;

    #[test]
    fn corrector_beats_linux_scaling_on_phased_workload() {
        let cat = Catalog::new(Arch::X86SkyLake);
        let prog = kmeans();
        let mut truth = prog.instantiate(&cat, 0);
        let pmu = Pmu::new(
            &cat,
            PmuConfig {
                noise: NoiseModel::default(),
                seed: 11,
                ..PmuConfig::for_catalog(&cat)
            },
        );
        // 12 core events -> 3 configurations rotating.
        let events: Vec<EventId> = [
            Semantic::L1dMisses,
            Semantic::IcacheMisses,
            Semantic::L2References,
            Semantic::L2Misses,
            Semantic::LlcHits,
            Semantic::LlcMisses,
            Semantic::BrInst,
            Semantic::BrMisp,
            Semantic::UopsIssued,
            Semantic::UopsRetired,
            Semantic::UopsBadSpec,
            Semantic::IdqUopsNotDelivered,
        ]
        .iter()
        .map(|&s| cat.require(s))
        .collect();
        let schedule = pack_round_robin(&cat, &events).unwrap();
        assert_eq!(schedule.len(), 3);
        let n_windows = 24;
        let run = pmu.run_multiplexed(&mut truth, &schedule, n_windows);

        let corrector = Corrector::new(&cat, CorrectorConfig::for_run(&run));
        let series = corrector.correct_run(&run);
        assert_eq!(series.windows(), n_windows);

        // Compare average relative error over all windows for a rotated
        // event: BayesPerf posterior mean vs Linux zero-order hold.
        let ev = cat.require(Semantic::L1dMisses);
        let truth_series = run.truth_series(ev);
        let bayes = series.mle_series(ev);

        // Linux estimate: deltas of the cumulative enabled/running-scaled
        // count, the value perf's read() reports in sampling mode. During
        // unscheduled windows the delta reflects the *run-average* rate —
        // the §2 smearing error.
        let mut linux = Vec::with_capacity(n_windows);
        let mut cum_raw = 0.0;
        let mut prev_scaled = 0.0;
        let mut running = 0u64;
        for w in &run.windows {
            if let Some(s) = w.sample_for(ev) {
                cum_raw += s.value;
                running = s.time_running;
            }
            let enabled = (w.index as u64 + 1) * run.quantum_ticks;
            let scaled = if running == 0 {
                0.0
            } else {
                cum_raw * enabled as f64 / running as f64
            };
            linux.push(scaled - prev_scaled);
            prev_scaled = scaled;
        }

        let err = |est: &[f64]| -> f64 {
            est.iter()
                .zip(&truth_series)
                .skip(3) // let estimators warm up
                .map(|(e, t)| (e - t).abs() / t.max(1.0))
                .sum::<f64>()
                / (n_windows - 3) as f64
        };
        let e_bayes = err(&bayes);
        let e_linux = err(&linux);
        assert!(
            e_bayes < e_linux,
            "BayesPerf {e_bayes:.3} should beat Linux hold {e_linux:.3}"
        );
    }

    #[test]
    fn posterior_series_shape_and_access() {
        let cat = Catalog::new(Arch::X86SkyLake);
        let prog = kmeans();
        let mut truth = prog.instantiate(&cat, 0);
        let pmu = Pmu::new(&cat, PmuConfig::for_catalog(&cat));
        let events = vec![cat.require(Semantic::L1dMisses)];
        let schedule = pack_round_robin(&cat, &events).unwrap();
        let run = pmu.run_multiplexed(&mut truth, &schedule, 6);
        let corrector = Corrector::new(&cat, CorrectorConfig::for_run(&run));
        let series = corrector.correct_run(&run);
        assert_eq!(series.windows(), 6);
        let ev = cat.require(Semantic::Cycles);
        assert_eq!(series.mle_series(ev).len(), 6);
        assert_eq!(series.sd_series(ev).len(), 6);
        assert!(series.convergence_rate >= 0.0 && series.convergence_rate <= 1.0);
    }
}
