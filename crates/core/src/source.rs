//! Observation-source plumbing for the [`Monitor`] ingest path, plus the
//! real `/proc`-backed source.
//!
//! The simulated half of the observation plane lives in `bayesperf_simcpu`
//! ([`SampleSource`], [`SimGauge`](bayesperf_simcpu::SimGauge)); this
//! module is the service-side glue:
//!
//! * [`pump_sources`] — polls a set of sources for a window and pushes
//!   everything they produce into a monitor (the driving loop's one-liner);
//! * `ProcSource` *(feature `proc-source`, so not linkable from the
//!   default docs)* — a real source reading
//!   `/proc/stat`, `/proc/meminfo` and `/proc/diskstats`, mapping
//!   diskstats' completed-IO and sector counters onto the catalog's gauge
//!   events. Off Linux (or when `/proc` is unreadable) it gracefully
//!   produces nothing — polling is always safe, never a panic or an error.
//!
//! # The `proc-source` feature flag
//!
//! `/proc` scraping is deliberately opt-in: the default build stays fully
//! deterministic (simulation only), while `--features proc-source` adds
//! the one real producer. The flag gates code, not behaviour — the type
//! exists only with the feature, and its `poll` no-ops wherever the files
//! are missing, so CI can build and test the feature leg on any OS.

use crate::error::ShimError;
use crate::service::Monitor;
use bayesperf_simcpu::{Sample, SampleSource};

/// Polls every source for `window` and pushes the produced samples into
/// `monitor`, in source order. Returns the number of samples delivered.
///
/// Ring overflow drops are counted by the monitor itself
/// ([`Monitor::dropped`]); this helper only stops early on a closed
/// session, returning [`ShimError::SessionClosed`] like any other push.
pub fn pump_sources(
    monitor: &Monitor,
    sources: &mut [Box<dyn SampleSource + '_>],
    window: u32,
) -> Result<usize, ShimError> {
    let mut buf: Vec<Sample> = Vec::new();
    let mut delivered = 0usize;
    for source in sources.iter_mut() {
        buf.clear();
        source.poll(window, &mut buf);
        for s in &buf {
            match monitor.push_sample(*s) {
                Ok(()) => delivered += 1,
                Err(ShimError::SessionClosed) => return Err(ShimError::SessionClosed),
                // Overflow: already counted by the ring; keep going.
                Err(_) => {}
            }
        }
    }
    Ok(delivered)
}

#[cfg(feature = "proc-source")]
pub use proc_source::ProcSource;

#[cfg(feature = "proc-source")]
mod proc_source {
    use bayesperf_events::{Catalog, EventId, Semantic, SourceDesc, SourceId, SourceKind};
    use bayesperf_simcpu::{Sample, SampleSource};

    /// A real `/proc`-backed observation source (Linux): reads
    /// `/proc/diskstats` for block-layer IO (completed reads/writes and
    /// sectors, summed over physical devices) and touches `/proc/stat` /
    /// `/proc/meminfo` as liveness probes. Deltas between consecutive
    /// polls become per-window gauge samples for the catalog's
    /// `DiskReadOps`/`DiskWriteOps`/`DiskReadBytes`/`DiskWriteBytes`
    /// events, tagged with the source id it was built with.
    ///
    /// Where `/proc` does not exist (non-Linux, sandboxes) every poll
    /// produces nothing: the source is a graceful no-op, never an error.
    pub struct ProcSource {
        desc: SourceDesc,
        read_ops: Option<EventId>,
        write_ops: Option<EventId>,
        read_bytes: Option<EventId>,
        write_bytes: Option<EventId>,
        /// Cumulative (reads, writes, sectors_read, sectors_written) of
        /// the previous poll; `None` until the first successful scrape.
        prev: Option<[u64; 4]>,
        polls: u64,
        scrapes: u64,
    }

    impl ProcSource {
        /// Builds the source against `catalog`, reporting as `source`
        /// (usually one of the catalog's gauge sources, so the catalog's
        /// cadence/noise metadata applies; any id works — the samples
        /// carry whatever is given here).
        pub fn new(catalog: &Catalog, source: SourceId) -> ProcSource {
            let desc = catalog
                .source(source)
                .cloned()
                .unwrap_or_else(|| SourceDesc {
                    id: source,
                    name: "proc".to_string(),
                    kind: SourceKind::Proc,
                    cadence: 1,
                    noise: bayesperf_events::SourceNoise::HeavyTail { rel_sigma: 0.25 },
                });
            ProcSource {
                desc,
                read_ops: catalog.id(Semantic::DiskReadOps),
                write_ops: catalog.id(Semantic::DiskWriteOps),
                read_bytes: catalog.id(Semantic::DiskReadBytes),
                write_bytes: catalog.id(Semantic::DiskWriteBytes),
                prev: None,
                polls: 0,
                scrapes: 0,
            }
        }

        /// Polls performed (due windows).
        pub fn polls(&self) -> u64 {
            self.polls
        }

        /// Polls that successfully scraped `/proc` (0 off-Linux).
        pub fn scrapes(&self) -> u64 {
            self.scrapes
        }

        /// True for whole-device diskstats rows; partitions (sda1,
        /// nvme0n1p1, mmcblk0p2, …) are skipped so their traffic is not
        /// double counted against the parent device's row.
        fn is_whole_device(name: &str) -> bool {
            match name.chars().last() {
                Some(last) if last.is_ascii_digit() => {
                    // Trailing digit: a partition, unless the family
                    // numbers whole devices too (their partitions then
                    // carry a 'p' separator the whole device lacks).
                    (name.starts_with("nvme") && !name.contains('p'))
                        || (name.starts_with("mmcblk") && !name.contains('p'))
                        || name.starts_with("md")
                        || name.starts_with("dm-")
                        || name.starts_with("loop")
                        || name.starts_with("ram")
                }
                Some(_) => true,
                None => false,
            }
        }

        /// Sums (reads, writes, sectors_read, sectors_written) across
        /// whole block devices, or `None` when `/proc` is unavailable.
        fn scrape() -> Option<[u64; 4]> {
            // Liveness probes: a readable /proc/stat + /proc/meminfo is
            // what distinguishes "Linux with procfs" from a no-op host.
            std::fs::metadata("/proc/stat").ok()?;
            std::fs::metadata("/proc/meminfo").ok()?;
            let text = std::fs::read_to_string("/proc/diskstats").ok()?;
            let mut total = [0u64; 4];
            for line in text.lines() {
                let f: Vec<&str> = line.split_whitespace().collect();
                // major minor name reads ... sectors_read ... writes ...
                // sectors_written ... (kernel doc: fields 4,6,8,10).
                if f.len() < 10 {
                    continue;
                }
                if !Self::is_whole_device(f[2]) {
                    continue;
                }
                let get = |i: usize| f.get(i).and_then(|v| v.parse::<u64>().ok()).unwrap_or(0);
                total[0] += get(3); // reads completed
                total[1] += get(7); // writes completed
                total[2] += get(5); // sectors read
                total[3] += get(9); // sectors written
            }
            Some(total)
        }
    }

    impl SampleSource for ProcSource {
        fn descriptor(&self) -> &SourceDesc {
            &self.desc
        }

        fn poll(&mut self, window: u32, out: &mut Vec<Sample>) {
            if !window.is_multiple_of(self.desc.cadence.max(1)) {
                return;
            }
            self.polls += 1;
            let Some(now) = Self::scrape() else {
                // No /proc here: graceful no-op (off-Linux CI leg).
                return;
            };
            self.scrapes += 1;
            let Some(prev) = self.prev.replace(now) else {
                // First scrape establishes the baseline; deltas start
                // with the next poll.
                return;
            };
            let delta = |i: usize| now[i].saturating_sub(prev[i]) as f64;
            let enabled = u64::from(window) + 1;
            let mut push = |event: Option<EventId>, value: f64| {
                if let Some(event) = event {
                    out.push(Sample {
                        event,
                        window,
                        value,
                        sub_mean: value,
                        sub_sd: 0.0,
                        sub_n: 1,
                        time_enabled: enabled,
                        time_running: enabled,
                        source: self.desc.id,
                    });
                }
            };
            push(self.read_ops, delta(0));
            push(self.write_ops, delta(1));
            // diskstats sectors are 512-byte units regardless of the
            // device's real sector size.
            push(self.read_bytes, delta(2) * 512.0);
            push(self.write_bytes, delta(3) * 512.0);
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use bayesperf_events::Arch;

        #[test]
        fn proc_source_polls_never_panic_and_respect_cadence() {
            let cat = Catalog::with_observation_plane(Arch::X86SkyLake);
            let sid = cat.sources()[1].id;
            let mut src = ProcSource::new(&cat, sid);
            let cadence = src.descriptor().cadence;
            let mut out = Vec::new();
            for w in 0..64u32 {
                src.poll(w, &mut out);
            }
            assert_eq!(src.polls(), u64::from(64 / cadence.max(1)));
            // Wherever /proc exists the samples are finite, tagged, and
            // non-negative (counters are cumulative, deltas can't go
            // negative barring reboot); where it doesn't, none appear.
            for s in &out {
                assert_eq!(s.source, sid);
                assert!(s.value.is_finite() && s.value >= 0.0);
                assert_eq!(s.window % cadence, 0);
            }
            if src.scrapes() == 0 {
                assert!(out.is_empty(), "no /proc must mean no samples");
            }
        }

        #[test]
        fn unknown_source_id_degrades_to_a_heavy_tail_proc_descriptor() {
            let cat = Catalog::new(Arch::X86SkyLake);
            let src = ProcSource::new(&cat, SourceId::from_raw(9));
            assert_eq!(src.descriptor().kind, SourceKind::Proc);
            assert_eq!(src.descriptor().id, SourceId::from_raw(9));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corrector::CorrectorConfig;
    use bayesperf_events::{Arch, Catalog};
    use bayesperf_simcpu::{GaugeProfile, MultiplexRun, Pmu, PmuConfig, SimGauge};

    #[test]
    fn pump_sources_delivers_tagged_samples() {
        let cat = Catalog::with_observation_plane(Arch::X86SkyLake);
        let rates = bayesperf_events::synthesize(&cat, &bayesperf_events::FreeParams::default());
        let truth = bayesperf_simcpu::ConstantTruth::new(rates);
        let pmu_cfg = PmuConfig::for_catalog(&cat);
        let run = MultiplexRun {
            windows: Vec::new(),
            quantum_ticks: pmu_cfg.quantum_ticks,
            cycles_per_window: pmu_cfg.quantum_ticks as f64 * pmu_cfg.cycles_per_tick,
        };
        let monitor =
            Monitor::new(&cat, CorrectorConfig::for_run(&run), 4096).expect("spawn monitor");
        let mut sources: Vec<Box<dyn SampleSource>> = cat.sources()[1..]
            .iter()
            .map(|d| {
                Box::new(
                    SimGauge::new(
                        &cat,
                        d.id,
                        GaugeProfile::ideal(d.id.index() as u64),
                        &pmu_cfg,
                        truth.clone(),
                    )
                    .expect("gauge"),
                ) as Box<dyn SampleSource>
            })
            .collect();
        // Window 0: every gauge cadence divides 0, so all fire.
        let n = pump_sources(&monitor, &mut sources, 0).expect("pump");
        assert_eq!(n, 5, "all five gauge events delivered at window 0");
        // Window 1: none due.
        let n = pump_sources(&monitor, &mut sources, 1).expect("pump");
        assert_eq!(n, 0);
        let _ = Pmu::new(&cat, pmu_cfg); // catalog stays usable for a PMU too
    }
}
