//! A lock-free single-writer / multi-reader publication cell.
//!
//! The inference service publishes immutable posterior snapshots through
//! this cell; monitoring threads read them without ever blocking on the
//! inference thread (the paper's §5 requirement that counter reads are
//! served from already-computed posteriors in host memory). The design is
//! a double-buffered atomic pointer with per-slot reader counts — the
//! "left-right" publication pattern:
//!
//! * Two slots hold the current and the previous snapshot. An atomic index
//!   names the slot readers may enter.
//! * A reader registers on the current slot (one atomic increment),
//!   re-checks that the slot is still current, and then dereferences the
//!   value through a guard. The re-check makes registration race-free: if
//!   the writer moved on mid-registration, the reader backs off and
//!   retries on the new current slot (at most once per concurrent
//!   publication — reads are lock-free and never wait on the writer).
//! * The writer always writes the *non-current* slot: it spins until the
//!   stragglers that registered while that slot was current have dropped
//!   their guards (new readers cannot enter it), writes the value, and
//!   flips the index. The writer is the only party that ever waits, and
//!   only on readers of the *previous* snapshot — never the other way
//!   around.
//!
//! All counters use sequentially-consistent orderings: the
//! increment-then-recheck on the read side and the check-then-write on the
//! write side are a classic store→load publication handshake, and the cell
//! is far from any hot loop that would justify weaker orderings.

use std::cell::UnsafeCell;
use std::ops::Deref;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering::SeqCst};
use std::sync::Arc;

/// Sentinel for "nothing published yet".
const EMPTY: usize = usize::MAX;

struct Slot<T> {
    /// Readers currently holding a guard into this slot.
    readers: AtomicUsize,
    value: UnsafeCell<Option<T>>,
}

struct Cell<T> {
    slots: [Slot<T>; 2],
    /// Index of the slot readers may enter, or [`EMPTY`].
    current: AtomicUsize,
    /// Whether a [`SnapshotWriter`] for this cell is alive. Cleared by the
    /// writer's `Drop` (which runs even during a panic unwind), so a
    /// supervisor can detect a dead publisher and mint a replacement with
    /// [`SnapshotReader::recover_writer`].
    writer_live: AtomicBool,
}

// SAFETY: the reader/writer protocol (see module docs) guarantees the
// writer has exclusive access to a slot's `UnsafeCell` while writing and
// readers only ever dereference a slot they are registered on while it is
// current; `T: Send + Sync` makes sharing the values themselves sound.
unsafe impl<T: Send + Sync> Sync for Cell<T> {}
unsafe impl<T: Send> Send for Cell<T> {}

/// Creates a publication cell, returning the unique writer and a cloneable
/// reader handle.
pub fn snapshot_cell<T: Send + Sync>() -> (SnapshotWriter<T>, SnapshotReader<T>) {
    let cell = Arc::new(Cell {
        slots: [
            Slot {
                readers: AtomicUsize::new(0),
                value: UnsafeCell::new(None),
            },
            Slot {
                readers: AtomicUsize::new(0),
                value: UnsafeCell::new(None),
            },
        ],
        current: AtomicUsize::new(EMPTY),
        writer_live: AtomicBool::new(true),
    });
    (
        SnapshotWriter {
            cell: cell.clone(),
            next: 0,
        },
        SnapshotReader { cell },
    )
}

/// The unique publishing handle (not `Clone`: single-writer by
/// construction).
pub struct SnapshotWriter<T> {
    cell: Arc<Cell<T>>,
    /// The slot the next publication writes (always the non-current one).
    next: usize,
}

impl<T: Send + Sync> SnapshotWriter<T> {
    /// Publishes `value` as the new current snapshot. May spin briefly
    /// waiting for readers still holding guards on the *previous*
    /// snapshot; a reader that holds a guard indefinitely stalls
    /// publication (guards are meant to be short-lived — copy out and
    /// drop).
    pub fn publish(&mut self, value: T) {
        let slot = &self.cell.slots[self.next];
        // New readers cannot register on `next` (current points elsewhere
        // or is EMPTY); wait for stragglers of the previous generation.
        while slot.readers.load(SeqCst) != 0 {
            std::hint::spin_loop();
        }
        // SAFETY: single writer (unique, `&mut self`), zero registered
        // readers, and no new reader can enter this slot until `current`
        // is flipped below.
        unsafe {
            *slot.value.get() = Some(value);
        }
        self.cell.current.store(self.next, SeqCst);
        self.next = 1 - self.next;
    }
}

impl<T> Drop for SnapshotWriter<T> {
    fn drop(&mut self) {
        // Runs during panic unwinds too: a writer that dies mid-service
        // leaves the cell marked writerless so a supervisor can recover it.
        self.cell.writer_live.store(false, SeqCst);
    }
}

impl<T> std::fmt::Debug for SnapshotWriter<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapshotWriter")
            .field("next", &self.next)
            .finish()
    }
}

/// A read handle: cheap to clone, sharable across threads.
pub struct SnapshotReader<T> {
    cell: Arc<Cell<T>>,
}

impl<T> Clone for SnapshotReader<T> {
    fn clone(&self) -> Self {
        SnapshotReader {
            cell: self.cell.clone(),
        }
    }
}

impl<T> std::fmt::Debug for SnapshotReader<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapshotReader").finish()
    }
}

impl<T: Send + Sync> SnapshotReader<T> {
    /// Returns a guard on the current snapshot, or `None` if nothing has
    /// been published yet. Never blocks on the writer: at worst it retries
    /// registration once per concurrent publication.
    pub fn read(&self) -> Option<SnapshotGuard<'_, T>> {
        loop {
            let i = self.cell.current.load(SeqCst);
            if i == EMPTY {
                return None;
            }
            let slot = &self.cell.slots[i];
            slot.readers.fetch_add(1, SeqCst);
            if self.cell.current.load(SeqCst) == i {
                // SAFETY: registered on `i` while it is current. The
                // writer only mutates a slot after `current` has moved
                // away from it *and* its reader count has drained to zero;
                // our registration holds the count above zero until the
                // guard drops, so the value is immutable for the guard's
                // lifetime. The re-check's SeqCst load synchronizes with
                // the writer's publishing store, making the write visible.
                let value = unsafe { (*slot.value.get()).as_ref().expect("published slot") };
                return Some(SnapshotGuard { slot, value });
            }
            // The writer flipped mid-registration; back off and retry on
            // the new current slot.
            slot.readers.fetch_sub(1, SeqCst);
        }
    }

    /// Whether the cell's writer is still alive (its `Drop` has not run).
    pub fn writer_live(&self) -> bool {
        self.cell.writer_live.load(SeqCst)
    }

    /// Mints a replacement writer for a cell whose original writer died
    /// (e.g. its owning thread panicked and the unwind dropped it).
    /// Returns `None` while the original writer is still alive — the
    /// single-writer invariant is preserved by a CAS on the liveness flag,
    /// so concurrent recovery attempts yield exactly one writer.
    ///
    /// The recovered writer targets the non-current slot, which is correct
    /// whether the dead writer finished its last flip or died mid-publish:
    /// either way `current` names the last fully published snapshot, and
    /// readers keep serving it untorn until the new writer publishes.
    pub fn recover_writer(&self) -> Option<SnapshotWriter<T>> {
        if self
            .cell
            .writer_live
            .compare_exchange(false, true, SeqCst, SeqCst)
            .is_err()
        {
            return None;
        }
        let current = self.cell.current.load(SeqCst);
        let next = if current == EMPTY { 0 } else { 1 - current };
        Some(SnapshotWriter {
            cell: self.cell.clone(),
            next,
        })
    }
}

/// A borrow of the current snapshot; holding it pins that snapshot's slot
/// (the writer cannot recycle it). Copy what you need and drop promptly.
pub struct SnapshotGuard<'a, T> {
    slot: &'a Slot<T>,
    value: &'a T,
}

impl<T> Deref for SnapshotGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.value
    }
}

impl<T> Drop for SnapshotGuard<'_, T> {
    fn drop(&mut self) {
        self.slot.readers.fetch_sub(1, SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn empty_until_first_publish() {
        let (mut w, r) = snapshot_cell::<u64>();
        assert!(r.read().is_none());
        w.publish(7);
        assert_eq!(*r.read().unwrap(), 7);
    }

    #[test]
    fn publications_supersede_each_other() {
        let (mut w, r) = snapshot_cell::<u64>();
        for i in 0..10 {
            w.publish(i);
            assert_eq!(*r.read().unwrap(), i);
        }
    }

    #[test]
    fn guard_pins_its_generation_across_one_publish() {
        let (mut w, r) = snapshot_cell::<u64>();
        w.publish(1);
        let g = r.read().unwrap();
        // The writer targets the other slot, so one publication proceeds
        // without waiting on this guard, and the guard keeps observing its
        // own generation.
        w.publish(2);
        assert_eq!(*g, 1);
        drop(g);
        assert_eq!(*r.read().unwrap(), 2);
    }

    #[test]
    fn readers_see_fresh_values_after_writer_cycles_both_slots() {
        let (mut w, r) = snapshot_cell::<u64>();
        w.publish(1);
        w.publish(2);
        w.publish(3);
        assert_eq!(*r.read().unwrap(), 3);
    }

    #[test]
    fn recover_writer_refused_while_writer_lives() {
        let (mut w, r) = snapshot_cell::<u64>();
        assert!(r.writer_live());
        assert!(r.read().is_none());
        w.publish(1);
        assert!(r.recover_writer().is_none(), "writer is still alive");
        assert!(r.writer_live());
    }

    #[test]
    fn recover_writer_resumes_publication_after_drop() {
        let (mut w, r) = snapshot_cell::<u64>();
        w.publish(1);
        w.publish(2);
        drop(w);
        assert!(!r.writer_live());
        // The last published value survives the writer's death untorn.
        assert_eq!(*r.read().unwrap(), 2);
        let mut w2 = r.recover_writer().expect("writer is dead");
        assert!(r.writer_live());
        // Exactly one recovery wins.
        assert!(r.recover_writer().is_none());
        w2.publish(3);
        assert_eq!(*r.read().unwrap(), 3);
        w2.publish(4);
        assert_eq!(*r.read().unwrap(), 4);
    }

    #[test]
    fn recover_writer_on_an_empty_cell() {
        let (w, r) = snapshot_cell::<u64>();
        drop(w);
        let mut w2 = r.recover_writer().expect("writer is dead");
        assert!(r.read().is_none());
        w2.publish(9);
        assert_eq!(*r.read().unwrap(), 9);
    }

    #[test]
    fn recovery_after_panic_unwind_keeps_last_snapshot() {
        let (w, r) = snapshot_cell::<Vec<u64>>();
        let handle = std::thread::spawn(move || {
            let mut w = w;
            w.publish(vec![5; 8]);
            panic!("injected");
        });
        assert!(handle.join().is_err());
        assert!(!r.writer_live());
        assert_eq!(*r.read().unwrap(), vec![5; 8]);
        let mut w2 = r.recover_writer().expect("unwind dropped the writer");
        w2.publish(vec![6; 8]);
        assert_eq!(*r.read().unwrap(), vec![6; 8]);
    }

    /// Torn-read detector: every published snapshot is a vector whose
    /// elements all equal the publication index; concurrent readers must
    /// never observe a mixed vector.
    #[test]
    fn concurrent_readers_never_observe_torn_snapshots() {
        let (mut w, r) = snapshot_cell::<Vec<u64>>();
        let stop = AtomicBool::new(false);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let r = r.clone();
                let stop = &stop;
                s.spawn(move || {
                    // Run until the writer is done AND at least one
                    // snapshot was observed (on a single CPU a reader may
                    // only get scheduled after the writer finishes).
                    let mut seen = 0u64;
                    let mut last = 0u64;
                    loop {
                        if let Some(g) = r.read() {
                            let first = g[0];
                            assert!(
                                g.iter().all(|&v| v == first),
                                "torn snapshot: {:?}",
                                &g[..4]
                            );
                            assert!(first >= last, "went backwards: {first} < {last}");
                            last = first;
                            seen += 1;
                        }
                        if stop.load(SeqCst) && seen > 0 {
                            break;
                        }
                    }
                });
            }
            for i in 0..20_000u64 {
                w.publish(vec![i; 64]);
            }
            stop.store(true, SeqCst);
        });
    }
}
