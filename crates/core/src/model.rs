//! Building the unified factor graph over `k` time slices as EP sites.
//!
//! The model's variables are *(event, slice)* pairs in normalized units
//! (window counts divided by a per-event scale derived from the catalog's
//! nominal magnitudes). Each time slice becomes one EP site — the paper's
//! data partition — containing three kinds of factors:
//!
//! * **observation** factors (§4.2): a scaled/shifted Student-t per sample
//!   delivered in that slice;
//! * **invariant** factors: for every microarchitectural invariant, a
//!   Gaussian on the *relative* residual `((lhs − rhs)/max(|lhs|,|rhs|,1))`
//!   evaluated on the denormalized slice state;
//! * **temporal** factors: a Gaussian random-walk coupling each event's
//!   value to its value in the preceding slice — this is what lets samples
//!   of overlapping events in adjacent configurations inform unscheduled
//!   events (Fig. 2's `⇝` edges).

use crate::error_model::observation;
use bayesperf_events::{Catalog, EventEnv, EventId, Expr};
use bayesperf_graph::CsrAdjacency;
use bayesperf_inference::{
    EpConfig, EpSite, ExpectationPropagation, Gaussian, McmcConfig, StudentT,
};
use bayesperf_simcpu::{MultiplexRun, Sample};

/// Model hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelConfig {
    /// Time slices (windows) per inference chunk — the paper's `k`.
    pub slices: usize,
    /// Prior mean in normalized units (1 = the catalog's nominal magnitude).
    pub prior_mean: f64,
    /// Prior standard deviation in normalized units.
    pub prior_sd: f64,
    /// Random-walk standard deviation of the temporal factors (normalized).
    pub temporal_tau: f64,
    /// Relative noise floor of observation factors.
    pub obs_sigma_floor: f64,
    /// Noise floor of invariant factors (on the relative residual).
    pub inv_sigma_floor: f64,
    /// Core cycles per multiplexing window (for count scaling).
    pub cycles_per_window: f64,
}

impl ModelConfig {
    /// Defaults sized for a recorded run.
    pub fn for_run(run: &MultiplexRun) -> Self {
        ModelConfig {
            slices: 6,
            prior_mean: 1.0,
            prior_sd: 3.0,
            temporal_tau: 0.35,
            obs_sigma_floor: 0.02,
            inv_sigma_floor: 0.02,
            cycles_per_window: run.cycles_per_window,
        }
    }

    /// Fast EP settings matched to this model (used by the corrector).
    pub fn fast_ep(&self) -> EpConfig {
        EpConfig {
            max_sweeps: 4,
            damping: 0.7,
            tol: 0.05,
            min_var: 1e-10,
            mcmc: McmcConfig {
                burn_in: 70,
                samples: 150,
                initial_step: 1.0,
                target_acceptance: 0.44,
            },
        }
    }
}

/// Per-event normalization scales (expected window counts at nominal load).
fn event_scales(catalog: &Catalog, cycles_per_window: f64) -> Vec<f64> {
    catalog
        .iter()
        .map(|e| (catalog.nominal_scale(e.id) * cycles_per_window / 1.0e6).max(1.0))
        .collect()
}

/// One factor of a slice site.
enum Factor {
    /// Student-t observation on a single local variable.
    Obs { local: usize, dist: StudentT },
    /// Gaussian random walk between the previous and current slice values.
    Temporal {
        prev: usize,
        cur: usize,
        gauss: Gaussian,
    },
    /// Invariant residual factor over the current slice.
    Inv {
        lhs: Expr,
        rhs: Expr,
        gauss: Gaussian,
    },
}

/// An EP site for one time slice (plus the previous slice's variables,
/// which its temporal factors touch).
struct SliceSite {
    /// Global variable indices: `0..n_events` → this slice,
    /// `n_events..2·n_events` → previous slice (absent for slice 0).
    vars: Vec<usize>,
    factors: Vec<Factor>,
    /// CSR variable→factor index: `adj.row(i)` is the factor set touching
    /// local variable `i` — the sparse locality the MCMC delta path walks.
    adj: CsrAdjacency,
    hints: Vec<Option<f64>>,
    scale_hints: Vec<Option<f64>>,
    /// Denormalization scales, catalog-indexed (local i ↔ catalog event i).
    scales: std::sync::Arc<Vec<f64>>,
}

struct SliceEnv<'a> {
    x: &'a [f64],
    scales: &'a [f64],
}

impl EventEnv for SliceEnv<'_> {
    fn value(&self, id: EventId) -> f64 {
        self.x[id.index()] * self.scales[id.index()]
    }
}

impl SliceSite {
    fn factor_log_pdf(&self, f: &Factor, x: &[f64]) -> f64 {
        match f {
            Factor::Obs { local, dist } => dist.log_pdf(x[*local]),
            Factor::Temporal { prev, cur, gauss } => gauss.log_pdf(x[*cur] - x[*prev]),
            Factor::Inv { lhs, rhs, gauss } => {
                let env = SliceEnv {
                    x,
                    scales: &self.scales,
                };
                let l = lhs.eval(&env);
                let r = rhs.eval(&env);
                let rel = (l - r) / l.abs().max(r.abs()).max(1.0);
                gauss.log_pdf(rel)
            }
        }
    }
}

impl EpSite for SliceSite {
    fn vars(&self) -> &[usize] {
        &self.vars
    }

    fn log_likelihood(&self, x: &[f64]) -> f64 {
        self.factors.iter().map(|f| self.factor_log_pdf(f, x)).sum()
    }

    fn log_likelihood_delta(&self, x: &mut [f64], i: usize, new: f64) -> f64 {
        let old = x[i];
        let mut before = 0.0;
        for &fi in self.adj.row(i) {
            before += self.factor_log_pdf(&self.factors[fi as usize], x);
        }
        x[i] = new;
        let mut after = 0.0;
        for &fi in self.adj.row(i) {
            after += self.factor_log_pdf(&self.factors[fi as usize], x);
        }
        x[i] = old;
        after - before
    }

    fn init_hint(&self, i: usize) -> Option<f64> {
        self.hints[i]
    }

    fn scale_hint(&self, i: usize) -> Option<f64> {
        self.scale_hints[i]
    }
}

/// A built chunk model, ready to run.
pub struct ChunkModel {
    ep: ExpectationPropagation,
    n_events: usize,
    slices: usize,
    scales: Vec<f64>,
}

impl std::fmt::Debug for ChunkModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChunkModel")
            .field("n_events", &self.n_events)
            .field("slices", &self.slices)
            .finish()
    }
}

impl ChunkModel {
    /// Runs EP sequentially with a caller-supplied RNG and returns the
    /// posterior chunk.
    pub fn run<R: rand::Rng + ?Sized>(mut self, rng: &mut R) -> ChunkPosterior {
        let result = self.ep.run(rng);
        self.into_posterior(result)
    }

    /// Runs EP on the parallel engine farm (bit-identical for any
    /// `threads ≥ 1` given the same `seed`).
    pub fn run_parallel(mut self, seed: u64, threads: usize) -> ChunkPosterior {
        let result = self.ep.run_parallel(seed, threads);
        self.into_posterior(result)
    }

    fn into_posterior(self, result: bayesperf_inference::EpResult) -> ChunkPosterior {
        ChunkPosterior {
            marginals: result.marginals,
            n_events: self.n_events,
            slices: self.slices,
            scales: self.scales,
            converged: result.converged,
        }
    }

    /// Number of time slices modelled.
    pub fn slices(&self) -> usize {
        self.slices
    }
}

/// Posterior marginals of one chunk.
#[derive(Debug, Clone)]
pub struct ChunkPosterior {
    marginals: Vec<Gaussian>,
    n_events: usize,
    slices: usize,
    scales: Vec<f64>,
    /// Whether EP reached its tolerance.
    pub converged: bool,
}

impl ChunkPosterior {
    /// Number of time slices.
    pub fn slices(&self) -> usize {
        self.slices
    }

    /// Posterior of `event` at `slice`, in *count* units (denormalized).
    ///
    /// # Panics
    ///
    /// Panics if `slice` is out of range.
    pub fn posterior(&self, slice: usize, event: EventId) -> Gaussian {
        assert!(slice < self.slices, "slice {slice} out of range");
        let g = self.marginals[slice * self.n_events + event.index()];
        let s = self.scales[event.index()];
        Gaussian::new(g.mean * s, g.var * s * s)
    }

    /// Normalized (internal-unit) marginals of the final slice — used to
    /// chain chunks.
    pub fn last_slice_normalized(&self) -> Vec<Gaussian> {
        let base = (self.slices - 1) * self.n_events;
        self.marginals[base..base + self.n_events].to_vec()
    }
}

/// Builds the EP problem for `windows` (a chunk of consecutive multiplexing
/// windows, each a set of delivered samples).
///
/// `prior0`, when given, is the normalized per-event posterior of the
/// previous chunk's final slice; it becomes the (widened) prior of slice 0,
/// chaining inference across chunks.
///
/// # Panics
///
/// Panics if `windows` is empty.
pub fn build_chunk_model<W: AsRef<[Sample]>>(
    catalog: &Catalog,
    windows: &[W],
    cfg: &ModelConfig,
    prior0: Option<&[Gaussian]>,
    ep_config: EpConfig,
) -> ChunkModel {
    assert!(
        !windows.is_empty(),
        "chunk must contain at least one window"
    );
    let slices = windows.len();
    let ne = catalog.len();
    let scales = std::sync::Arc::new(event_scales(catalog, cfg.cycles_per_window));

    // Priors: slice 0 chains from the previous chunk when available.
    let drift = cfg.temporal_tau * cfg.temporal_tau;
    let mut prior = Vec::with_capacity(slices * ne);
    for t in 0..slices {
        for e in 0..ne {
            let g = match (t, prior0) {
                (0, Some(p)) => Gaussian::new(p[e].mean, p[e].var + drift),
                _ => Gaussian::new(cfg.prior_mean, cfg.prior_sd * cfg.prior_sd),
            };
            prior.push(g);
        }
    }

    let mut ep = ExpectationPropagation::new(prior, ep_config);
    let tau_gauss = Gaussian::new(0.0, cfg.temporal_tau * cfg.temporal_tau);

    for (t, window) in windows.iter().map(AsRef::as_ref).enumerate() {
        // Site variables: slice t first, then slice t-1 (if any).
        let mut vars: Vec<usize> = (0..ne).map(|e| t * ne + e).collect();
        if t > 0 {
            vars.extend((0..ne).map(|e| (t - 1) * ne + e));
        }
        let nlocal = vars.len();
        let mut factors = Vec::new();
        let mut hints = vec![None; nlocal];
        let mut scale_hints = vec![None; nlocal];

        // Observation factors.
        for s in window {
            let local = s.event.index();
            let dist = observation(s, scales[local], cfg.obs_sigma_floor);
            hints[local] = Some(dist.loc);
            scale_hints[local] = Some(dist.scale * 3.0);
            factors.push(Factor::Obs { local, dist });
        }

        // Invariant factors on slice t.
        for inv in catalog.invariants() {
            let sigma = inv.rel_noise.max(cfg.inv_sigma_floor);
            factors.push(Factor::Inv {
                lhs: inv.lhs.clone(),
                rhs: inv.rhs.clone(),
                gauss: Gaussian::new(0.0, sigma * sigma),
            });
        }

        // Temporal factors between slice t-1 and t.
        if t > 0 {
            for e in 0..ne {
                factors.push(Factor::Temporal {
                    prev: ne + e,
                    cur: e,
                    gauss: tau_gauss,
                });
            }
        }

        // Factor adjacency per local variable, flattened to CSR.
        let mut edges: Vec<(usize, u32)> = Vec::new();
        for (fi, f) in factors.iter().enumerate() {
            let fi = fi as u32;
            match f {
                Factor::Obs { local, .. } => edges.push((*local, fi)),
                Factor::Temporal { prev, cur, .. } => {
                    edges.push((*prev, fi));
                    edges.push((*cur, fi));
                }
                Factor::Inv { lhs, rhs, .. } => {
                    let mut ids = lhs.events();
                    ids.extend(rhs.events());
                    ids.sort_unstable();
                    ids.dedup();
                    for id in ids {
                        edges.push((id.index(), fi));
                    }
                }
            }
        }
        let adj = CsrAdjacency::from_edges(nlocal, edges.iter().copied());

        ep.add_site(SliceSite {
            vars,
            factors,
            adj,
            hints,
            scale_hints,
            scales: scales.clone(),
        });
    }

    ChunkModel {
        ep,
        n_events: ne,
        slices,
        scales: scales.as_ref().clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bayesperf_events::{Arch, Semantic};
    use bayesperf_simcpu::{pack_round_robin, ConstantTruth, NoiseModel, Pmu, PmuConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn run_fixture() -> (Catalog, MultiplexRun) {
        let cat = Catalog::new(Arch::X86SkyLake);
        let rates = bayesperf_events::synthesize(&cat, &bayesperf_events::FreeParams::default());
        let mut truth = ConstantTruth::new(rates);
        let pmu = Pmu::new(
            &cat,
            PmuConfig {
                noise: NoiseModel {
                    measurement_sigma: 0.02,
                    ..NoiseModel::none()
                },
                ..PmuConfig::for_catalog(&cat)
            },
        );
        let events = vec![
            cat.require(Semantic::L1dMisses),
            cat.require(Semantic::IcacheMisses),
            cat.require(Semantic::L2References),
            cat.require(Semantic::L2Misses),
            cat.require(Semantic::LlcHits),
            cat.require(Semantic::LlcMisses),
            cat.require(Semantic::BrInst),
            cat.require(Semantic::BrMisp),
        ];
        let schedule = pack_round_robin(&cat, &events).unwrap();
        let run = pmu.run_multiplexed(&mut truth, &schedule, 4);
        (cat, run)
    }

    #[test]
    fn model_builds_with_expected_shape() {
        let (cat, run) = run_fixture();
        let cfg = ModelConfig::for_run(&run);
        let windows: Vec<Vec<Sample>> = run.windows.iter().map(|w| w.samples.clone()).collect();
        let model = build_chunk_model(&cat, &windows, &cfg, None, cfg.fast_ep());
        assert_eq!(model.slices(), 4);
    }

    #[test]
    fn observed_events_posterior_tracks_truth() {
        let (cat, run) = run_fixture();
        let cfg = ModelConfig::for_run(&run);
        let windows: Vec<Vec<Sample>> = run.windows.iter().map(|w| w.samples.clone()).collect();
        let model = build_chunk_model(&cat, &windows, &cfg, None, cfg.fast_ep());
        let mut rng = StdRng::seed_from_u64(5);
        let post = model.run(&mut rng);

        let ev = cat.require(Semantic::L1dMisses);
        // L1dMisses is observed in window 0 (first config).
        let truth = run.windows[0].truth[ev.index()];
        let g = post.posterior(0, ev);
        let rel = (g.mean - truth).abs() / truth;
        assert!(
            rel < 0.15,
            "posterior {} vs truth {} ({rel})",
            g.mean,
            truth
        );
    }

    #[test]
    fn unobserved_event_inferred_via_invariants() {
        let (cat, run) = run_fixture();
        let cfg = ModelConfig::for_run(&run);
        let windows: Vec<Vec<Sample>> = run.windows.iter().map(|w| w.samples.clone()).collect();
        let model = build_chunk_model(&cat, &windows, &cfg, None, cfg.fast_ep());
        let mut rng = StdRng::seed_from_u64(6);
        let post = model.run(&mut rng);

        // LlcReferences is never scheduled, but llc_split (refs = hits +
        // misses) ties it to two observed events.
        let ev = cat.require(Semantic::LlcReferences);
        let truth = run.windows[1].truth[ev.index()];
        let g = post.posterior(1, ev);
        let rel = (g.mean - truth).abs() / truth.max(1.0);
        assert!(
            rel < 0.35,
            "unobserved posterior {} vs truth {} ({rel})",
            g.mean,
            truth
        );
    }

    #[test]
    fn posterior_uncertainty_larger_for_unobserved() {
        let (cat, run) = run_fixture();
        let cfg = ModelConfig::for_run(&run);
        let windows: Vec<Vec<Sample>> = run.windows.iter().map(|w| w.samples.clone()).collect();
        let model = build_chunk_model(&cat, &windows, &cfg, None, cfg.fast_ep());
        let mut rng = StdRng::seed_from_u64(7);
        let post = model.run(&mut rng);

        let observed = cat.require(Semantic::Cycles); // fixed, every window
        let unobserved = cat.require(Semantic::DtlbMisses); // no invariant to observed set
        let go = post.posterior(2, observed);
        let gu = post.posterior(2, unobserved);
        let rel_sd_obs = go.std_dev() / go.mean.abs().max(1.0);
        let rel_sd_un = gu.std_dev() / gu.mean.abs().max(1.0);
        assert!(
            rel_sd_un > rel_sd_obs,
            "unobserved rel-sd {rel_sd_un} should exceed observed {rel_sd_obs}"
        );
    }

    #[test]
    fn prior_chaining_carries_information() {
        let (cat, run) = run_fixture();
        let cfg = ModelConfig::for_run(&run);
        let windows: Vec<Vec<Sample>> = run.windows.iter().map(|w| w.samples.clone()).collect();
        let mut rng = StdRng::seed_from_u64(8);
        let first = build_chunk_model(&cat, &windows[..2], &cfg, None, cfg.fast_ep()).run(&mut rng);
        let chained = build_chunk_model(
            &cat,
            &windows[2..],
            &cfg,
            Some(&first.last_slice_normalized()),
            cfg.fast_ep(),
        );
        let post = chained.run(&mut rng);
        // An event only measured in chunk 1's windows still has a
        // non-prior posterior in chunk 2 thanks to chaining + temporal.
        let ev = cat.require(Semantic::L1dMisses);
        let truth = run.windows[2].truth[ev.index()];
        let g = post.posterior(0, ev);
        let rel = (g.mean - truth).abs() / truth;
        assert!(rel < 0.5, "chained posterior {} vs {truth}", g.mean);
    }

    #[test]
    #[should_panic(expected = "chunk must contain at least one window")]
    fn empty_chunk_rejected() {
        let cat = Catalog::new(Arch::X86SkyLake);
        let cfg = ModelConfig {
            slices: 0,
            prior_mean: 1.0,
            prior_sd: 3.0,
            temporal_tau: 0.3,
            obs_sigma_floor: 0.02,
            inv_sigma_floor: 0.02,
            cycles_per_window: 1e7,
        };
        build_chunk_model::<Vec<Sample>>(&cat, &[], &cfg, None, cfg.fast_ep());
    }
}
