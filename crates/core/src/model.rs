//! Building the unified factor graph over `k` time slices as EP sites.
//!
//! The model's variables are *(event, slice)* pairs in normalized units
//! (window counts divided by a per-event scale derived from the catalog's
//! nominal magnitudes). Each time slice becomes one EP site — the paper's
//! data partition — containing three kinds of factors:
//!
//! * **observation** factors (§4.2): a scaled/shifted Student-t per sample
//!   delivered in that slice;
//! * **invariant** factors: for every microarchitectural invariant, a
//!   Gaussian on the *relative* residual `((lhs − rhs)/max(|lhs|,|rhs|,1))`
//!   evaluated on the denormalized slice state;
//! * **temporal** factors: a Gaussian random-walk coupling each event's
//!   value to its value in the preceding slice — this is what lets samples
//!   of overlapping events in adjacent configurations inform unscheduled
//!   events (Fig. 2's `⇝` edges).
//!
//! # Engine reuse across windows
//!
//! The factor-graph *topology* is a pure function of the catalog: every
//! slice has one observation slot per event (inactive slots contribute
//! zero likelihood), the invariant set is fixed, and the temporal chain
//! depends only on the slice count. Only the observed counts change from
//! window to window. [`ChunkEngine`] therefore builds the sites, the CSR
//! factor adjacency and the EP engine (with its cached sweep schedule)
//! **once**, and per window merely swaps the observation slots and either
//! [`ChunkEngine::load_warm`]s (keep EP messages — the incremental
//! corrector path) or [`ChunkEngine::load_cold`]s (reset messages — the
//! independent-chunks path). [`build_chunk_model`] wraps a single-shot
//! cold engine for the legacy build-per-chunk API.

use crate::error_model::{extrapolated_observation, gauge_observation, observation};
use bayesperf_events::{Catalog, EventEnv, EventId, Expr, SourceNoise};
use bayesperf_graph::CsrAdjacency;
use bayesperf_inference::{
    AdaptiveBudget, EpConfig, EpRunStats, EpSite, ExpectationPropagation, Gaussian, McmcConfig,
    StudentT,
};
use bayesperf_simcpu::{MultiplexRun, Sample};

/// Model hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelConfig {
    /// Time slices (windows) per inference chunk — the paper's `k`.
    pub slices: usize,
    /// Prior mean in normalized units (1 = the catalog's nominal magnitude).
    pub prior_mean: f64,
    /// Prior standard deviation in normalized units.
    pub prior_sd: f64,
    /// Random-walk standard deviation of the temporal factors (normalized).
    pub temporal_tau: f64,
    /// Relative noise floor of observation factors.
    pub obs_sigma_floor: f64,
    /// Relative scale of observation factors built from *extrapolated*
    /// samples (`sub_n == 0`): an unscheduled slice's carry-forward
    /// estimate enters the model with this much noise instead of
    /// masquerading as a real read. The engine floors it at
    /// `obs_sigma_floor` — a carry-forward can never claim to be tighter
    /// than a real read, whatever this field is set to.
    pub extrap_sigma: f64,
    /// Noise floor of invariant factors (on the relative residual).
    pub inv_sigma_floor: f64,
    /// Core cycles per multiplexing window (for count scaling).
    pub cycles_per_window: f64,
}

impl ModelConfig {
    /// Defaults sized for a recorded run.
    pub fn for_run(run: &MultiplexRun) -> Self {
        ModelConfig {
            slices: 6,
            prior_mean: 1.0,
            prior_sd: 3.0,
            temporal_tau: 0.35,
            obs_sigma_floor: 0.02,
            extrap_sigma: 0.5,
            inv_sigma_floor: 0.02,
            cycles_per_window: run.cycles_per_window,
        }
    }

    /// Fast EP settings matched to this model (used by the corrector):
    /// 4 cold sweeps, 2 warm sweeps, and an adaptive MCMC floor of roughly
    /// a third of the full budget for warm sites whose cavity is quiet.
    pub fn fast_ep(&self) -> EpConfig {
        EpConfig {
            max_sweeps: 4,
            warm_max_sweeps: 2,
            damping: 0.7,
            tol: 0.05,
            min_var: 1e-10,
            max_precision_ratio: 1e6,
            mcmc: McmcConfig {
                burn_in: 70,
                samples: 150,
                initial_step: 1.0,
                target_acceptance: 0.44,
            },
            adaptive: Some(AdaptiveBudget {
                move_tol: 2.5,
                jump_tol: 40.0,
                burn_in: 18,
                samples: 40,
            }),
            warm_decay: 1.0,
            warm_escalation: 0.25,
        }
    }
}

/// Per-event normalization scales (expected window counts at nominal load).
fn event_scales(catalog: &Catalog, cycles_per_window: f64) -> Vec<f64> {
    catalog
        .iter()
        .map(|e| (catalog.nominal_scale(e.id) * cycles_per_window / 1.0e6).max(1.0))
        .collect()
}

/// One factor of a slice site.
enum Factor {
    /// Observation slot on a single local variable; the Student-t lives in
    /// the site's `obs` table and is swapped per window (`None` = the
    /// event was not sampled in this window; zero likelihood).
    Obs { local: usize },
    /// Gaussian random walk between the previous and current slice values.
    Temporal {
        prev: usize,
        cur: usize,
        gauss: Gaussian,
    },
    /// Invariant residual factor over the current slice.
    Inv {
        lhs: Expr,
        rhs: Expr,
        gauss: Gaussian,
    },
}

/// An EP site for one time slice (plus the previous slice's variables,
/// which its temporal factors touch).
struct SliceSite {
    /// Global variable indices: `0..n_events` → this slice,
    /// `n_events..2·n_events` → previous slice (absent for slice 0).
    vars: Vec<usize>,
    factors: Vec<Factor>,
    /// Per-event observation slot (indexed by local variable `0..n_events`).
    obs: Vec<Option<StudentT>>,
    /// CSR variable→factor index: `adj.row(i)` is the factor set touching
    /// local variable `i` — the sparse locality the MCMC delta path walks.
    adj: CsrAdjacency,
    hints: Vec<Option<f64>>,
    scale_hints: Vec<Option<f64>>,
    /// Denormalization scales, catalog-indexed (local i ↔ catalog event i).
    scales: std::sync::Arc<Vec<f64>>,
    /// Per-source error models, indexed by raw [`bayesperf_events::SourceId`]
    /// (base catalogs: just the PMU's `StudentT`).
    source_noise: std::sync::Arc<Vec<SourceNoise>>,
}

struct SliceEnv<'a> {
    x: &'a [f64],
    scales: &'a [f64],
}

impl EventEnv for SliceEnv<'_> {
    fn value(&self, id: EventId) -> f64 {
        self.x[id.index()] * self.scales[id.index()]
    }
}

impl SliceSite {
    fn factor_log_pdf(&self, f: &Factor, x: &[f64]) -> f64 {
        match f {
            Factor::Obs { local } => match &self.obs[*local] {
                Some(dist) => dist.log_pdf(x[*local]),
                None => 0.0,
            },
            Factor::Temporal { prev, cur, gauss } => gauss.log_pdf(x[*cur] - x[*prev]),
            Factor::Inv { lhs, rhs, gauss } => {
                let env = SliceEnv {
                    x,
                    scales: &self.scales,
                };
                let l = lhs.eval(&env);
                let r = rhs.eval(&env);
                let rel = (l - r) / l.abs().max(r.abs()).max(1.0);
                gauss.log_pdf(rel)
            }
        }
    }

    /// Swaps this slice's observations to `window` (allocation-free): all
    /// slots and hints reset, then sampled events re-filled.
    ///
    /// A real read ([`observation`]) and a scheduler extrapolation
    /// ([`extrapolated_observation`], `sub_n == 0`) land in the same slot
    /// but with very different widths: the extrapolated factor carries
    /// `extrap_sigma` relative noise and minimal degrees of freedom, so an
    /// unscheduled slice is anchored without being mistaken for data.
    ///
    /// One observation slot per event: a window is expected to carry at
    /// most one sample per event (the PMU delivers one merged reading per
    /// window — `Sample` already aggregates the PMI sub-samples). If a
    /// caller passes duplicates anyway, the last one wins; callers that
    /// need multiple readings per event per window should merge them into
    /// one `Sample` (sub-sample statistics combined) first.
    fn set_window(&mut self, window: &[Sample], sigma_floor: f64, extrap_sigma: f64) {
        for o in &mut self.obs {
            *o = None;
        }
        for h in &mut self.hints {
            *h = None;
        }
        for s in &mut self.scale_hints {
            *s = None;
        }
        for s in window {
            let local = s.event.index();
            // Per-source dispatch: the sample's source tag picks the error
            // model the factor is built from. Extrapolations always take
            // the wide carry-forward factor, whatever the source; an
            // unknown source id (newer producer than catalog) degrades to
            // the PMU model rather than panicking the inference thread.
            let noise = self
                .source_noise
                .get(s.source.index())
                .copied()
                .unwrap_or(SourceNoise::StudentT);
            let dist = if s.is_extrapolated() {
                extrapolated_observation(s, self.scales[local], extrap_sigma)
            } else {
                match noise {
                    SourceNoise::StudentT => observation(s, self.scales[local], sigma_floor),
                    SourceNoise::Gaussian { .. } => {
                        gauge_observation(s, self.scales[local], noise.rel_scale(), sigma_floor)
                    }
                    SourceNoise::HeavyTail { rel_sigma } => {
                        // Low-trust source: same wide heavy-tailed factor
                        // an extrapolation gets, at the source's scale.
                        extrapolated_observation(s, self.scales[local], rel_sigma)
                    }
                }
            };
            self.hints[local] = Some(dist.loc);
            self.scale_hints[local] = Some(dist.scale * 3.0);
            self.obs[local] = Some(dist);
        }
    }
}

impl EpSite for SliceSite {
    fn vars(&self) -> &[usize] {
        &self.vars
    }

    fn log_likelihood(&self, x: &[f64]) -> f64 {
        self.factors.iter().map(|f| self.factor_log_pdf(f, x)).sum()
    }

    fn log_likelihood_delta(&self, x: &mut [f64], i: usize, new: f64) -> f64 {
        let old = x[i];
        let mut before = 0.0;
        for &fi in self.adj.row(i) {
            before += self.factor_log_pdf(&self.factors[fi as usize], x);
        }
        x[i] = new;
        let mut after = 0.0;
        for &fi in self.adj.row(i) {
            after += self.factor_log_pdf(&self.factors[fi as usize], x);
        }
        x[i] = old;
        after - before
    }

    fn init_hint(&self, i: usize) -> Option<f64> {
        self.hints[i]
    }

    fn scale_hint(&self, i: usize) -> Option<f64> {
        self.scale_hints[i]
    }
}

/// A persistent per-catalog inference engine: the factor-graph topology,
/// EP sites, sweep schedule and all scratch buffers, reused across
/// windows. See the module docs for the warm/cold lifecycle.
pub struct ChunkEngine {
    ep: ExpectationPropagation,
    n_events: usize,
    slices: usize,
    scales: std::sync::Arc<Vec<f64>>,
    /// Reused per-load prior buffer (`slices · n_events`).
    prior_buf: Vec<Gaussian>,
    /// Chained slice-0 prior (normalized, `n_events`); active when
    /// `has_chain`.
    chain_buf: Vec<Gaussian>,
    has_chain: bool,
    base_prior: Gaussian,
    drift: f64,
    obs_sigma_floor: f64,
    extrap_sigma: f64,
    /// Last observed (normalized) value per event across all loads
    /// (`NAN` = never observed) — the change-point detector's history.
    last_obs: Vec<f64>,
    /// Scratch copy of `last_obs` for chronological scoring.
    score_buf: Vec<f64>,
    /// Per-slice jump flags of the last adaptive load (reused buffer).
    jump_flags: Vec<bool>,
    /// Per-window (total, jumped) observation counts of the last jump
    /// scan (reused buffer).
    jump_counts: Vec<(u32, u32)>,
}

impl std::fmt::Debug for ChunkEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChunkEngine")
            .field("n_events", &self.n_events)
            .field("slices", &self.slices)
            .field("warm", &self.ep.is_warm())
            .finish()
    }
}

impl ChunkEngine {
    /// Builds the engine for `cfg.slices` time slices.
    pub fn new(catalog: &Catalog, cfg: &ModelConfig, ep_config: EpConfig) -> Self {
        Self::with_slices(catalog, cfg, ep_config, cfg.slices.max(1))
    }

    /// Builds the engine for an explicit slice count (used by
    /// [`build_chunk_model`] for ragged tail chunks).
    ///
    /// # Panics
    ///
    /// Panics if `slices` is zero.
    pub fn with_slices(
        catalog: &Catalog,
        cfg: &ModelConfig,
        ep_config: EpConfig,
        slices: usize,
    ) -> Self {
        assert!(slices > 0, "chunk must contain at least one window");
        let ne = catalog.len();
        let scales = std::sync::Arc::new(event_scales(catalog, cfg.cycles_per_window));
        let source_noise: std::sync::Arc<Vec<SourceNoise>> =
            std::sync::Arc::new(catalog.sources().iter().map(|s| s.noise).collect());
        let base_prior = Gaussian::new(cfg.prior_mean, cfg.prior_sd * cfg.prior_sd);
        let prior = vec![base_prior; slices * ne];
        let mut ep = ExpectationPropagation::new(prior.clone(), ep_config);
        let tau_gauss = Gaussian::new(0.0, cfg.temporal_tau * cfg.temporal_tau);

        for t in 0..slices {
            // Site variables: slice t first, then slice t-1 (if any).
            let mut vars: Vec<usize> = (0..ne).map(|e| t * ne + e).collect();
            if t > 0 {
                vars.extend((0..ne).map(|e| (t - 1) * ne + e));
            }
            let nlocal = vars.len();
            let mut factors = Vec::new();

            // One observation slot per event of slice t; slots activate
            // when a window delivers a sample for the event.
            for e in 0..ne {
                factors.push(Factor::Obs { local: e });
            }

            // Invariant factors on slice t.
            for inv in catalog.invariants() {
                let sigma = inv.rel_noise.max(cfg.inv_sigma_floor);
                factors.push(Factor::Inv {
                    lhs: inv.lhs.clone(),
                    rhs: inv.rhs.clone(),
                    gauss: Gaussian::new(0.0, sigma * sigma),
                });
            }

            // Temporal factors between slice t-1 and t.
            if t > 0 {
                for e in 0..ne {
                    factors.push(Factor::Temporal {
                        prev: ne + e,
                        cur: e,
                        gauss: tau_gauss,
                    });
                }
            }

            // Factor adjacency per local variable, flattened to CSR.
            let mut edges: Vec<(usize, u32)> = Vec::new();
            for (fi, f) in factors.iter().enumerate() {
                let fi = fi as u32;
                match f {
                    Factor::Obs { local } => edges.push((*local, fi)),
                    Factor::Temporal { prev, cur, .. } => {
                        edges.push((*prev, fi));
                        edges.push((*cur, fi));
                    }
                    Factor::Inv { lhs, rhs, .. } => {
                        let mut ids = lhs.events();
                        ids.extend(rhs.events());
                        ids.sort_unstable();
                        ids.dedup();
                        for id in ids {
                            edges.push((id.index(), fi));
                        }
                    }
                }
            }
            let adj = CsrAdjacency::from_edges(nlocal, edges.iter().copied());

            ep.add_site(SliceSite {
                vars,
                factors,
                obs: vec![None; ne],
                adj,
                hints: vec![None; nlocal],
                scale_hints: vec![None; nlocal],
                scales: scales.clone(),
                source_noise: source_noise.clone(),
            });
        }

        ChunkEngine {
            ep,
            n_events: ne,
            slices,
            scales,
            prior_buf: prior,
            chain_buf: vec![base_prior; ne],
            has_chain: false,
            last_obs: vec![f64::NAN; ne],
            score_buf: Vec::with_capacity(ne),
            jump_flags: Vec::with_capacity(slices),
            jump_counts: Vec::with_capacity(slices),
            base_prior,
            drift: cfg.temporal_tau * cfg.temporal_tau,
            obs_sigma_floor: cfg.obs_sigma_floor,
            extrap_sigma: cfg.extrap_sigma,
        }
    }

    /// Number of time slices modelled.
    pub fn slices(&self) -> usize {
        self.slices
    }

    /// Number of catalog events per slice.
    pub fn n_events(&self) -> usize {
        self.n_events
    }

    /// Sets the chained slice-0 prior (normalized units; length
    /// `n_events`). The random-walk drift is added at load time.
    ///
    /// # Panics
    ///
    /// Panics if `prior.len() != n_events`.
    pub fn set_chain_prior(&mut self, prior: &[Gaussian]) {
        assert_eq!(prior.len(), self.n_events, "chain prior length mismatch");
        self.chain_buf.copy_from_slice(prior);
        self.has_chain = true;
    }

    /// Sets the chained slice-0 prior from **count-unit** marginals (the
    /// denormalized form posterior snapshots publish) — the warm-restart
    /// seeding path: a supervisor recovering a crashed corrector replays
    /// the last published snapshot here. Entries with non-finite or
    /// non-positive moments fall back to the base prior (a crash may have
    /// been *caused* by poisoned state; recovery must not re-ingest it).
    /// Returns how many events were actually seeded from `prior`.
    ///
    /// # Panics
    ///
    /// Panics if `prior.len() != n_events`.
    pub fn set_chain_prior_counts(&mut self, prior: &[Gaussian]) -> usize {
        assert_eq!(prior.len(), self.n_events, "chain prior length mismatch");
        let mut seeded = 0;
        for (e, g) in prior.iter().enumerate() {
            let s = self.scales[e];
            let mean = g.mean / s;
            let var = g.var / (s * s);
            self.chain_buf[e] = if mean.is_finite() && var.is_finite() && var > 0.0 {
                seeded += 1;
                Gaussian::new(mean, var)
            } else {
                self.base_prior
            };
        }
        self.has_chain = true;
        seeded
    }

    /// Captures the current posterior of the final slice as the next
    /// load's chained slice-0 prior (allocation-free).
    pub fn capture_chain_prior(&mut self) {
        let base = (self.slices - 1) * self.n_events;
        for e in 0..self.n_events {
            self.chain_buf[e] = self.ep.marginal(base + e);
        }
        self.has_chain = true;
    }

    /// The chained prior captured by
    /// [`ChunkEngine::capture_chain_prior`]/[`ChunkEngine::set_chain_prior`]
    /// (normalized units).
    pub fn chain_prior(&self) -> &[Gaussian] {
        &self.chain_buf
    }

    /// Forgets the chained prior: the next load starts from the base prior.
    pub fn clear_chain_prior(&mut self) {
        self.has_chain = false;
    }

    /// Composes the per-variable prior for the next load into `prior_buf`.
    fn compose_prior(&mut self) {
        for t in 0..self.slices {
            for e in 0..self.n_events {
                self.prior_buf[t * self.n_events + e] = if t == 0 && self.has_chain {
                    let p = self.chain_buf[e];
                    Gaussian::new(p.mean, p.var + self.drift)
                } else {
                    self.base_prior
                };
            }
        }
    }

    /// Swaps each slice's observations to the corresponding window.
    fn swap_observations<W: AsRef<[Sample]>>(&mut self, windows: &[W]) {
        assert_eq!(
            windows.len(),
            self.slices,
            "engine built for {} slices, got {} windows",
            self.slices,
            windows.len()
        );
        let floor = self.obs_sigma_floor;
        // The documented invariant, enforced rather than trusted: an
        // extrapolation is never tighter than a real read's noise floor.
        let extrap = self.extrap_sigma.max(self.obs_sigma_floor);
        for (t, w) in windows.iter().enumerate() {
            for s in w.as_ref() {
                // Extrapolations are estimates, not reads: they must not
                // enter the change-point history, or a carry-forward of a
                // stale level would mask the very jump it smeared over.
                if s.is_extrapolated() {
                    continue;
                }
                let e = s.event.index();
                self.last_obs[e] = (s.value / self.scales[e]).max(1e-9);
            }
            let site = self
                .ep
                .site_mut::<SliceSite>(t)
                .expect("slice sites are SliceSite");
            site.set_window(w.as_ref(), floor, extrap);
        }
    }

    /// Change-point score of a window chunk: the fraction of its
    /// observations whose value moved by more than a factor of `ratio`
    /// (up or down) since the *same event* was last observed — a purely
    /// data-driven detector. Near zero in steady state (measurement noise
    /// and within-phase modulation are well under 2×); jumps toward 1 at
    /// a workload phase change, where warm-starting would carry a
    /// confidently-wrong approximation forward. Observations are compared
    /// chronologically (intra-chunk jumps count too) against history
    /// recorded by previous loads. Allocation-free after the first call.
    ///
    /// # Panics
    ///
    /// Panics if `ratio <= 1`.
    pub fn jump_score<W: AsRef<[Sample]>>(&mut self, windows: &[W], ratio: f64) -> f64 {
        self.scan_jumps(windows, ratio);
        let (total, jumped) = self
            .jump_counts
            .iter()
            .fold((0u32, 0u32), |(t, j), &(wt, wj)| (t + wt, j + wj));
        if total == 0 {
            0.0
        } else {
            jumped as f64 / total as f64
        }
    }

    /// The chronological jump scan shared by [`ChunkEngine::jump_score`]
    /// and [`ChunkEngine::load_warm_adaptive`]: walks every observation of
    /// `windows` in order, compares it against the same event's previous
    /// observation (seeded from the engine's recorded history, rolled
    /// forward within the scan), and records per window how many
    /// comparisons were made and how many moved by more than a factor of
    /// `ratio` up or down (into the reusable `jump_counts` buffer). The
    /// engine's recorded history itself is *not* modified — that happens
    /// when the windows are actually loaded.
    ///
    /// # Panics
    ///
    /// Panics if `ratio <= 1`.
    fn scan_jumps<W: AsRef<[Sample]>>(&mut self, windows: &[W], ratio: f64) {
        assert!(ratio > 1.0, "jump ratio must exceed 1, got {ratio}");
        self.score_buf.clear();
        self.score_buf.extend_from_slice(&self.last_obs);
        self.jump_counts.clear();
        for w in windows {
            let mut total = 0u32;
            let mut jumped = 0u32;
            for s in w.as_ref() {
                if s.is_extrapolated() {
                    continue; // carry-forwards say nothing about jumps
                }
                let e = s.event.index();
                let loc = (s.value / self.scales[e]).max(1e-9);
                let prev = self.score_buf[e];
                if prev.is_finite() {
                    total += 1;
                    let r = loc / prev.max(1e-9);
                    if r > ratio || r < 1.0 / ratio {
                        jumped += 1;
                    }
                }
                self.score_buf[e] = loc;
            }
            self.jump_counts.push((total, jumped));
        }
    }

    /// Loads a window chunk cold: observations swapped, EP messages
    /// discarded, prior re-seated (chained slice 0 when a chain prior is
    /// set). The next run pays the full sweep/MCMC budget.
    pub fn load_cold<W: AsRef<[Sample]>>(&mut self, windows: &[W]) {
        self.swap_observations(windows);
        self.compose_prior();
        let ChunkEngine { ep, prior_buf, .. } = self;
        ep.cold_reset(prior_buf);
    }

    /// Loads a window chunk warm: observations swapped, EP messages
    /// **kept** as the starting approximation, prior re-seated. The next
    /// run converges in 1–2 sweeps with adaptive MCMC budgets — the
    /// incremental sliding-window path.
    pub fn load_warm<W: AsRef<[Sample]>>(&mut self, windows: &[W]) {
        self.swap_observations(windows);
        self.compose_prior();
        let ChunkEngine { ep, prior_buf, .. } = self;
        ep.warm_start(prior_buf);
    }

    /// [`ChunkEngine::load_warm`] with selective change-point resets: any
    /// slice whose window moved more than a factor of `jump_ratio` on at
    /// least `jump_frac` of its observations (vs each event's previous
    /// observation, scanned chronologically) has the sites touching its
    /// variables reset to the vacuous approximation. Those sites then run
    /// with the full cold budget and vote to extend the warm run, while
    /// unaffected slices keep the cheap warm path — a data phase change
    /// costs a partial re-solve instead of a whole-model cold start.
    /// Returns the number of sites reset. Allocation-free after warm-up.
    ///
    /// # Panics
    ///
    /// Panics if `jump_ratio <= 1` or the window count mismatches.
    pub fn load_warm_adaptive<W: AsRef<[Sample]>>(
        &mut self,
        windows: &[W],
        jump_ratio: f64,
        jump_frac: f64,
    ) -> usize {
        // Per-slice jump flags, scanned chronologically against the last
        // observation of each event (before this chunk updates them).
        self.scan_jumps(windows, jump_ratio);
        let ChunkEngine {
            jump_counts,
            jump_flags,
            ..
        } = self;
        jump_flags.clear();
        for &(total, jumped) in jump_counts.iter() {
            jump_flags.push(total > 0 && jumped as f64 > jump_frac * total as f64);
        }

        self.swap_observations(windows);
        self.compose_prior();
        // A jumped slice t invalidates every site whose scope contains its
        // variables: site t (its own observations and backward temporal
        // factors) and site t+1 (the forward temporal factors).
        let mut reset = 0;
        for k in 0..self.slices {
            let flagged = self.jump_flags[k] || (k > 0 && self.jump_flags[k - 1]);
            if flagged {
                self.ep.reset_site(k);
                reset += 1;
            }
        }
        let ChunkEngine { ep, prior_buf, .. } = self;
        ep.warm_start(prior_buf);
        reset
    }

    /// Runs EP on the engine farm (allocation-free after the first run).
    pub fn run_farm(&mut self, seed: u64, threads: usize) -> EpRunStats {
        self.ep.run_farm(seed, threads)
    }

    /// Posterior of `event` at `slice`, in *count* units (denormalized).
    ///
    /// # Panics
    ///
    /// Panics if `slice` is out of range.
    pub fn posterior(&self, slice: usize, event: EventId) -> Gaussian {
        assert!(slice < self.slices, "slice {slice} out of range");
        let g = self.ep.marginal(slice * self.n_events + event.index());
        let s = self.scales[event.index()];
        Gaussian::new(g.mean * s, g.var * s * s)
    }

    /// Snapshot of the current posterior as an owned [`ChunkPosterior`]
    /// (allocates; the streaming corrector reads
    /// [`ChunkEngine::posterior`] instead).
    pub fn to_posterior(&self, converged: bool) -> ChunkPosterior {
        let n = self.slices * self.n_events;
        ChunkPosterior {
            marginals: (0..n).map(|v| self.ep.marginal(v)).collect(),
            n_events: self.n_events,
            slices: self.slices,
            scales: self.scales.as_ref().clone(),
            converged,
        }
    }
}

/// A built chunk model, ready to run — the legacy single-shot wrapper over
/// a cold [`ChunkEngine`].
pub struct ChunkModel {
    engine: ChunkEngine,
}

impl std::fmt::Debug for ChunkModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChunkModel")
            .field("n_events", &self.engine.n_events)
            .field("slices", &self.engine.slices)
            .finish()
    }
}

impl ChunkModel {
    /// Runs EP sequentially with a caller-supplied RNG and returns the
    /// posterior chunk.
    pub fn run<R: rand::Rng + ?Sized>(mut self, rng: &mut R) -> ChunkPosterior {
        let result = self.engine.ep.run(rng);
        self.engine.to_posterior(result.converged)
    }

    /// Runs EP on the parallel engine farm (bit-identical for any
    /// `threads ≥ 1` given the same `seed`).
    pub fn run_parallel(self, seed: u64, threads: usize) -> ChunkPosterior {
        self.run_parallel_with_stats(seed, threads).0
    }

    /// [`ChunkModel::run_parallel`] plus the run's work counters.
    pub fn run_parallel_with_stats(
        mut self,
        seed: u64,
        threads: usize,
    ) -> (ChunkPosterior, EpRunStats) {
        let stats = self.engine.run_farm(seed, threads);
        (self.engine.to_posterior(stats.converged), stats)
    }

    /// Number of time slices modelled.
    pub fn slices(&self) -> usize {
        self.engine.slices()
    }
}

/// Posterior marginals of one chunk.
#[derive(Debug, Clone)]
pub struct ChunkPosterior {
    marginals: Vec<Gaussian>,
    n_events: usize,
    slices: usize,
    scales: Vec<f64>,
    /// Whether EP reached its tolerance.
    pub converged: bool,
}

impl ChunkPosterior {
    /// Number of time slices.
    pub fn slices(&self) -> usize {
        self.slices
    }

    /// Posterior of `event` at `slice`, in *count* units (denormalized).
    ///
    /// # Panics
    ///
    /// Panics if `slice` is out of range.
    pub fn posterior(&self, slice: usize, event: EventId) -> Gaussian {
        assert!(slice < self.slices, "slice {slice} out of range");
        let g = self.marginals[slice * self.n_events + event.index()];
        let s = self.scales[event.index()];
        Gaussian::new(g.mean * s, g.var * s * s)
    }

    /// Normalized (internal-unit) marginals of the final slice — used to
    /// chain chunks.
    pub fn last_slice_normalized(&self) -> Vec<Gaussian> {
        let base = (self.slices - 1) * self.n_events;
        self.marginals[base..base + self.n_events].to_vec()
    }
}

/// Builds the EP problem for `windows` (a chunk of consecutive multiplexing
/// windows, each a set of delivered samples).
///
/// `prior0`, when given, is the normalized per-event posterior of the
/// previous chunk's final slice; it becomes the (widened) prior of slice 0,
/// chaining inference across chunks.
///
/// # Panics
///
/// Panics if `windows` is empty.
pub fn build_chunk_model<W: AsRef<[Sample]>>(
    catalog: &Catalog,
    windows: &[W],
    cfg: &ModelConfig,
    prior0: Option<&[Gaussian]>,
    ep_config: EpConfig,
) -> ChunkModel {
    assert!(
        !windows.is_empty(),
        "chunk must contain at least one window"
    );
    let mut engine = ChunkEngine::with_slices(catalog, cfg, ep_config, windows.len());
    if let Some(p) = prior0 {
        engine.set_chain_prior(p);
    }
    engine.load_cold(windows);
    ChunkModel { engine }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bayesperf_events::{Arch, Semantic};
    use bayesperf_simcpu::{pack_round_robin, ConstantTruth, NoiseModel, Pmu, PmuConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn run_fixture() -> (Catalog, MultiplexRun) {
        let cat = Catalog::new(Arch::X86SkyLake);
        let rates = bayesperf_events::synthesize(&cat, &bayesperf_events::FreeParams::default());
        let mut truth = ConstantTruth::new(rates);
        let pmu = Pmu::new(
            &cat,
            PmuConfig {
                noise: NoiseModel {
                    measurement_sigma: 0.02,
                    ..NoiseModel::none()
                },
                ..PmuConfig::for_catalog(&cat)
            },
        );
        let events = vec![
            cat.require(Semantic::L1dMisses),
            cat.require(Semantic::IcacheMisses),
            cat.require(Semantic::L2References),
            cat.require(Semantic::L2Misses),
            cat.require(Semantic::LlcHits),
            cat.require(Semantic::LlcMisses),
            cat.require(Semantic::BrInst),
            cat.require(Semantic::BrMisp),
        ];
        let schedule = pack_round_robin(&cat, &events).unwrap();
        let run = pmu.run_multiplexed(&mut truth, &schedule, 4);
        (cat, run)
    }

    #[test]
    fn model_builds_with_expected_shape() {
        let (cat, run) = run_fixture();
        let cfg = ModelConfig::for_run(&run);
        let windows: Vec<Vec<Sample>> = run.windows.iter().map(|w| w.samples.clone()).collect();
        let model = build_chunk_model(&cat, &windows, &cfg, None, cfg.fast_ep());
        assert_eq!(model.slices(), 4);
    }

    #[test]
    fn observed_events_posterior_tracks_truth() {
        let (cat, run) = run_fixture();
        let cfg = ModelConfig::for_run(&run);
        let windows: Vec<Vec<Sample>> = run.windows.iter().map(|w| w.samples.clone()).collect();
        let model = build_chunk_model(&cat, &windows, &cfg, None, cfg.fast_ep());
        let mut rng = StdRng::seed_from_u64(5);
        let post = model.run(&mut rng);

        let ev = cat.require(Semantic::L1dMisses);
        // L1dMisses is observed in window 0 (first config).
        let truth = run.windows[0].truth[ev.index()];
        let g = post.posterior(0, ev);
        let rel = (g.mean - truth).abs() / truth;
        assert!(
            rel < 0.15,
            "posterior {} vs truth {} ({rel})",
            g.mean,
            truth
        );
    }

    #[test]
    fn unobserved_event_inferred_via_invariants() {
        let (cat, run) = run_fixture();
        let cfg = ModelConfig::for_run(&run);
        let windows: Vec<Vec<Sample>> = run.windows.iter().map(|w| w.samples.clone()).collect();
        let model = build_chunk_model(&cat, &windows, &cfg, None, cfg.fast_ep());
        let mut rng = StdRng::seed_from_u64(6);
        let post = model.run(&mut rng);

        // LlcReferences is never scheduled, but llc_split (refs = hits +
        // misses) ties it to two observed events.
        let ev = cat.require(Semantic::LlcReferences);
        let truth = run.windows[1].truth[ev.index()];
        let g = post.posterior(1, ev);
        let rel = (g.mean - truth).abs() / truth.max(1.0);
        assert!(
            rel < 0.35,
            "unobserved posterior {} vs truth {} ({rel})",
            g.mean,
            truth
        );
    }

    #[test]
    fn posterior_uncertainty_larger_for_unobserved() {
        let (cat, run) = run_fixture();
        let cfg = ModelConfig::for_run(&run);
        let windows: Vec<Vec<Sample>> = run.windows.iter().map(|w| w.samples.clone()).collect();
        let model = build_chunk_model(&cat, &windows, &cfg, None, cfg.fast_ep());
        let mut rng = StdRng::seed_from_u64(7);
        let post = model.run(&mut rng);

        let observed = cat.require(Semantic::Cycles); // fixed, every window
        let unobserved = cat.require(Semantic::DtlbMisses); // no invariant to observed set
        let go = post.posterior(2, observed);
        let gu = post.posterior(2, unobserved);
        let rel_sd_obs = go.std_dev() / go.mean.abs().max(1.0);
        let rel_sd_un = gu.std_dev() / gu.mean.abs().max(1.0);
        assert!(
            rel_sd_un > rel_sd_obs,
            "unobserved rel-sd {rel_sd_un} should exceed observed {rel_sd_obs}"
        );
    }

    #[test]
    fn extrapolated_slices_keep_inflated_uncertainty() {
        // A driven run where group 0 runs only in window 0 and its events
        // are carry-forward extrapolations afterwards. Treating those
        // carry-forwards as real reads would collapse the posterior around
        // a value that is not a measurement; the extrapolated observation
        // model must keep the uncertainty inflated instead.
        let cat = Catalog::new(Arch::X86SkyLake);
        let rates = bayesperf_events::synthesize(&cat, &bayesperf_events::FreeParams::default());
        let mut truth = ConstantTruth::new(rates.clone());
        let pmu = Pmu::new(
            &cat,
            PmuConfig {
                noise: NoiseModel {
                    measurement_sigma: 0.02,
                    ..NoiseModel::none()
                },
                ..PmuConfig::for_catalog(&cat)
            },
        );
        // DtlbMisses has no invariant path to the always-measured fixed
        // counters (see posterior_uncertainty_larger_for_unobserved), so
        // its unscheduled-slice posterior is governed by the observation
        // model under test, not by invariant coupling.
        let ev = cat.require(Semantic::DtlbMisses);
        let schedule = vec![
            bayesperf_simcpu::Configuration::new_unchecked(vec![ev]),
            bayesperf_simcpu::Configuration::new_unchecked(vec![
                cat.require(Semantic::BrInst),
                cat.require(Semantic::BrMisp),
                cat.require(Semantic::UopsIssued),
                cat.require(Semantic::UopsRetired),
            ]),
        ];
        let run = pmu.run_driven(
            &mut truth,
            &schedule,
            4,
            bayesperf_simcpu::Extrapolate::LinuxScaled,
            |w, _| usize::from(w > 0),
        );
        assert!(run.windows[2].sample_for(ev).unwrap().is_extrapolated());

        let cfg = ModelConfig::for_run(&run);
        let windows: Vec<Vec<Sample>> = run.windows.iter().map(|w| w.samples.clone()).collect();
        let posterior = |wins: &[Vec<Sample>]| {
            let model = build_chunk_model(&cat, wins, &cfg, None, cfg.fast_ep());
            let mut rng = StdRng::seed_from_u64(21);
            model.run(&mut rng)
        };
        let honest = posterior(&windows);

        // The regression this feature prevents: relabel the carry-forwards
        // as 4-sub-sample reads and the posterior snaps shut around them.
        let mut lying = windows.clone();
        for w in &mut lying {
            for s in w {
                if s.is_extrapolated() {
                    s.sub_n = 4;
                }
            }
        }
        let fooled = posterior(&lying);

        let sd_measured = honest.posterior(0, ev).std_dev();
        let sd_extrap = honest.posterior(2, ev).std_dev();
        let sd_fooled = fooled.posterior(2, ev).std_dev();
        assert!(
            sd_extrap > 1.5 * sd_measured,
            "extrapolated slice sd {sd_extrap} must stay well above measured {sd_measured}"
        );
        assert!(
            sd_extrap > 1.5 * sd_fooled,
            "honest extrapolation sd {sd_extrap} vs read-masquerade {sd_fooled}"
        );
    }

    #[test]
    fn prior_chaining_carries_information() {
        let (cat, run) = run_fixture();
        let cfg = ModelConfig::for_run(&run);
        let windows: Vec<Vec<Sample>> = run.windows.iter().map(|w| w.samples.clone()).collect();
        let mut rng = StdRng::seed_from_u64(8);
        let first = build_chunk_model(&cat, &windows[..2], &cfg, None, cfg.fast_ep()).run(&mut rng);
        let chained = build_chunk_model(
            &cat,
            &windows[2..],
            &cfg,
            Some(&first.last_slice_normalized()),
            cfg.fast_ep(),
        );
        let post = chained.run(&mut rng);
        // An event only measured in chunk 1's windows still has a
        // non-prior posterior in chunk 2 thanks to chaining + temporal.
        let ev = cat.require(Semantic::L1dMisses);
        let truth = run.windows[2].truth[ev.index()];
        let g = post.posterior(0, ev);
        let rel = (g.mean - truth).abs() / truth;
        assert!(rel < 0.5, "chained posterior {} vs {truth}", g.mean);
    }

    #[test]
    fn warm_reload_tracks_a_new_window() {
        // Engine correctness: a warm reload with the *same* windows and no
        // chain prior must reproduce posteriors close to the cold run —
        // the EP fixed point does not move when the data does not.
        let (cat, run) = run_fixture();
        let cfg = ModelConfig::for_run(&run);
        let windows: Vec<Vec<Sample>> = run.windows.iter().map(|w| w.samples.clone()).collect();
        let mut engine = ChunkEngine::with_slices(&cat, &cfg, cfg.fast_ep(), windows.len());
        engine.load_cold(&windows);
        engine.run_farm(3, 1);
        let ev = cat.require(Semantic::L1dMisses);
        let cold = engine.posterior(0, ev);

        engine.load_warm(&windows);
        let stats = engine.run_farm(4, 1);
        let warm = engine.posterior(0, ev);
        assert!(stats.sweeps_run <= 2, "warm run capped at 2 sweeps");
        let rel = (warm.mean - cold.mean).abs() / cold.mean.abs().max(1.0);
        assert!(
            rel < 0.05,
            "warm {} vs cold {} ({rel})",
            warm.mean,
            cold.mean
        );
    }

    #[test]
    fn adaptive_load_resets_only_jumped_slices() {
        let (cat, run) = run_fixture();
        let cfg = ModelConfig::for_run(&run);
        let windows: Vec<Vec<Sample>> = run.windows.iter().map(|w| w.samples.clone()).collect();
        let mut engine = ChunkEngine::with_slices(&cat, &cfg, cfg.fast_ep(), windows.len());
        engine.load_cold(&windows);
        engine.run_farm(3, 1);

        // Same data again: steady state, no slice should reset.
        let reset = engine.load_warm_adaptive(&windows, 2.0, 0.25);
        assert_eq!(reset, 0, "steady-state reload must not reset sites");
        engine.run_farm(4, 1);

        // Scale every sample of the last window by 4x: a clear phase jump
        // confined to one slice — that slice's site resets (there is no
        // following slice here), the rest stay warm.
        let mut jumped = windows.clone();
        let last = jumped.len() - 1;
        for s in &mut jumped[last] {
            s.value *= 4.0;
            s.sub_mean *= 4.0;
        }
        let reset = engine.load_warm_adaptive(&jumped, 2.0, 0.25);
        assert_eq!(reset, 1, "exactly the jumped slice resets");
    }

    #[test]
    fn jump_score_is_zero_in_steady_state_and_high_on_jump() {
        let (cat, run) = run_fixture();
        let cfg = ModelConfig::for_run(&run);
        let windows: Vec<Vec<Sample>> = run.windows.iter().map(|w| w.samples.clone()).collect();
        let mut engine = ChunkEngine::with_slices(&cat, &cfg, cfg.fast_ep(), windows.len());
        engine.load_cold(&windows);
        assert_eq!(engine.jump_score(&windows, 2.0), 0.0, "same data: no jumps");
        let mut jumped = windows.clone();
        for w in &mut jumped {
            for s in w {
                s.value *= 5.0;
            }
        }
        // The scan is chronological: each event registers the 5x move the
        // first time it is re-observed (later windows match the new
        // level), so the score is the first-occurrence fraction.
        let score = engine.jump_score(&jumped, 2.0);
        assert!(score > 0.2, "uniform 5x move must read as a jump ({score})");
    }

    #[test]
    #[should_panic(expected = "chunk must contain at least one window")]
    fn empty_chunk_rejected() {
        let cat = Catalog::new(Arch::X86SkyLake);
        let cfg = ModelConfig {
            slices: 0,
            prior_mean: 1.0,
            prior_sd: 3.0,
            temporal_tau: 0.3,
            obs_sigma_floor: 0.02,
            extrap_sigma: 0.5,
            inv_sigma_floor: 0.02,
            cycles_per_window: 1e7,
        };
        build_chunk_model::<Vec<Sample>>(&cat, &[], &cfg, None, cfg.fast_ep());
    }
}
