//! The §4.1 schedule transformer.
//!
//! Linux perf rotates counter configurations round-robin with no regard for
//! statistical structure. BayesPerf rewrites the schedule so consecutive
//! configurations share at least a transitive statistical relationship in
//! the event factor graph — enabling inference of unscheduled events from
//! scheduled ones across time slices (Fig. 2).
//!
//! For each consecutive pair of configurations the transformer:
//!
//! 1. checks **Markov-blanket overlap** of the two event sets under the
//!    factor graph (first-order or transitive dependency already present);
//! 2. otherwise tries to insert a **direct overlap**: repeat the
//!    statistically best-connected event of the previous configuration in
//!    the next one, when a counter is free and the result stays valid;
//! 3. otherwise builds the **shortest bridge** of intermediate
//!    configurations along the factor-graph shortest path (Dijkstra with
//!    unit costs, validity-checked), pruned by the paper's two
//!    optimizations — *common-step condensation* (replace consecutive path
//!    events by a shared Markov-blanket event) and *redundant-step removal*
//!    (skip path events whose blanket adds no new information);
//! 4. if all of that fails, records a **chain break** and restarts from the
//!    next valid configuration, as the paper prescribes.

use bayesperf_events::{try_assign, Catalog, Domain, EventId};
use bayesperf_graph::{FactorGraph, VarId};
use bayesperf_simcpu::Configuration;
use std::collections::BTreeSet;

/// The transformed schedule plus bookkeeping about what the transformation
/// did (used by tests and reports).
#[derive(Debug, Clone)]
pub struct Schedule {
    /// The configurations, rotated one per quantum.
    pub configs: Vec<Configuration>,
    /// Indices in `configs` where no statistical link to the predecessor
    /// exists (chain breaks).
    pub chain_breaks: Vec<usize>,
    /// Number of bridge configurations inserted.
    pub bridges_added: usize,
    /// Number of direct overlap events inserted.
    pub overlaps_inserted: usize,
}

impl Schedule {
    /// True if every consecutive pair is statistically linked.
    pub fn fully_linked(&self) -> bool {
        self.chain_breaks.is_empty()
    }
}

/// Builds and queries the event factor graph, and transforms schedules.
#[derive(Debug)]
pub struct ScheduleTransformer<'a> {
    catalog: &'a Catalog,
    graph: FactorGraph<EventId, String>,
    var_of: Vec<VarId>,
}

impl<'a> ScheduleTransformer<'a> {
    /// Builds the transformer's factor graph: one variable per event, one
    /// factor per invariant (§4.1 "aggregate all the statistical
    /// dependencies available for the processor into a graphical
    /// structure").
    pub fn new(catalog: &'a Catalog) -> Self {
        let mut graph = FactorGraph::new();
        let var_of: Vec<VarId> = catalog.iter().map(|e| graph.add_var(e.id)).collect();
        for inv in catalog.invariants() {
            let vars: Vec<VarId> = inv.events().iter().map(|e| var_of[e.index()]).collect();
            graph.add_factor(inv.name.clone(), &vars);
        }
        ScheduleTransformer {
            catalog,
            graph,
            var_of,
        }
    }

    /// The underlying event factor graph.
    pub fn graph(&self) -> &FactorGraph<EventId, String> {
        &self.graph
    }

    fn vars(&self, events: &[EventId]) -> Vec<VarId> {
        events.iter().map(|e| self.var_of[e.index()]).collect()
    }

    /// True if two configurations share an event or their Markov blankets
    /// overlap — the §4.1 criterion for consecutive time slices.
    ///
    /// Only programmable events count: fixed counters run in every slice
    /// anyway, so they provide no *scheduling* information.
    pub fn linked(&self, a: &Configuration, b: &Configuration) -> bool {
        let ea: BTreeSet<EventId> = a.events().iter().copied().collect();
        if b.events().iter().any(|e| ea.contains(e)) {
            return true;
        }
        self.graph
            .blankets_overlap(&self.vars(a.events()), &self.vars(b.events()))
    }

    /// Statistical connectivity (number of invariants) of an event.
    fn degree(&self, e: EventId) -> usize {
        self.graph.factors_of(self.var_of[e.index()]).len()
    }

    /// Tries to repeat the best-connected event of `prev` inside `next`.
    fn insert_overlap(&self, prev: &Configuration, next: &Configuration) -> Option<Configuration> {
        let mut anchors: Vec<EventId> = prev.events().to_vec();
        anchors.sort_by_key(|&e| std::cmp::Reverse(self.degree(e)));
        for anchor in anchors {
            let mut events = next.events().to_vec();
            if events.contains(&anchor) {
                continue;
            }
            events.push(anchor);
            if try_assign(self.catalog, &events, &self.catalog.pmu()).is_ok() {
                return Some(Configuration::new_unchecked(events));
            }
        }
        None
    }

    /// Shortest factor-graph path between any event of `a` and any event of
    /// `b`, traversing only events schedulable on their own.
    fn shortest_bridge_path(&self, a: &Configuration, b: &Configuration) -> Option<Vec<EventId>> {
        let ok = |v: VarId| {
            let e = *self.graph.var(v);
            let desc = self.catalog.event(e);
            desc.domain == Domain::Fixed
                || try_assign(self.catalog, &[e], &self.catalog.pmu()).is_ok()
        };
        let mut best: Option<Vec<EventId>> = None;
        for &ea in a.events() {
            for &eb in b.events() {
                if let Some(path) =
                    self.graph
                        .shortest_path(self.var_of[ea.index()], self.var_of[eb.index()], ok)
                {
                    let events: Vec<EventId> = path.iter().map(|&v| *self.graph.var(v)).collect();
                    if best.as_ref().is_none_or(|b| events.len() < b.len()) {
                        best = Some(events);
                    }
                }
            }
        }
        best
    }

    /// Applies the paper's two pruning optimizations to the interior of a
    /// bridge path, then packs the survivors into valid configurations.
    fn build_bridge(&self, path: &[EventId]) -> Vec<Configuration> {
        if path.len() <= 2 {
            return Vec::new();
        }
        let mut interior: Vec<EventId> = path[1..path.len() - 1].to_vec();

        // Optimization 1 — removing common steps: if two consecutive bridge
        // events share a Markov-blanket event e*, measure e* instead.
        let mut condensed: Vec<EventId> = Vec::with_capacity(interior.len());
        let mut i = 0;
        while i < interior.len() {
            if i + 1 < interior.len() {
                let b1: BTreeSet<VarId> = self
                    .graph
                    .markov_blanket(self.var_of[interior[i].index()])
                    .into_iter()
                    .collect();
                let b2: BTreeSet<VarId> = self
                    .graph
                    .markov_blanket(self.var_of[interior[i + 1].index()])
                    .into_iter()
                    .collect();
                let common = b1.intersection(&b2).find(|v| {
                    let e = *self.graph.var(**v);
                    e != interior[i]
                        && e != interior[i + 1]
                        && self.catalog.event(e).is_programmable()
                        && try_assign(self.catalog, &[e], &self.catalog.pmu()).is_ok()
                });
                if let Some(&v) = common {
                    condensed.push(*self.graph.var(v));
                    i += 2;
                    continue;
                }
            }
            condensed.push(interior[i]);
            i += 1;
        }
        interior = condensed;

        // Optimization 2 — removing redundant steps: drop events whose
        // Markov blanket is already covered by the accumulated blanket.
        let mut seen: BTreeSet<VarId> = BTreeSet::new();
        for &e in &path[0..1] {
            seen.extend(self.graph.markov_blanket(self.var_of[e.index()]));
        }
        let mut pruned: Vec<EventId> = Vec::with_capacity(interior.len());
        for &e in &interior {
            let blanket: BTreeSet<VarId> = self
                .graph
                .markov_blanket(self.var_of[e.index()])
                .into_iter()
                .collect();
            if blanket.is_subset(&seen) {
                continue; // no new statistical information
            }
            seen.extend(blanket);
            pruned.push(e);
        }

        // Pack survivors (skipping fixed events, which are always counted)
        // into valid configurations.
        let programmable: Vec<EventId> = pruned
            .into_iter()
            .filter(|&e| self.catalog.event(e).is_programmable())
            .collect();
        bayesperf_simcpu::pack_round_robin(self.catalog, &programmable).unwrap_or_default()
    }

    /// The unpruned interior of a path, packed into valid configurations.
    fn pack_interior(&self, path: &[EventId]) -> Vec<Configuration> {
        if path.len() <= 2 {
            return Vec::new();
        }
        let programmable: Vec<EventId> = path[1..path.len() - 1]
            .iter()
            .copied()
            .filter(|&e| self.catalog.event(e).is_programmable())
            .collect();
        bayesperf_simcpu::pack_round_robin(self.catalog, &programmable).unwrap_or_default()
    }

    /// The interior of a path as one-event-per-quantum configurations —
    /// maximally conservative but linked by construction (consecutive path
    /// events share a factor).
    fn singleton_bridge(&self, path: &[EventId]) -> Vec<Configuration> {
        if path.len() <= 2 {
            return Vec::new();
        }
        path[1..path.len() - 1]
            .iter()
            .copied()
            .filter(|&e| self.catalog.event(e).is_programmable())
            .map(|e| Configuration::new_unchecked(vec![e]))
            .collect()
    }

    /// True if `prev → bridge… → next` is linked at every consecutive pair.
    fn splice_linked(
        &self,
        prev: &Configuration,
        bridge: &[Configuration],
        next: &Configuration,
    ) -> bool {
        let mut cur = prev;
        for b in bridge {
            if !self.linked(cur, b) {
                return false;
            }
            cur = b;
        }
        self.linked(cur, next)
    }

    /// Builds a BayesPerf measurement schedule directly from an event set:
    /// events are *interleaved* so that statistically-related events land
    /// in different configurations (when one is scheduled it constrains
    /// its unscheduled partners through the invariant factors), and the
    /// result is then overlap-linked by [`ScheduleTransformer::transform`].
    ///
    /// Placement heuristic: take events in descending invariant degree;
    /// put each into the configuration (among those with room and
    /// validity) holding the fewest of its invariant partners.
    pub fn plan(&self, events: &[EventId]) -> Schedule {
        let n_configs = bayesperf_simcpu::pack_round_robin(self.catalog, events)
            .map(|c| c.len().max(1))
            .unwrap_or(1);
        let mut order: Vec<EventId> = events
            .iter()
            .copied()
            .filter(|&e| self.catalog.event(e).is_programmable())
            .collect();
        order.sort_by_key(|&e| std::cmp::Reverse(self.degree(e)));

        let mut bins: Vec<Vec<EventId>> = vec![Vec::new(); n_configs];
        for e in order {
            let partners: BTreeSet<EventId> = self
                .graph
                .markov_blanket(self.var_of[e.index()])
                .into_iter()
                .map(|v| *self.graph.var(v))
                .collect();
            // Candidate bins by (number of partners already inside, load).
            let mut ranked: Vec<usize> = (0..bins.len()).collect();
            ranked.sort_by_key(|&b| {
                let overlap = bins[b].iter().filter(|ev| partners.contains(ev)).count();
                (overlap, bins[b].len())
            });
            let mut placed = false;
            for &b in &ranked {
                let mut candidate = bins[b].clone();
                candidate.push(e);
                if try_assign(self.catalog, &candidate, &self.catalog.pmu()).is_ok() {
                    bins[b] = candidate;
                    placed = true;
                    break;
                }
            }
            if !placed {
                bins.push(vec![e]);
            }
        }
        bins.retain(|b| !b.is_empty());
        let configs: Vec<Configuration> =
            bins.into_iter().map(Configuration::new_unchecked).collect();
        self.transform(&configs)
    }

    /// Transforms a round-robin schedule into an overlap-linked one.
    pub fn transform(&self, configs: &[Configuration]) -> Schedule {
        let mut out: Vec<Configuration> = Vec::with_capacity(configs.len());
        let mut chain_breaks = Vec::new();
        let mut bridges_added = 0;
        let mut overlaps_inserted = 0;

        for cfg in configs {
            let Some(prev) = out.last() else {
                out.push(cfg.clone());
                continue;
            };
            if self.linked(prev, cfg) {
                out.push(cfg.clone());
                continue;
            }
            if let Some(with_overlap) = self.insert_overlap(prev, cfg) {
                overlaps_inserted += 1;
                out.push(with_overlap);
                continue;
            }
            let mut spliced = false;
            if let Some(path) = self.shortest_bridge_path(prev, cfg) {
                // Prefer the pruned bridge; fall back to the unpruned and
                // then to singleton configurations if pruning or packing
                // destroyed the statistical chain.
                let candidates = [
                    self.build_bridge(&path),
                    self.pack_interior(&path),
                    self.singleton_bridge(&path),
                ];
                for bridge in candidates {
                    if self.splice_linked(prev, &bridge, cfg) {
                        bridges_added += bridge.len();
                        out.extend(bridge);
                        out.push(cfg.clone());
                        spliced = true;
                        break;
                    }
                }
            }
            if spliced {
                continue;
            }
            // §4.1: "we break the chain of repeated events, and start over
            // again from a valid configuration."
            chain_breaks.push(out.len());
            out.push(cfg.clone());
        }

        Schedule {
            configs: out,
            chain_breaks,
            bridges_added,
            overlaps_inserted,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bayesperf_events::{Arch, Semantic};
    use bayesperf_simcpu::pack_round_robin;
    use proptest::prelude::*;

    fn catalog() -> Catalog {
        Catalog::new(Arch::X86SkyLake)
    }

    #[test]
    fn graph_covers_all_events_and_invariants() {
        let cat = catalog();
        let tr = ScheduleTransformer::new(&cat);
        assert_eq!(tr.graph().num_vars(), cat.len());
        assert_eq!(tr.graph().num_factors(), cat.invariants().len());
    }

    #[test]
    fn configs_sharing_an_event_are_linked() {
        let cat = catalog();
        let tr = ScheduleTransformer::new(&cat);
        let a = Configuration::new_unchecked(vec![
            cat.require(Semantic::BrInst),
            cat.require(Semantic::L1dMisses),
        ]);
        let b = Configuration::new_unchecked(vec![
            cat.require(Semantic::BrInst),
            cat.require(Semantic::L2Misses),
        ]);
        assert!(tr.linked(&a, &b));
    }

    #[test]
    fn configs_with_invariant_neighbors_are_linked() {
        let cat = catalog();
        let tr = ScheduleTransformer::new(&cat);
        // L1dMisses and L2References share the l2_demand invariant.
        let a = Configuration::new_unchecked(vec![cat.require(Semantic::L1dMisses)]);
        let b = Configuration::new_unchecked(vec![cat.require(Semantic::L2References)]);
        assert!(tr.linked(&a, &b));
    }

    #[test]
    fn distant_configs_are_not_directly_linked() {
        let cat = catalog();
        let tr = ScheduleTransformer::new(&cat);
        // Branch events and IIO read flavors are several invariants apart.
        let a = Configuration::new_unchecked(vec![cat.require(Semantic::ItlbMisses)]);
        let b = Configuration::new_unchecked(vec![cat.require(Semantic::IioRdCode)]);
        assert!(!tr.linked(&a, &b));
    }

    #[test]
    fn transform_preserves_all_original_events() {
        let cat = catalog();
        let tr = ScheduleTransformer::new(&cat);
        let events: Vec<EventId> = cat.programmable_events();
        let rr = pack_round_robin(&cat, &events).unwrap();
        let schedule = tr.transform(&rr);
        let covered: BTreeSet<EventId> = schedule
            .configs
            .iter()
            .flat_map(|c| c.events().to_vec())
            .collect();
        for e in &events {
            assert!(covered.contains(e), "event {e} lost by transform");
        }
    }

    #[test]
    fn transform_output_is_all_valid() {
        let cat = catalog();
        let tr = ScheduleTransformer::new(&cat);
        let events: Vec<EventId> = cat.programmable_events();
        let rr = pack_round_robin(&cat, &events).unwrap();
        let schedule = tr.transform(&rr);
        for cfg in &schedule.configs {
            assert!(
                try_assign(&cat, cfg.events(), &cat.pmu()).is_ok(),
                "invalid config {:?}",
                cfg.events()
            );
        }
    }

    #[test]
    fn transform_links_unlinked_neighbors() {
        let cat = catalog();
        let tr = ScheduleTransformer::new(&cat);
        let a = Configuration::new_unchecked(vec![cat.require(Semantic::ItlbMisses)]);
        let b = Configuration::new_unchecked(vec![cat.require(Semantic::IioRdCode)]);
        assert!(!tr.linked(&a, &b));
        let schedule = tr.transform(&[a.clone(), b.clone()]);
        // Either an overlap was inserted or a bridge added; consecutive
        // configs must now be linked throughout.
        assert!(schedule.fully_linked(), "{schedule:?}");
        for w in schedule.configs.windows(2) {
            assert!(tr.linked(&w[0], &w[1]));
        }
    }

    #[test]
    fn full_suite_schedule_is_fully_linked() {
        let cat = catalog();
        let tr = ScheduleTransformer::new(&cat);
        let rr = pack_round_robin(&cat, &cat.programmable_events()).unwrap();
        let schedule = tr.transform(&rr);
        for w in schedule.configs.windows(2) {
            assert!(tr.linked(&w[0], &w[1]), "unlinked pair after transform");
        }
    }

    proptest! {
        /// Random event subsets always transform into valid schedules that
        /// retain every requested event.
        #[test]
        fn random_subsets_transform_validly(picks in proptest::collection::vec(0usize..40, 2..24)) {
            let cat = catalog();
            let tr = ScheduleTransformer::new(&cat);
            let prog = cat.programmable_events();
            let mut events: Vec<EventId> = picks.iter().map(|&i| prog[i % prog.len()]).collect();
            events.sort();
            events.dedup();
            let rr = pack_round_robin(&cat, &events).unwrap();
            prop_assume!(!rr.is_empty());
            let schedule = tr.transform(&rr);
            let covered: BTreeSet<EventId> = schedule
                .configs
                .iter()
                .flat_map(|c| c.events().to_vec())
                .collect();
            for e in &events {
                prop_assert!(covered.contains(e));
            }
            for cfg in &schedule.configs {
                prop_assert!(try_assign(&cat, cfg.events(), &cat.pmu()).is_ok());
            }
        }
    }
}
