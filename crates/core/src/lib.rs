//! The BayesPerf system: scheduling, modelling, inference orchestration, and
//! the perf-compatible shim.
//!
//! This crate assembles the paper's primary contribution out of the
//! substrate crates:
//!
//! * [`error_model`] — the §4.2 measurement-error model: per-window PMI
//!   sub-sample statistics become scaled/shifted Student-t observation
//!   factors;
//! * [`scheduler`] — the §4.1 schedule transformer: rewrites a traditional
//!   round-robin multiplexing schedule so that consecutive configurations
//!   share (transitive) statistical relationships, bridging gaps via
//!   shortest paths in the event factor graph and applying the paper's two
//!   pruning optimizations;
//! * [`model`] — builds the unified factor graph over `k` time slices
//!   (observation + invariant + temporal factors) as Expectation-Propagation
//!   sites;
//! * [`corrector`] — batch correction of a recorded PMU run into posterior
//!   distributions per event per window;
//! * [`service`] — the session-oriented shim service: a shared [`Monitor`]
//!   with a background inference thread, `perf_event_open`-style
//!   [`Session`] handles, and lock-free posterior snapshot publication
//!   ([`snapshot`]);
//! * [`shim`] — the perf-like single-client reader surface
//!   ([`HpcReader`], [`LinuxReader`], and the [`BayesPerfShim`] compat
//!   adapter over a single-session monitor);
//! * [`error`] — the workspace-level [`ShimError`] type every fallible
//!   shim/corrector operation reports through;
//! * [`metrics`] — dynamic-time-warping alignment and the paper's error
//!   definition (§2, §6.2).

pub mod corrector;
pub mod error;
pub mod error_model;
pub mod metrics;
pub mod model;
pub mod scheduler;
pub mod service;
pub mod shim;
pub mod snapshot;
pub mod source;

pub use corrector::{CorrectionStats, Corrector, CorrectorConfig, PosteriorSeries};
pub use error::ShimError;
pub use error_model::{extrapolated_observation, gauge_observation, observation};
pub use metrics::{adjusted_error, dtw_align, dtw_relative_error};
pub use model::{build_chunk_model, ChunkEngine, ChunkModel, ChunkPosterior, ModelConfig};
pub use scheduler::{Schedule, ScheduleTransformer};
pub use service::{
    derived_reading, GroupReading, Monitor, PosteriorUpdate, ScheduleHook, Selection, ServiceState,
    Session, SessionBuilder, SnapshotView, SupervisorPolicy, Updates,
};
pub use shim::{BayesPerfShim, HpcReader, LinuxReader, Reading};
pub use snapshot::{snapshot_cell, SnapshotGuard, SnapshotReader, SnapshotWriter};
pub use source::pump_sources;
#[cfg(feature = "proc-source")]
pub use source::ProcSource;
