//! The workspace-level shim/service error type.
//!
//! Every fallible operation on the session API ([`crate::service`]) and the
//! fallible variants of the corrector API report through [`ShimError`]
//! instead of panicking or collapsing every failure into `None` — a reader
//! can distinguish "no posterior computed yet" (poll again) from "that
//! event does not exist" (a programming error) from "the service is gone".

use bayesperf_events::EventId;
use std::fmt;

/// Everything that can go wrong on the shim's session API (and the fleet
/// layer built on top of it).
///
/// Marked `#[non_exhaustive]`: downstream binaries composing these errors
/// with `?` keep compiling when a future layer (like `fleet::wire`) adds
/// variants — match with a wildcard arm.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ShimError {
    /// The event is not in the catalog or was not selected by this session.
    UnknownEvent(EventId),
    /// No derived event with this name exists in the catalog.
    UnknownDerived(String),
    /// The monitor service has been closed; no new sessions or samples are
    /// accepted and reads no longer serve.
    SessionClosed,
    /// The service is paused (the deterministic-backpressure test hook),
    /// so a sync barrier cannot honor its "everything processed"
    /// guarantee. Resume first.
    ServicePaused,
    /// The kernel↔shim ring buffer was full and the sample was dropped.
    /// `dropped` is the cumulative drop count including this one.
    RingOverflow {
        /// Total samples dropped at the ring so far.
        dropped: u64,
    },
    /// Inference has not yet published a posterior snapshot (fewer than one
    /// complete chunk of windows ingested). Poll again after more samples.
    NoPosteriorYet,
    /// A window chunk of the wrong size was handed to the corrector.
    WindowMismatch {
        /// Windows the corrector's engine was built for.
        expected: usize,
        /// Windows actually supplied.
        got: usize,
    },
    /// A posterior was requested for a slice index outside the chunk.
    SliceOutOfRange {
        /// Requested slice.
        slice: usize,
        /// Slices in the chunk.
        slices: usize,
    },
    /// An empty window chunk was handed to the corrector.
    EmptyChunk,
    /// A fleet operation named a shard that is not (or no longer) a
    /// member of the fleet.
    UnknownShard {
        /// The shard id that failed to resolve.
        shard: u32,
    },
    /// A fleet-level read or fusion was attempted with no shard having
    /// published a posterior snapshot yet.
    NoShards,
    /// A scraped snapshot's posterior vector was not sized for the
    /// aggregating catalog (a scrape from a foreign catalog/arch).
    CatalogMismatch {
        /// Events in the aggregator's catalog.
        expected: usize,
        /// Events the snapshot actually carried.
        got: usize,
    },
    /// A wire-codec buffer ended before the layout said it would
    /// (truncated scrape, short read).
    WireTruncated {
        /// Byte offset at which more input was needed.
        offset: usize,
    },
    /// A wire-codec buffer carried an unsupported format version or a
    /// wrong magic/kind tag.
    WireVersion {
        /// Version byte found in the buffer.
        got: u8,
        /// Highest version this build decodes.
        supported: u8,
    },
    /// A wire-codec buffer was structurally well-formed but carried an
    /// invalid value (e.g. a non-positive variance or an absurd length).
    WireMalformed {
        /// What was wrong, for the log line.
        what: &'static str,
    },
    /// A scrape request/response exchange missed its per-request deadline
    /// (the frame may have been dropped, delayed, or the peer is slow —
    /// the caller cannot tell, which is exactly why health accounting
    /// treats timeouts as soft evidence, not proof of death).
    ScrapeTimeout,
    /// A scrape link failed below the wire layer: connect refused, reset,
    /// short write, or a partition.
    LinkDown {
        /// What failed, for the log line.
        what: &'static str,
    },
    /// The background service thread is down — either mid-restart after a
    /// crash or permanently failed (restart budget exhausted). Unlike
    /// [`ShimError::SessionClosed`] this is not an orderly shutdown: the
    /// last snapshot may be arbitrarily stale, so reads refuse to serve it.
    ServiceDown {
        /// Why the service went down (e.g. the panic payload).
        cause: String,
    },
    /// The OS refused to spawn a background service thread (resource
    /// exhaustion). Reported to the caller instead of panicking in the
    /// constructor.
    SpawnFailed {
        /// Which thread failed to spawn, for the log line.
        what: &'static str,
    },
}

impl fmt::Display for ShimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShimError::UnknownEvent(e) => write!(f, "unknown or unselected event {e}"),
            ShimError::UnknownDerived(name) => write!(f, "unknown derived event {name:?}"),
            ShimError::SessionClosed => write!(f, "monitor service is closed"),
            ShimError::ServicePaused => write!(f, "monitor service is paused"),
            ShimError::RingOverflow { dropped } => {
                write!(f, "ring buffer full, sample dropped ({dropped} total)")
            }
            ShimError::NoPosteriorYet => write!(f, "no posterior published yet"),
            ShimError::WindowMismatch { expected, got } => {
                write!(f, "chunk of {got} windows, engine built for {expected}")
            }
            ShimError::SliceOutOfRange { slice, slices } => {
                write!(f, "slice {slice} out of range (chunk has {slices})")
            }
            ShimError::EmptyChunk => write!(f, "chunk must contain at least one window"),
            ShimError::UnknownShard { shard } => write!(f, "unknown fleet shard {shard}"),
            ShimError::NoShards => write!(f, "no shard has published a posterior yet"),
            ShimError::CatalogMismatch { expected, got } => {
                write!(
                    f,
                    "snapshot of {got} events, aggregator catalog has {expected}"
                )
            }
            ShimError::WireTruncated { offset } => {
                write!(f, "wire buffer truncated at byte {offset}")
            }
            ShimError::WireVersion { got, supported } => {
                write!(
                    f,
                    "wire version {got} unsupported (this build reads <= {supported})"
                )
            }
            ShimError::WireMalformed { what } => write!(f, "malformed wire buffer: {what}"),
            ShimError::ScrapeTimeout => write!(f, "scrape exchange missed its deadline"),
            ShimError::LinkDown { what } => write!(f, "scrape link failed: {what}"),
            ShimError::ServiceDown { cause } => {
                write!(f, "monitor service is down: {cause}")
            }
            ShimError::SpawnFailed { what } => {
                write!(f, "failed to spawn {what} thread")
            }
        }
    }
}

impl std::error::Error for ShimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ShimError::RingOverflow { dropped: 3 };
        assert!(e.to_string().contains("3 total"));
        let e = ShimError::UnknownDerived("ipc".into());
        assert!(e.to_string().contains("ipc"));
        let e = ShimError::WindowMismatch {
            expected: 6,
            got: 4,
        };
        assert!(e.to_string().contains('6') && e.to_string().contains('4'));
        let e = ShimError::WireTruncated { offset: 17 };
        assert!(e.to_string().contains("17"));
        let e = ShimError::WireVersion {
            got: 9,
            supported: 1,
        };
        assert!(e.to_string().contains('9') && e.to_string().contains('1'));
        let e = ShimError::UnknownShard { shard: 3 };
        assert!(e.to_string().contains('3'));
        let e = ShimError::ScrapeTimeout;
        assert!(e.to_string().contains("deadline"));
        let e = ShimError::LinkDown {
            what: "connect refused",
        };
        assert!(e.to_string().contains("connect refused"));
        let e = ShimError::ServiceDown {
            cause: "panicked: boom".into(),
        };
        assert!(e.to_string().contains("down") && e.to_string().contains("boom"));
        let e = ShimError::SpawnFailed {
            what: "inference service",
        };
        assert!(e.to_string().contains("inference service"));
    }

    #[test]
    fn composes_with_question_mark_as_a_boxed_error() {
        // The satellite requirement: fleet/wire errors must flow through
        // `?` in downstream binaries returning `Box<dyn Error>`.
        fn downstream() -> Result<(), Box<dyn std::error::Error>> {
            Err(ShimError::WireMalformed {
                what: "non-positive variance",
            })?
        }
        let err = downstream().unwrap_err();
        assert!(err.to_string().contains("non-positive variance"));
    }
}
