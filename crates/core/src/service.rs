//! The session-oriented BayesPerf monitoring service.
//!
//! This is the shim's `perf_event_open`-shaped API (§5 of the paper): a
//! shared [`Monitor`] owns the event catalog, the kernel↔userspace sample
//! ring, and a dedicated **background inference thread** that drives the
//! warm-start streaming [`Corrector`]. Monitoring applications open
//! [`Session`] handles ([`Monitor::session`] → [`SessionBuilder`] →
//! [`SessionBuilder::open`]) that are `Clone + Send + Sync` and read
//! posteriors without ever running — or waiting on — inference:
//!
//! ```text
//!  producers                 Monitor service                   readers
//!  ─────────                 ───────────────                   ───────
//!  push_sample ─▶ ring ─▶ inference thread:                Session::read
//!                          assemble windows,    lock-free  Session::read_group
//!                          push_chunk (warm EP) ─────────▶ Session::subscribe
//!                          publish snapshot      snapshot
//!                                                  cell
//! ```
//!
//! The inference thread publishes immutable `(window, event → Gaussian)`
//! snapshots through the in-tree lock-free publication cell
//! ([`crate::snapshot`]); N reader threads observe internally-consistent
//! snapshots while EP is mid-chunk, and a read costs two atomic RMWs plus
//! a copy — the software analogue of the paper's accelerator serving reads
//! from already-computed posteriors in host memory (Fig. 3).
//!
//! Failures are typed ([`ShimError`]), not `None`: an unknown event is a
//! programming error, "no posterior yet" means poll again, a ring overflow
//! is backpressure, and a closed monitor is terminal.
//!
//! The inference thread itself runs **supervised**: the spawned thread is
//! a small supervisor that runs the service body under `catch_unwind`,
//! restarts it after a crash with capped-backoff restart budgets (warm: a
//! restarted corrector chains off the last published snapshot, so only the
//! poisoned in-flight chunk is lost), and publishes a typed
//! [`ServiceState`] — `Running` / `Restarting` / `Failed` — through a
//! lock-free cell. A permanently failed service (restart budget exhausted)
//! surfaces as [`ShimError::ServiceDown`] on every read instead of a
//! silently frozen posterior. Non-finite samples are dropped at ingest and
//! non-finite posteriors are caught at the publish boundary (both counted
//! by [`Monitor::divergences`]), and a heartbeat counter
//! ([`Monitor::heartbeat`]) lets watchdogs distinguish a stalled service
//! from an idle one.

// The ISSUE-7 robustness audit: this file's non-test code must report
// failures as typed errors, never panic on them.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use crate::corrector::{Corrector, CorrectorConfig};
use crate::error::ShimError;
use crate::shim::Reading;
use crate::snapshot::{snapshot_cell, SnapshotReader, SnapshotWriter};
use bayesperf_events::{Catalog, DerivedEvent, EventEnv, EventId};
use bayesperf_inference::{EpRunStats, Gaussian};
use bayesperf_obs::{labeled, Counter, FlightEvent, Histogram, SpanRecorder, Stage, Telemetry};
use bayesperf_simcpu::{RingBuffer, Sample};
use std::collections::hash_map::Entry;
use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering::Relaxed};
use std::sync::mpsc::{
    channel, sync_channel, Receiver, Sender, SyncSender, TryRecvError, TrySendError,
};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// The posterior state published by the inference thread after each chunk:
/// every catalog event's posterior at the most recent corrected window.
struct PosteriorSnapshot {
    /// Global index of the most recent corrected window.
    window: u32,
    /// 1-based count of inference runs published so far.
    chunk: u64,
    /// Run statistics of the EP run that produced this snapshot.
    stats: EpRunStats,
    /// Catalog-indexed posteriors (count units).
    posteriors: Vec<Gaussian>,
}

/// A copied-out view of the latest published posterior snapshot: the raw
/// `(window, event → Gaussian)` state the read paths serve from, exposed
/// for the fleet layer's scraping, fusion and wire encoding
/// (`bayesperf_fleet`). Unlike [`GroupReading`] it carries the posteriors
/// themselves, not derived [`Reading`]s.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SnapshotView {
    /// Global index of the most recent corrected window.
    pub window: u32,
    /// 1-based count of inference runs published so far.
    pub chunk: u64,
    /// Run statistics of the EP run that produced this snapshot.
    pub stats: EpRunStats,
    /// Catalog-indexed posteriors (count units).
    pub posteriors: Vec<Gaussian>,
    /// Per-source dropped-late counts, indexed by raw [`SourceId`]
    /// (see [`Monitor::late_samples_by_source`]): the observation-plane
    /// health metadata a fleet aggregator ships alongside posteriors, so
    /// a chronically late gauge is visible fleet-wide. Only extends as
    /// far as the highest source that has dropped anything.
    ///
    /// [`SourceId`]: bayesperf_events::SourceId
    pub late_by_source: Vec<u64>,
}

/// One per-window posterior update streamed to [`Session::subscribe`]rs.
#[derive(Debug, Clone)]
pub struct PosteriorUpdate {
    /// Global index of the corrected window.
    pub window: u32,
    /// Windows this subscriber *lost* immediately before this update: a
    /// lagging consumer whose bounded queue overflowed sees the skip
    /// explicitly here instead of having to infer it from non-consecutive
    /// `window` indices (the ring's `PERF_RECORD_LOST` analogue). `0`
    /// when no update was dropped since the previous delivered one.
    pub gap: u64,
    /// 1-based index of the inference run that corrected it.
    pub chunk: u64,
    /// Run statistics of that inference run (shared by the chunk's
    /// windows).
    pub stats: EpRunStats,
    /// Posteriors of the subscribing session's selected events (count
    /// units).
    pub posteriors: Vec<(EventId, Gaussian)>,
}

impl PosteriorUpdate {
    /// The posterior of `event` in this update, if selected.
    pub fn gaussian(&self, event: EventId) -> Option<Gaussian> {
        self.posteriors
            .iter()
            .find(|(e, _)| *e == event)
            .map(|(_, g)| *g)
    }

    /// The [`Reading`] of `event` in this update, if selected.
    pub fn reading(&self, event: EventId) -> Option<Reading> {
        self.gaussian(event).map(|g| Reading::from_gaussian(&g))
    }
}

/// A consistent multi-event read: every reading comes from the same
/// posterior snapshot (same window, same inference run).
#[derive(Debug, Clone)]
pub struct GroupReading {
    /// Global index of the snapshot's most recent corrected window.
    pub window: u32,
    /// 1-based index of the inference run that produced the snapshot.
    pub chunk: u64,
    /// Run statistics of that inference run.
    pub stats: EpRunStats,
    /// Readings of the session's selected events, in catalog order.
    pub readings: Vec<(EventId, Reading)>,
}

/// Which catalog events a session reads; `None` means all. Shared by the
/// per-machine [`Session`] and the fleet layer's sessions, so selection
/// semantics cannot diverge between the two read surfaces.
#[derive(Debug)]
pub struct Selection {
    events: Option<Vec<EventId>>,
}

impl Selection {
    /// Builds a selection; `None` means the whole catalog. An explicit
    /// list is sorted and deduplicated here — the invariant
    /// [`Selection::contains`]'s binary search relies on.
    pub fn new(events: Option<Vec<EventId>>) -> Selection {
        let events = events.map(|mut v| {
            v.sort_unstable();
            v.dedup();
            v
        });
        Selection { events }
    }

    /// Whether `event` is selected.
    pub fn contains(&self, event: EventId) -> bool {
        match &self.events {
            None => true,
            Some(list) => list.binary_search(&event).is_ok(),
        }
    }

    /// Selected events in catalog order.
    pub fn iter<'a>(&'a self, catalog: &'a Catalog) -> Box<dyn Iterator<Item = EventId> + 'a> {
        match &self.events {
            None => Box::new(catalog.iter().map(|e| e.id)),
            Some(list) => Box::new(list.iter().copied()),
        }
    }
}

/// Per-subscriber queue bound: a consumer that stops polling loses
/// updates beyond this backlog instead of growing memory without bound
/// (the gap is visible as skipped `window` indices, like the ring's
/// `PERF_RECORD_LOST`).
const UPDATE_QUEUE_CAP: usize = 1024;

/// A subscriber channel plus its event selection.
struct Subscriber {
    tx: SyncSender<PosteriorUpdate>,
    selection: Arc<Selection>,
    /// Window index of the last update this subscriber's queue accepted;
    /// the source of [`PosteriorUpdate::gap`] after a lossy stretch.
    last_enqueued: Option<u32>,
}

/// The feedback hook the inference service calls after publishing each
/// chunk's posterior snapshot — the multiplexing-scheduler integration
/// point: a hook steers *which event group gets measured next* from the
/// very posteriors this service computes (closing the paper's loop between
/// inference and data collection; see `bayesperf_mlsched::mux`).
///
/// The hook runs on the **inference thread**, immediately after the
/// snapshot is published, so it sees every chunk exactly once and in
/// order; producers read whatever state the hook maintains (e.g. a shared
/// scheduler) without ever touching this thread. Keep implementations
/// cheap — a scheduler update, not more inference.
pub trait ScheduleHook: Send {
    /// Called once per inference run with the final corrected window's
    /// index, the 1-based inference-run counter, and the catalog-indexed
    /// posteriors of that window (count units).
    fn on_publish(&mut self, window: u32, chunk: u64, posteriors: &[Gaussian]);
}

/// Control messages to the inference thread. Every variant carries an ack
/// channel so callers can block until the service has acted.
enum Control {
    /// Process everything enqueued before this message, then ack.
    Sync(Sender<()>),
    /// Complete all assembling windows, correct remaining full chunks and
    /// the ragged tail, publish, then ack.
    Flush(Sender<()>),
    /// Stop draining the ring (samples queue up / overflow) — test hook
    /// for deterministic backpressure.
    Pause(Sender<()>),
    /// Resume draining, process the backlog, then ack.
    Resume(Sender<()>),
    /// Re-apply chunking / thread-budget settings at a chunk boundary.
    Reconfigure {
        chunk_windows: Option<usize>,
        threads: Option<usize>,
        ack: Sender<()>,
    },
    /// Install (or, with `None`, remove) the schedule feedback hook.
    SetHook {
        hook: Option<Box<dyn ScheduleHook>>,
        ack: Sender<()>,
    },
    /// Fault-injection test hook: the service panics when it dequeues
    /// this, exercising the supervisor's crash-containment path. Fire and
    /// forget (no ack — the thread that would send it is unwinding);
    /// callers observe recovery through [`Monitor::restarts`] or
    /// [`Monitor::service_state`].
    Panic,
}

/// Producer-facing state behind the service mutex. Held only long enough
/// to enqueue a sample or hand the whole backlog to the service thread —
/// never across inference.
struct InboundState {
    ring: RingBuffer<Sample>,
    control: VecDeque<Control>,
    shutdown: bool,
}

/// The supervision state of the inference service, published by the
/// supervisor through a lock-free snapshot cell and read by
/// [`Monitor::service_state`] / [`Session::service_state`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ServiceState {
    /// The service loop is live (possibly idle, waiting for samples).
    Running,
    /// The service crashed and the supervisor is restarting it.
    Restarting {
        /// Total restarts performed so far (monotonic across the
        /// monitor's lifetime, matching [`Monitor::restarts`]).
        restarts: u64,
        /// The panic message of the crash being recovered from.
        cause: String,
    },
    /// The restart budget is exhausted; the service is permanently down
    /// and every read surfaces [`ShimError::ServiceDown`].
    Failed {
        /// The panic message of the final, fatal crash.
        cause: String,
    },
}

/// Restart policy for the supervised inference service.
///
/// The budget counts **consecutive** failed incarnations: an incarnation
/// that makes progress (publishes at least one chunk) resets the count,
/// so a long-lived service survives unbounded *occasional* crashes while
/// a crash-looping one (e.g. a deterministic poison sample replayed from
/// the ring) fails fast with a typed cause instead of spinning forever.
#[derive(Debug, Clone)]
pub struct SupervisorPolicy {
    /// Consecutive no-progress crashes tolerated before the service is
    /// declared [`ServiceState::Failed`]. `0` fails on the first crash.
    pub max_consecutive_restarts: u32,
    /// Backoff before the first restart; doubles per consecutive crash.
    pub backoff_base: Duration,
    /// Upper bound on the per-restart backoff.
    pub backoff_cap: Duration,
}

impl Default for SupervisorPolicy {
    fn default() -> Self {
        SupervisorPolicy {
            max_consecutive_restarts: 8,
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(250),
        }
    }
}

/// State shared between the [`Monitor`], its [`Session`]s and the
/// inference thread.
struct Shared {
    catalog: Arc<Catalog>,
    state: Mutex<InboundState>,
    cv: Condvar,
    snapshot: SnapshotReader<PosteriorSnapshot>,
    /// The supervisor's typed state (Running / Restarting / Failed),
    /// published through the same lock-free cell machinery as posteriors
    /// so reads never block on the supervisor.
    service_state: SnapshotReader<ServiceState>,
    subscribers: Mutex<Vec<Subscriber>>,
    /// Set once the supervisor has exited (after the shutdown flush or a
    /// terminal failure).
    closed: AtomicBool,
    /// Mirrors the service's pause state (the [`Monitor::pause`] test
    /// hook) so [`Monitor::sync`] can refuse instead of silently acking
    /// without processing.
    paused: AtomicBool,
    /// Samples dropped for arriving after their window completed
    /// (`ingest.late_total` on the telemetry registry).
    late_samples: Counter,
    /// Per-source breakdown of `late_samples`, indexed by raw
    /// [`bayesperf_events::SourceId`] and grown on demand (slow-cadence
    /// gauge sources are the usual suspects; the multi-source health
    /// surface reads this). Each entry is an `ingest.late_dropped{source}`
    /// registry counter; the mutex guards only the grow-on-demand vector,
    /// and is taken on the (rare) late-drop path, never per sample.
    late_by_source: Mutex<Vec<Counter>>,
    /// Inference runs executed (`service.chunks_run`).
    chunks_run: Counter,
    /// Windows published (`service.windows_published`).
    windows_published: Counter,
    /// Heartbeat: bumped by the service once per loop iteration and per
    /// corrected chunk. A watchdog that sees `beats` frozen while `idle`
    /// is false is looking at a stalled (hung) service, not an idle one.
    /// (`service.beats` on the registry.)
    beats: Counter,
    /// True while the service thread is parked waiting for work — an idle
    /// thread's heartbeat is legitimately frozen.
    idle: AtomicBool,
    /// Crash restarts performed by the supervisor (monotonic;
    /// `supervisor.restarts`).
    restarts: Counter,
    /// Divergences contained: non-finite samples dropped at ingest,
    /// non-finite posteriors caught at the publish boundary, and EP sites
    /// quarantined back to their prior (`service.divergences`).
    divergences: Counter,
    /// EP chunk-correction wall time (`ep.sweep_ns`).
    ep_sweep_ns: Histogram,
    /// Snapshot publication wall time (`service.publish_ns`).
    publish_ns: Histogram,
    /// The monitor's telemetry plane: the registry the counters above
    /// live in, the span tracer the pipeline stamps into, and the flight
    /// recorder supervision events land in.
    tele: Telemetry,
    /// The schedule feedback hook lives here — not inside a service
    /// incarnation — so an installed hook survives a crash restart. Locked
    /// only by the inference thread (per publish) and by the control
    /// handler that swaps it.
    hook: Mutex<Option<Box<dyn ScheduleHook>>>,
}

impl Shared {
    fn notify(&self) {
        self.cv.notify_one();
    }

    fn enqueue_control(&self, ctrl: Control) -> Result<(), ShimError> {
        {
            // The closed check must happen under the state lock: the
            // service thread sets `closed` and drains leftover controls
            // under the same lock at exit, so a control can never be
            // enqueued after that final drain (which would leave its
            // caller blocked on an ack forever).
            let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
            if self.closed.load(Relaxed) {
                return Err(ShimError::SessionClosed);
            }
            st.control.push_back(ctrl);
        }
        self.notify();
        Ok(())
    }

    /// Enqueues a control message and blocks until the service acks it.
    fn control_roundtrip(&self, make: impl FnOnce(Sender<()>) -> Control) -> Result<(), ShimError> {
        let (tx, rx) = channel();
        self.enqueue_control(make(tx))?;
        rx.recv().map_err(|_| ShimError::SessionClosed)
    }
}

/// The shared monitoring service: catalog + sample ring + background
/// inference thread. Create one per monitored target; open any number of
/// concurrent [`Session`]s against it.
///
/// Dropping (or [`Monitor::close`]-ing) the monitor flushes the stream —
/// the partial final chunk is corrected and published to subscribers —
/// and stops the inference thread.
pub struct Monitor {
    shared: Arc<Shared>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for Monitor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Monitor")
            .field("chunks_run", &self.chunks_run())
            .field("closed", &self.shared.closed.load(Relaxed))
            .finish()
    }
}

impl Monitor {
    /// Starts a monitor service with the default [`SupervisorPolicy`]:
    /// clones the catalog, builds the ring, and spawns the supervised
    /// inference thread (which owns the streaming [`Corrector`]).
    ///
    /// Returns [`ShimError::SpawnFailed`] if the OS refuses the thread.
    pub fn new(
        catalog: &Catalog,
        config: CorrectorConfig,
        ring_capacity: usize,
    ) -> Result<Monitor, ShimError> {
        Monitor::with_policy(catalog, config, ring_capacity, SupervisorPolicy::default())
    }

    /// [`Monitor::new`] with an explicit crash-restart policy.
    pub fn with_policy(
        catalog: &Catalog,
        config: CorrectorConfig,
        ring_capacity: usize,
        policy: SupervisorPolicy,
    ) -> Result<Monitor, ShimError> {
        let catalog = Arc::new(catalog.clone());
        let (writer, reader) = snapshot_cell();
        let (state_writer, state_reader) = snapshot_cell();
        // Pre-register every service metric on the telemetry plane here,
        // on the cold path: the hot paths below only touch the returned
        // handles (single relaxed atomic ops).
        let tele = Telemetry::new();
        let registry = tele.registry();
        let shared = Arc::new(Shared {
            catalog,
            state: Mutex::new(InboundState {
                ring: RingBuffer::new(ring_capacity.max(1)),
                control: VecDeque::new(),
                shutdown: false,
            }),
            cv: Condvar::new(),
            snapshot: reader,
            service_state: state_reader,
            subscribers: Mutex::new(Vec::new()),
            closed: AtomicBool::new(false),
            paused: AtomicBool::new(false),
            late_samples: registry.counter("ingest.late_total"),
            late_by_source: Mutex::new(Vec::new()),
            chunks_run: registry.counter("service.chunks_run"),
            windows_published: registry.counter("service.windows_published"),
            beats: registry.counter("service.beats"),
            idle: AtomicBool::new(false),
            restarts: registry.counter("supervisor.restarts"),
            divergences: registry.counter("service.divergences"),
            ep_sweep_ns: registry.histogram("ep.sweep_ns"),
            publish_ns: registry.histogram("service.publish_ns"),
            tele: tele.clone(),
            hook: Mutex::new(None),
        });
        let handle = {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name("bayesperf-inference".into())
                .spawn(move || supervise(shared, writer, state_writer, config, policy))
                .map_err(|_| ShimError::SpawnFailed {
                    what: "inference service",
                })?
        };
        Ok(Monitor {
            shared,
            handle: Some(handle),
        })
    }

    /// The monitored catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.shared.catalog
    }

    /// Delivers one kernel sample into the ring (the producer path).
    /// Returns [`ShimError::RingOverflow`] — with the sample dropped and
    /// counted — when the service is not keeping up, and
    /// [`ShimError::SessionClosed`] after [`Monitor::close`].
    ///
    /// Samples must arrive **window-ordered**, as the kernel's per-CPU
    /// ring delivers them: a sample for window `w` declares every window
    /// `< w` complete, and later samples for completed windows are
    /// dropped as late. Concurrent producers are safe only if they do not
    /// interleave across window boundaries (e.g. one producer per
    /// monitor, or an external ordering barrier between windows).
    pub fn push_sample(&self, sample: Sample) -> Result<(), ShimError> {
        let result = {
            let mut st = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            if self.shared.closed.load(Relaxed) {
                return Err(ShimError::SessionClosed);
            }
            if st.ring.push(sample) {
                Ok(())
            } else {
                // The ring itself is the drop accounting (the kernel's
                // PERF_RECORD_LOST analogue); no parallel counter to keep
                // in lockstep.
                Err(ShimError::RingOverflow {
                    dropped: st.ring.dropped(),
                })
            }
        };
        self.shared.notify();
        result
    }

    /// Starts building a new read session.
    pub fn session(&self) -> SessionBuilder<'_> {
        SessionBuilder {
            monitor: self,
            events: None,
            chunk_windows: None,
            threads: None,
            hook: None,
            err: None,
        }
    }

    /// Blocks until every sample pushed before this call has been ingested
    /// and every complete chunk corrected and published — the
    /// deterministic barrier the [`crate::shim::BayesPerfShim`] compat
    /// adapter reads through. While the service is [`Monitor::pause`]d
    /// that guarantee cannot hold, so `sync` returns
    /// [`ShimError::ServicePaused`] instead of acking a no-op.
    pub fn sync(&self) -> Result<(), ShimError> {
        if self.shared.paused.load(Relaxed) {
            return Err(ShimError::ServicePaused);
        }
        self.shared.control_roundtrip(Control::Sync)
    }

    /// Corrects the stream's ragged tail **now**: completes all assembling
    /// windows, runs the remaining full chunks, corrects the partial final
    /// chunk (chained off the last full chunk's posterior), and publishes
    /// the result. Samples for already-flushed windows arriving later are
    /// dropped as late.
    pub fn flush(&self) -> Result<(), ShimError> {
        self.shared.control_roundtrip(Control::Flush)
    }

    /// Stops the service draining the ring, so pushed samples queue up (or
    /// overflow) deterministically — the backpressure test hook.
    pub fn pause(&self) -> Result<(), ShimError> {
        self.shared.control_roundtrip(Control::Pause)
    }

    /// Resumes draining after [`Monitor::pause`] and processes the
    /// backlog before acking.
    pub fn resume(&self) -> Result<(), ShimError> {
        self.shared.control_roundtrip(Control::Resume)
    }

    /// Installs `hook` as the service's schedule feedback hook: from the
    /// next publish on, the inference thread hands it every chunk's final
    /// posteriors — the loop that lets the posterior drive what the PMU
    /// measures next. Replaces any previous hook; blocks until the service
    /// has installed it ([`Monitor::clear_schedule_hook`] removes it).
    pub fn set_schedule_hook(&self, hook: Box<dyn ScheduleHook>) -> Result<(), ShimError> {
        self.shared.control_roundtrip(|ack| Control::SetHook {
            hook: Some(hook),
            ack,
        })
    }

    /// Removes the schedule feedback hook installed by
    /// [`Monitor::set_schedule_hook`] (a no-op when none is installed).
    pub fn clear_schedule_hook(&self) -> Result<(), ShimError> {
        self.shared
            .control_roundtrip(|ack| Control::SetHook { hook: None, ack })
    }

    /// Samples dropped at the ring (backpressure) — the ring's own
    /// `PERF_RECORD_LOST`-style count.
    pub fn dropped(&self) -> u64 {
        self.shared
            .state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .ring
            .dropped()
    }

    /// Samples dropped because they arrived for an already-completed
    /// window.
    pub fn late_samples(&self) -> u64 {
        self.shared.late_samples.get()
    }

    /// Per-source breakdown of [`Monitor::late_samples`], indexed by raw
    /// [`bayesperf_events::SourceId`]. The vector only extends as far as
    /// the highest source that has dropped a sample (empty while nothing
    /// was late); missing entries are zero.
    pub fn late_samples_by_source(&self) -> Vec<u64> {
        late_by_source_of(&self.shared)
    }

    /// Inference runs executed (full chunks plus flushed tails).
    pub fn chunks_run(&self) -> u64 {
        self.shared.chunks_run.get()
    }

    /// Windows whose posteriors have been published.
    pub fn windows_published(&self) -> u64 {
        self.shared.windows_published.get()
    }

    /// The monitor's telemetry plane: the metrics registry every service
    /// counter lives in (`ingest.*`, `service.*`, `ep.*`,
    /// `supervisor.*`), the span tracer the pipeline stamps window
    /// lifecycles into, and the flight recorder supervision events land
    /// in. The accessors above ([`Monitor::divergences`],
    /// [`Monitor::restarts`], ...) read the same registry handles, so the
    /// two surfaces can never disagree.
    pub fn telemetry(&self) -> &Telemetry {
        &self.shared.tele
    }

    /// The supervisor's current view of the service: `Running`,
    /// `Restarting` (crash being recovered), or `Failed` (restart budget
    /// exhausted; reads return [`ShimError::ServiceDown`]).
    pub fn service_state(&self) -> ServiceState {
        service_state_of(&self.shared)
    }

    /// Crash restarts the supervisor has performed (monotonic). A soak
    /// harness that injects a panic spins on this counter to observe the
    /// recovery without racing the restart itself.
    pub fn restarts(&self) -> u64 {
        self.shared.restarts.get()
    }

    /// Divergences contained so far: non-finite samples dropped at
    /// ingest, non-finite posteriors replaced at the publish boundary,
    /// and EP sites quarantined back to their prior.
    pub fn divergences(&self) -> u64 {
        self.shared.divergences.get()
    }

    /// Liveness probe: `(beats, idle)`. `beats` advances once per service
    /// loop iteration and per corrected chunk; `idle` is true while the
    /// thread is parked waiting for work. A watchdog sampling this twice
    /// sees a *stalled* service as frozen `beats` with `idle == false` —
    /// distinct from an idle one (`idle == true`) and from a crashed one
    /// ([`Monitor::service_state`]).
    pub fn heartbeat(&self) -> (u64, bool) {
        (self.shared.beats.get(), self.shared.idle.load(Relaxed))
    }

    /// Fault-injection test hook: makes the inference thread panic the
    /// next time it processes controls, exercising the supervisor's
    /// crash-containment path. Fire-and-forget — observe the recovery via
    /// [`Monitor::restarts`] or [`Monitor::service_state`]. Returns
    /// [`ShimError::SessionClosed`] after close.
    pub fn inject_panic(&self) -> Result<(), ShimError> {
        self.shared.enqueue_control(Control::Panic)
    }

    /// Flushes the stream (tail correction published to subscribers) and
    /// stops the inference thread. Subsequent reads and pushes return
    /// [`ShimError::SessionClosed`]; subscriber iterators end after
    /// draining the flushed updates. Idempotent; also runs on drop.
    pub fn close(&mut self) {
        let Some(handle) = self.handle.take() else {
            return;
        };
        {
            let mut st = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            st.shutdown = true;
        }
        self.shared.cv.notify_all();
        let _ = handle.join();
        self.shared.closed.store(true, Relaxed);
    }
}

impl Drop for Monitor {
    fn drop(&mut self) {
        self.close();
    }
}

/// Configures and opens a [`Session`]. Event selection defaults to the
/// whole catalog; [`SessionBuilder::chunk_windows`] and
/// [`SessionBuilder::threads`] retune the shared inference service (they
/// apply at the next chunk boundary and affect every session), and
/// [`SessionBuilder::schedule_hook`] installs the service's schedule
/// feedback hook.
pub struct SessionBuilder<'m> {
    monitor: &'m Monitor,
    events: Option<Vec<EventId>>,
    chunk_windows: Option<usize>,
    threads: Option<usize>,
    hook: Option<Box<dyn ScheduleHook>>,
    err: Option<ShimError>,
}

impl std::fmt::Debug for SessionBuilder<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionBuilder")
            .field("events", &self.events)
            .field("chunk_windows", &self.chunk_windows)
            .field("threads", &self.threads)
            .field("hook", &self.hook.is_some())
            .field("err", &self.err)
            .finish()
    }
}

impl SessionBuilder<'_> {
    /// Restricts the session to `events` (adds to any previous selection).
    pub fn events(mut self, events: &[EventId]) -> Self {
        for &e in events {
            self = self.event(e);
        }
        self
    }

    /// Adds one event to the selection.
    pub fn event(mut self, event: EventId) -> Self {
        if event.index() >= self.monitor.catalog().len() {
            self.err.get_or_insert(ShimError::UnknownEvent(event));
            return self;
        }
        self.events.get_or_insert_with(Vec::new).push(event);
        self
    }

    /// Adds a derived event by name: its component raw events join the
    /// selection so [`Session::read_derived`] can evaluate it.
    pub fn derived(mut self, name: &str) -> Self {
        let components = self
            .monitor
            .catalog()
            .derived_events()
            .iter()
            .find(|d| d.name == name)
            .map(|d| d.events());
        match components {
            Some(events) => self.events(&events),
            None => {
                self.err
                    .get_or_insert(ShimError::UnknownDerived(name.to_string()));
                self
            }
        }
    }

    /// Selects every catalog event (the default).
    pub fn all_events(mut self) -> Self {
        self.events = None;
        self
    }

    /// Requests a different chunk size (windows per inference run) from
    /// the shared service. Applied at the next chunk boundary; rebuilds
    /// the inference engine, so the next chunk runs cold.
    pub fn chunk_windows(mut self, windows: usize) -> Self {
        self.chunk_windows = Some(windows.max(1));
        self
    }

    /// Requests a different worker-thread budget for the inference farm
    /// (a pure throughput knob: results are bit-identical at any count).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }

    /// Installs `hook` as the monitor's schedule feedback hook when the
    /// session opens — the builder-flow equivalent of
    /// [`Monitor::set_schedule_hook`] for sessions that exist to drive a
    /// multiplexing schedule from the service's own posteriors. Like the
    /// retuning knobs, the hook is service-level state: it replaces any
    /// previously installed hook.
    pub fn schedule_hook(mut self, hook: Box<dyn ScheduleHook>) -> Self {
        self.hook = Some(hook);
        self
    }

    /// Opens the session, applying any service retuning first.
    pub fn open(self) -> Result<Session, ShimError> {
        if let Some(err) = self.err {
            return Err(err);
        }
        if self.monitor.shared.closed.load(Relaxed) {
            return Err(ShimError::SessionClosed);
        }
        if self.chunk_windows.is_some() || self.threads.is_some() {
            self.monitor
                .shared
                .control_roundtrip(|ack| Control::Reconfigure {
                    chunk_windows: self.chunk_windows,
                    threads: self.threads,
                    ack,
                })?;
        }
        if let Some(hook) = self.hook {
            self.monitor.set_schedule_hook(hook)?;
        }
        Ok(Session {
            shared: self.monitor.shared.clone(),
            selection: Arc::new(Selection::new(self.events)),
        })
    }
}

/// A read handle onto the monitor's posterior stream: cheap to clone,
/// sendable across threads, and **never** blocking on inference — every
/// read is served from the latest published snapshot in memory.
#[derive(Clone)]
pub struct Session {
    shared: Arc<Shared>,
    selection: Arc<Selection>,
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("selection", &self.selection)
            .finish()
    }
}

/// The supervisor's published state, defaulting to `Running` in the
/// startup window before the first publication.
fn service_state_of(shared: &Shared) -> ServiceState {
    shared
        .service_state
        .read()
        .map(|g| g.clone())
        .unwrap_or(ServiceState::Running)
}

/// Copies the per-source late-drop counters out as plain counts (the
/// pre-telemetry accessor shape [`Monitor::late_samples_by_source`] and
/// [`Session::late_samples_by_source`] keep serving).
fn late_by_source_of(shared: &Shared) -> Vec<u64> {
    shared
        .late_by_source
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .iter()
        .map(|c| c.get())
        .collect()
}

/// Distinguishes "down" from "closed" for read paths: `Some(cause)` when
/// the service is terminally failed or its supervisor died without the
/// shutdown handshake — cases where a read must *not* be answered from
/// the (stale) last snapshot.
fn down_cause(shared: &Shared) -> Option<String> {
    if let ServiceState::Failed { cause } = service_state_of(shared) {
        return Some(cause);
    }
    if !shared.closed.load(Relaxed) && !shared.service_state.writer_live() {
        // The supervisor itself died (not via close/shutdown — `closed`
        // is unset). Without this check a dead compute plane would serve
        // frozen posteriors forever; this is the silent-freeze fix.
        return Some("supervisor thread died without shutdown handshake".into());
    }
    None
}

impl Session {
    fn ensure_open(&self) -> Result<(), ShimError> {
        if let Some(cause) = down_cause(&self.shared) {
            return Err(ShimError::ServiceDown { cause });
        }
        if self.shared.closed.load(Relaxed) {
            Err(ShimError::SessionClosed)
        } else {
            Ok(())
        }
    }

    /// The supervisor's current view of the backing service — see
    /// [`Monitor::service_state`].
    pub fn service_state(&self) -> ServiceState {
        service_state_of(&self.shared)
    }

    fn check_event(&self, event: EventId) -> Result<(), ShimError> {
        if event.index() >= self.shared.catalog.len() || !self.selection.contains(event) {
            return Err(ShimError::UnknownEvent(event));
        }
        Ok(())
    }

    /// The monitored catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.shared.catalog
    }

    /// Reads the latest posterior of `event`. Non-blocking: one lock-free
    /// snapshot acquisition and a copy; inference never runs on this path.
    pub fn read(&self, event: EventId) -> Result<Reading, ShimError> {
        self.ensure_open()?;
        self.check_event(event)?;
        let snap = self
            .shared
            .snapshot
            .read()
            .ok_or(ShimError::NoPosteriorYet)?;
        Ok(Reading::from_gaussian(&snap.posteriors[event.index()]))
    }

    /// Reads all selected events from **one** consistent snapshot: every
    /// reading in the group comes from the same window and inference run.
    pub fn read_group(&self) -> Result<GroupReading, ShimError> {
        self.ensure_open()?;
        let snap = self
            .shared
            .snapshot
            .read()
            .ok_or(ShimError::NoPosteriorYet)?;
        let readings = self
            .selection
            .iter(&self.shared.catalog)
            .map(|e| (e, Reading::from_gaussian(&snap.posteriors[e.index()])))
            .collect();
        Ok(GroupReading {
            window: snap.window,
            chunk: snap.chunk,
            stats: snap.stats,
            readings,
        })
    }

    /// Evaluates a derived event (by catalog name) on the latest
    /// snapshot: the value is the metric at the posterior means, the
    /// spread a first-order propagation of each component's posterior
    /// standard deviation through the metric. The session must have
    /// selected the metric's component events
    /// ([`SessionBuilder::derived`] does exactly that); an unselected
    /// component is [`ShimError::UnknownEvent`], as on [`Session::read`].
    pub fn read_derived(&self, name: &str) -> Result<Reading, ShimError> {
        self.ensure_open()?;
        let derived = self
            .shared
            .catalog
            .derived_events()
            .iter()
            .find(|d| d.name == name)
            .ok_or_else(|| ShimError::UnknownDerived(name.to_string()))?;
        // The metric reads its component raw events, so the session must
        // have selected them (what `SessionBuilder::derived` sets up) —
        // the same access rule `read` enforces per event.
        for e in derived.events() {
            self.check_event(e)?;
        }
        let snap = self
            .shared
            .snapshot
            .read()
            .ok_or(ShimError::NoPosteriorYet)?;
        Ok(derived_reading(derived, &snap.posteriors))
    }

    /// Copies out the latest published posterior snapshot — the raw
    /// material for fleet-level fusion and wire scraping. Same cost as
    /// [`Session::read_group`] (one lock-free acquisition plus one copy);
    /// see [`Session::snapshot_into`] for the allocation-reusing variant.
    pub fn snapshot(&self) -> Result<SnapshotView, ShimError> {
        let mut view = SnapshotView::default();
        self.snapshot_into(&mut view)?;
        Ok(view)
    }

    /// The `(window, chunk)` stamp of the latest published snapshot,
    /// without copying its posteriors — the cheap change detector a
    /// scrape loop polls before paying for [`Session::snapshot_into`].
    pub fn snapshot_stamp(&self) -> Result<(u32, u64), ShimError> {
        self.ensure_open()?;
        let snap = self
            .shared
            .snapshot
            .read()
            .ok_or(ShimError::NoPosteriorYet)?;
        Ok((snap.window, snap.chunk))
    }

    /// Fills `view` with the latest published posterior snapshot, reusing
    /// its `posteriors` allocation — the scrape-loop path: a fleet
    /// aggregator polling many shards re-reads into the same buffers.
    pub fn snapshot_into(&self, view: &mut SnapshotView) -> Result<(), ShimError> {
        self.ensure_open()?;
        let snap = self
            .shared
            .snapshot
            .read()
            .ok_or(ShimError::NoPosteriorYet)?;
        view.window = snap.window;
        view.chunk = snap.chunk;
        view.stats = snap.stats;
        view.posteriors.clear();
        view.posteriors.extend_from_slice(&snap.posteriors);
        view.late_by_source.clear();
        view.late_by_source.extend(
            self.shared
                .late_by_source
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .iter()
                .map(|c| c.get()),
        );
        Ok(())
    }

    /// Subscribes to the per-window posterior stream: the returned
    /// iterator yields one [`PosteriorUpdate`] per corrected window
    /// (filtered to this session's selection) and ends when the monitor
    /// closes. [`Updates::next`] blocks; [`Updates::try_next`] polls.
    ///
    /// The queue is bounded: a subscriber that falls more than
    /// `UPDATE_QUEUE_CAP` updates behind loses the overflow (never the
    /// service's progress) — skipped `window` indices mark the gap.
    pub fn subscribe(&self) -> Updates {
        self.subscribe_with_capacity(UPDATE_QUEUE_CAP)
    }

    /// [`Session::subscribe`] with an explicit queue bound: a consumer
    /// that falls more than `capacity` updates behind loses the overflow,
    /// and the next delivered update carries the skip in
    /// [`PosteriorUpdate::gap`]. Useful for consumers with a known polling
    /// cadence (and for deterministically testing the lossy path).
    pub fn subscribe_with_capacity(&self, capacity: usize) -> Updates {
        let (tx, rx) = sync_channel(capacity.max(1));
        {
            // Check `closed` under the subscribers lock: the exiting
            // service thread sets the flag before clearing this list
            // (also under the lock), so a subscriber can never register
            // after the final clear and block on a sender nobody holds.
            let mut subs = self
                .shared
                .subscribers
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            if !self.shared.closed.load(Relaxed) {
                subs.push(Subscriber {
                    tx,
                    selection: self.selection.clone(),
                    last_enqueued: None,
                });
            }
        }
        Updates { rx }
    }

    /// Samples dropped at the ring (backpressure) — the ring's own
    /// `PERF_RECORD_LOST`-style count.
    pub fn dropped(&self) -> u64 {
        self.shared
            .state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .ring
            .dropped()
    }

    /// Samples dropped for arriving after their window completed.
    pub fn late_samples(&self) -> u64 {
        self.shared.late_samples.get()
    }

    /// Per-source breakdown of [`Session::late_samples`], indexed by raw
    /// [`bayesperf_events::SourceId`]; missing entries are zero.
    pub fn late_samples_by_source(&self) -> Vec<u64> {
        late_by_source_of(&self.shared)
    }

    /// Inference runs executed so far.
    pub fn chunks_run(&self) -> u64 {
        self.shared.chunks_run.get()
    }

    /// Windows whose posteriors have been published.
    pub fn windows_published(&self) -> u64 {
        self.shared.windows_published.get()
    }

    /// The backing monitor's telemetry plane — see [`Monitor::telemetry`].
    pub fn telemetry(&self) -> &Telemetry {
        &self.shared.tele
    }
}

/// Evaluates a derived event over catalog-indexed `posteriors`: the value
/// is the metric at the posterior means, the spread a central-difference
/// first-order propagation of each component's posterior standard
/// deviation through the metric. Shared by [`Session::read_derived`] and
/// the fleet layer's fused reads, so per-machine and fleet-level derived
/// metrics agree by construction.
///
/// The reading is built directly rather than through `Gaussian::new`: a
/// metric with a division can go non-finite while a denominator's
/// posterior is still vague (early run), and a flat metric has zero
/// spread — both are legitimate readings, not the strictly-positive
/// variance a distribution requires. Reads must never panic.
pub fn derived_reading(derived: &DerivedEvent, posteriors: &[Gaussian]) -> Reading {
    struct MeanEnv<'a> {
        posteriors: &'a [Gaussian],
        bump: Option<(usize, f64)>,
    }
    impl EventEnv for MeanEnv<'_> {
        fn value(&self, id: EventId) -> f64 {
            let mean = self.posteriors[id.index()].mean;
            match self.bump {
                Some((i, delta)) if i == id.index() => mean + delta,
                _ => mean,
            }
        }
    }

    let value = derived.eval(&MeanEnv {
        posteriors,
        bump: None,
    });
    let mut var = 0.0;
    for e in derived.events() {
        let sd = posteriors[e.index()].std_dev();
        if sd == 0.0 {
            continue;
        }
        let hi = derived.eval(&MeanEnv {
            posteriors,
            bump: Some((e.index(), sd)),
        });
        let lo = derived.eval(&MeanEnv {
            posteriors,
            bump: Some((e.index(), -sd)),
        });
        let half = (hi - lo) / 2.0;
        var += half * half;
    }
    let std_dev = var.max(0.0).sqrt();
    Reading {
        value,
        std_dev,
        interval95: (value - 1.96 * std_dev, value + 1.96 * std_dev),
    }
}

/// Blocking iterator over a session's [`PosteriorUpdate`] stream.
#[derive(Debug)]
pub struct Updates {
    rx: Receiver<PosteriorUpdate>,
}

impl Updates {
    /// Non-blocking poll: `Ok(Some(update))` when one is queued,
    /// `Ok(None)` when the stream is open but currently empty, and
    /// `Err(SessionClosed)` once the monitor has closed and every
    /// buffered update has been drained — so a polling consumer can tell
    /// "nothing yet" from "the stream ended".
    pub fn try_next(&mut self) -> Result<Option<PosteriorUpdate>, ShimError> {
        match self.rx.try_recv() {
            Ok(u) => Ok(Some(u)),
            Err(TryRecvError::Empty) => Ok(None),
            Err(TryRecvError::Disconnected) => Err(ShimError::SessionClosed),
        }
    }
}

impl Iterator for Updates {
    type Item = PosteriorUpdate;

    fn next(&mut self) -> Option<PosteriorUpdate> {
        self.rx.recv().ok()
    }
}

/// The background inference service: owns the streaming corrector, the
/// window assembly state and the snapshot writer.
struct InferenceService {
    shared: Arc<Shared>,
    catalog: Arc<Catalog>,
    config: CorrectorConfig,
    writer: SnapshotWriter<PosteriorSnapshot>,
    /// Windows being assembled from ring samples, keyed by window index.
    assembling: HashMap<u32, Vec<Sample>>,
    /// Complete windows awaiting a full chunk, sorted by window index.
    pending: Vec<(u32, Vec<Sample>)>,
    /// This incarnation's span ring (shared across restarts via the
    /// supervisor's clone — incarnations run serially on one thread).
    spans: SpanRecorder,
    /// Tracer stamp of each assembling window's first sample — the start
    /// of its `ingest` span.
    ingest_started: HashMap<u32, u64>,
    /// Tracer stamp of each pending window's promotion — the start of its
    /// `assemble` (chunk-wait) span.
    assembled_at: HashMap<u32, u64>,
    /// Lowest window index still accepted; samples below it are late.
    frontier: Option<u32>,
    /// Reused ring-drain buffer.
    drained: Vec<Sample>,
    paused: bool,
    /// Warm-restart seed: the last published snapshot's posteriors, set by
    /// the supervisor when this incarnation replaces a crashed one. The
    /// corrector chains its first chunk off these, so only the poisoned
    /// in-flight chunk is cold-reset.
    resume: Option<Vec<Gaussian>>,
    /// The last finite posterior published per catalog event — the
    /// substitute handed to readers when a diverged (non-finite) marginal
    /// reaches the publish boundary despite the EP-level quarantine.
    last_good: Vec<Gaussian>,
}

impl InferenceService {
    fn new(
        shared: Arc<Shared>,
        writer: SnapshotWriter<PosteriorSnapshot>,
        config: CorrectorConfig,
        resume: Option<(u32, Vec<Gaussian>)>,
        spans: SpanRecorder,
    ) -> Self {
        let catalog = shared.catalog.clone();
        let (frontier, resume, last_good) = match resume {
            // Windows at or below the last published one were already
            // served; re-publishing them after a restart would hand
            // subscribers duplicate (and possibly reordered) updates.
            Some((w, post)) => (Some(w.saturating_add(1)), Some(post.clone()), post),
            None => (None, None, Vec::new()),
        };
        InferenceService {
            shared,
            catalog,
            config,
            writer,
            assembling: HashMap::new(),
            pending: Vec::new(),
            spans,
            ingest_started: HashMap::new(),
            assembled_at: HashMap::new(),
            frontier,
            drained: Vec::new(),
            paused: false,
            resume,
            last_good,
        }
    }

    fn run(mut self) {
        let catalog = self.catalog.clone();
        let mut corrector = Corrector::new(&catalog, self.config.clone());
        if let Some(post) = self.resume.take() {
            // Statistically warm restart: chain the first chunk off the
            // last published posterior (non-finite entries fall back to
            // the base prior inside `resume_from`).
            let _ = corrector.resume_from(&post);
        }
        loop {
            let (controls, shutdown) = self.wait_for_work();
            self.shared.beats.incr();
            if !self.paused {
                self.drain_and_correct(&mut corrector);
            }
            for ctrl in controls {
                match ctrl {
                    Control::Sync(ack) => {
                        if !self.paused {
                            self.drain_and_correct(&mut corrector);
                        }
                        let _ = ack.send(());
                    }
                    Control::Flush(ack) => {
                        self.flush(&mut corrector);
                        let _ = ack.send(());
                    }
                    Control::Pause(ack) => {
                        self.paused = true;
                        self.shared.paused.store(true, Relaxed);
                        let _ = ack.send(());
                    }
                    Control::Resume(ack) => {
                        self.paused = false;
                        self.shared.paused.store(false, Relaxed);
                        self.drain_and_correct(&mut corrector);
                        let _ = ack.send(());
                    }
                    Control::Reconfigure {
                        chunk_windows,
                        threads,
                        ack,
                    } => {
                        if let Some(t) = threads {
                            self.config.threads = t;
                            corrector.set_threads(t);
                        }
                        if let Some(k) = chunk_windows {
                            if k != self.config.model.slices {
                                self.config.model.slices = k;
                                corrector = Corrector::new(&catalog, self.config.clone());
                                // Windows already pending may form
                                // complete chunks under the new size;
                                // correct them now rather than stalling
                                // until the next sample arrives.
                                if !self.paused {
                                    self.drain_and_correct(&mut corrector);
                                }
                            }
                        }
                        let _ = ack.send(());
                    }
                    Control::SetHook { hook, ack } => {
                        *self.shared.hook.lock().unwrap_or_else(|e| e.into_inner()) = hook;
                        let _ = ack.send(());
                    }
                    Control::Panic => {
                        // Leave a flight-recorder trace *before* the
                        // unwind: the post-mortem should show the
                        // injection, then the restart it provoked.
                        self.shared.tele.flight().record(FlightEvent::PanicInjected);
                        panic!("injected service panic (test hook)");
                    }
                }
            }
            if shutdown {
                self.flush(&mut corrector);
                break;
            }
        }
        // ShutdownGuard performs the close handshake as it drops.
    }

    /// Blocks until there are samples to drain (unless paused), control
    /// messages, or shutdown. Returns the pending controls and the
    /// shutdown flag.
    fn wait_for_work(&mut self) -> (VecDeque<Control>, bool) {
        let mut st = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        while (self.paused || st.ring.is_empty()) && st.control.is_empty() && !st.shutdown {
            // While parked here the heartbeat is legitimately frozen;
            // `idle` tells watchdogs this is a sleeping service, not a
            // stalled one.
            self.shared.idle.store(true, Relaxed);
            st = self.shared.cv.wait(st).unwrap_or_else(|e| e.into_inner());
            self.shared.idle.store(false, Relaxed);
        }
        (std::mem::take(&mut st.control), st.shutdown)
    }

    /// Drains the ring, assembles windows (dropping late samples), and
    /// corrects every complete chunk.
    fn drain_and_correct(&mut self, corrector: &mut Corrector<'_>) {
        self.drained.clear();
        {
            let mut st = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            st.ring.drain_into(&mut self.drained);
        }
        self.ingest();
        self.correct_full_chunks(corrector);
    }

    /// Window assembly. A sample for window `w` means every window `< w`
    /// is complete (the PMU delivers window-ordered streams); a sample for
    /// a window *below* the frontier arrived after its window completed.
    /// If that window is still `pending` (complete, not yet corrected) the
    /// straggler is **absorbed** — the normal fate of a slow-cadence gauge
    /// source's reading landing just behind the PMU stream. Otherwise it
    /// is dropped and counted as late, totalled and per source — never
    /// re-opened into `assembling`.
    fn ingest(&mut self) {
        let mut late = 0u64;
        let mut late_src: Vec<u64> = Vec::new();
        let mut diverged = 0u64;
        for i in 0..self.drained.len() {
            let s = self.drained[i];
            // Divergence containment at the ingest boundary: a corrupted
            // counter (NaN/Inf value or sub-sample moments, negative
            // spread) would poison the likelihood model downstream — the
            // sub-sample spread in particular is asserted non-negative at
            // model build. Drop and count instead.
            if !s.value.is_finite()
                || !s.sub_mean.is_finite()
                || !s.sub_sd.is_finite()
                || s.sub_sd < 0.0
            {
                diverged += 1;
                continue;
            }
            match self.frontier {
                Some(f) if s.window < f => {
                    if let Some((_, samples)) =
                        self.pending.iter_mut().find(|(w, _)| *w == s.window)
                    {
                        samples.push(s);
                    } else {
                        late += 1;
                        let idx = s.source.index();
                        if late_src.len() <= idx {
                            late_src.resize(idx + 1, 0);
                        }
                        late_src[idx] += 1;
                    }
                    continue;
                }
                Some(f) if s.window > f => {
                    self.promote_below(s.window);
                    self.frontier = Some(s.window);
                }
                None => self.frontier = Some(s.window),
                _ => {}
            }
            match self.assembling.entry(s.window) {
                Entry::Occupied(mut e) => e.get_mut().push(s),
                Entry::Vacant(e) => {
                    // First sample of the window: the start stamp of its
                    // `ingest` span (closed at promotion).
                    self.ingest_started.insert(s.window, self.spans.now_ns());
                    e.insert(vec![s]);
                }
            }
        }
        if late > 0 {
            self.shared.late_samples.add(late);
            let mut by_source = self
                .shared
                .late_by_source
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            while by_source.len() < late_src.len() {
                // Grow-on-demand registration of the per-source counters
                // (cold: first late drop from a new source).
                let name = labeled("ingest.late_dropped", "source", by_source.len());
                by_source.push(self.shared.tele.registry().counter(&name));
            }
            for (total, n) in by_source.iter().zip(&late_src) {
                total.add(*n);
            }
        }
        if diverged > 0 {
            self.shared.divergences.add(diverged);
            self.shared
                .tele
                .flight()
                .record(FlightEvent::DivergenceQuarantined {
                    window: self.frontier.unwrap_or(0),
                    sites: diverged,
                });
        }
        self.pending.sort_by_key(|(w, _)| *w);
    }

    /// Moves every assembling window below `limit` into `pending`,
    /// closing each window's `ingest` span and opening its `assemble`
    /// (chunk-wait) span.
    fn promote_below(&mut self, limit: u32) {
        let ready: Vec<u32> = self
            .assembling
            .keys()
            .copied()
            .filter(|&w| w < limit)
            .collect();
        if ready.is_empty() {
            return;
        }
        let now = self.spans.now_ns();
        for w in ready {
            if let Some(samples) = self.assembling.remove(&w) {
                let started = self.ingest_started.remove(&w).unwrap_or(now);
                self.spans.record(Stage::Ingest, w, started, now);
                self.assembled_at.insert(w, now);
                self.pending.push((w, samples));
            }
        }
    }

    /// Closes the `assemble` spans of the windows entering an EP run and
    /// records the run itself as their `ep_sweep` span (plus the
    /// `ep.sweep_ns` histogram entry).
    fn record_sweep_spans(&mut self, windows: &[u32], sweep_start: u64) {
        let sweep_end = self.spans.now_ns();
        self.shared
            .ep_sweep_ns
            .record(sweep_end.saturating_sub(sweep_start));
        for &w in windows {
            let assembled = self.assembled_at.remove(&w).unwrap_or(sweep_start);
            self.spans
                .record(Stage::Assemble, w, assembled, sweep_start);
            self.spans.record(Stage::EpSweep, w, sweep_start, sweep_end);
        }
    }

    fn correct_full_chunks(&mut self, corrector: &mut Corrector<'_>) {
        let k = self.config.model.slices.max(1);
        while self.pending.len() >= k {
            let chunk: Vec<(u32, Vec<Sample>)> = self.pending.drain(..k).collect();
            let refs: Vec<&[Sample]> = chunk.iter().map(|(_, s)| s.as_slice()).collect();
            let sweep_start = self.spans.now_ns();
            let stats = match corrector.try_push_chunk(&refs) {
                Ok(stats) => stats,
                // A mismatched chunk cannot occur (we sized it above);
                // drop it rather than poison the service.
                Err(_) => continue,
            };
            let windows: Vec<u32> = chunk.iter().map(|(w, _)| *w).collect();
            self.record_sweep_spans(&windows, sweep_start);
            self.publish(&windows, stats, |t, e| corrector.posterior(t, e));
            // A long multi-chunk drain still beats once per chunk, so
            // watchdogs don't mistake a busy service for a stalled one.
            self.shared.beats.incr();
        }
    }

    /// Corrects the stream's ragged tail: everything still assembling is
    /// completed, remaining full chunks run, and the final partial chunk
    /// is corrected via the corrector's one-shot tail path.
    fn flush(&mut self, corrector: &mut Corrector<'_>) {
        self.drain_and_correct(corrector);
        self.promote_below(u32::MAX);
        self.pending.sort_by_key(|(w, _)| *w);
        let highest = self.pending.last().map(|(w, _)| *w);
        self.correct_full_chunks(corrector);
        if !self.pending.is_empty() {
            let tail: Vec<(u32, Vec<Sample>)> = self.pending.drain(..).collect();
            let refs: Vec<&[Sample]> = tail.iter().map(|(_, s)| s.as_slice()).collect();
            let sweep_start = self.spans.now_ns();
            if let Ok((post, stats)) = corrector.push_tail(&refs) {
                let windows: Vec<u32> = tail.iter().map(|(w, _)| *w).collect();
                self.record_sweep_spans(&windows, sweep_start);
                self.publish(&windows, stats, |t, e| post.posterior(t, e));
            }
        }
        // Anything arriving for flushed windows from here on is late.
        if let Some(h) = highest {
            let next = h.saturating_add(1);
            if self.frontier.is_none_or(|f| f < next) {
                self.frontier = Some(next);
            }
        }
    }

    /// Publishes one corrected chunk: a per-window [`PosteriorUpdate`] to
    /// every subscriber and a fresh read snapshot of the final window.
    fn publish(
        &mut self,
        windows: &[u32],
        stats: EpRunStats,
        posterior: impl Fn(usize, EventId) -> Gaussian,
    ) {
        let Some(&last_window) = windows.last() else {
            // Publish is only called with non-empty chunks; an empty one
            // has nothing to publish.
            return;
        };
        let publish_start = self.spans.now_ns();

        // Materialize each window's catalog-indexed posteriors once;
        // per-subscriber work inside the lock is then a cheap filtered
        // copy instead of S×k engine walks.
        let mut per_window: Vec<Vec<Gaussian>> = (0..windows.len())
            .map(|t| self.catalog.iter().map(|e| posterior(t, e.id)).collect())
            .collect();

        // Divergence containment at the publish boundary — the last line
        // of defense behind the EP-level site quarantine. A non-finite or
        // non-positive-variance marginal is replaced with the event's
        // last finite published posterior; if the event has never had
        // one, the whole publish is dropped rather than handing readers
        // a poisoned snapshot.
        let mut substituted = 0u64;
        let mut unpublishable = false;
        for wv in &mut per_window {
            for (e, g) in wv.iter_mut().enumerate() {
                if g.mean.is_finite() && g.var.is_finite() && g.var > 0.0 {
                    continue;
                }
                substituted += 1;
                match self.last_good.get(e).copied() {
                    Some(lg) => *g = lg,
                    None => unpublishable = true,
                }
            }
        }
        let diverged = substituted + stats.sites_quarantined;
        if diverged > 0 {
            self.shared.divergences.add(diverged);
            self.shared
                .tele
                .flight()
                .record(FlightEvent::DivergenceQuarantined {
                    window: last_window,
                    sites: diverged,
                });
        }
        if unpublishable {
            self.shared
                .tele
                .flight()
                .record(FlightEvent::PublishVetoed {
                    window: windows[0],
                    reason: "diverged posterior with no finite predecessor to substitute",
                });
            return;
        }
        if let Some(last) = per_window.last() {
            self.last_good.clone_from(last);
        }

        let chunk = self.shared.chunks_run.fetch_add(1) + 1;
        self.shared.windows_published.add(windows.len() as u64);

        let mut subscribers = self
            .shared
            .subscribers
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        for (t, &w) in windows.iter().enumerate() {
            let full = &per_window[t];
            subscribers.retain_mut(|sub| {
                let posteriors: Vec<(EventId, Gaussian)> = sub
                    .selection
                    .iter(&self.catalog)
                    .map(|e| (e, full[e.index()]))
                    .collect();
                // Windows lost to this subscriber's bounded queue since
                // the last update it accepted.
                let gap = sub
                    .last_enqueued
                    .map_or(0, |last| u64::from(w.saturating_sub(last + 1)));
                match sub.tx.try_send(PosteriorUpdate {
                    window: w,
                    gap,
                    chunk,
                    stats,
                    posteriors,
                }) {
                    Ok(()) => {
                        sub.last_enqueued = Some(w);
                        true
                    }
                    // Bounded backpressure: a lagging consumer loses this
                    // update (the next delivered one carries the skip in
                    // `gap`); the service never blocks on a subscriber.
                    Err(TrySendError::Full(_)) => true,
                    Err(TrySendError::Disconnected(_)) => false,
                }
            });
        }
        drop(subscribers);

        let Some(final_posteriors) = per_window.pop() else {
            return;
        };
        {
            // Feed the schedule hook *before* the buffer moves into the
            // snapshot: the scheduler sees exactly what readers are about
            // to. The hook lives on `Shared` so it survives restarts.
            let mut hook = self.shared.hook.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(hook) = hook.as_mut() {
                hook.on_publish(last_window, chunk, &final_posteriors);
            }
        }
        self.writer.publish(PosteriorSnapshot {
            window: last_window,
            chunk,
            stats,
            posteriors: final_posteriors,
        });
        let publish_end = self.spans.now_ns();
        self.shared
            .publish_ns
            .record(publish_end.saturating_sub(publish_start));
        for &w in windows {
            self.spans
                .record(Stage::Publish, w, publish_start, publish_end);
        }
    }
}

/// Renders a `catch_unwind` payload as a human-readable crash cause.
fn panic_cause(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Waits out a restart backoff on the service condvar — so
/// [`Monitor::close`] interrupts it — returning `true` when shutdown was
/// requested during the wait.
fn backoff_or_shutdown(shared: &Shared, backoff: Duration) -> bool {
    let deadline = Instant::now() + backoff;
    let mut st = shared.state.lock().unwrap_or_else(|e| e.into_inner());
    loop {
        if st.shutdown {
            return true;
        }
        let now = Instant::now();
        if now >= deadline {
            return false;
        }
        let (guard, _) = shared
            .cv
            .wait_timeout(st, deadline - now)
            .unwrap_or_else(|e| e.into_inner());
        st = guard;
    }
}

/// The supervised service loop, run on the spawned `bayesperf-inference`
/// thread. Each [`InferenceService`] incarnation runs under
/// `catch_unwind`; a panic is contained here instead of poisoning the
/// process:
///
/// 1. the crashed incarnation's snapshot writer (dropped mid-unwind) is
///    reclaimed via [`SnapshotReader::recover_writer`] — readers kept
///    serving the last published snapshot throughout;
/// 2. the next incarnation warm-starts from that snapshot (only the
///    poisoned in-flight chunk is cold-reset) and resumes the ring, the
///    queued controls, and the installed schedule hook, all of which live
///    on [`Shared`] rather than in the incarnation;
/// 3. restarts are budgeted per [`SupervisorPolicy`]: capped exponential
///    backoff between attempts, budget reset when an incarnation makes
///    progress, and a typed [`ServiceState::Failed`] once exhausted.
///
/// The shutdown handshake (mark closed, error queued control acks,
/// disconnect subscribers) runs on every *supervisor* exit — clean
/// shutdown, terminal failure, even a supervisor bug unwinding — but NOT
/// on a contained service crash, so sessions stay live across restarts.
fn supervise(
    shared: Arc<Shared>,
    writer: SnapshotWriter<PosteriorSnapshot>,
    mut state_writer: SnapshotWriter<ServiceState>,
    config: CorrectorConfig,
    policy: SupervisorPolicy,
) {
    // The handshake guard:
    // 1. mark closed and drop any controls that raced in, under the
    //    state lock (dropping a control's ack sender errors its caller's
    //    recv into SessionClosed; `enqueue_control` checks `closed` under
    //    the same lock, so none slip in after);
    // 2. disconnect subscribers so their iterators end (`subscribe`
    //    re-checks `closed` under that lock, so no late registration
    //    survives the clear).
    // In-flight controls already dequeued by a crashing service loop
    // unwind before `catch_unwind` returns, erroring their acks too.
    struct ShutdownGuard(Arc<Shared>);
    impl Drop for ShutdownGuard {
        fn drop(&mut self) {
            {
                let mut st = self.0.state.lock().unwrap_or_else(|e| e.into_inner());
                self.0.closed.store(true, Relaxed);
                st.control.clear();
            }
            self.0
                .subscribers
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .clear();
        }
    }
    let _shutdown = ShutdownGuard(shared.clone());

    // One span ring for the inference thread, shared across incarnations
    // (they run serially here; the clone per incarnation shares the ring).
    let span_recorder = shared.tele.spans().recorder();
    let mut writer = Some(writer);
    let mut consecutive = 0u32;
    state_writer.publish(ServiceState::Running);
    loop {
        let Some(w) = writer.take() else {
            // Unreachable: the writer is only consumed by a crashed
            // incarnation, and recovery failure breaks out below.
            break;
        };
        let resume = shared
            .snapshot
            .read()
            .map(|g| (g.window, g.posteriors.clone()));
        let progress_before = shared.chunks_run.get();
        let svc = InferenceService::new(
            shared.clone(),
            w,
            config.clone(),
            resume,
            span_recorder.clone(),
        );
        match catch_unwind(AssertUnwindSafe(move || svc.run())) {
            // Orderly shutdown (close / drop): the guard handshakes.
            Ok(()) => break,
            Err(payload) => {
                let cause = panic_cause(payload);
                // Reclaim publication rights on the intact snapshot cell;
                // the crashed incarnation's writer dropped mid-unwind.
                writer = shared.snapshot.recover_writer();
                if shared.chunks_run.get() > progress_before {
                    // The incarnation published before dying — an
                    // occasional crash, not a crash loop.
                    consecutive = 0;
                }
                consecutive += 1;
                if consecutive > policy.max_consecutive_restarts || writer.is_none() {
                    shared.tele.flight().record(FlightEvent::ServiceFailed {
                        cause: cause.clone(),
                    });
                    state_writer.publish(ServiceState::Failed { cause });
                    // The automatic post-mortem: seal the flight ring at
                    // the moment of death so the dump survives whatever
                    // happens to the ring afterwards, and surface it on
                    // stderr for operators not polling the recorder.
                    let dump = shared.tele.flight().seal();
                    eprintln!("bayesperf inference service failed; flight recorder:\n{dump}");
                    break;
                }
                let restarts = shared.restarts.fetch_add(1) + 1;
                shared.tele.flight().record(FlightEvent::ServiceRestart {
                    restarts,
                    cause: cause.clone(),
                });
                state_writer.publish(ServiceState::Restarting { restarts, cause });
                let exp = (consecutive - 1).min(16);
                let backoff = policy
                    .backoff_base
                    .saturating_mul(1u32 << exp)
                    .min(policy.backoff_cap);
                if !backoff.is_zero() {
                    shared.tele.flight().record(FlightEvent::BackoffPark {
                        millis: u64::try_from(backoff.as_millis()).unwrap_or(u64::MAX),
                    });
                }
                if backoff_or_shutdown(&shared, backoff) {
                    break;
                }
                state_writer.publish(ServiceState::Running);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bayesperf_events::{Arch, Semantic};
    use bayesperf_simcpu::{pack_round_robin, MultiplexRun, Pmu, PmuConfig};
    use bayesperf_workloads::kmeans;

    fn recorded_run(cat: &Catalog, n_windows: usize) -> MultiplexRun {
        let mut truth = kmeans().instantiate(cat, 0);
        let pmu = Pmu::new(cat, PmuConfig::for_catalog(cat));
        let events = vec![
            cat.require(Semantic::L1dMisses),
            cat.require(Semantic::LlcHits),
            cat.require(Semantic::LlcMisses),
        ];
        let schedule = pack_round_robin(cat, &events).expect("schedule fits");
        pmu.run_multiplexed(&mut truth, &schedule, n_windows)
    }

    fn feed(monitor: &Monitor, run: &MultiplexRun) {
        for w in &run.windows {
            for s in &w.samples {
                let _ = monitor.push_sample(*s);
            }
        }
    }

    #[test]
    fn session_handles_are_send_sync_and_clone() {
        fn assert_traits<T: Send + Sync + Clone>() {}
        assert_traits::<Session>();
    }

    #[test]
    fn read_before_any_chunk_is_no_posterior_yet() {
        let cat = Catalog::new(Arch::X86SkyLake);
        let run = recorded_run(&cat, 8);
        let monitor =
            Monitor::new(&cat, CorrectorConfig::for_run(&run), 4096).expect("spawn monitor");
        let session = monitor.session().open().expect("open");
        let ev = cat.require(Semantic::L1dMisses);
        assert_eq!(session.read(ev), Err(ShimError::NoPosteriorYet));
        assert!(matches!(
            session.read_group(),
            Err(ShimError::NoPosteriorYet)
        ));
    }

    #[test]
    fn unknown_and_unselected_events_are_typed_errors() {
        let cat = Catalog::new(Arch::X86SkyLake);
        let run = recorded_run(&cat, 8);
        let monitor =
            Monitor::new(&cat, CorrectorConfig::for_run(&run), 4096).expect("spawn monitor");
        let l1d = cat.require(Semantic::L1dMisses);
        let llc = cat.require(Semantic::LlcMisses);
        let session = monitor.session().event(l1d).open().expect("open");
        feed(&monitor, &run);
        monitor.sync().expect("sync");
        assert!(session.read(l1d).is_ok());
        assert_eq!(session.read(llc), Err(ShimError::UnknownEvent(llc)));
        let bogus = EventId::from_raw(u16::MAX);
        assert_eq!(session.read(bogus), Err(ShimError::UnknownEvent(bogus)));
        assert!(matches!(
            monitor.session().event(bogus).open(),
            Err(ShimError::UnknownEvent(_))
        ));
        assert!(matches!(
            monitor.session().derived("no-such-metric").open(),
            Err(ShimError::UnknownDerived(_))
        ));
    }

    #[test]
    fn reads_after_close_are_session_closed() {
        let cat = Catalog::new(Arch::X86SkyLake);
        let run = recorded_run(&cat, 8);
        let mut monitor =
            Monitor::new(&cat, CorrectorConfig::for_run(&run), 4096).expect("spawn monitor");
        let session = monitor.session().open().expect("open");
        feed(&monitor, &run);
        monitor.sync().expect("sync");
        let ev = cat.require(Semantic::L1dMisses);
        assert!(session.read(ev).is_ok());
        monitor.close();
        assert_eq!(session.read(ev), Err(ShimError::SessionClosed));
        assert_eq!(
            monitor.push_sample(run.windows[0].samples[0]),
            Err(ShimError::SessionClosed)
        );
        assert!(matches!(
            monitor.session().open(),
            Err(ShimError::SessionClosed)
        ));
    }

    #[test]
    fn read_group_is_internally_consistent() {
        let cat = Catalog::new(Arch::X86SkyLake);
        let run = recorded_run(&cat, 8);
        let monitor =
            Monitor::new(&cat, CorrectorConfig::for_run(&run), 4096).expect("spawn monitor");
        let session = monitor.session().open().expect("open");
        feed(&monitor, &run);
        monitor.sync().expect("sync");
        let group = session.read_group().expect("group");
        assert_eq!(group.readings.len(), cat.len());
        assert!(group.stats.sweeps_run > 0);
        let ev = cat.require(Semantic::L1dMisses);
        let single = session.read(ev).expect("read");
        let in_group = group
            .readings
            .iter()
            .find(|(e, _)| *e == ev)
            .map(|(_, r)| *r)
            .expect("selected");
        assert_eq!(single, in_group, "same snapshot serves both paths");
    }

    #[test]
    fn derived_event_reads_propagate_uncertainty() {
        let cat = Catalog::new(Arch::X86SkyLake);
        let run = recorded_run(&cat, 8);
        let monitor =
            Monitor::new(&cat, CorrectorConfig::for_run(&run), 4096).expect("spawn monitor");
        let name = cat.derived_events()[0].name.clone();
        let session = monitor.session().derived(&name).open().expect("open");
        feed(&monitor, &run);
        monitor.sync().expect("sync");
        let r = session.read_derived(&name).expect("derived read");
        assert!(r.value.is_finite());
        assert!(r.std_dev > 0.0, "uncertainty propagates through the metric");
        assert_eq!(
            session.read_derived("missing"),
            Err(ShimError::UnknownDerived("missing".into()))
        );
        // Selection is an access contract: a session that did not select
        // the metric's components cannot read it through the back door.
        let narrow = monitor
            .session()
            .event(cat.require(Semantic::L1dMisses))
            .open()
            .expect("open");
        assert!(matches!(
            narrow.read_derived(&name),
            Err(ShimError::UnknownEvent(_))
        ));
    }

    #[test]
    fn sync_refuses_while_paused_instead_of_acking_a_noop() {
        let cat = Catalog::new(Arch::X86SkyLake);
        let run = recorded_run(&cat, 8);
        let monitor =
            Monitor::new(&cat, CorrectorConfig::for_run(&run), 1 << 14).expect("spawn monitor");
        monitor.pause().expect("pause");
        feed(&monitor, &run);
        // Paused: the sync barrier cannot guarantee processing, so it
        // must say so rather than return Ok with nothing corrected.
        assert_eq!(monitor.sync(), Err(ShimError::ServicePaused));
        monitor.resume().expect("resume");
        monitor.sync().expect("sync after resume");
        assert!(monitor.chunks_run() > 0, "backlog processed on resume");
    }

    #[test]
    fn late_samples_are_dropped_and_counted() {
        let cat = Catalog::new(Arch::X86SkyLake);
        let run = recorded_run(&cat, 8);
        let monitor =
            Monitor::new(&cat, CorrectorConfig::for_run(&run), 4096).expect("spawn monitor");
        feed(&monitor, &run);
        monitor.sync().expect("sync");
        assert_eq!(monitor.late_samples(), 0);
        // A straggler for window 0 arrives long after window 0 completed.
        let mut late = run.windows[0].samples[0];
        late.window = 0;
        monitor.push_sample(late).expect("ring has room");
        monitor.sync().expect("sync");
        assert_eq!(monitor.late_samples(), 1, "late sample dropped + counted");
        // It must not re-open window 0: a flush finds nothing stuck.
        monitor.flush().expect("flush");
        assert_eq!(monitor.late_samples(), 1);
    }

    /// Satellite regression: sources with cadences 16x apart (PMU at 1,
    /// power gauge at 16). A slow-cadence reading landing after the PMU
    /// stream completed its window is *absorbed* while the window is
    /// still pending (complete, not yet corrected), and dropped-and-
    /// counted **per source** once the window has been corrected — never
    /// leaked back into `assembling`.
    #[test]
    fn slow_cadence_stragglers_absorb_or_drop_per_source() {
        let cat = Catalog::with_observation_plane(Arch::X86SkyLake);
        let run = recorded_run(&cat, 20);
        let cfg = CorrectorConfig::for_run(&run);
        let k = cfg.model.slices;
        // 20 windows at k=6: windows 0..18 complete when window 19's
        // samples arrive; 0..17 corrected; 18 stays pending.
        assert_eq!(k, 6, "fixture assumes the default chunk size");
        let monitor = Monitor::new(&cat, cfg, 1 << 14).expect("spawn monitor");
        feed(&monitor, &run);
        monitor.sync().expect("sync");
        assert_eq!(monitor.late_samples(), 0);

        let power = cat
            .sources()
            .iter()
            .find(|s| s.cadence == 16)
            .expect("a 16x-slower source");
        let ev = cat.events_of_source(power.id)[0];
        let gauge = |window: u32| Sample {
            event: ev,
            window,
            value: 1.0,
            sub_mean: 1.0,
            sub_sd: 0.0,
            sub_n: 1,
            time_enabled: 1,
            time_running: 1,
            source: power.id,
        };

        // Straggler for the completed-but-uncorrected window: absorbed.
        monitor.push_sample(gauge(18)).expect("ring has room");
        monitor.sync().expect("sync");
        assert_eq!(monitor.late_samples(), 0, "pending window absorbs it");
        assert!(monitor.late_samples_by_source().is_empty());

        // Straggler for an already-corrected window: dropped, and the
        // drop is charged to the gauge source, not the PMU.
        monitor.push_sample(gauge(16)).expect("ring has room");
        monitor.sync().expect("sync");
        assert_eq!(monitor.late_samples(), 1);
        let by_source = monitor.late_samples_by_source();
        assert_eq!(by_source[power.id.index()], 1);
        assert!(
            by_source[..power.id.index()].iter().all(|&c| c == 0),
            "no other source charged"
        );

        // Nothing leaked into assembly: the flush finds nothing stuck and
        // the absorbed reading went out with its window.
        monitor.flush().expect("flush");
        assert_eq!(monitor.late_samples(), 1);
        assert_eq!(
            monitor.windows_published(),
            run.windows.len() as u64,
            "every window (including the absorbing one) was corrected"
        );
    }

    #[test]
    fn flush_corrects_the_partial_final_chunk() {
        let cat = Catalog::new(Arch::X86SkyLake);
        // 9 windows, chunk size 6: one full chunk + a 3-window tail that
        // the pre-redesign shim silently dropped.
        let run = recorded_run(&cat, 9);
        let cfg = CorrectorConfig::for_run(&run);
        let k = cfg.model.slices;
        assert!(
            !run.windows.len().is_multiple_of(k),
            "fixture must have a ragged tail"
        );
        let monitor = Monitor::new(&cat, cfg, 1 << 14).expect("spawn monitor");
        let session = monitor.session().open().expect("open");
        let mut updates = session.subscribe();
        feed(&monitor, &run);
        monitor.sync().expect("sync");
        assert_eq!(monitor.windows_published(), k as u64, "tail not yet run");
        monitor.flush().expect("flush");
        assert_eq!(
            monitor.windows_published(),
            run.windows.len() as u64,
            "flush corrected the tail windows"
        );
        let ev = cat.require(Semantic::L1dMisses);
        let r = session.read(ev).expect("tail posterior served");
        assert!(r.value.is_finite() && r.std_dev > 0.0);
        // The flush ack guarantees all updates are already queued.
        let mut windows = Vec::new();
        while let Ok(Some(u)) = updates.try_next() {
            windows.push(u.window);
        }
        assert_eq!(
            windows,
            (0..run.windows.len() as u32).collect::<Vec<_>>(),
            "every window published exactly once, in order"
        );
    }

    #[test]
    fn reconfigured_chunking_applies_to_the_service() {
        let cat = Catalog::new(Arch::X86SkyLake);
        let run = recorded_run(&cat, 9);
        let monitor =
            Monitor::new(&cat, CorrectorConfig::for_run(&run), 1 << 14).expect("spawn monitor");
        let session = monitor
            .session()
            .chunk_windows(4)
            .threads(1)
            .open()
            .expect("open");
        feed(&monitor, &run);
        monitor.sync().expect("sync");
        // 9 windows, window 8 still assembling: 8 complete -> two chunks
        // of 4.
        assert_eq!(monitor.chunks_run(), 2, "service re-chunked to 4");
        assert_eq!(monitor.windows_published(), 8);
        let ev = cat.require(Semantic::L1dMisses);
        assert!(session.read(ev).is_ok());
    }

    #[test]
    fn schedule_hook_sees_every_publish_in_order() {
        struct Recorder(Arc<Mutex<Vec<(u32, u64, usize)>>>);
        impl ScheduleHook for Recorder {
            fn on_publish(&mut self, window: u32, chunk: u64, posteriors: &[Gaussian]) {
                assert!(posteriors.iter().all(|g| g.mean.is_finite() && g.var > 0.0));
                self.0
                    .lock()
                    .unwrap()
                    .push((window, chunk, posteriors.len()));
            }
        }
        let cat = Catalog::new(Arch::X86SkyLake);
        let run = recorded_run(&cat, 12);
        let monitor =
            Monitor::new(&cat, CorrectorConfig::for_run(&run), 1 << 14).expect("spawn monitor");
        let log = Arc::new(Mutex::new(Vec::new()));
        // The builder flow installs the hook on the service.
        let _session = monitor
            .session()
            .schedule_hook(Box::new(Recorder(log.clone())))
            .open()
            .expect("open");
        feed(&monitor, &run);
        monitor.sync().expect("sync");
        monitor.flush().expect("flush");
        let seen = log.lock().unwrap().clone();
        assert_eq!(
            seen.len() as u64,
            monitor.chunks_run(),
            "one hook call per inference run"
        );
        // Final windows strictly increase, chunk counter is 1-based and
        // consecutive, and every call carried a full catalog of posteriors.
        for (i, &(w, c, n)) in seen.iter().enumerate() {
            assert_eq!(c, i as u64 + 1);
            assert_eq!(n, cat.len());
            if i > 0 {
                assert!(w > seen[i - 1].0);
            }
        }
        assert_eq!(seen.last().unwrap().0, 11, "flush published the tail");
        // Clearing the hook stops the calls.
        monitor.clear_schedule_hook().expect("clear");
        feed(&monitor, &run); // late samples only; no new chunks anyway
        monitor.sync().expect("sync");
        assert_eq!(log.lock().unwrap().len(), seen.len());
    }

    #[test]
    fn rechunking_corrects_the_existing_backlog_without_new_samples() {
        let cat = Catalog::new(Arch::X86SkyLake);
        // 5 windows never fill a default chunk of 6: everything sits
        // pending/assembling.
        let run = recorded_run(&cat, 5);
        let monitor =
            Monitor::new(&cat, CorrectorConfig::for_run(&run), 1 << 14).expect("spawn monitor");
        feed(&monitor, &run);
        monitor.sync().expect("sync");
        assert_eq!(monitor.chunks_run(), 0, "k=6 backlog incomplete");
        // Shrinking the chunk size must correct the windows already
        // buffered (4 complete -> two 2-window chunks), not stall until
        // the next sample happens to arrive.
        let session = monitor.session().chunk_windows(2).open().expect("open");
        assert_eq!(monitor.chunks_run(), 2, "backlog corrected on rechunk");
        assert!(session.read(cat.require(Semantic::L1dMisses)).is_ok());
    }
}
