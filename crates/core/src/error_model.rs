//! The measurement-error model of §4.2.
//!
//! For a single event programmed on an HPC, the measured value is the true
//! value plus zero-mean random noise (`m = v + e`, `e ~ N(0, σ)` with σ
//! unknown). Given the `N` PMI sub-samples of one multiplexing window, the
//! marginal posterior of the true value — with the unknown variance
//! marginalized out — is a scaled and shifted Student-t:
//! `v ~ total + (S·√N) · StudentT(ν = N − 1)`.

use bayesperf_inference::StudentT;
use bayesperf_simcpu::Sample;

/// Builds the normalized observation factor for a sample.
///
/// The returned Student-t is expressed in *normalized* units (window counts
/// divided by `scale`), matching the inference model's variables. The scale
/// parameter is floored at `sigma_floor` (relative) so that a window with
/// zero sub-sample deviation still reflects the residual measurement noise
/// floor instead of collapsing to a delta.
///
/// # Panics
///
/// Panics if `scale` is not positive.
pub fn observation(sample: &Sample, scale: f64, sigma_floor: f64) -> StudentT {
    assert!(scale > 0.0, "scale must be positive, got {scale}");
    let n = sample.sub_n.max(3) as f64;
    // The noise of the window total (a sum of n sub-samples, each with
    // deviation sub_sd) has standard deviation sub_sd·√n.
    let total_sd = sample.sub_sd * n.sqrt();
    let loc = sample.value / scale;
    let t_scale = (total_sd / scale).max(sigma_floor * loc.abs().max(1e-3));
    StudentT::new(loc, t_scale, n - 1.0)
}

/// Builds the observation factor for an **extrapolated** sample
/// ([`Sample::is_extrapolated`]): the event's group was not on the
/// counters, and the value is a `time_enabled/time_running`-style
/// carry-forward — the §2 scaling estimate, not a hardware read.
///
/// The factor is deliberately wide and heavy-tailed: its scale is
/// `extrap_sigma` *relative* to the carried value (floored like a real
/// read), and the degrees of freedom are pinned at the minimum (2.5) so a
/// phase change that makes the carry-forward badly wrong does not drag the
/// posterior with the confidence of a measurement. The factor still
/// anchors otherwise-unobserved slices — extrapolations carry *some*
/// information — but a single real read dominates it.
///
/// `extrap_sigma` is floored at `1e-6` so a misconfigured zero (or a
/// negative value) degrades to an extremely tight factor instead of
/// panicking — this function runs on the monitor's background inference
/// thread, where a panic closes the whole service. The model layer
/// additionally floors it at `obs_sigma_floor` so a carry-forward can
/// never be *tighter* than a real read (see
/// [`crate::model::ModelConfig::extrap_sigma`]).
///
/// # Panics
///
/// Panics if `scale` is not positive.
pub fn extrapolated_observation(sample: &Sample, scale: f64, extrap_sigma: f64) -> StudentT {
    assert!(scale > 0.0, "scale must be positive, got {scale}");
    let loc = sample.value / scale;
    let t_scale = extrap_sigma.max(1e-6) * loc.abs().max(1e-3);
    StudentT::new(loc, t_scale, 2.5)
}

/// Builds the observation factor for a **soft gauge** reading
/// ([`bayesperf_events::SourceNoise::Gaussian`]): a single value from a
/// diskstats/RAPL-style source, with no PMI sub-sample statistics.
///
/// The source's advertised relative scale (`rel_scale`, per-read sigma and
/// calibration drift already composed in quadrature) replaces the
/// sub-sample deviation the PMU path gets for free: the factor's scale is
/// `rel_scale` times the reading, floored at `sigma_floor` like a real
/// read. High degrees of freedom (60) make the factor effectively
/// Gaussian — gauge noise is well modelled, unlike the heavy-tailed OS
/// nondeterminism of multiplexed reads — while staying in the same
/// Student-t family the EP sites already handle.
///
/// `rel_scale` is floored at `1e-6` for the same reason as
/// [`extrapolated_observation`]: this runs on the monitor's inference
/// thread, where a panic closes the service.
///
/// # Panics
///
/// Panics if `scale` is not positive.
pub fn gauge_observation(
    sample: &Sample,
    scale: f64,
    rel_scale: f64,
    sigma_floor: f64,
) -> StudentT {
    assert!(scale > 0.0, "scale must be positive, got {scale}");
    let loc = sample.value / scale;
    let rel = rel_scale.max(1e-6).max(sigma_floor);
    let t_scale = rel * loc.abs().max(1e-3);
    StudentT::new(loc, t_scale, 60.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bayesperf_events::EventId;

    fn sample(value: f64, sub_sd: f64, sub_n: u32) -> Sample {
        Sample {
            event: EventId::from_raw(0),
            window: 0,
            value,
            sub_mean: value / sub_n as f64,
            sub_sd,
            sub_n,
            time_enabled: 4,
            time_running: 4,
            source: bayesperf_events::SourceId::PMU,
        }
    }

    #[test]
    fn observation_centers_on_normalized_value() {
        let s = sample(1000.0, 10.0, 4);
        let t = observation(&s, 500.0, 0.02);
        assert!((t.loc - 2.0).abs() < 1e-12);
        assert_eq!(t.dof, 3.0);
    }

    #[test]
    fn noisier_windows_get_wider_factors() {
        let quiet = observation(&sample(1000.0, 5.0, 4), 500.0, 0.001);
        let noisy = observation(&sample(1000.0, 50.0, 4), 500.0, 0.001);
        assert!(noisy.scale > 5.0 * quiet.scale);
    }

    #[test]
    fn zero_deviation_is_floored() {
        let t = observation(&sample(1000.0, 0.0, 4), 500.0, 0.02);
        assert!(t.scale >= 0.02 * 2.0 - 1e-12);
    }

    #[test]
    fn more_subsamples_raise_dof() {
        let t4 = observation(&sample(100.0, 1.0, 4), 100.0, 0.02);
        let t16 = observation(&sample(100.0, 1.0, 16), 100.0, 0.02);
        assert!(t16.dof > t4.dof);
    }

    #[test]
    #[should_panic(expected = "scale must be positive")]
    fn rejects_bad_scale() {
        observation(&sample(1.0, 1.0, 4), 0.0, 0.02);
    }

    #[test]
    fn extrapolated_factor_is_much_wider_than_a_real_read() {
        let real = observation(&sample(1000.0, 5.0, 4), 500.0, 0.02);
        let mut carried = sample(1000.0, 0.0, 0);
        carried.sub_n = 0;
        let extrap = extrapolated_observation(&carried, 500.0, 0.5);
        assert!((extrap.loc - real.loc).abs() < 1e-12, "same location");
        assert!(
            extrap.scale > 10.0 * real.scale,
            "extrapolation scale {} must dwarf the read's {}",
            extrap.scale,
            real.scale
        );
        assert!(extrap.dof < real.dof, "heavier tails than any real read");
    }

    #[test]
    fn extrapolated_factor_survives_nonpositive_sigma() {
        // Runs on the inference thread: a misconfigured extrap_sigma must
        // degrade to a (floored) proper density, never panic the service.
        let mut s = sample(1000.0, 0.0, 0);
        s.sub_n = 0;
        for bad in [0.0, -1.0] {
            let t = extrapolated_observation(&s, 500.0, bad);
            assert!(t.scale > 0.0, "floored scale for extrap_sigma={bad}");
        }
    }

    #[test]
    fn gauge_factor_uses_the_advertised_relative_scale() {
        let s = sample(1000.0, 0.0, 1);
        let t = gauge_observation(&s, 500.0, 0.05, 0.002);
        assert!((t.loc - 2.0).abs() < 1e-12);
        assert!((t.scale - 0.05 * 2.0).abs() < 1e-12);
        assert!(t.dof > 30.0, "gauge factors are near-Gaussian");

        // The PMU sigma floor still applies when the source advertises
        // implausibly tight noise, and a zero rel_scale never panics.
        let floored = gauge_observation(&s, 500.0, 0.0, 0.02);
        assert!(floored.scale >= 0.02 * 2.0 - 1e-12);
    }

    #[test]
    fn extrapolated_factor_handles_zero_counts() {
        let mut s = sample(0.0, 0.0, 0);
        s.sub_n = 0;
        let t = extrapolated_observation(&s, 500.0, 0.5);
        assert_eq!(t.loc, 0.0);
        assert!(t.scale > 0.0, "proper density even at zero carry-forward");
    }
}
