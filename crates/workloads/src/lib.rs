//! HiBench-like workload generators.
//!
//! The paper's evaluation (§6.2) measures 29 workloads from the HiBench
//! suite — microbenchmarks, machine learning, SQL, web search, graph
//! analytics, and streaming — on a two-node Spark cluster. This crate
//! provides 29 synthetic equivalents: each workload is a [`PhaseProgram`], a
//! looping sequence of phases whose free parameters ([`bayesperf_events::FreeParams`]) are
//! synthesized into full, invariant-consistent event-rate vectors by
//! [`bayesperf_events::synthesize`].
//!
//! What matters for reproducing the paper's error phenomenology is that
//! workloads are *non-stationary*: rates shift across phases (map vs shuffle
//! vs reduce), oscillate within phases (iteration structure), and burst
//! (GC pauses, checkpoint flushes). Multiplexed sampling misses those
//! dynamics — that is precisely the error BayesPerf corrects — while the
//! invariant structure ties concurrently-measured events together.
//!
//! # Example
//!
//! ```
//! use bayesperf_events::{Arch, Catalog};
//! use bayesperf_workloads::{all_workloads, by_name};
//! use bayesperf_simcpu::GroundTruth;
//!
//! assert_eq!(all_workloads().len(), 29);
//! let cat = Catalog::new(Arch::X86SkyLake);
//! let kmeans = by_name("KMeans").unwrap();
//! let mut run = kmeans.instantiate(&cat, 0); // run seed 0
//! let mut rates = vec![0.0; cat.len()];
//! run.rates_at(0, &mut rates);
//! assert!(rates.iter().any(|&r| r > 0.0));
//! ```

mod modulation;
mod program;
mod suite;

pub use modulation::Modulation;
pub use program::{Phase, PhaseProgram, Workload, WorkloadFamily};
pub use suite::{all_workloads, by_name, kmeans, names};
