//! Within-phase rate modulation: iteration sinusoids and bursts.

use bayesperf_events::FreeParams;
use serde::{Deserialize, Serialize};

/// Periodic modulation applied to a phase's free parameters.
///
/// Two components:
///
/// * a **sinusoid** on compute intensity (IPC) and memory pressure with the
///   given period and relative amplitude — models iteration structure
///   (e.g. KMeans assignment/update sub-steps);
/// * **bursts**: every `burst_every` ticks, for `burst_len` ticks, memory
///   and IO parameters are multiplied by `burst_scale` — models GC pauses,
///   shuffle spills, and checkpoint flushes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Modulation {
    /// Sinusoid period in ticks (0 disables the sinusoid).
    pub period_ticks: f64,
    /// Relative sinusoid amplitude (0..1).
    pub amplitude: f64,
    /// Burst period in ticks (0 disables bursts).
    pub burst_every: u64,
    /// Burst duration in ticks.
    pub burst_len: u64,
    /// Multiplier on memory/IO parameters during a burst.
    pub burst_scale: f64,
}

impl Modulation {
    /// No modulation: the phase is stationary.
    pub fn none() -> Self {
        Modulation {
            period_ticks: 0.0,
            amplitude: 0.0,
            burst_every: 0,
            burst_len: 0,
            burst_scale: 1.0,
        }
    }

    /// True if `t` (phase-local ticks) falls inside a burst.
    pub fn in_burst(&self, t: u64) -> bool {
        self.burst_every > 0 && self.burst_len > 0 && t % self.burst_every < self.burst_len
    }

    /// Applies the modulation to `params` at phase-local tick `t`.
    pub fn apply(&self, params: &FreeParams, t: u64) -> FreeParams {
        let mut p = params.clone();
        if self.period_ticks > 0.0 && self.amplitude > 0.0 {
            let phase = 2.0 * std::f64::consts::PI * t as f64 / self.period_ticks;
            let wave = self.amplitude * phase.sin();
            // Compute intensity and memory pressure oscillate in
            // anti-phase: iterations alternate compute and data movement.
            p.ipc *= 1.0 + wave;
            p.l1d_mpki *= 1.0 - 0.8 * wave;
            p.mem_stall_frac *= 1.0 - 0.8 * wave;
            p.oro_any_frac *= 1.0 - 0.8 * wave;
        }
        if self.in_burst(t) {
            let s = self.burst_scale;
            p.l1d_mpki *= s;
            p.l2_miss_ratio = (p.l2_miss_ratio * s).min(0.95);
            p.mem_stall_frac = (p.mem_stall_frac * s).min(0.95);
            p.oro_any_frac = (p.oro_any_frac * s).min(0.95);
            p.iio_wr_full_pmc *= s;
            p.iio_wr_alloc_pmc *= s;
            p.iio_rd_part_pmc *= s;
            p.ipc /= s.max(1.0).sqrt();
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_identity() {
        let m = Modulation::none();
        let p = FreeParams::default();
        let q = m.apply(&p, 17);
        assert_eq!(p, q);
        assert!(!m.in_burst(0));
    }

    #[test]
    fn sinusoid_oscillates_ipc() {
        let m = Modulation {
            period_ticks: 40.0,
            amplitude: 0.5,
            ..Modulation::none()
        };
        let p = FreeParams::default();
        let peak = m.apply(&p, 10); // sin(π/2) = 1
        let trough = m.apply(&p, 30); // sin(3π/2) = -1
        assert!(peak.ipc > p.ipc * 1.4);
        assert!(trough.ipc < p.ipc * 0.6);
        // Memory pressure moves in anti-phase.
        assert!(peak.l1d_mpki < p.l1d_mpki);
        assert!(trough.l1d_mpki > p.l1d_mpki);
    }

    #[test]
    fn burst_window_detection() {
        let m = Modulation {
            burst_every: 10,
            burst_len: 3,
            burst_scale: 2.0,
            ..Modulation::none()
        };
        assert!(m.in_burst(0));
        assert!(m.in_burst(2));
        assert!(!m.in_burst(3));
        assert!(m.in_burst(10));
        let p = FreeParams::default();
        let burst = m.apply(&p, 1);
        assert!(burst.l1d_mpki > p.l1d_mpki * 1.9);
        assert!(burst.ipc < p.ipc);
    }

    #[test]
    fn ratios_stay_bounded() {
        let m = Modulation {
            burst_every: 4,
            burst_len: 4,
            burst_scale: 100.0,
            ..Modulation::none()
        };
        let p = FreeParams::default();
        let q = m.apply(&p, 0);
        assert!(q.l2_miss_ratio <= 0.95);
        assert!(q.mem_stall_frac <= 0.95);
    }
}
