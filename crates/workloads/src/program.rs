//! Phase programs: the workload model, and their instantiation as ground
//! truth for the PMU simulator.

use crate::modulation::Modulation;
use bayesperf_events::{synthesize_into, Catalog, FreeParams};
use bayesperf_simcpu::GroundTruth;
use serde::{Deserialize, Serialize};

/// HiBench workload families (the groups of §6.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WorkloadFamily {
    /// Sort/WordCount/TeraSort-style microbenchmarks.
    Micro,
    /// Iterative Spark MLlib workloads.
    MachineLearning,
    /// Scan/Join/Aggregate SQL queries.
    Sql,
    /// PageRank and indexing.
    Websearch,
    /// Graph analytics (NWeight).
    Graph,
    /// Spark Streaming jobs.
    Streaming,
}

/// One workload phase: a parameter point, a duration, and a modulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Phase {
    /// Phase length in ticks (1 tick ≈ 1 ms).
    pub duration_ticks: u64,
    /// Free parameters of the phase.
    pub params: FreeParams,
    /// Within-phase modulation.
    pub modulation: Modulation,
}

/// A named, looping sequence of phases — one HiBench-like workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseProgram {
    name: String,
    family: WorkloadFamily,
    phases: Vec<Phase>,
}

impl PhaseProgram {
    /// Creates a program.
    ///
    /// # Panics
    ///
    /// Panics if `phases` is empty or any phase has zero duration.
    pub fn new(name: impl Into<String>, family: WorkloadFamily, phases: Vec<Phase>) -> Self {
        assert!(!phases.is_empty(), "a workload needs at least one phase");
        assert!(
            phases.iter().all(|p| p.duration_ticks > 0),
            "phases must have positive duration"
        );
        PhaseProgram {
            name: name.into(),
            family,
            phases,
        }
    }

    /// Workload name (HiBench benchmark name).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Workload family.
    pub fn family(&self) -> WorkloadFamily {
        self.family
    }

    /// The phases of the program.
    pub fn phases(&self) -> &[Phase] {
        &self.phases
    }

    /// Total loop length in ticks.
    pub fn period_ticks(&self) -> u64 {
        self.phases.iter().map(|p| p.duration_ticks).sum()
    }

    /// Binds the program to a catalog for one application *run*.
    ///
    /// `run_seed` jitters phase durations (±10%) and rates (±5%), modelling
    /// run-to-run nondeterminism (§2: memory layout, multi-processor
    /// interactions, OS scheduling differ between runs).
    pub fn instantiate<'a>(&self, catalog: &'a Catalog, run_seed: u64) -> Workload<'a> {
        let mut state = splitmix_init(&self.name, run_seed);
        let phases: Vec<Phase> = self
            .phases
            .iter()
            .map(|ph| {
                let djit = 1.0 + 0.10 * sym_unit(&mut state);
                let rjit = 1.0 + 0.05 * sym_unit(&mut state);
                let mut params = ph.params.clone();
                params.ipc *= rjit;
                params.l1d_mpki *= 1.0 + 0.05 * sym_unit(&mut state);
                params.branch_mpki *= 1.0 + 0.05 * sym_unit(&mut state);
                Phase {
                    duration_ticks: ((ph.duration_ticks as f64 * djit).round() as u64).max(1),
                    params,
                    modulation: ph.modulation,
                }
            })
            .collect();
        Workload {
            catalog,
            name: self.name.clone(),
            phases,
            period: 0,
        }
        .with_period()
    }
}

/// A program bound to a catalog and a run seed: the [`GroundTruth`] fed to
/// the PMU simulator.
#[derive(Debug, Clone)]
pub struct Workload<'a> {
    catalog: &'a Catalog,
    name: String,
    phases: Vec<Phase>,
    period: u64,
}

impl Workload<'_> {
    fn with_period(mut self) -> Self {
        self.period = self.phases.iter().map(|p| p.duration_ticks).sum();
        self
    }

    /// The (phase, phase-local tick) active at `tick`.
    fn locate(&self, tick: u64) -> (&Phase, u64) {
        let mut t = tick % self.period;
        for ph in &self.phases {
            if t < ph.duration_ticks {
                return (ph, t);
            }
            t -= ph.duration_ticks;
        }
        unreachable!("tick within period always falls in a phase")
    }

    /// The modulated free parameters at `tick` (exposed for tests and the
    /// case study's feature extraction).
    pub fn params_at(&self, tick: u64) -> FreeParams {
        let (ph, t) = self.locate(tick);
        ph.modulation.apply(&ph.params, t)
    }
}

impl GroundTruth for Workload<'_> {
    fn rates_at(&mut self, tick: u64, out: &mut [f64]) {
        let params = self.params_at(tick);
        synthesize_into(self.catalog, &params, out);
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// SplitMix64 — tiny deterministic generator for per-run jitter.
fn splitmix_init(name: &str, run_seed: u64) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ run_seed.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    for b in name.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn splitmix_next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Uniform in [-1, 1).
fn sym_unit(state: &mut u64) -> f64 {
    (splitmix_next(state) >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use bayesperf_events::Arch;

    fn two_phase() -> PhaseProgram {
        let compute = Phase {
            duration_ticks: 50,
            params: FreeParams {
                ipc: 2.5,
                l1d_mpki: 3.0,
                ..FreeParams::default()
            },
            modulation: Modulation::none(),
        };
        let shuffle = Phase {
            duration_ticks: 30,
            params: FreeParams {
                ipc: 0.6,
                l1d_mpki: 45.0,
                mem_stall_frac: 0.5,
                ..FreeParams::default()
            },
            modulation: Modulation::none(),
        };
        PhaseProgram::new("TwoPhase", WorkloadFamily::Micro, vec![compute, shuffle])
    }

    #[test]
    fn phases_loop() {
        let cat = Catalog::new(Arch::X86SkyLake);
        let w = two_phase().instantiate(&cat, 0);
        let period = w.period;
        let p0 = w.params_at(0);
        let p_next_period = w.params_at(period);
        assert_eq!(p0, p_next_period);
    }

    #[test]
    fn phase_transition_changes_rates() {
        let cat = Catalog::new(Arch::X86SkyLake);
        let mut w = two_phase().instantiate(&cat, 0);
        let mut a = vec![0.0; cat.len()];
        let mut b = vec![0.0; cat.len()];
        w.rates_at(0, &mut a);
        // Safely inside the second phase despite ±10% duration jitter.
        w.rates_at(60, &mut b);
        let inst = cat
            .require(bayesperf_events::Semantic::Instructions)
            .index();
        assert!(
            a[inst] > 2.0 * b[inst],
            "compute phase should retire >2x the instructions ({} vs {})",
            a[inst],
            b[inst]
        );
    }

    #[test]
    fn runs_differ_but_are_deterministic() {
        let cat = Catalog::new(Arch::X86SkyLake);
        let w0 = two_phase().instantiate(&cat, 0);
        let w0_again = two_phase().instantiate(&cat, 0);
        let w1 = two_phase().instantiate(&cat, 1);
        assert_eq!(w0.params_at(0), w0_again.params_at(0));
        assert_ne!(w0.params_at(0), w1.params_at(0));
    }

    #[test]
    fn ground_truth_satisfies_exact_invariants_under_modulation() {
        let cat = Catalog::new(Arch::X86SkyLake);
        let mut prog = two_phase();
        prog.phases[0].modulation = Modulation {
            period_ticks: 20.0,
            amplitude: 0.5,
            burst_every: 13,
            burst_len: 3,
            burst_scale: 3.0,
        };
        let mut w = prog.instantiate(&cat, 3);
        let mut rates = vec![0.0; cat.len()];
        for tick in [0u64, 5, 13, 21, 49, 55, 79, 100] {
            w.rates_at(tick, &mut rates);
            for inv in cat.invariants().iter().filter(|i| i.is_exact()) {
                assert!(
                    inv.relative_residual(&rates).abs() < 1e-9,
                    "{} violated at tick {tick}",
                    inv.name
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one phase")]
    fn empty_program_rejected() {
        PhaseProgram::new("empty", WorkloadFamily::Micro, vec![]);
    }
}
