//! The 29-workload HiBench-like suite (§6.2, Fig. 6).

use crate::modulation::Modulation;
use crate::program::{Phase, PhaseProgram, WorkloadFamily};
use bayesperf_events::FreeParams;

/// Per-workload tuning knobs over the family templates.
struct Profile {
    name: &'static str,
    family: WorkloadFamily,
    /// Compute intensity multiplier (IPC).
    compute: f64,
    /// Memory intensity multiplier (miss rates, stalls, DRAM occupancy).
    memory: f64,
    /// IO/DMA intensity multiplier (shuffle & HDFS traffic).
    io: f64,
    /// Branchiness multiplier.
    branchy: f64,
    /// Iteration period in ticks (sinusoid), 0 for non-iterative.
    iteration: f64,
    /// Burst period in ticks (0 = no bursts).
    burst_every: u64,
}

fn scaled(base: &FreeParams, p: &Profile) -> FreeParams {
    FreeParams {
        ipc: base.ipc * p.compute,
        branch_frac: (base.branch_frac * p.branchy).min(0.3),
        branch_mpki: base.branch_mpki * p.branchy,
        l1d_mpki: base.l1d_mpki * p.memory,
        icache_mpki: base.icache_mpki * p.branchy.max(1.0),
        l2_miss_ratio: (base.l2_miss_ratio * p.memory.sqrt()).min(0.9),
        llc_hit_ratio: (base.llc_hit_ratio / p.memory.sqrt()).clamp(0.05, 0.9),
        mem_stall_frac: (base.mem_stall_frac * p.memory).min(0.8),
        oro_any_frac: (base.oro_any_frac * p.memory).min(0.8),
        oro_bw_share: (base.oro_bw_share * p.memory.sqrt()).min(0.9),
        iio_wr_alloc_pmc: base.iio_wr_alloc_pmc * p.io,
        iio_wr_full_pmc: base.iio_wr_full_pmc * p.io,
        iio_wr_part_pmc: base.iio_wr_part_pmc * p.io,
        iio_wr_nonsnoop_pmc: base.iio_wr_nonsnoop_pmc * p.io,
        iio_rd_code_pmc: base.iio_rd_code_pmc * p.io,
        iio_rd_part_pmc: base.iio_rd_part_pmc * p.io,
        ..base.clone()
    }
}

/// Builds the phase structure for one profile. Every workload alternates a
/// compute-flavored phase, a data-movement phase, and (for iterative
/// families) a synchronization/reduce phase — the Spark stage structure.
fn build(p: &Profile) -> PhaseProgram {
    let base = FreeParams::default();
    let scaled_base = scaled(&base, p);

    let compute_phase = Phase {
        duration_ticks: match p.family {
            WorkloadFamily::MachineLearning => 90,
            WorkloadFamily::Sql => 60,
            WorkloadFamily::Streaming => 40,
            _ => 70,
        },
        params: FreeParams {
            ipc: scaled_base.ipc * 1.3,
            l1d_mpki: scaled_base.l1d_mpki * 0.5,
            mem_stall_frac: scaled_base.mem_stall_frac * 0.5,
            fe_bound_frac: 0.08,
            ..scaled_base.clone()
        },
        modulation: Modulation {
            period_ticks: p.iteration,
            amplitude: if p.iteration > 0.0 { 0.45 } else { 0.0 },
            burst_every: p.burst_every,
            burst_len: if p.burst_every > 0 { 4 } else { 0 },
            burst_scale: 2.5,
        },
    };

    let shuffle_phase = Phase {
        duration_ticks: match p.family {
            WorkloadFamily::Micro => 80,
            WorkloadFamily::Streaming => 30,
            _ => 50,
        },
        params: FreeParams {
            ipc: (scaled_base.ipc * 0.45).max(0.1),
            l1d_mpki: scaled_base.l1d_mpki * 2.2,
            l2_miss_ratio: (scaled_base.l2_miss_ratio * 1.4).min(0.9),
            llc_hit_ratio: (scaled_base.llc_hit_ratio * 0.6).max(0.05),
            mem_stall_frac: (scaled_base.mem_stall_frac * 2.0).min(0.8),
            oro_any_frac: (scaled_base.oro_any_frac * 2.0).min(0.8),
            iio_wr_full_pmc: scaled_base.iio_wr_full_pmc * 3.0,
            iio_wr_alloc_pmc: scaled_base.iio_wr_alloc_pmc * 3.0,
            iio_rd_part_pmc: scaled_base.iio_rd_part_pmc * 2.0,
            fe_bound_frac: 0.15,
            ..scaled_base.clone()
        },
        modulation: Modulation {
            period_ticks: 0.0,
            amplitude: 0.0,
            burst_every: 23,
            burst_len: 5,
            burst_scale: 2.0,
        },
    };

    let mut phases = vec![compute_phase, shuffle_phase];
    if matches!(
        p.family,
        WorkloadFamily::MachineLearning | WorkloadFamily::Graph | WorkloadFamily::Websearch
    ) {
        // Reduce/synchronization phase: low activity, branchy control.
        phases.push(Phase {
            duration_ticks: 25,
            params: FreeParams {
                ipc: (scaled_base.ipc * 0.3).max(0.1),
                branch_frac: 0.25,
                branch_mpki: scaled_base.branch_mpki * 1.8,
                l1d_mpki: scaled_base.l1d_mpki * 0.4,
                mem_stall_frac: scaled_base.mem_stall_frac * 0.4,
                fe_bound_frac: 0.25,
                ..scaled_base.clone()
            },
            modulation: Modulation::none(),
        });
    }
    PhaseProgram::new(p.name, p.family, phases)
}

fn profiles() -> Vec<Profile> {
    use WorkloadFamily::*;
    // compute, memory, io, branchy, iteration, burst_every
    let p = |name, family, c, m, io, b, it, be| Profile {
        name,
        family,
        compute: c,
        memory: m,
        io,
        branchy: b,
        iteration: it,
        burst_every: be,
    };
    vec![
        // -- micro --
        p("Sort", Micro, 0.8, 1.8, 2.0, 0.9, 0.0, 31),
        p("WordCount", Micro, 1.2, 0.9, 1.2, 1.3, 0.0, 41),
        p("TeraSort", Micro, 0.7, 2.2, 2.6, 0.8, 0.0, 29),
        p("Repartition", Micro, 0.6, 1.6, 3.0, 0.7, 0.0, 37),
        p("DFSIOE", Micro, 0.5, 1.4, 3.5, 0.6, 0.0, 19),
        // -- machine learning --
        p("Bayes", MachineLearning, 1.1, 1.2, 1.4, 1.2, 48.0, 53),
        p("KMeans", MachineLearning, 1.3, 1.1, 1.0, 0.9, 36.0, 47),
        p("GMM", MachineLearning, 1.2, 1.3, 1.0, 0.9, 44.0, 59),
        p("LR", MachineLearning, 1.4, 0.9, 0.9, 1.0, 32.0, 43),
        p("ALS", MachineLearning, 1.0, 1.5, 1.3, 0.8, 52.0, 61),
        p("GBT", MachineLearning, 1.1, 1.2, 1.0, 1.5, 40.0, 37),
        p("XGBoost", MachineLearning, 1.3, 1.1, 1.0, 1.4, 28.0, 41),
        p("Linear", MachineLearning, 1.5, 0.8, 0.9, 0.9, 30.0, 47),
        p("LDA", MachineLearning, 1.0, 1.4, 1.1, 1.1, 56.0, 53),
        p("PCA", MachineLearning, 1.2, 1.3, 1.0, 0.7, 38.0, 43),
        p("RF", MachineLearning, 1.0, 1.2, 1.1, 1.6, 42.0, 59),
        p("SVM", MachineLearning, 1.3, 1.0, 0.9, 1.0, 34.0, 37),
        p("SVD", MachineLearning, 1.1, 1.5, 1.1, 0.7, 46.0, 61),
        // -- SQL --
        p("Scan", Sql, 0.7, 2.0, 1.8, 0.8, 0.0, 23),
        p("Join", Sql, 0.8, 1.9, 2.0, 1.1, 0.0, 29),
        p("Aggregate", Sql, 0.9, 1.6, 1.5, 1.0, 0.0, 31),
        // -- web search --
        p("PageRank", Websearch, 0.9, 1.7, 1.5, 1.2, 60.0, 43),
        p("NutchIndexing", Websearch, 1.0, 1.3, 1.7, 1.3, 0.0, 37),
        // -- graph --
        p("NWeight", Graph, 0.8, 1.9, 1.4, 1.1, 64.0, 53),
        // -- streaming --
        p("Identity", Streaming, 1.1, 0.8, 1.6, 1.0, 0.0, 17),
        p("RepartitionStream", Streaming, 0.8, 1.3, 2.4, 0.9, 0.0, 19),
        p("StatefulWordCount", Streaming, 1.0, 1.1, 1.4, 1.3, 0.0, 23),
        p("FixWindow", Streaming, 0.9, 1.2, 1.5, 1.1, 0.0, 29),
        p("WordCountStream", Streaming, 1.1, 0.9, 1.3, 1.3, 0.0, 21),
    ]
}

/// All 29 workloads of the suite, in Fig. 6 order.
pub fn all_workloads() -> Vec<PhaseProgram> {
    profiles().iter().map(build).collect()
}

/// The names of all workloads, in Fig. 6 order.
pub fn names() -> Vec<&'static str> {
    profiles().iter().map(|p| p.name).collect()
}

/// Looks up a workload by its HiBench name.
pub fn by_name(name: &str) -> Option<PhaseProgram> {
    profiles().iter().find(|p| p.name == name).map(build)
}

/// The KMeans workload used by the scaling studies (Figs. 1 and 8).
pub fn kmeans() -> PhaseProgram {
    by_name("KMeans").expect("KMeans is part of the suite")
}

#[cfg(test)]
mod tests {
    use super::*;
    use bayesperf_events::{Arch, Catalog};
    use bayesperf_simcpu::GroundTruth;

    #[test]
    fn suite_has_29_uniquely_named_workloads() {
        let ws = all_workloads();
        assert_eq!(ws.len(), 29);
        let mut names: Vec<&str> = ws.iter().map(|w| w.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 29);
    }

    #[test]
    fn lookup_by_name_works() {
        assert!(by_name("TeraSort").is_some());
        assert!(by_name("KMeans").is_some());
        assert!(by_name("NoSuchBench").is_none());
        assert_eq!(kmeans().name(), "KMeans");
    }

    #[test]
    fn ml_workloads_are_iterative() {
        let km = kmeans();
        assert!(km.phases()[0].modulation.period_ticks > 0.0);
        assert_eq!(km.phases().len(), 3);
    }

    #[test]
    fn all_workloads_produce_valid_ground_truth_on_both_arches() {
        for arch in Arch::all() {
            let cat = Catalog::new(arch);
            let mut rates = vec![0.0; cat.len()];
            for prog in all_workloads() {
                let mut w = prog.instantiate(&cat, 1);
                for tick in [0u64, 33, 77, 150] {
                    w.rates_at(tick, &mut rates);
                    assert!(
                        rates.iter().all(|r| r.is_finite() && *r >= 0.0),
                        "{} produced invalid rates",
                        prog.name()
                    );
                    for inv in cat.invariants().iter().filter(|i| i.is_exact()) {
                        assert!(
                            inv.relative_residual(&rates).abs() < 1e-9,
                            "{} violates {} at tick {}",
                            prog.name(),
                            inv.name,
                            tick
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn workloads_are_distinguishable() {
        let cat = Catalog::new(Arch::X86SkyLake);
        let mut a = kmeans().instantiate(&cat, 0);
        let mut b = by_name("TeraSort").unwrap().instantiate(&cat, 0);
        let mut ra = vec![0.0; cat.len()];
        let mut rb = vec![0.0; cat.len()];
        a.rates_at(10, &mut ra);
        b.rates_at(10, &mut rb);
        let inst = cat
            .require(bayesperf_events::Semantic::Instructions)
            .index();
        assert_ne!(ra[inst], rb[inst]);
    }

    #[test]
    fn phases_are_nonstationary() {
        // The error phenomenology needs rate shifts; verify the compute and
        // shuffle phases differ by at least 2x in memory pressure.
        for prog in all_workloads() {
            let c = &prog.phases()[0].params;
            let s = &prog.phases()[1].params;
            assert!(
                s.l1d_mpki > 1.5 * c.l1d_mpki,
                "{}: shuffle {} vs compute {}",
                prog.name(),
                s.l1d_mpki,
                c.l1d_mpki
            );
        }
    }
}
