//! A minimal discrete-event simulation core: a time-ordered event heap.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Simulation time in accelerator clock cycles.
pub type SimTime = u64;

struct Scheduled<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest-first.
        // Ties break by insertion order for determinism.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic, time-ordered event queue.
///
/// Events scheduled for the same time pop in insertion order, which keeps
/// the whole simulation reproducible.
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time 0.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: 0,
        }
    }

    /// Current simulation time (the time of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(at >= self.now, "cannot schedule into the past");
        self.heap.push(Scheduled {
            time: at,
            seq: self.seq,
            event,
        });
        self.seq += 1;
    }

    /// Schedules `event` `delay` cycles from now.
    pub fn schedule_in(&mut self, delay: SimTime, event: E) {
        self.schedule(self.now + delay, event);
    }

    /// Pops the earliest event, advancing simulation time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|s| {
            self.now = s.time;
            (s.time, s.event)
        })
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(30, "c");
        q.schedule(10, "a");
        q.schedule(20, "b");
        assert_eq!(q.pop(), Some((10, "a")));
        assert_eq!(q.pop(), Some((20, "b")));
        assert_eq!(q.now(), 20);
        assert_eq!(q.pop(), Some((30, "c")));
        assert!(q.is_empty());
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.schedule(5, 1);
        q.schedule(5, 2);
        q.schedule(5, 3);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
    }

    #[test]
    fn relative_scheduling_uses_now() {
        let mut q = EventQueue::new();
        q.schedule(10, "a");
        q.pop();
        q.schedule_in(5, "b");
        assert_eq!(q.pop(), Some((15, "b")));
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn rejects_past_events() {
        let mut q = EventQueue::new();
        q.schedule(10, ());
        q.pop();
        q.schedule(5, ());
    }
}
