//! The BayesPerf accelerator, as a cycle-approximate discrete-event
//! simulation, plus its FPGA area/power model.
//!
//! §5 of the paper implements EP inference on a Xilinx VU3P FPGA at
//! 250 MHz: four EP engines update time-slice sites in parallel; each
//! engine drives AcMC²-generated MCMC sampler IPs (12 of them) over a
//! 16-port butterfly NoC; inputs and the global approximation g(θ) live in
//! replicated DRAM; the host talks to the board through CAPI 2.0 (Power9,
//! cache-snoop ingestion) or PCIe + XDMA (x86, doorbell/DMA/interrupt,
//! which costs ~15.8% extra latency).
//!
//! This crate reproduces those structures as a [`des`] (event-heap
//! simulator) driving the [`engine`] model, and an analytic
//! [`resource`] model that regenerates Table 1 from the same configuration
//! parameters. The headline behaviours the simulation preserves:
//!
//! * reads of corrected counters are served from host memory at native
//!   latency + <2% (the accelerator masks inference latency);
//! * CAPI ingestion beats PCIe DMA by roughly the paper's 15.8%;
//! * inference throughput scales with EP engines and samplers until the
//!   NoC or DRAM saturates.

pub mod des;
pub mod engine;
pub mod resource;

pub use des::{EventQueue, SimTime};
pub use engine::{AccelConfig, Accelerator, HostInterface, InferenceJob, JobTrace, ReadPath};
pub use resource::{area_power, FpgaPart, ResourceReport};
