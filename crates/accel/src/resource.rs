//! The FPGA area/power model (Table 1).
//!
//! An analytic bill-of-materials: each component of the accelerator
//! (host-interface shell, EP engines, sampler IPs, NoC ports, DRAM
//! controllers, controller) consumes a fixed vector of FPGA resources;
//! utilization is the sum over the configuration divided by the part's
//! totals, and power is a weighted function of utilization. Constants are
//! calibrated so the paper's default build (4 EP + 12 samplers, 16-port
//! NoC, 4 DRAM channels @ 250 MHz on a VU3P) reproduces Table 1.

use crate::engine::{AccelConfig, HostInterface};

/// Resource totals of an FPGA part.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FpgaPart {
    /// Part name.
    pub name: &'static str,
    /// Block RAMs (36 Kb).
    pub bram: f64,
    /// DSP48 slices.
    pub dsp: f64,
    /// Flip-flops.
    pub ff: f64,
    /// Look-up tables.
    pub lut: f64,
    /// UltraRAM blocks.
    pub uram: f64,
}

impl FpgaPart {
    /// The Xilinx Virtex UltraScale+ VU3P-2 on the Alpha-Data 9V3 board.
    pub fn vu3p() -> Self {
        FpgaPart {
            name: "xcvu3p-ffvc1517-2-e",
            bram: 720.0,
            dsp: 2280.0,
            ff: 788_160.0,
            lut: 394_080.0,
            uram: 320.0,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Bom {
    bram: f64,
    dsp: f64,
    ff: f64,
    lut: f64,
    uram: f64,
}

impl Bom {
    const ZERO: Bom = Bom {
        bram: 0.0,
        dsp: 0.0,
        ff: 0.0,
        lut: 0.0,
        uram: 0.0,
    };

    fn add(&mut self, other: Bom, count: f64) {
        self.bram += other.bram * count;
        self.dsp += other.dsp * count;
        self.ff += other.ff * count;
        self.lut += other.lut * count;
        self.uram += other.uram * count;
    }
}

/// Per-component resource costs (calibrated; see module docs).
const XDMA_SHELL: Bom = Bom {
    bram: 30.0,
    dsp: 300.0,
    ff: 36_000.0,
    lut: 26_000.0,
    uram: 0.0,
};
const PSL_SHELL: Bom = Bom {
    bram: 95.0,
    dsp: 27.0,
    ff: 12_000.0,
    lut: 18_000.0,
    uram: 0.0,
};
const EP_ENGINE: Bom = Bom {
    bram: 40.0,
    dsp: 200.0,
    ff: 40_000.0,
    lut: 30_000.0,
    uram: 20.0,
};
const SAMPLER: Bom = Bom {
    bram: 14.0,
    dsp: 52.0,
    ff: 14_000.0,
    lut: 12_000.0,
    uram: 7.0,
};
const NOC_PORT: Bom = Bom {
    bram: 2.0,
    dsp: 0.0,
    ff: 1_500.0,
    lut: 1_200.0,
    uram: 0.0,
};
const DRAM_CTRL: Bom = Bom {
    bram: 12.0,
    dsp: 12.0,
    ff: 4_000.0,
    lut: 2_000.0,
    uram: 5.0,
};
const CONTROLLER: Bom = Bom {
    bram: 8.0,
    dsp: 6.0,
    ff: 6_000.0,
    lut: 2_000.0,
    uram: 2.0,
};

/// Utilization and power of one accelerator build (a Table 1 row).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResourceReport {
    /// BRAM utilization, percent of the part.
    pub bram_pct: f64,
    /// DSP utilization, percent.
    pub dsp_pct: f64,
    /// Flip-flop utilization, percent.
    pub ff_pct: f64,
    /// LUT utilization, percent.
    pub lut_pct: f64,
    /// URAM utilization, percent.
    pub uram_pct: f64,
    /// Vivado post-route power estimate, watts.
    pub vivado_power_w: f64,
    /// Board-level measured power, watts.
    pub measured_power_w: f64,
}

impl ResourceReport {
    /// True if the build fits the part.
    pub fn fits(&self) -> bool {
        [
            self.bram_pct,
            self.dsp_pct,
            self.ff_pct,
            self.lut_pct,
            self.uram_pct,
        ]
        .iter()
        .all(|p| *p <= 100.0)
    }

    /// The paper's power-efficiency claim: host TDP over measured power.
    pub fn power_reduction_vs(&self, host_tdp_w: f64) -> f64 {
        host_tdp_w / self.measured_power_w
    }
}

/// Computes the area/power report of a configuration on a part.
pub fn area_power(config: &AccelConfig, part: &FpgaPart) -> ResourceReport {
    let mut bom = Bom::ZERO;
    bom.add(
        match config.host {
            HostInterface::Capi2 => PSL_SHELL,
            HostInterface::PcieDma => XDMA_SHELL,
        },
        1.0,
    );
    bom.add(EP_ENGINE, config.ep_engines as f64);
    bom.add(SAMPLER, config.mcmc_samplers as f64);
    bom.add(NOC_PORT, config.noc_ports as f64);
    bom.add(DRAM_CTRL, config.dram_channels as f64);
    bom.add(CONTROLLER, 1.0);

    let bram = bom.bram / part.bram;
    let dsp = bom.dsp / part.dsp;
    let ff = bom.ff / part.ff;
    let lut = bom.lut / part.lut;
    let uram = bom.uram / part.uram;

    // Power: static + utilization-weighted dynamic, scaled by clock
    // relative to the calibration point (250 MHz).
    let clock_scale = config.clock_mhz / 250.0;
    let weighted = 2.0 * bram + 6.0 * dsp + 3.0 * ff + 4.0 * lut + 1.5 * uram;
    let vivado = 0.8 + 0.9 * weighted * clock_scale;
    let measured = vivado * 1.534;

    ResourceReport {
        bram_pct: bram * 100.0,
        dsp_pct: dsp * 100.0,
        ff_pct: ff * 100.0,
        lut_pct: lut * 100.0,
        uram_pct: uram * 100.0,
        vivado_power_w: vivado,
        measured_power_w: measured,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Table 1 of the paper.
    const TABLE1_X86: [f64; 5] = [62.0, 78.0, 52.0, 81.0, 58.0];
    const TABLE1_PPC: [f64; 5] = [71.0, 66.0, 49.0, 79.0, 58.0];

    fn utilizations(r: &ResourceReport) -> [f64; 5] {
        [r.bram_pct, r.dsp_pct, r.ff_pct, r.lut_pct, r.uram_pct]
    }

    #[test]
    fn x86_build_matches_table1() {
        let r = area_power(&AccelConfig::x86(), &FpgaPart::vu3p());
        for (got, want) in utilizations(&r).iter().zip(&TABLE1_X86) {
            assert!(
                (got - want).abs() < 4.0,
                "utilization {got:.1} vs Table 1 {want}"
            );
        }
        assert!(
            (r.vivado_power_w - 11.2).abs() < 1.0,
            "{}",
            r.vivado_power_w
        );
        assert!(
            (r.measured_power_w - 17.2).abs() < 1.2,
            "{}",
            r.measured_power_w
        );
    }

    #[test]
    fn ppc64_build_matches_table1() {
        let r = area_power(&AccelConfig::ppc64(), &FpgaPart::vu3p());
        for (got, want) in utilizations(&r).iter().zip(&TABLE1_PPC) {
            assert!(
                (got - want).abs() < 4.0,
                "utilization {got:.1} vs Table 1 {want}"
            );
        }
        assert!((r.vivado_power_w - 10.5).abs() < 1.0);
        assert!((r.measured_power_w - 16.1).abs() < 1.2);
    }

    #[test]
    fn power_efficiency_matches_paper_claims() {
        // 5.8× vs the 100 W Intel TDP; 11.8× vs the 190 W Power9 TDP.
        let x86 = area_power(&AccelConfig::x86(), &FpgaPart::vu3p());
        let ppc = area_power(&AccelConfig::ppc64(), &FpgaPart::vu3p());
        let rx = x86.power_reduction_vs(100.0);
        let rp = ppc.power_reduction_vs(190.0);
        assert!((rx - 5.8).abs() < 0.6, "x86 reduction {rx}");
        assert!((rp - 11.8).abs() < 1.2, "ppc reduction {rp}");
    }

    #[test]
    fn builds_fit_the_part() {
        for cfg in [AccelConfig::x86(), AccelConfig::ppc64()] {
            assert!(area_power(&cfg, &FpgaPart::vu3p()).fits());
        }
    }

    #[test]
    fn area_scales_with_samplers() {
        let base = area_power(&AccelConfig::ppc64(), &FpgaPart::vu3p());
        let small = area_power(
            &AccelConfig {
                mcmc_samplers: 6,
                ..AccelConfig::ppc64()
            },
            &FpgaPart::vu3p(),
        );
        assert!(small.dsp_pct < base.dsp_pct);
        assert!(small.vivado_power_w < base.vivado_power_w);
    }

    #[test]
    fn clock_scaling_raises_power() {
        let slow = area_power(
            &AccelConfig {
                clock_mhz: 125.0,
                ..AccelConfig::ppc64()
            },
            &FpgaPart::vu3p(),
        );
        let fast = area_power(&AccelConfig::ppc64(), &FpgaPart::vu3p());
        assert!(slow.vivado_power_w < fast.vivado_power_w);
    }
}
