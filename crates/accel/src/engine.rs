//! The accelerator microarchitecture model (Fig. 5) and its DES.

use crate::des::{EventQueue, SimTime};

/// Host↔accelerator interface (§5, "Interfacing with the Accelerator").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HostInterface {
    /// CAPI 2.0 (Power9): the accelerator snoops cache-invalidation
    /// messages for the ring-buffer lines and pulls data coherently.
    Capi2,
    /// PCIe + XDMA (x86): the shim polls the ring buffer, rings a
    /// doorbell, sets up an IOMMU-mediated DMA, and takes a completion
    /// interrupt — the added software interaction the paper measures as
    /// ~15.8% extra latency.
    PcieDma,
}

/// Accelerator configuration (defaults = the paper's maximal build that
/// met 250 MHz timing: 16 NoC ports, 4 EP engines + 12 samplers).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccelConfig {
    /// Core clock in MHz.
    pub clock_mhz: f64,
    /// Number of parallel EP engines.
    pub ep_engines: usize,
    /// Number of MCMC sampler IPs.
    pub mcmc_samplers: usize,
    /// NoC ports (EP engines + samplers must fit).
    pub noc_ports: usize,
    /// Cycles per NoC hop; a butterfly traversal is `log2(ports)` hops.
    pub noc_hop_cycles: SimTime,
    /// DRAM channels (input data and g(θ) are replicated across them).
    pub dram_channels: usize,
    /// DRAM access latency in cycles.
    pub dram_latency_cycles: SimTime,
    /// DRAM bandwidth per channel, bytes per cycle.
    pub dram_bytes_per_cycle: f64,
    /// Cycles one MCMC proposal takes in a sampler pipeline.
    pub cycles_per_proposal: SimTime,
    /// Proposals batched per NoC message between EP and sampler.
    pub proposals_per_message: u64,
    /// Host interface flavor.
    pub host: HostInterface,
}

impl AccelConfig {
    /// The paper's ppc64 configuration (CAPI 2.0).
    pub fn ppc64() -> Self {
        AccelConfig {
            clock_mhz: 250.0,
            ep_engines: 4,
            mcmc_samplers: 12,
            noc_ports: 16,
            noc_hop_cycles: 2,
            dram_channels: 4,
            dram_latency_cycles: 60,
            dram_bytes_per_cycle: 16.0,
            cycles_per_proposal: 4,
            proposals_per_message: 64,
            host: HostInterface::Capi2,
        }
    }

    /// The paper's x86 configuration (PCIe3 x16 + XDMA).
    pub fn x86() -> Self {
        AccelConfig {
            host: HostInterface::PcieDma,
            ..Self::ppc64()
        }
    }

    /// Butterfly NoC traversal latency in cycles.
    pub fn noc_traversal_cycles(&self) -> SimTime {
        let stages = (self.noc_ports.max(2) as f64).log2().ceil() as SimTime;
        stages * self.noc_hop_cycles
    }

    /// Host-side ingestion latency for `bytes` of samples, in cycles.
    pub fn ingest_cycles(&self, bytes: usize) -> SimTime {
        let transfer = (bytes as f64 / 8.0).ceil() as SimTime; // 8 B/cycle link
        match self.host {
            // Coherent pull: snoop + line fetches, no software in the loop.
            HostInterface::Capi2 => 120 + transfer,
            // Software poll + doorbell MMIO + DMA setup + IOMMU walk +
            // completion interrupt.
            HostInterface::PcieDma => 120 + transfer + 500 + 700 + 300 + 600,
        }
    }

    /// Result write-back latency in cycles.
    pub fn writeback_cycles(&self, bytes: usize) -> SimTime {
        let transfer = (bytes as f64 / 8.0).ceil() as SimTime;
        match self.host {
            HostInterface::Capi2 => 100 + transfer,
            HostInterface::PcieDma => 100 + transfer + 400,
        }
    }
}

/// One inference job: a chunk of EP over `sites` time slices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InferenceJob {
    /// EP sites (time slices) in the chunk.
    pub sites: usize,
    /// Variables per site.
    pub dims_per_site: usize,
    /// MCMC sweeps per site update (burn-in + collection).
    pub mcmc_sweeps: usize,
    /// Outer EP sweeps.
    pub ep_sweeps: usize,
    /// Bytes of HPC samples ingested for the chunk.
    pub sample_bytes: usize,
    /// Bytes of posterior results written back.
    pub result_bytes: usize,
}

impl InferenceJob {
    /// A job sized like the software corrector's default chunk.
    pub fn typical() -> Self {
        InferenceJob {
            sites: 4,
            dims_per_site: 90,
            mcmc_sweeps: 160,
            ep_sweeps: 3,
            sample_bytes: 4 * 16 * 46, // 4 windows × samples × wire size
            result_bytes: 46 * 16,
        }
    }
}

/// DES events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ev {
    IngestDone,
    SiteAssigned {
        site: usize,
        sweep: usize,
    },
    SiteDone {
        site: usize,
        sweep: usize,
        ep: usize,
    },
    GlobalUpdated {
        sweep: usize,
    },
    WritebackDone,
}

/// The timing trace of one simulated job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobTrace {
    /// End-to-end job latency in cycles.
    pub total_cycles: SimTime,
    /// Ingestion portion.
    pub ingest_cycles: SimTime,
    /// Compute portion (dispatch → last global update).
    pub compute_cycles: SimTime,
    /// Write-back portion.
    pub writeback_cycles: SimTime,
    /// Total NoC messages exchanged.
    pub noc_messages: u64,
    /// Site updates executed.
    pub site_updates: u64,
    /// Busy cycles summed over EP engines (for utilization).
    pub ep_busy_cycles: SimTime,
}

impl JobTrace {
    /// End-to-end latency in microseconds at the configured clock.
    pub fn total_us(&self, config: &AccelConfig) -> f64 {
        self.total_cycles as f64 / config.clock_mhz
    }

    /// Mean EP-engine utilization during the compute phase.
    pub fn ep_utilization(&self, config: &AccelConfig) -> f64 {
        if self.compute_cycles == 0 {
            return 0.0;
        }
        self.ep_busy_cycles as f64 / (self.compute_cycles as f64 * config.ep_engines as f64)
    }
}

/// How a monitoring application's `read()` is served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadPath {
    /// Kernel `read()` on a perf fd (syscall + copy).
    LinuxSyscall,
    /// Userspace `rdpmc` (no syscall, still serialization + fences).
    Rdpmc,
    /// BayesPerf with the accelerator: the posterior is already in host
    /// memory; the read is a ring-buffer load plus a freshness check.
    BayesPerfAccel,
}

impl ReadPath {
    /// Modeled host-CPU cycles for one read (the Fig. 3 constants for the
    /// non-inference paths; software-inference paths are *measured*, not
    /// modeled — see the bench harness).
    pub fn host_cycles(&self) -> u64 {
        match self {
            // Syscall entry/exit + fd lookup + copy_to_user.
            ReadPath::LinuxSyscall => 2400,
            // Serializing read of a model-specific register + scaling.
            ReadPath::Rdpmc => 1100,
            // Native ring read + sequence-counter freshness check: <2%
            // over the kernel path (the paper's headline).
            ReadPath::BayesPerfAccel => 2440,
        }
    }
}

/// The accelerator: runs jobs through the DES.
#[derive(Debug, Clone)]
pub struct Accelerator {
    config: AccelConfig,
}

impl Accelerator {
    /// Creates an accelerator.
    ///
    /// # Panics
    ///
    /// Panics if the configuration cannot place all engines and samplers on
    /// the NoC.
    pub fn new(config: AccelConfig) -> Self {
        assert!(
            config.ep_engines + config.mcmc_samplers <= config.noc_ports,
            "EP engines + samplers must fit on the NoC ports"
        );
        assert!(config.ep_engines > 0 && config.mcmc_samplers > 0);
        Accelerator { config }
    }

    /// The configuration.
    pub fn config(&self) -> &AccelConfig {
        &self.config
    }

    /// Cycles for one site update on one EP engine using `samplers`
    /// dedicated sampler IPs.
    fn site_update_cycles(&self, job: &InferenceJob, samplers: usize) -> (SimTime, u64) {
        let c = &self.config;
        let proposals = (job.mcmc_sweeps * job.dims_per_site) as u64;
        let per_sampler = proposals.div_ceil(samplers as u64);
        let messages = 2 * per_sampler.div_ceil(c.proposals_per_message) * samplers as u64;
        // DRAM: read inputs + g(θ) once per update (replicated channels
        // serve engines in parallel, so no cross-engine contention here).
        let dram_bytes = (job.dims_per_site * 16) as f64;
        let dram = c.dram_latency_cycles + (dram_bytes / c.dram_bytes_per_cycle).ceil() as SimTime;
        let compute = per_sampler * c.cycles_per_proposal;
        let noc = messages / samplers as u64 * c.noc_traversal_cycles();
        (dram + compute + noc, messages)
    }

    /// Simulates one inference job through the event queue.
    pub fn simulate_job(&self, job: &InferenceJob) -> JobTrace {
        let c = &self.config;
        let mut q: EventQueue<Ev> = EventQueue::new();
        let samplers_per_ep = (c.mcmc_samplers / c.ep_engines).max(1);

        let mut ep_free: Vec<SimTime> = vec![0; c.ep_engines];
        let mut pending_sites: Vec<(usize, usize)> = Vec::new(); // (site, sweep)
        let mut sites_done_in_sweep = 0usize;
        let mut noc_messages = 0u64;
        let mut site_updates = 0u64;
        let mut ep_busy = 0;
        let mut ingest_done_at = 0;
        let mut compute_done_at = 0;

        q.schedule(c.ingest_cycles(job.sample_bytes), Ev::IngestDone);

        // Controller: the EP engines update sites of one EP sweep in
        // parallel; the controller applies global updates synchronously
        // before the next sweep begins (Alg. 1's global update).
        while let Some((now, ev)) = q.pop() {
            match ev {
                Ev::IngestDone => {
                    ingest_done_at = now;
                    for site in 0..job.sites {
                        pending_sites.push((site, 0));
                    }
                    dispatch(&mut q, &mut pending_sites, &mut ep_free, now);
                }
                Ev::SiteAssigned { site, sweep } => {
                    // Find the engine this was assigned to (earliest-free
                    // bookkeeping happened at dispatch); model the update.
                    let (cycles, msgs) = self.site_update_cycles(job, samplers_per_ep);
                    let ep = ep_free
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, t)| **t)
                        .map(|(i, _)| i)
                        .expect("at least one engine");
                    let start = now.max(ep_free[ep]);
                    ep_free[ep] = start + cycles;
                    ep_busy += cycles;
                    noc_messages += msgs;
                    q.schedule(start + cycles, Ev::SiteDone { site, sweep, ep });
                }
                Ev::SiteDone { sweep, .. } => {
                    site_updates += 1;
                    sites_done_in_sweep += 1;
                    if sites_done_in_sweep == job.sites {
                        sites_done_in_sweep = 0;
                        // Controller global update: serialized, cheap.
                        q.schedule_in(50 * job.sites as SimTime, Ev::GlobalUpdated { sweep });
                    }
                }
                Ev::GlobalUpdated { sweep } => {
                    if sweep + 1 < job.ep_sweeps {
                        for site in 0..job.sites {
                            pending_sites.push((site, sweep + 1));
                        }
                        dispatch(&mut q, &mut pending_sites, &mut ep_free, now);
                    } else {
                        compute_done_at = now;
                        q.schedule_in(c.writeback_cycles(job.result_bytes), Ev::WritebackDone);
                    }
                }
                Ev::WritebackDone => {
                    return JobTrace {
                        total_cycles: now,
                        ingest_cycles: ingest_done_at,
                        compute_cycles: compute_done_at.saturating_sub(ingest_done_at),
                        writeback_cycles: now.saturating_sub(compute_done_at),
                        noc_messages,
                        site_updates,
                        ep_busy_cycles: ep_busy,
                    };
                }
            }
        }
        unreachable!("job always terminates with WritebackDone");
    }

    /// Simulates `n` independent jobs in parallel threads (replication
    /// studies); results are in job order.
    pub fn simulate_batch(&self, jobs: &[InferenceJob]) -> Vec<JobTrace> {
        std::thread::scope(|scope| {
            let handles: Vec<_> = jobs
                .iter()
                .map(|job| scope.spawn(move || self.simulate_job(job)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("sim thread"))
                .collect()
        })
    }

    /// Host cycles to read a corrected counter when the accelerator keeps
    /// posteriors fresh in host memory.
    pub fn read_latency_cycles(&self) -> u64 {
        ReadPath::BayesPerfAccel.host_cycles()
    }
}

fn dispatch(
    q: &mut EventQueue<Ev>,
    pending: &mut Vec<(usize, usize)>,
    ep_free: &mut [SimTime],
    now: SimTime,
) {
    // Assign every pending site; engines queue internally via ep_free.
    let _ = ep_free;
    for (site, sweep) in pending.drain(..) {
        q.schedule(now, Ev::SiteAssigned { site, sweep });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_completes_with_ordered_phases() {
        let acc = Accelerator::new(AccelConfig::ppc64());
        let t = acc.simulate_job(&InferenceJob::typical());
        assert!(t.ingest_cycles > 0);
        assert!(t.compute_cycles > t.ingest_cycles);
        assert_eq!(
            t.total_cycles,
            t.ingest_cycles + t.compute_cycles + t.writeback_cycles
        );
        assert_eq!(t.site_updates as usize, 4 * 3);
    }

    #[test]
    fn capi_beats_pcie_like_the_paper() {
        let job = InferenceJob::typical();
        let capi = Accelerator::new(AccelConfig::ppc64()).simulate_job(&job);
        let pcie = Accelerator::new(AccelConfig::x86()).simulate_job(&job);
        assert!(
            pcie.total_cycles > capi.total_cycles,
            "PCIe {} should exceed CAPI {}",
            pcie.total_cycles,
            capi.total_cycles
        );
        let overhead = pcie.total_cycles as f64 / capi.total_cycles as f64 - 1.0;
        // The paper reports 15.8% on reads; end-to-end job overhead should
        // be in the same regime (a few % to ~30%).
        assert!(
            overhead > 0.01 && overhead < 0.40,
            "PCIe overhead {overhead}"
        );
    }

    #[test]
    fn accel_read_is_within_two_percent_of_native() {
        let native = ReadPath::LinuxSyscall.host_cycles() as f64;
        let accel = ReadPath::BayesPerfAccel.host_cycles() as f64;
        let overhead = accel / native - 1.0;
        assert!(overhead > 0.0 && overhead < 0.02, "overhead {overhead}");
    }

    #[test]
    fn more_ep_engines_reduce_latency() {
        let job = InferenceJob {
            sites: 8,
            ..InferenceJob::typical()
        };
        let one = Accelerator::new(AccelConfig {
            ep_engines: 1,
            mcmc_samplers: 12,
            ..AccelConfig::ppc64()
        })
        .simulate_job(&job);
        let four = Accelerator::new(AccelConfig::ppc64()).simulate_job(&job);
        assert!(
            four.total_cycles < one.total_cycles,
            "4 EPs {} should beat 1 EP {}",
            four.total_cycles,
            one.total_cycles
        );
    }

    #[test]
    fn more_samplers_speed_up_site_updates() {
        let job = InferenceJob::typical();
        let few = Accelerator::new(AccelConfig {
            mcmc_samplers: 4,
            ..AccelConfig::ppc64()
        })
        .simulate_job(&job);
        let many = Accelerator::new(AccelConfig::ppc64()).simulate_job(&job);
        assert!(many.compute_cycles < few.compute_cycles);
    }

    #[test]
    fn utilization_is_sane() {
        let acc = Accelerator::new(AccelConfig::ppc64());
        let t = acc.simulate_job(&InferenceJob::typical());
        let u = t.ep_utilization(acc.config());
        assert!(u > 0.1 && u <= 1.0, "utilization {u}");
    }

    #[test]
    fn batch_matches_individual_runs() {
        let acc = Accelerator::new(AccelConfig::ppc64());
        let jobs = vec![InferenceJob::typical(); 4];
        let batch = acc.simulate_batch(&jobs);
        let single = acc.simulate_job(&InferenceJob::typical());
        for t in batch {
            assert_eq!(t, single, "DES must be deterministic");
        }
    }

    #[test]
    #[should_panic(expected = "must fit on the NoC")]
    fn oversubscribed_noc_rejected() {
        Accelerator::new(AccelConfig {
            ep_engines: 8,
            mcmc_samplers: 12,
            noc_ports: 16,
            ..AccelConfig::ppc64()
        });
    }

    #[test]
    fn job_latency_fits_realtime_budget() {
        // A chunk covers 4 windows = 16 ms of wall time; inference must
        // complete well inside that to keep posteriors fresh.
        let acc = Accelerator::new(AccelConfig::ppc64());
        let t = acc.simulate_job(&InferenceJob::typical());
        let us = t.total_us(acc.config());
        assert!(us < 16_000.0, "job took {us} µs, budget is 16 ms");
    }
}
