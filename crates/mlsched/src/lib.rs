//! Schedulers: BayesPerf in feedback loops.
//!
//! Two loops live here. [`mux`] closes the loop *inside* the measurement
//! stack: an event-multiplexing scheduler that lets the BayesPerf
//! posterior decide which PMU event group to measure next
//! ([`GroupSchedule`], [`RoundRobin`] vs [`UncertaintyDriven`], the
//! starvation-bounded [`MuxScheduler`], and the service integration via
//! [`bayesperf_core::ScheduleHook`]).
//!
//! The rest is the §6.3 case study — the loop *outside*: the paper
//! demonstrates downstream value by feeding (corrected) HPC measurements
//! into ML-based schedulers that pick which NIC a Spark shuffle should
//! use while GPUs contend for PCIe bandwidth:
//!
//! * [`pcie`] — the PCIe fabric of Fig. 9: a two-socket topology with
//!   switches, NICs and GPUs, max-min fair bandwidth sharing, and an
//!   α+β transfer model that reproduces the isolated-vs-contention
//!   bandwidth curves (0–1.8× slowdown depending on message size);
//! * [`nn`] — a from-scratch dense MLP (the paper's 36-16-16-2 network)
//!   with backprop, used by the RL scheduler;
//! * [`rl`] — the actor-critic NIC scheduler of Banerjee et al., trained
//!   with HPC-derived features whose noise level depends on the correction
//!   method (Linux / CounterMiner / BayesPerf CPU / BayesPerf accelerator);
//!   produces the Fig. 10 convergence curves;
//! * [`cf`] — the collaborative-filtering scheduler of Delimitrou &
//!   Kozyrakis (Paragon-style): matrix factorization imputing throughput
//!   at the paper's 75% optimal sparsity.

pub mod cf;
pub mod mux;
pub mod nn;
pub mod pcie;
pub mod rl;

pub use cf::CollabFilter;
pub use mux::{
    hetero_demo_events, relative_variance, run_closed_loop, ClosedLoopReport, GroupSchedule,
    MuxError, MuxPolicy, MuxScheduler, MuxStats, RoundRobin, ServiceFeed, ServiceScheduler,
    UncertaintyDriven, VarianceEstimates,
};
pub use nn::Mlp;
pub use pcie::{Fabric, Flow, Node};
pub use rl::{CorrectionQuality, SchedulerEnv, TrainResult, Trainer};
