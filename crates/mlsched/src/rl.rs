//! The actor-critic NIC scheduler (Fig. 10).
//!
//! At every step a Spark shuffle must be routed through one of two NICs
//! while background GPU halo-exchange traffic contends for PCIe bandwidth
//! on both paths. The scheduler observes HPC-derived features — IIO write
//! flavors, device reads, DRAM/bus bandwidth, shuffle size, NUMA placement
//! (the paper's input list, 36 dimensions) — whose *quality* depends on the
//! HPC correction method in the loop. Training convergence therefore
//! directly measures the downstream value of error correction (§6.3).

use crate::nn::{softmax, Mlp};
use crate::pcie::{Fabric, Flow, Node};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// How the scheduler's HPC inputs were corrected — determines feature
/// noise and staleness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CorrectionQuality {
    /// Linux enabled/running scaling: ~40% average error (§6.2).
    Linux,
    /// CounterMiner: ~28% average error.
    CounterMiner,
    /// BayesPerf in software: ~7.6% error but stale reads (inference
    /// latency is ~9× a native read, so decisions see old posteriors).
    BayesPerfCpu,
    /// BayesPerf with the accelerator: ~7.6% error at native read latency.
    BayesPerfAccel,
}

impl CorrectionQuality {
    /// Relative noise applied to each feature.
    ///
    /// These are *instantaneous* read errors, roughly 2× the DTW-aligned
    /// average errors of §6.2 (40.1% / 28.3% / 7.6%): DTW alignment
    /// forgives the timing skew that an online reader experiences in full.
    pub fn noise_sigma(&self) -> f64 {
        match self {
            CorrectionQuality::Linux => 0.80,
            CorrectionQuality::CounterMiner => 0.55,
            CorrectionQuality::BayesPerfCpu | CorrectionQuality::BayesPerfAccel => 0.15,
        }
    }

    /// Feature staleness in environment steps (software inference lag).
    pub fn staleness(&self) -> usize {
        match self {
            CorrectionQuality::BayesPerfCpu => 1,
            _ => 0,
        }
    }

    /// Report label.
    pub fn label(&self) -> &'static str {
        match self {
            CorrectionQuality::Linux => "Linux",
            CorrectionQuality::CounterMiner => "CM",
            CorrectionQuality::BayesPerfCpu => "BayesPerf (CPU)",
            CorrectionQuality::BayesPerfAccel => "BayesPerf (Acc)",
        }
    }
}

const N_RAW: usize = 12;
/// Feature dimension of the paper's network input layer.
pub const N_FEATURES: usize = 36;

/// The shuffle-scheduling environment.
#[derive(Debug, Clone)]
pub struct SchedulerEnv {
    fabric: Fabric,
    /// Background contention intensity on each NIC's shared path, in [0,1].
    contention: [f64; 2],
    /// Cached isolated/contended bandwidths per NIC (message-size 256 KiB).
    iso_bw: [f64; 2],
    con_bw: [f64; 2],
    shuffle_bytes: f64,
    history: VecDeque<[f64; N_RAW]>,
    rng: StdRng,
}

impl SchedulerEnv {
    /// Message size used by the shuffle transfers.
    pub const MSG_BYTES: f64 = 256.0 * 1024.0;

    /// Creates the environment.
    pub fn new(seed: u64) -> Self {
        let fabric = Fabric::standard();
        // NIC0 shares switch-1 / cpu0 links with the cross-socket halo
        // exchange; NIC1 shares switch-3 / cpu1 links with socket-1 GPUs.
        let nic_flows = [
            Flow {
                src: Node::Nic(0),
                dst: Node::Cpu(1),
            },
            Flow {
                src: Node::Nic(1),
                dst: Node::Cpu(0),
            },
        ];
        let halo = [
            Flow {
                src: Node::Gpu(1),
                dst: Node::Gpu(2),
            },
            Flow {
                src: Node::Gpu(4),
                dst: Node::Gpu(3),
            },
        ];
        let mut iso_bw = [0.0; 2];
        let mut con_bw = [0.0; 2];
        for i in 0..2 {
            iso_bw[i] = fabric.observed_bandwidth(&[nic_flows[i]], 0, Self::MSG_BYTES);
            con_bw[i] = fabric.observed_bandwidth(&[nic_flows[i], halo[i]], 0, Self::MSG_BYTES);
        }
        let mut env = SchedulerEnv {
            fabric,
            contention: [0.5, 0.5],
            iso_bw,
            con_bw,
            shuffle_bytes: 64.0e6,
            history: VecDeque::new(),
            rng: StdRng::seed_from_u64(seed),
        };
        env.history.push_back(env.raw_features());
        env
    }

    /// The fabric being scheduled over.
    pub fn fabric(&self) -> &Fabric {
        &self.fabric
    }

    /// Advances the background traffic one step (persistent contention
    /// regimes with occasional phase changes, plus small jitter) and draws
    /// the next shuffle's size.
    pub fn step(&mut self) {
        for c in &mut self.contention {
            if self.rng.gen::<f64>() < 0.05 {
                *c = self.rng.gen(); // workload phase change
            } else {
                let jitter: f64 = self.rng.gen::<f64>() * 0.04 - 0.02;
                *c = (*c + jitter).clamp(0.0, 1.0);
            }
        }
        let scale: f64 = self.rng.gen::<f64>() * 1.5 + 0.25;
        self.shuffle_bytes = 64.0e6 * scale;
        let raw = self.raw_features();
        self.history.push_back(raw);
        if self.history.len() > 16 {
            self.history.pop_front();
        }
    }

    /// The true derived-event values a perfect monitor would report.
    fn raw_features(&self) -> [f64; N_RAW] {
        let [c0, c1] = self.contention;
        // The per-path contention signal is concentrated in the per-socket
        // IIO/IMC counters (as it is on real hardware); the rest are
        // context features.
        [
            0.9 * c0,                     // allocating writes (NIC0 path)
            0.85 * c0 + 0.1 * c1,         // full writes
            0.2 + 0.2 * (c0 + c1),        // partial writes (background)
            0.9 * c1,                     // non-snoop writes (NIC1 path)
            0.85 * c1 + 0.1 * c0,         // code reads
            0.3 + 0.1 * (c0 + c1),        // partial/MMIO reads
            0.7 * c0,                     // DRAM channel bw, socket 0
            0.7 * c1,                     // DRAM channel bw, socket 1
            0.5 * (c0 + c1),              // memory-bus bw
            self.shuffle_bytes / 128.0e6, // shuffle size (normalized)
            if self.shuffle_bytes > 64.0e6 {
                1.0
            } else {
                0.0
            }, // NUMA node
            1.0,                          // bias
        ]
    }

    /// Observes the 36-dimensional feature vector through a correction
    /// method: three per-core/per-socket derived views of the raw vector,
    /// corrupted by the method's residual error and delayed by its
    /// staleness.
    ///
    /// The *same* noise draw corrupts a counter in all three views: the
    /// derived features all read the same corrected HPCs, so the correction
    /// error is perfectly correlated across them — the network cannot
    /// average it away, which is why input error translates into slower,
    /// worse training (§6.3).
    pub fn observe(&mut self, quality: CorrectionQuality) -> Vec<f64> {
        let lag = quality.staleness().min(self.history.len() - 1);
        let raw = self.history[self.history.len() - 1 - lag];
        let sigma = quality.noise_sigma();
        // Multiplicative error plus an additive smear floor: multiplexing
        // redistributes counts from busy periods into quiet ones, so even
        // near-zero counters read noisy values.
        let corrupted: Vec<f64> = raw
            .iter()
            .map(|r| {
                (r * (1.0 + sigma * normal(&mut self.rng)) + 0.3 * sigma * normal(&mut self.rng))
                    .max(0.0)
            })
            .collect();
        let mut out = Vec::with_capacity(N_FEATURES);
        for view in 0..3 {
            let gain = 1.0 + 0.1 * view as f64;
            for &c in &corrupted {
                out.push(c * gain);
            }
        }
        out
    }

    /// True shuffle completion time through `nic` under current contention.
    pub fn shuffle_time(&self, nic: usize) -> f64 {
        let c = self.contention[nic];
        let bw = (1.0 - c) * self.iso_bw[nic] + c * self.con_bw[nic];
        self.shuffle_bytes / (bw * 1.0e9)
    }

    /// Completion time on an idle fabric (the Fig. 10 normalizer).
    pub fn isolated_time(&self) -> f64 {
        self.shuffle_bytes / (self.iso_bw[0].max(self.iso_bw[1]) * 1.0e9)
    }

    /// The best achievable time right now.
    pub fn oracle_time(&self) -> f64 {
        self.shuffle_time(0).min(self.shuffle_time(1))
    }
}

fn normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen();
        if u1 <= f64::MIN_POSITIVE {
            continue;
        }
        let u2: f64 = rng.gen();
        return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    }
}

/// Result of a training run.
#[derive(Debug, Clone)]
pub struct TrainResult {
    /// EMA of the normalized excess shuffle time, per iteration — the
    /// Fig. 10 loss curve (includes the irreducible contention floor).
    pub loss_curve: Vec<f64>,
    /// EMA of the normalized *regret* against the per-step oracle NIC —
    /// zero for a perfect policy regardless of background load.
    pub regret_curve: Vec<f64>,
    /// Final loss value.
    pub final_loss: f64,
}

impl TrainResult {
    /// First iteration at which the regret EMA drops below `threshold`
    /// *and stays there* for at least 500 iterations — the convergence
    /// criterion for the §6.3 training-time comparison (a momentary dip
    /// during a low-contention regime does not count as convergence).
    pub fn converged_at(&self, threshold: f64) -> Option<usize> {
        const SUSTAIN: usize = 500;
        let n = self.regret_curve.len();
        let mut below_since: Option<usize> = None;
        for (i, l) in self.regret_curve.iter().enumerate() {
            if *l < threshold {
                let start = *below_since.get_or_insert(i);
                if i - start + 1 >= SUSTAIN || i == n - 1 {
                    return Some(start);
                }
            } else {
                below_since = None;
            }
        }
        None
    }

    /// Mean regret over the whole run (area under the learning curve).
    pub fn regret_auc(&self) -> f64 {
        if self.regret_curve.is_empty() {
            return 0.0;
        }
        self.regret_curve.iter().sum::<f64>() / self.regret_curve.len() as f64
    }
}

/// Actor-critic trainer: policy 36-16-16-2 (the paper's architecture) and
/// a value head of the same shape.
#[derive(Debug, Clone)]
pub struct Trainer {
    policy: Mlp,
    value: Mlp,
    env: SchedulerEnv,
    quality: CorrectionQuality,
    rng: StdRng,
}

impl Trainer {
    /// Creates a trainer with seeded networks and environment.
    pub fn new(quality: CorrectionQuality, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xAC);
        Trainer {
            policy: Mlp::new(&[N_FEATURES, 16, 16, 2], &mut rng),
            value: Mlp::new(&[N_FEATURES, 16, 16, 1], &mut rng),
            env: SchedulerEnv::new(seed),
            quality,
            rng,
        }
    }

    /// Trains for `iterations` steps, returning the loss curve.
    pub fn train(&mut self, iterations: usize) -> TrainResult {
        let lr_pi = 0.01;
        let lr_v = 0.02;
        let mut ema = 1.0f64;
        let mut regret_ema = 0.5f64;
        let mut curve = Vec::with_capacity(iterations);
        let mut regret = Vec::with_capacity(iterations);

        for _ in 0..iterations {
            self.env.step();
            let feats = self.env.observe(self.quality);
            let probs = softmax(&self.policy.forward(&feats));
            let a = if self.rng.gen::<f64>() < probs[0] {
                0
            } else {
                1
            };

            let t = self.env.shuffle_time(a);
            let t_iso = self.env.isolated_time();
            let loss = (t / t_iso - 1.0).max(0.0);
            let reward = -loss;

            // Critic update.
            let v = self.value.forward(&feats)[0];
            let advantage = reward - v;
            self.value.train_step(&feats, &[2.0 * (v - reward)], lr_v);

            // Actor update: ∂(−logπ(a)·A)/∂logit_j = (π_j − 1{j=a})·A.
            let mut grad = [probs[0] * advantage, probs[1] * advantage];
            grad[a] -= advantage;
            self.policy.train_step(&feats, &grad, lr_pi);

            ema = 0.995 * ema + 0.005 * loss;
            curve.push(ema);
            let step_regret = (t - self.env.oracle_time()) / t_iso;
            regret_ema = 0.995 * regret_ema + 0.005 * step_regret;
            regret.push(regret_ema);
        }

        TrainResult {
            final_loss: *curve.last().unwrap_or(&1.0),
            loss_curve: curve,
            regret_curve: regret,
        }
    }

    /// Evaluates the current (greedy) policy against the static-NIC0 and
    /// oracle baselines over `steps` fresh environment steps. Returns mean
    /// normalized shuffle times (time / isolated time).
    pub fn evaluate(&mut self, steps: usize) -> PolicyEval {
        let mut policy = 0.0;
        let mut static0 = 0.0;
        let mut oracle = 0.0;
        for _ in 0..steps {
            self.env.step();
            let feats = self.env.observe(self.quality);
            let logits = self.policy.forward(&feats);
            let a = if logits[0] >= logits[1] { 0 } else { 1 };
            let t_iso = self.env.isolated_time();
            policy += self.env.shuffle_time(a) / t_iso;
            static0 += self.env.shuffle_time(0) / t_iso;
            oracle += self.env.oracle_time() / t_iso;
        }
        let n = steps.max(1) as f64;
        PolicyEval {
            policy: policy / n,
            static0: static0 / n,
            oracle: oracle / n,
        }
    }
}

/// Post-training policy quality (mean normalized shuffle times).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PolicyEval {
    /// The trained policy, acting greedily.
    pub policy: f64,
    /// Always using NIC 0 (the no-ML baseline).
    pub static0: f64,
    /// Perfect knowledge of the contention state.
    pub oracle: f64,
}

impl PolicyEval {
    /// Makespan improvement of the policy over the static baseline.
    pub fn improvement_vs_static(&self) -> f64 {
        (self.static0 - self.policy) / self.static0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn environment_dynamics_are_bounded() {
        let mut env = SchedulerEnv::new(1);
        for _ in 0..200 {
            env.step();
            assert!(env.contention.iter().all(|c| (0.0..=1.0).contains(c)));
            assert!(env.shuffle_time(0) > 0.0);
            assert!(env.oracle_time() <= env.shuffle_time(0) + 1e-12);
            assert!(env.oracle_time() >= env.isolated_time() * 0.99);
        }
    }

    #[test]
    fn observation_noise_scales_with_quality() {
        let mut env = SchedulerEnv::new(2);
        env.step();
        let spread = |q: CorrectionQuality, env: &mut SchedulerEnv| {
            let obs: Vec<Vec<f64>> = (0..200).map(|_| env.observe(q)).collect();
            let mean: f64 = obs.iter().map(|o| o[0]).sum::<f64>() / obs.len() as f64;
            (obs.iter().map(|o| (o[0] - mean).powi(2)).sum::<f64>() / obs.len() as f64).sqrt()
        };
        let linux = spread(CorrectionQuality::Linux, &mut env);
        let bayes = spread(CorrectionQuality::BayesPerfAccel, &mut env);
        assert!(
            linux > 3.0 * bayes,
            "Linux spread {linux} should dwarf BayesPerf {bayes}"
        );
    }

    #[test]
    fn observations_have_36_features() {
        let mut env = SchedulerEnv::new(3);
        env.step();
        assert_eq!(env.observe(CorrectionQuality::Linux).len(), N_FEATURES);
    }

    #[test]
    fn stale_observations_lag_the_environment() {
        let mut env = SchedulerEnv::new(4);
        for _ in 0..8 {
            env.step();
        }
        let fresh = env.observe(CorrectionQuality::BayesPerfAccel);
        let stale = env.observe(CorrectionQuality::BayesPerfCpu);
        // Same noise level, different snapshots: with contention moving,
        // the first raw feature should generally differ.
        assert!((fresh[9] - stale[9]).abs() > 1e-12 || fresh != stale);
    }

    #[test]
    fn training_reduces_loss() {
        let mut t = Trainer::new(CorrectionQuality::BayesPerfAccel, 7);
        let r = t.train(2500);
        assert!(
            r.final_loss < r.loss_curve[50] * 0.8,
            "loss should drop: start {} end {}",
            r.loss_curve[50],
            r.final_loss
        );
    }

    #[test]
    fn clean_inputs_converge_faster_than_noisy() {
        // Mean regret over the second half of training, averaged over two
        // seeds: robust to regime luck, sensitive to the noise floor.
        let iters = 8000;
        let tail_regret = |q: CorrectionQuality| -> f64 {
            [11u64, 13]
                .iter()
                .map(|&s| {
                    let r = Trainer::new(q, s).train(iters);
                    r.regret_curve[iters / 2..].iter().sum::<f64>() / (iters / 2) as f64
                })
                .sum::<f64>()
                / 2.0
        };
        let bayes = tail_regret(CorrectionQuality::BayesPerfAccel);
        let linux = tail_regret(CorrectionQuality::Linux);
        assert!(
            bayes < 0.8 * linux,
            "BayesPerf tail regret {bayes} should clearly beat Linux {linux}"
        );
    }
}
