//! A minimal dense neural network with backprop (the paper's 4-layer,
//! ReLU-activated, fully-connected model: 36-16-16-2).

use rand::Rng;

/// One dense layer: `out = W·in + b`.
#[derive(Debug, Clone)]
struct Layer {
    w: Vec<f64>, // out × in, row-major
    b: Vec<f64>,
    n_in: usize,
    n_out: usize,
}

impl Layer {
    fn new<R: Rng + ?Sized>(n_in: usize, n_out: usize, rng: &mut R) -> Self {
        // He initialization for ReLU nets.
        let scale = (2.0 / n_in as f64).sqrt();
        let w = (0..n_in * n_out)
            .map(|_| (rng.gen::<f64>() * 2.0 - 1.0) * scale)
            .collect();
        Layer {
            w,
            b: vec![0.0; n_out],
            n_in,
            n_out,
        }
    }

    fn forward(&self, x: &[f64], out: &mut Vec<f64>) {
        out.clear();
        for o in 0..self.n_out {
            let row = &self.w[o * self.n_in..(o + 1) * self.n_in];
            let mut acc = self.b[o];
            for (wi, xi) in row.iter().zip(x) {
                acc += wi * xi;
            }
            out.push(acc);
        }
    }
}

/// A multilayer perceptron with ReLU hidden activations and a linear
/// output layer.
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Layer>,
}

impl Mlp {
    /// Creates an MLP with the given layer sizes (e.g. `[36, 16, 16, 2]`).
    ///
    /// # Panics
    ///
    /// Panics if fewer than two sizes are given.
    pub fn new<R: Rng + ?Sized>(sizes: &[usize], rng: &mut R) -> Self {
        assert!(sizes.len() >= 2, "need at least input and output sizes");
        let layers = sizes
            .windows(2)
            .map(|w| Layer::new(w[0], w[1], rng))
            .collect();
        Mlp { layers }
    }

    /// Input dimension.
    pub fn n_in(&self) -> usize {
        self.layers[0].n_in
    }

    /// Output dimension.
    pub fn n_out(&self) -> usize {
        self.layers.last().expect("non-empty").n_out
    }

    /// Forward pass; returns the output activations.
    pub fn forward(&self, x: &[f64]) -> Vec<f64> {
        self.activations(x).pop().expect("at least one layer")
    }

    /// Forward pass keeping every layer's post-activation output
    /// (`result[0]` is the input itself).
    fn activations(&self, x: &[f64]) -> Vec<Vec<f64>> {
        let mut acts = vec![x.to_vec()];
        let mut buf = Vec::new();
        for (li, layer) in self.layers.iter().enumerate() {
            layer.forward(acts.last().expect("non-empty"), &mut buf);
            if li + 1 < self.layers.len() {
                for v in buf.iter_mut() {
                    *v = v.max(0.0); // ReLU on hidden layers
                }
            }
            acts.push(buf.clone());
        }
        acts
    }

    /// One SGD step on a single example: given the gradient of the loss
    /// with respect to the (linear) output, backpropagates and updates
    /// parameters in place with learning rate `lr`.
    pub fn train_step(&mut self, x: &[f64], grad_out: &[f64], lr: f64) {
        let acts = self.activations(x);
        let mut grad = grad_out.to_vec();
        for li in (0..self.layers.len()).rev() {
            let input = &acts[li];
            let output = &acts[li + 1];
            // Through ReLU (hidden layers only).
            if li + 1 < self.layers.len() {
                for (g, o) in grad.iter_mut().zip(output) {
                    if *o <= 0.0 {
                        *g = 0.0;
                    }
                }
            }
            // Parameter update + input gradient.
            let layer = &mut self.layers[li];
            let mut grad_in = vec![0.0; layer.n_in];
            for (o, &g) in grad.iter().enumerate().take(layer.n_out) {
                let row = &mut layer.w[o * layer.n_in..(o + 1) * layer.n_in];
                for (i, w) in row.iter_mut().enumerate() {
                    grad_in[i] += *w * g;
                    *w -= lr * g * input[i];
                }
                layer.b[o] -= lr * g;
            }
            grad = grad_in;
        }
    }
}

/// Numerically-stable softmax.
pub fn softmax(logits: &[f64]) -> Vec<f64> {
    let max = logits.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = logits.iter().map(|l| (l - max).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_has_right_shape() {
        let mut rng = StdRng::seed_from_u64(1);
        let net = Mlp::new(&[36, 16, 16, 2], &mut rng);
        assert_eq!(net.n_in(), 36);
        assert_eq!(net.n_out(), 2);
        let y = net.forward(&vec![0.1; 36]);
        assert_eq!(y.len(), 2);
        assert!(y.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn softmax_sums_to_one() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p[2] > p[1] && p[1] > p[0]);
        // Stability with huge logits.
        let q = softmax(&[1000.0, 1001.0]);
        assert!(q[1] > q[0] && q.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let mut rng = StdRng::seed_from_u64(2);
        let net = Mlp::new(&[3, 4, 2], &mut rng);
        let x = [0.3, -0.2, 0.8];
        // Loss = first output; grad_out = [1, 0].
        let loss = |n: &Mlp| n.forward(&x)[0];
        let base = loss(&net);

        // Analytic: apply one tiny step and compare against finite diff
        // of the loss in parameter space along the step direction.
        let mut stepped = net.clone();
        let lr = 1e-6;
        stepped.train_step(&x, &[1.0, 0.0], lr);
        let after = loss(&stepped);
        // SGD moved against the gradient: loss must decrease, and by
        // approximately lr * ||grad||^2.
        assert!(after < base, "loss should decrease: {base} -> {after}");
        let decrease = base - after;
        assert!(decrease < 1e-3, "tiny step, tiny decrease: {decrease}");
    }

    #[test]
    fn learns_xor() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut net = Mlp::new(&[2, 8, 1], &mut rng);
        let data = [
            ([0.0, 0.0], 0.0),
            ([0.0, 1.0], 1.0),
            ([1.0, 0.0], 1.0),
            ([1.0, 1.0], 0.0),
        ];
        for _ in 0..4000 {
            for (x, t) in &data {
                let y = net.forward(x)[0];
                net.train_step(x, &[2.0 * (y - t)], 0.05);
            }
        }
        for (x, t) in &data {
            let y = net.forward(x)[0];
            assert!((y - t).abs() < 0.2, "xor({x:?}) = {y}, want {t}");
        }
    }

    #[test]
    #[should_panic(expected = "at least input and output")]
    fn too_few_layers_rejected() {
        let mut rng = StdRng::seed_from_u64(4);
        Mlp::new(&[3], &mut rng);
    }
}
