//! The uncertainty-driven event-multiplexing scheduler.
//!
//! The PMU can host only a few event groups at once; everything else is
//! time-sliced and scaled, and that scaling is where HPC measurement error
//! comes from (§2, Fig. 2 — and Röhl et al. show that *which* events get
//! co-scheduled materially changes fidelity). The classic kernel answer is
//! a blind round-robin rotation. BayesPerf, however, maintains a live
//! posterior per event — so the measurement loop can be closed: **let the
//! posterior decide what to measure next.**
//!
//! ```text
//!   quantum q:  scheduler ──pick──▶ PMU runs group g   (other groups idle,
//!      ▲                               │                their windows carry
//!      │ read rel. variance            ▼                the scaling error)
//!   snapshot cell ◀──publish── inference service ◀──samples──┘
//! ```
//!
//! * [`GroupSchedule`] — the validated set of PMU event groups (each group
//!   must fit the hardware counters) plus the starvation bound `K`;
//! * [`RoundRobin`] — the baseline policy: rotate, ignore the posterior;
//! * [`UncertaintyDriven`] — each quantum, pick the group whose events
//!   currently have the highest mean posterior *relative* variance, read
//!   from the published snapshot ([`VarianceEstimates`]) — a wait-free
//!   read that never touches the inference thread. Picks made since the
//!   last posterior refresh are discounted (the scheduler knows a
//!   measurement is already in flight), so stale variances don't cause a
//!   single group to monopolize the counters between publishes;
//! * [`MuxScheduler`] — wraps any policy with an EDF-style starvation
//!   guard guaranteeing every group runs at least once per `K` quanta,
//!   whatever the policy does;
//! * [`ServiceScheduler`] — the live-service integration: one half
//!   implements [`bayesperf_core::ScheduleHook`] (the inference thread
//!   feeds fresh posteriors after every publish), the other half is the
//!   producer-side handle the sampling loop asks for the next group;
//! * [`run_closed_loop`] — the deterministic single-threaded harness
//!   (simulated PMU → streaming corrector → scheduler → PMU) behind the
//!   equal-budget benchmark comparing both policies.
//!
//! # The starvation bound
//!
//! A group that last ran at quantum `t` is *urgent* from age
//! `K − G + 1` on (`G` = number of groups). Urgent groups preempt the
//! policy, oldest first. Because at most one group crosses the urgency
//! threshold per quantum (ages are pairwise distinct) and one group is
//! served per quantum, a group waits at most `G − 1` quanta behind other
//! urgent groups: its inter-run gap never exceeds
//! `(K − G + 1) + (G − 1) = K`. Every window of `K` consecutive quanta
//! therefore measures every group at least once — the proptested
//! guarantee that keeps the EP corrector's extrapolated slices from
//! drifting unboundedly.

use bayesperf_core::corrector::{Corrector, CorrectorConfig};
use bayesperf_core::{ScheduleHook, Session, SnapshotView};
use bayesperf_events::{try_assign, Catalog, EventId};
use bayesperf_inference::Gaussian;
use bayesperf_simcpu::{Configuration, Extrapolate, GroundTruth, Pmu, PmuConfig, Sample};
use std::fmt;
use std::sync::{Arc, Mutex};

/// Why a [`GroupSchedule`] could not be built.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MuxError {
    /// No groups were supplied.
    EmptySchedule,
    /// A group violates the PMU's counter-width constraint (or is empty).
    InvalidGroup {
        /// Index of the offending group.
        index: usize,
        /// The counter-assignment failure, for the log line.
        reason: String,
    },
    /// The requested events could not be packed into valid groups at all
    /// (a packing-stage failure in [`GroupSchedule::from_events`], before
    /// any group exists — e.g. an event no counter can host).
    Unpackable {
        /// The packer's failure, for the log line.
        reason: String,
    },
    /// The starvation bound is smaller than the group count: with one
    /// group per quantum, covering all `groups` within `bound` quanta is
    /// impossible.
    BoundTooTight {
        /// Number of groups.
        groups: usize,
        /// The requested bound.
        bound: usize,
    },
}

impl fmt::Display for MuxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MuxError::EmptySchedule => write!(f, "schedule must contain at least one group"),
            MuxError::InvalidGroup { index, reason } => {
                write!(f, "group {index} does not fit the PMU counters: {reason}")
            }
            MuxError::Unpackable { reason } => {
                write!(f, "events cannot be packed into valid groups: {reason}")
            }
            MuxError::BoundTooTight { groups, bound } => write!(
                f,
                "starvation bound {bound} cannot cover {groups} groups (need bound >= groups)"
            ),
        }
    }
}

impl std::error::Error for MuxError {}

/// A validated multiplexing schedule: PMU event groups, each of which fits
/// the hardware counters simultaneously, plus the starvation bound `K`
/// (every group must run at least once per `K` quanta).
#[derive(Debug, Clone)]
pub struct GroupSchedule {
    groups: Vec<Configuration>,
    bound: usize,
}

impl GroupSchedule {
    /// Builds a schedule after validating every group against the
    /// catalog's counter constraints (the hardware-counter-width check:
    /// perf's most-constrained-first assignment must succeed for each
    /// group on its own) and checking `starvation_bound >= groups.len()`.
    pub fn new(
        catalog: &Catalog,
        groups: Vec<Configuration>,
        starvation_bound: usize,
    ) -> Result<GroupSchedule, MuxError> {
        if groups.is_empty() {
            return Err(MuxError::EmptySchedule);
        }
        for (index, g) in groups.iter().enumerate() {
            if g.is_empty() {
                return Err(MuxError::InvalidGroup {
                    index,
                    reason: "empty group".into(),
                });
            }
            if let Err(e) = try_assign(catalog, g.events(), &catalog.pmu()) {
                return Err(MuxError::InvalidGroup {
                    index,
                    reason: e.to_string(),
                });
            }
        }
        if starvation_bound < groups.len() {
            return Err(MuxError::BoundTooTight {
                groups: groups.len(),
                bound: starvation_bound,
            });
        }
        Ok(GroupSchedule {
            groups,
            bound: starvation_bound,
        })
    }

    /// Packs `events` greedily into counter-valid groups (the traditional
    /// round-robin packing) and wraps them into a schedule.
    pub fn from_events(
        catalog: &Catalog,
        events: &[EventId],
        starvation_bound: usize,
    ) -> Result<GroupSchedule, MuxError> {
        let groups = bayesperf_simcpu::pack_round_robin(catalog, events).map_err(|e| {
            MuxError::Unpackable {
                reason: e.to_string(),
            }
        })?;
        GroupSchedule::new(catalog, groups, starvation_bound)
    }

    /// The event groups, in index order.
    pub fn groups(&self) -> &[Configuration] {
        &self.groups
    }

    /// Number of groups.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// Always false (construction rejects empty schedules); present for
    /// the `len`/`is_empty` idiom.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// The starvation bound `K`: every group runs at least once per `K`
    /// quanta under [`MuxScheduler`].
    pub fn starvation_bound(&self) -> usize {
        self.bound
    }

    /// The multiplexed pool: every event any group measures, sorted and
    /// deduplicated.
    pub fn pool(&self) -> Vec<EventId> {
        let mut pool: Vec<EventId> = self
            .groups
            .iter()
            .flat_map(|g| g.events().iter().copied())
            .collect();
        pool.sort_unstable();
        pool.dedup();
        pool
    }
}

/// The canonical heterogeneous demo/benchmark event set: twelve core
/// events packing into three groups of very different *inferability* —
/// weakly-anchored TLB/branch events (only 0.9-noise soft invariant
/// bands: expensive to leave unscheduled), the cache hierarchy
/// (partially inferable via `l2_demand`), and the µop pipeline (tied to
/// the always-measured fixed counters by tight flow invariants: nearly
/// free to skip). This is the situation where posterior-driven
/// scheduling beats a rotation. One definition shared by the
/// `mux_scheduler` example, the closed-loop acceptance test, and
/// `bench_json`'s gated `mux_schedule` entry, so all three measure the
/// same schedule.
pub fn hetero_demo_events(catalog: &Catalog) -> Vec<EventId> {
    use bayesperf_events::Semantic::*;
    [
        // group 0 — weakly anchored: measure or stay uncertain
        DtlbMisses,
        ItlbMisses,
        BrInst,
        BrMisp,
        // group 1 — cache hierarchy: partially inferable
        L1dMisses,
        IcacheMisses,
        L2References,
        L2Misses,
        // group 2 — µop pipeline: anchored to fixed counters
        UopsIssued,
        UopsRetired,
        UopsBadSpec,
        IdqUopsNotDelivered,
    ]
    .iter()
    .map(|&s| catalog.require(s))
    .collect()
}

/// Posterior relative variance of one event: `var / mean²` with the mean
/// floored at one count — scale-free, so groups of large-count and
/// small-count events score comparably. The single definition behind the
/// scheduler's live view ([`VarianceEstimates`]) and the closed-loop
/// metric ([`ClosedLoopReport::mean_rel_var`]).
pub fn relative_variance(g: &Gaussian) -> f64 {
    let m = g.mean.abs().max(1.0);
    g.var / (m * m)
}

/// Catalog-indexed posterior **relative** variances
/// ([`relative_variance`]) plus the `(window, chunk)` stamp of the
/// snapshot they came from — the scheduler's entire view of the
/// inference state.
///
/// Refreshing from a live [`Session`] is one wait-free acquisition of the
/// published snapshot cell ([`VarianceEstimates::refresh`]); the closed
/// loop and the service hook update it directly from posteriors. The
/// buffer is reused across refreshes (no steady-state allocation).
#[derive(Debug, Clone)]
pub struct VarianceEstimates {
    window: u32,
    chunk: u64,
    rel_var: Vec<f64>,
    view: SnapshotView,
    fresh: bool,
}

impl VarianceEstimates {
    /// An empty estimate set over `n_events` catalog events.
    pub fn new(n_events: usize) -> VarianceEstimates {
        VarianceEstimates {
            window: 0,
            chunk: 0,
            rel_var: vec![0.0; n_events],
            view: SnapshotView::default(),
            fresh: false,
        }
    }

    /// True once at least one posterior has been absorbed.
    pub fn has_posterior(&self) -> bool {
        self.fresh
    }

    /// The `(window, chunk)` stamp of the absorbed snapshot.
    pub fn stamp(&self) -> (u32, u64) {
        (self.window, self.chunk)
    }

    /// The catalog-indexed relative variances.
    pub fn rel_var(&self) -> &[f64] {
        &self.rel_var
    }

    /// Absorbs catalog-indexed posteriors (count units) published for
    /// `window` by inference run `chunk`.
    ///
    /// # Panics
    ///
    /// Panics if `posteriors.len()` differs from the construction size.
    pub fn update(&mut self, window: u32, chunk: u64, posteriors: &[Gaussian]) {
        assert_eq!(
            posteriors.len(),
            self.rel_var.len(),
            "posterior vector must be catalog-sized"
        );
        for (slot, g) in self.rel_var.iter_mut().zip(posteriors) {
            *slot = relative_variance(g);
        }
        self.window = window;
        self.chunk = chunk;
        self.fresh = true;
    }

    /// Refreshes from the session's latest published snapshot — a
    /// wait-free cell read plus one copy; the inference thread is never
    /// touched. Returns `false` (estimates unchanged) while no posterior
    /// has been published yet or the monitor has closed.
    pub fn refresh(&mut self, session: &Session) -> bool {
        // Move the scratch view out so `update` can borrow &mut self;
        // its allocation is preserved either way.
        let mut view = std::mem::take(&mut self.view);
        let ok = session.snapshot_into(&mut view).is_ok();
        if ok {
            self.update(view.window, view.chunk, &view.posteriors);
        }
        self.view = view;
        ok
    }
}

/// A multiplexing policy: given the current posterior variances (when any
/// posterior exists yet), choose the group to measure next. The
/// [`MuxScheduler`] wraps every policy with the starvation guard, so
/// policies are free to be arbitrarily greedy.
pub trait MuxPolicy: Send {
    /// Short label for reports ("round_robin", "uncertainty").
    fn name(&self) -> &'static str;

    /// The group to measure in quantum `quantum`. Must return an index
    /// `< schedule.len()`; must be deterministic in its inputs.
    fn pick(
        &mut self,
        quantum: u64,
        schedule: &GroupSchedule,
        variances: Option<&VarianceEstimates>,
    ) -> usize;

    /// Informs the policy that the starvation guard — not the policy —
    /// scheduled `group` this quantum, so any in-flight accounting stays
    /// truthful (a forced measurement is still a measurement). Default:
    /// no-op.
    fn observe_forced(
        &mut self,
        group: usize,
        schedule: &GroupSchedule,
        variances: Option<&VarianceEstimates>,
    ) {
        let _ = (group, schedule, variances);
    }
}

/// The baseline: rotate groups in index order, ignoring the posterior —
/// what Linux perf's multiplexing timer does.
#[derive(Debug, Clone, Copy, Default)]
pub struct RoundRobin;

impl MuxPolicy for RoundRobin {
    fn name(&self) -> &'static str {
        "round_robin"
    }

    fn pick(
        &mut self,
        quantum: u64,
        schedule: &GroupSchedule,
        _: Option<&VarianceEstimates>,
    ) -> usize {
        (quantum % schedule.len() as u64) as usize
    }
}

/// The closed-loop policy: measure the group whose events currently carry
/// the highest mean posterior relative variance.
///
/// Between posterior publishes the variance view is frozen, so a naive
/// argmax would re-pick the same group every quantum until the next chunk
/// lands. Each un-refreshed repeat is therefore discounted by
/// [`UncertaintyDriven::discount`] — the scheduler's model of "I already
/// sent a measurement for this group; its variance is about to drop" —
/// which spreads the budget across the *set* of high-variance groups
/// instead of burning it on one. The pending counts reset whenever a new
/// snapshot stamp is observed. Fully deterministic: argmax ties break
/// toward the lower group index.
#[derive(Debug, Clone)]
pub struct UncertaintyDriven {
    /// Multiplicative score discount per pending (unconfirmed) pick of a
    /// group; in `(0, 1]`. `1.0` disables the in-flight accounting.
    pub discount: f64,
    pending: Vec<u32>,
    last_stamp: Option<(u32, u64)>,
}

impl Default for UncertaintyDriven {
    fn default() -> Self {
        UncertaintyDriven::new(0.25)
    }
}

impl UncertaintyDriven {
    /// Creates the policy with the given pending-pick discount.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < discount <= 1`.
    pub fn new(discount: f64) -> UncertaintyDriven {
        assert!(
            discount > 0.0 && discount <= 1.0,
            "discount must be in (0, 1], got {discount}"
        );
        UncertaintyDriven {
            discount,
            pending: Vec::new(),
            last_stamp: None,
        }
    }

    /// Mean posterior relative variance of a group's events.
    fn group_score(group: &Configuration, rel_var: &[f64]) -> f64 {
        let sum: f64 = group.events().iter().map(|e| rel_var[e.index()]).sum();
        sum / group.len().max(1) as f64
    }

    /// Re-seats the pending counters for the current snapshot stamp: a
    /// fresh publish confirms (or refutes) every in-flight pick, so the
    /// discounts reset. Shared by [`MuxPolicy::pick`] and
    /// [`MuxPolicy::observe_forced`] so a guard-forced pick under a new
    /// stamp is not wiped by the next policy pick's own stamp check.
    fn sync_pending(&mut self, schedule: &GroupSchedule, v: &VarianceEstimates) {
        self.pending.resize(schedule.len(), 0);
        if self.last_stamp != Some(v.stamp()) {
            self.pending.fill(0);
            self.last_stamp = Some(v.stamp());
        }
    }
}

impl MuxPolicy for UncertaintyDriven {
    fn name(&self) -> &'static str {
        "uncertainty"
    }

    fn pick(
        &mut self,
        quantum: u64,
        schedule: &GroupSchedule,
        variances: Option<&VarianceEstimates>,
    ) -> usize {
        let Some(v) = variances.filter(|v| v.has_posterior()) else {
            // No posterior yet: fall back to the blind rotation.
            return (quantum % schedule.len() as u64) as usize;
        };
        self.sync_pending(schedule, v);
        let mut best = 0usize;
        let mut best_score = f64::NEG_INFINITY;
        for (g, group) in schedule.groups().iter().enumerate() {
            let score =
                Self::group_score(group, v.rel_var()) * self.discount.powi(self.pending[g] as i32);
            if score > best_score {
                best = g;
                best_score = score;
            }
        }
        self.pending[best] += 1;
        best
    }

    fn observe_forced(
        &mut self,
        group: usize,
        schedule: &GroupSchedule,
        variances: Option<&VarianceEstimates>,
    ) {
        // A forced measurement is in flight like any other: without this,
        // the policy would re-pick the group the guard just served while
        // the variance view is frozen between publishes.
        match variances.filter(|v| v.has_posterior()) {
            Some(v) => self.sync_pending(schedule, v),
            None => self.pending.resize(schedule.len(), 0),
        }
        self.pending[group] += 1;
    }
}

/// Per-run decision accounting of a [`MuxScheduler`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MuxStats {
    /// Quanta decided by the policy.
    pub policy_picks: u64,
    /// Quanta where the starvation guard preempted the policy.
    pub forced_picks: u64,
}

/// A policy wrapped with the starvation guard (see the module docs for the
/// bound proof): [`MuxScheduler::next`] yields one group index per
/// scheduling quantum, serving urgent groups oldest-first and delegating
/// to the policy otherwise.
pub struct MuxScheduler {
    schedule: GroupSchedule,
    policy: Box<dyn MuxPolicy>,
    /// Quantum each group last ran, staggered virtual history before the
    /// first real run (keeps ages pairwise distinct — the bound proof's
    /// invariant — and phases the initial forcing in).
    last_run: Vec<i64>,
    quantum: u64,
    stats: MuxStats,
}

impl fmt::Debug for MuxScheduler {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MuxScheduler")
            .field("policy", &self.policy.name())
            .field("groups", &self.schedule.len())
            .field("bound", &self.schedule.starvation_bound())
            .field("quantum", &self.quantum)
            .finish()
    }
}

impl MuxScheduler {
    /// Wraps `policy` over `schedule`.
    pub fn new(schedule: GroupSchedule, policy: Box<dyn MuxPolicy>) -> MuxScheduler {
        let g = schedule.len() as i64;
        MuxScheduler {
            schedule,
            policy,
            last_run: (0..g).map(|i| i - g).collect(),
            quantum: 0,
            stats: MuxStats::default(),
        }
    }

    /// The wrapped schedule.
    pub fn schedule(&self) -> &GroupSchedule {
        &self.schedule
    }

    /// The wrapped policy's label.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// Decision accounting so far.
    pub fn stats(&self) -> MuxStats {
        self.stats
    }

    /// Decides the group for the next quantum. Pass the current posterior
    /// variance view when one exists ([`VarianceEstimates::has_posterior`]);
    /// `None` before the first publish.
    pub fn next(&mut self, variances: Option<&VarianceEstimates>) -> usize {
        let q = self.quantum as i64;
        // Saturate, don't cast: `usize::MAX` is the natural spelling of
        // "effectively unbounded", and a wrapping `as i64` would turn it
        // into -1 — a threshold of 1, i.e. a scheduler that forces every
        // quantum and never consults the policy.
        let k = i64::try_from(self.schedule.starvation_bound()).unwrap_or(i64::MAX);
        let g = self.schedule.len() as i64;
        let threshold = k.saturating_sub(g - 1).max(1);
        // Oldest urgent group, if any (ages are pairwise distinct).
        let urgent = (0..self.schedule.len())
            .filter(|&i| q - self.last_run[i] >= threshold)
            .max_by_key(|&i| q - self.last_run[i]);
        let pick = match urgent {
            Some(u) => {
                self.stats.forced_picks += 1;
                self.policy.observe_forced(u, &self.schedule, variances);
                u
            }
            None => {
                let p = self.policy.pick(self.quantum, &self.schedule, variances);
                assert!(
                    p < self.schedule.len(),
                    "policy {} picked group {p} of {}",
                    self.policy.name(),
                    self.schedule.len()
                );
                self.stats.policy_picks += 1;
                p
            }
        };
        self.last_run[pick] = q;
        self.quantum += 1;
        pick
    }
}

/// Shared state of a service-driven scheduler: the inference thread
/// deposits variances through the hook half, producers draw decisions
/// through the handle half.
struct ServiceShared {
    scheduler: MuxScheduler,
    variances: VarianceEstimates,
}

/// The producer-side handle of a service-driven scheduler: call
/// [`ServiceScheduler::next_group`] once per scheduling quantum. Cheap to
/// clone; safe to share with the sampling thread.
#[derive(Clone)]
pub struct ServiceScheduler {
    shared: Arc<Mutex<ServiceShared>>,
}

impl fmt::Debug for ServiceScheduler {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ServiceScheduler").finish_non_exhaustive()
    }
}

/// The hook half: installed on a [`bayesperf_core::Monitor`], it absorbs
/// each published chunk's posteriors into the shared variance view on the
/// inference thread (one lock, one `O(events)` pass — no inference).
pub struct ServiceFeed {
    shared: Arc<Mutex<ServiceShared>>,
}

impl ScheduleHook for ServiceFeed {
    fn on_publish(&mut self, window: u32, chunk: u64, posteriors: &[Gaussian]) {
        let mut st = self.shared.lock().unwrap_or_else(|e| e.into_inner());
        // The publish is authoritative about the catalog size: a caller
        // who sized [`ServiceScheduler::new`] wrong (e.g. with the pool
        // length instead of the catalog length) gets re-seated here
        // rather than panicking the monitor's inference thread — which
        // would close the whole service with no hint of the cause.
        if st.variances.rel_var.len() != posteriors.len() {
            st.variances = VarianceEstimates::new(posteriors.len());
        }
        st.variances.update(window, chunk, posteriors);
    }
}

impl ServiceScheduler {
    /// Splits a scheduler into the producer handle and the service hook:
    /// install the hook via `Monitor::set_schedule_hook` (or
    /// `SessionBuilder::schedule_hook`) and drive the PMU from
    /// [`ServiceScheduler::next_group`] — the service's own posteriors now
    /// steer its measurement schedule.
    pub fn new(scheduler: MuxScheduler, n_events: usize) -> (ServiceScheduler, Box<ServiceFeed>) {
        let shared = Arc::new(Mutex::new(ServiceShared {
            scheduler,
            variances: VarianceEstimates::new(n_events),
        }));
        (
            ServiceScheduler {
                shared: shared.clone(),
            },
            Box::new(ServiceFeed { shared }),
        )
    }

    /// Decides the group for the next quantum from the variances most
    /// recently deposited by the hook.
    pub fn next_group(&self) -> usize {
        let mut st = self.shared.lock().unwrap_or_else(|e| e.into_inner());
        let ServiceShared {
            scheduler,
            variances,
        } = &mut *st;
        let v = variances.has_posterior().then_some(&*variances);
        scheduler.next(v)
    }

    /// Decision accounting of the wrapped scheduler.
    pub fn stats(&self) -> MuxStats {
        self.shared
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .scheduler
            .stats()
    }
}

/// Everything a [`run_closed_loop`] experiment reports.
#[derive(Debug, Clone)]
pub struct ClosedLoopReport {
    /// The policy label ([`MuxPolicy::name`]).
    pub policy: &'static str,
    /// Group index chosen per window, in order.
    pub decisions: Vec<u32>,
    /// Windows each group was scheduled, indexed by group.
    pub group_runs: Vec<u32>,
    /// Mean posterior relative variance over corrected window ×
    /// multiplexed-pool event, **excluding the first corrected chunk** —
    /// the cold start pays prior-level variance under any policy and
    /// would otherwise swamp the steady-state signal. This is the
    /// quantity the uncertainty-driven policy explicitly minimizes at
    /// equal sample budget. (When the run corrects a single chunk, that
    /// chunk is the metric.)
    pub mean_rel_var: f64,
    /// Quanta where the starvation guard preempted the policy.
    pub forced_picks: u64,
    /// Windows whose posteriors entered `mean_rel_var`.
    pub corrected_windows: usize,
}

/// The closed loop's variance bookkeeping: posterior relative variance
/// summed separately for the cold-start chunk (reported only as a
/// fallback) and the steady state (the [`ClosedLoopReport::mean_rel_var`]
/// numerator) — one owner for the bucketing, shared by the full-chunk and
/// ragged-tail paths.
#[derive(Debug, Default)]
struct VarAccum {
    steady_sum: f64,
    steady_n: usize,
    cold_sum: f64,
    cold_n: usize,
}

impl VarAccum {
    /// Folds in one corrected chunk's `slices × pool` posteriors; `cold`
    /// marks the run's first chunk.
    fn absorb_slices(
        &mut self,
        pool: &[EventId],
        slices: usize,
        cold: bool,
        posterior: impl Fn(usize, EventId) -> Gaussian,
    ) {
        for t in 0..slices {
            for &e in pool {
                let v = relative_variance(&posterior(t, e));
                if cold {
                    self.cold_sum += v;
                    self.cold_n += 1;
                } else {
                    self.steady_sum += v;
                    self.steady_n += 1;
                }
            }
        }
    }

    /// Steady-state mean, falling back to the cold chunk only when it is
    /// all there is.
    fn mean(&self) -> f64 {
        if self.steady_n > 0 {
            self.steady_sum / self.steady_n as f64
        } else {
            self.cold_sum / self.cold_n.max(1) as f64
        }
    }
}

/// Runs the full feedback loop, single-threaded and deterministic: the
/// simulated PMU measures one group per window
/// ([`Pmu::run_driven`] with [`Extrapolate::LinuxScaled`], so unscheduled
/// windows carry the paper's scaling error), completed windows stream
/// through the warm-start [`Corrector`], and each corrected chunk's final
/// posteriors feed the scheduler's variance view for subsequent picks.
///
/// Both policies run the same number of windows with one group per
/// quantum, so comparisons are at an **equal sample budget** by
/// construction.
///
/// # Panics
///
/// Panics if `n_windows` is zero.
pub fn run_closed_loop(
    catalog: &Catalog,
    truth: &mut dyn GroundTruth,
    pmu_config: PmuConfig,
    schedule: GroupSchedule,
    policy: Box<dyn MuxPolicy>,
    corrector_config: CorrectorConfig,
    n_windows: usize,
) -> ClosedLoopReport {
    assert!(n_windows > 0, "need at least one window");
    let pmu = Pmu::new(catalog, pmu_config);
    let groups: Vec<Configuration> = schedule.groups().to_vec();
    let pool = schedule.pool();
    let k = corrector_config.model.slices.max(1);
    let mut corrector = Corrector::new(catalog, corrector_config);
    let mut scheduler = MuxScheduler::new(schedule, policy);
    let policy_name = scheduler.policy_name();

    let mut variances = VarianceEstimates::new(catalog.len());
    let mut post_buf: Vec<Gaussian> = Vec::with_capacity(catalog.len());
    let mut chunk_buf: Vec<Vec<Sample>> = Vec::new();
    let mut decisions: Vec<u32> = Vec::new();
    let mut group_runs = vec![0u32; groups.len()];
    let mut chunk_no = 0u64;
    let mut acc = VarAccum::default();
    let mut corrected = 0usize;
    let mut fed = 0usize;

    // One closure both corrects the backlog and decides the next group —
    // the loop body of a real monitor, minus the threads.
    let mut absorb = |window: &bayesperf_simcpu::Window,
                      corrector: &mut Corrector,
                      variances: &mut VarianceEstimates,
                      chunk_buf: &mut Vec<Vec<Sample>>,
                      post_buf: &mut Vec<Gaussian>| {
        chunk_buf.push(window.samples.clone());
        if chunk_buf.len() < k {
            return;
        }
        let refs: Vec<&[Sample]> = chunk_buf.iter().map(|w| w.as_slice()).collect();
        corrector.push_chunk(&refs);
        chunk_no += 1;
        acc.absorb_slices(&pool, k, chunk_no == 1, |t, e| corrector.posterior(t, e));
        corrected += k;
        post_buf.clear();
        post_buf.extend(catalog.iter().map(|e| corrector.posterior(k - 1, e.id)));
        variances.update(window.index, chunk_no, post_buf);
        chunk_buf.clear();
    };

    let run = pmu.run_driven(
        truth,
        &groups,
        n_windows,
        Extrapolate::LinuxScaled,
        |_, prev| {
            if let Some(w) = prev {
                fed += 1;
                absorb(
                    w,
                    &mut corrector,
                    &mut variances,
                    &mut chunk_buf,
                    &mut post_buf,
                );
            }
            let pick = scheduler.next(variances.has_posterior().then_some(&variances));
            decisions.push(pick as u32);
            group_runs[pick] += 1;
            pick
        },
    );

    // The final window (and any ragged chunk tail) never appeared as a
    // `prev`; account for it the way a monitor's flush would.
    for w in &run.windows[fed..] {
        absorb(
            w,
            &mut corrector,
            &mut variances,
            &mut chunk_buf,
            &mut post_buf,
        );
    }
    if !chunk_buf.is_empty() {
        let refs: Vec<&[Sample]> = chunk_buf.iter().map(|w| w.as_slice()).collect();
        if let Ok((post, _)) = corrector.push_tail(&refs) {
            // A tail with no preceding full chunk is the run's cold start.
            acc.absorb_slices(&pool, post.slices(), chunk_no == 0, |t, e| {
                post.posterior(t, e)
            });
            corrected += post.slices();
        }
    }

    ClosedLoopReport {
        policy: policy_name,
        decisions,
        group_runs,
        mean_rel_var: acc.mean(),
        forced_picks: scheduler.stats().forced_picks,
        corrected_windows: corrected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bayesperf_events::{Arch, Semantic};
    use proptest::prelude::*;

    fn catalog() -> Catalog {
        Catalog::new(Arch::X86SkyLake)
    }

    fn two_group_schedule(cat: &Catalog, bound: usize) -> GroupSchedule {
        let events = vec![
            cat.require(Semantic::L1dMisses),
            cat.require(Semantic::L2References),
            cat.require(Semantic::BrInst),
            cat.require(Semantic::BrMisp),
            cat.require(Semantic::UopsIssued),
            cat.require(Semantic::UopsRetired),
        ];
        GroupSchedule::from_events(cat, &events, bound).expect("valid schedule")
    }

    #[test]
    fn schedule_construction_validates_counter_width() {
        let cat = catalog();
        // Five unconstrained core events exceed the 4 programmable
        // counters: an invalid group must be rejected.
        let too_wide = Configuration::new_unchecked(vec![
            cat.require(Semantic::UopsIssued),
            cat.require(Semantic::UopsRetired),
            cat.require(Semantic::BrInst),
            cat.require(Semantic::BrMisp),
            cat.require(Semantic::L1dMisses),
        ]);
        let err = GroupSchedule::new(&cat, vec![too_wide], 4).unwrap_err();
        assert!(matches!(err, MuxError::InvalidGroup { index: 0, .. }));
        assert!(matches!(
            GroupSchedule::new(&cat, vec![], 4),
            Err(MuxError::EmptySchedule)
        ));
        let ok = Configuration::new_unchecked(vec![cat.require(Semantic::BrInst)]);
        let err = GroupSchedule::new(&cat, vec![ok.clone(), ok.clone(), ok], 2).unwrap_err();
        assert_eq!(
            err,
            MuxError::BoundTooTight {
                groups: 3,
                bound: 2
            }
        );
    }

    #[test]
    fn round_robin_rotates_and_never_forces() {
        let cat = catalog();
        let schedule = two_group_schedule(&cat, 8);
        let g = schedule.len();
        let mut sched = MuxScheduler::new(schedule, Box::new(RoundRobin));
        let picks: Vec<usize> = (0..12).map(|_| sched.next(None)).collect();
        assert_eq!(picks, (0..12).map(|q| q % g).collect::<Vec<_>>());
        assert_eq!(sched.stats().forced_picks, 0);
    }

    #[test]
    fn uncertainty_prefers_the_noisiest_group_and_discounts_repeats() {
        let cat = catalog();
        let schedule = two_group_schedule(&cat, 64);
        assert_eq!(schedule.len(), 2);
        let noisy = schedule.groups()[1].events()[0];
        let mut v = VarianceEstimates::new(cat.len());
        let mut posteriors: Vec<Gaussian> = cat.iter().map(|_| Gaussian::new(100.0, 1.0)).collect();
        // Group 1 scores ~2.5x group 0 — high enough to win the fresh
        // pick, low enough that one pending-pick discount flips the order
        // (a *hugely* noisier group would justifiably win repeats).
        posteriors[noisy.index()] = Gaussian::new(100.0, 4.0);
        v.update(0, 1, &posteriors);
        let mut sched = MuxScheduler::new(schedule, Box::new(UncertaintyDriven::new(0.25)));
        // Highest-variance group wins the first pick...
        assert_eq!(sched.next(Some(&v)), 1);
        // ...then the in-flight discount hands the budget to the other
        // group instead of re-picking group 1 until the next publish.
        assert_eq!(sched.next(Some(&v)), 0);
        // A fresh stamp resets the pending discounts: group 1 again.
        v.update(6, 2, &posteriors);
        assert_eq!(sched.next(Some(&v)), 1);
    }

    #[test]
    fn forced_picks_count_as_in_flight_for_the_policy() {
        let cat = catalog();
        let schedule = two_group_schedule(&cat, 64);
        let noisy = schedule.groups()[1].events()[0];
        let mut v = VarianceEstimates::new(cat.len());
        let mut posteriors: Vec<Gaussian> = cat.iter().map(|_| Gaussian::new(100.0, 1.0)).collect();
        posteriors[noisy.index()] = Gaussian::new(100.0, 4.0);
        v.update(0, 1, &posteriors);
        let mut policy = UncertaintyDriven::new(0.25);
        // The guard serves group 1; the policy must treat that as an
        // in-flight measurement and hand the next free pick to group 0
        // instead of re-measuring what was just scheduled.
        policy.observe_forced(1, &schedule, Some(&v));
        assert_eq!(policy.pick(1, &schedule, Some(&v)), 0);

        // Without the notification it would have re-picked group 1.
        let mut naive = UncertaintyDriven::new(0.25);
        assert_eq!(naive.pick(1, &schedule, Some(&v)), 1);
    }

    #[test]
    fn packing_failures_are_not_blamed_on_group_zero() {
        let err = MuxError::Unpackable {
            reason: "event e99 cannot be scheduled on this PMU".into(),
        };
        let msg = err.to_string();
        assert!(msg.contains("packed"), "{msg}");
        assert!(!msg.contains("group 0"), "{msg}");
    }

    #[test]
    fn without_posteriors_uncertainty_falls_back_to_rotation() {
        let cat = catalog();
        let schedule = two_group_schedule(&cat, 8);
        let g = schedule.len();
        let mut sched = MuxScheduler::new(schedule, Box::new(UncertaintyDriven::default()));
        let picks: Vec<usize> = (0..6).map(|_| sched.next(None)).collect();
        assert_eq!(picks, (0..6).map(|q| q % g).collect::<Vec<_>>());
    }

    #[test]
    fn unbounded_starvation_bound_never_forces() {
        // usize::MAX means "effectively unbounded": the guard must stay
        // out of the way entirely (a wrapping i64 cast used to turn it
        // into a force-every-quantum rotation that never consulted the
        // policy).
        let cat = catalog();
        let schedule = two_group_schedule(&cat, usize::MAX);
        let mut sched = MuxScheduler::new(schedule, Box::new(RoundRobin));
        for _ in 0..32 {
            sched.next(None);
        }
        assert_eq!(sched.stats().forced_picks, 0);
        assert_eq!(sched.stats().policy_picks, 32);
    }

    #[test]
    fn starvation_guard_preempts_a_greedy_policy() {
        // A policy that always wants group 0 must still cede one quantum
        // in K to every other group.
        struct Stuck;
        impl MuxPolicy for Stuck {
            fn name(&self) -> &'static str {
                "stuck"
            }
            fn pick(&mut self, _: u64, _: &GroupSchedule, _: Option<&VarianceEstimates>) -> usize {
                0
            }
        }
        let cat = catalog();
        let k = 6;
        let schedule = two_group_schedule(&cat, k);
        let g = schedule.len();
        let mut sched = MuxScheduler::new(schedule, Box::new(Stuck));
        let picks: Vec<usize> = (0..48).map(|_| sched.next(None)).collect();
        for window in picks.windows(k) {
            for group in 0..g {
                assert!(
                    window.contains(&group),
                    "group {group} starved in {window:?}"
                );
            }
        }
        assert!(sched.stats().forced_picks > 0);
    }

    #[test]
    fn service_feed_reseats_a_mis_sized_estimate_buffer() {
        // A wrong n_events at construction must not panic on_publish —
        // it runs on the monitor's inference thread, where a panic
        // closes the whole service. The publish size wins instead.
        let cat = catalog();
        let schedule = two_group_schedule(&cat, 8);
        let sched = MuxScheduler::new(schedule, Box::new(UncertaintyDriven::default()));
        let (handle, mut feed) = ServiceScheduler::new(sched, 3); // wrong: pool-sized
        let posteriors: Vec<Gaussian> = cat.iter().map(|_| Gaussian::new(100.0, 4.0)).collect();
        feed.on_publish(0, 1, &posteriors); // catalog-sized
        let pick = handle.next_group();
        assert!(pick < 2, "scheduler serves picks from the re-seated view");
    }

    /// Deterministic synthetic variance sequences for the proptests: a
    /// seeded walk, no dependence on inference.
    fn synth_variances(
        cat: &Catalog,
        seed: u64,
        steps: usize,
        refresh_every: usize,
    ) -> Vec<VarianceEstimates> {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out = Vec::with_capacity(steps);
        let mut v = VarianceEstimates::new(cat.len());
        let mut posteriors: Vec<Gaussian> = (0..cat.len())
            .map(|_| Gaussian::new(100.0, 1.0 + 99.0 * rng.gen::<f64>()))
            .collect();
        v.update(0, 1, &posteriors);
        for step in 1..=steps {
            if step % refresh_every.max(1) == 0 {
                for g in posteriors.iter_mut() {
                    *g = Gaussian::new(100.0, 1.0 + 99.0 * rng.gen::<f64>());
                }
                v.update(step as u32, step as u64, &posteriors);
            }
            out.push(v.clone());
        }
        out
    }

    proptest! {
        /// Any generated GroupSchedule respects the counter width, covers
        /// every group within the starvation bound K under the
        /// uncertainty-driven policy fed arbitrary variances, and decides
        /// identically for a fixed seed.
        #[test]
        fn group_schedules_respect_width_bound_and_determinism(
            picks in proptest::collection::vec(0usize..40, 2..16),
            extra_bound in 0usize..10,
            seed in 0u64..1_000,
            refresh_every in 1usize..9,
        ) {
            let cat = catalog();
            let prog = cat.programmable_events();
            let mut events: Vec<EventId> = picks.iter().map(|&i| prog[i % prog.len()]).collect();
            events.sort();
            events.dedup();
            let Ok(probe) = GroupSchedule::from_events(&cat, &events, usize::MAX) else {
                return;
            };
            let g = probe.len();
            let k = g + extra_bound;
            let schedule = GroupSchedule::from_events(&cat, &events, k).expect("bound >= groups");

            // Counter width: every group must fit the PMU simultaneously.
            for group in schedule.groups() {
                prop_assert!(try_assign(&cat, group.events(), &cat.pmu()).is_ok());
            }

            let steps = 4 * k + 8;
            let variances = synth_variances(&cat, seed, steps, refresh_every);
            let decide = |schedule: GroupSchedule| -> Vec<usize> {
                let mut sched =
                    MuxScheduler::new(schedule, Box::new(UncertaintyDriven::new(0.25)));
                variances.iter().map(|v| sched.next(Some(v))).collect()
            };
            let a = decide(schedule.clone());

            // Starvation bound: every window of K consecutive quanta
            // contains every group (including the run's first window).
            for window in a.windows(k) {
                for group in 0..g {
                    prop_assert!(
                        window.contains(&group),
                        "group {} starved in a {}-quantum window: {:?}",
                        group, k, window
                    );
                }
            }

            // Determinism: identical inputs => identical decisions.
            let b = decide(schedule);
            prop_assert_eq!(a, b);
        }
    }
}
