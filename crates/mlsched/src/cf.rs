//! Paragon-style collaborative filtering (Delimitrou & Kozyrakis): matrix
//! factorization that imputes application throughput from sparse
//! observations, used as the paper's first ML scheduler (§6.3).

use rand::Rng;

/// A rank-`r` matrix factorization `M ≈ U·Vᵀ` trained by SGD on observed
/// entries.
#[derive(Debug, Clone)]
pub struct CollabFilter {
    u: Vec<Vec<f64>>,
    v: Vec<Vec<f64>>,
    rank: usize,
}

impl CollabFilter {
    /// Trains a factorization of an `rows × cols` matrix from observed
    /// `(row, col, value)` triples.
    ///
    /// # Panics
    ///
    /// Panics if `rank` is zero or any observation is out of bounds.
    #[allow(clippy::too_many_arguments)]
    pub fn train<R: Rng + ?Sized>(
        rows: usize,
        cols: usize,
        observed: &[(usize, usize, f64)],
        rank: usize,
        epochs: usize,
        lr: f64,
        reg: f64,
        rng: &mut R,
    ) -> Self {
        assert!(rank > 0, "rank must be positive");
        for &(r, c, _) in observed {
            assert!(r < rows && c < cols, "observation ({r},{c}) out of bounds");
        }
        let init = |n: usize, rng: &mut R| -> Vec<Vec<f64>> {
            (0..n)
                .map(|_| (0..rank).map(|_| rng.gen::<f64>() * 0.2).collect())
                .collect()
        };
        let mut cf = CollabFilter {
            u: init(rows, rng),
            v: init(cols, rng),
            rank,
        };
        for _ in 0..epochs {
            for &(r, c, x) in observed {
                let pred = cf.predict(r, c);
                let err = pred - x;
                for k in 0..rank {
                    let (uk, vk) = (cf.u[r][k], cf.v[c][k]);
                    cf.u[r][k] -= lr * (err * vk + reg * uk);
                    cf.v[c][k] -= lr * (err * uk + reg * vk);
                }
            }
        }
        cf
    }

    /// Predicted value at `(row, col)`.
    pub fn predict(&self, row: usize, col: usize) -> f64 {
        (0..self.rank)
            .map(|k| self.u[row][k] * self.v[col][k])
            .sum()
    }

    /// Root-mean-square error on a set of triples.
    pub fn rmse(&self, data: &[(usize, usize, f64)]) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        let sse: f64 = data
            .iter()
            .map(|&(r, c, x)| {
                let d = self.predict(r, c) - x;
                d * d
            })
            .sum();
        (sse / data.len() as f64).sqrt()
    }

    /// The column with the highest predicted value in `row` — the
    /// scheduler's decision (which NIC/configuration to use).
    pub fn best_column(&self, row: usize) -> usize {
        let cols = self.v.len();
        (0..cols)
            .max_by(|&a, &b| {
                self.predict(row, a)
                    .partial_cmp(&self.predict(row, b))
                    .expect("finite predictions")
            })
            .expect("at least one column")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A synthetic low-rank throughput matrix: throughput of workload r
    /// under configuration c.
    fn ground_truth(rows: usize, cols: usize) -> Vec<Vec<f64>> {
        (0..rows)
            .map(|r| {
                (0..cols)
                    .map(|c| {
                        let a = (r as f64 * 0.37).sin() + 1.5;
                        let b = (c as f64 * 0.71).cos() + 1.5;
                        let i = ((r + c) as f64 * 0.13).sin() * 0.4;
                        a * b + i
                    })
                    .collect()
            })
            .collect()
    }

    type Entries = Vec<(usize, usize, f64)>;

    fn observe(
        truth: &[Vec<f64>],
        sparsity: f64,
        noise: f64,
        rng: &mut StdRng,
    ) -> (Entries, Entries) {
        let mut train = Vec::new();
        let mut test = Vec::new();
        for (r, row) in truth.iter().enumerate() {
            for (c, &x) in row.iter().enumerate() {
                let noisy = x * (1.0 + noise * (rng.gen::<f64>() * 2.0 - 1.0));
                if rng.gen::<f64>() > sparsity {
                    train.push((r, c, noisy));
                } else {
                    test.push((r, c, x));
                }
            }
        }
        (train, test)
    }

    #[test]
    fn reconstructs_heldout_entries_at_paper_sparsity() {
        let mut rng = StdRng::seed_from_u64(5);
        let truth = ground_truth(100, 20);
        // 75% sparsity: the optimum the paper finds in its sweep.
        let (train, test) = observe(&truth, 0.75, 0.0, &mut rng);
        let cf = CollabFilter::train(100, 20, &train, 4, 800, 0.05, 0.005, &mut rng);
        let rmse = cf.rmse(&test);
        let scale: f64 = 2.5; // typical magnitude of truth entries
        assert!(rmse < 0.2 * scale, "held-out RMSE {rmse}");
    }

    #[test]
    fn noisier_observations_hurt_imputation() {
        let truth = ground_truth(100, 20);
        let rmse_at = |noise: f64| {
            let mut rng = StdRng::seed_from_u64(6);
            let (train, test) = observe(&truth, 0.75, noise, &mut rng);
            CollabFilter::train(100, 20, &train, 4, 800, 0.05, 0.005, &mut rng).rmse(&test)
        };
        // 40% input error (Linux) vs 7.6% (BayesPerf) — the §6.3 premise.
        let linux = rmse_at(0.40);
        let bayes = rmse_at(0.076);
        assert!(
            bayes < linux,
            "BayesPerf-quality inputs {bayes} should beat Linux-quality {linux}"
        );
    }

    #[test]
    fn decisions_follow_predictions() {
        let mut rng = StdRng::seed_from_u64(7);
        let truth = ground_truth(20, 6);
        let (train, _) = observe(&truth, 0.5, 0.02, &mut rng);
        let cf = CollabFilter::train(20, 6, &train, 4, 600, 0.03, 0.005, &mut rng);
        // The chosen column should be near-optimal for most rows.
        let mut good = 0;
        for (r, row) in truth.iter().enumerate() {
            let best_true = (0..6)
                .max_by(|&a, &b| row[a].partial_cmp(&row[b]).unwrap())
                .unwrap();
            let chosen = cf.best_column(r);
            if row[chosen] >= 0.95 * row[best_true] {
                good += 1;
            }
        }
        assert!(good >= 16, "only {good}/20 near-optimal decisions");
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn rejects_out_of_bounds_observation() {
        let mut rng = StdRng::seed_from_u64(8);
        CollabFilter::train(2, 2, &[(5, 0, 1.0)], 2, 1, 0.1, 0.0, &mut rng);
    }
}
