//! The PCIe fabric of Fig. 9: topology, max-min fair sharing, transfers.

use std::collections::VecDeque;

/// A device or hub in the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Node {
    /// A CPU socket (0 or 1), including its memory controller.
    Cpu(u8),
    /// A PCIe switch.
    Switch(u8),
    /// A network interface card.
    Nic(u8),
    /// A compute GPU.
    Gpu(u8),
    /// The GPU used for training the scheduler (does not contend).
    TrainingGpu,
    /// The BayesPerf FPGA.
    Fpga,
}

/// A point-to-point link.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Link {
    a: Node,
    b: Node,
    /// Peak bandwidth in GB/s.
    bw_gbps: f64,
}

/// An active transfer: a flow between two nodes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Flow {
    /// Source node.
    pub src: Node,
    /// Destination node.
    pub dst: Node,
}

/// The two-socket PCIe fabric of the test system (Fig. 9).
#[derive(Debug, Clone)]
pub struct Fabric {
    links: Vec<Link>,
    nodes: Vec<Node>,
    /// Per-transaction protocol overhead, bytes (TLP headers, DLLPs).
    pub overhead_bytes: f64,
    /// Transfer setup latency, seconds (driver + doorbell + DMA start).
    pub alpha_seconds: f64,
}

impl Fabric {
    /// The paper's test topology: each socket hosts two switches; socket 0
    /// carries the training GPU + FPGA on one switch and NIC0 + two GPUs on
    /// the other; socket 1 carries two GPUs and NIC1 + one GPU.
    pub fn standard() -> Self {
        use Node::*;
        let x16 = 12.5; // PCIe3 x16 effective GB/s
        let upi = 20.0; // inter-socket
        let links = vec![
            Link {
                a: Cpu(0),
                b: Cpu(1),
                bw_gbps: upi,
            },
            Link {
                a: Cpu(0),
                b: Switch(0),
                bw_gbps: x16,
            },
            Link {
                a: Cpu(0),
                b: Switch(1),
                bw_gbps: x16,
            },
            Link {
                a: Cpu(1),
                b: Switch(2),
                bw_gbps: x16,
            },
            Link {
                a: Cpu(1),
                b: Switch(3),
                bw_gbps: x16,
            },
            Link {
                a: Switch(0),
                b: TrainingGpu,
                bw_gbps: x16,
            },
            Link {
                a: Switch(0),
                b: Fpga,
                bw_gbps: x16,
            },
            Link {
                a: Switch(1),
                b: Nic(0),
                bw_gbps: x16,
            },
            Link {
                a: Switch(1),
                b: Gpu(0),
                bw_gbps: x16,
            },
            Link {
                a: Switch(1),
                b: Gpu(1),
                bw_gbps: x16,
            },
            Link {
                a: Switch(2),
                b: Gpu(2),
                bw_gbps: x16,
            },
            Link {
                a: Switch(2),
                b: Gpu(3),
                bw_gbps: x16,
            },
            Link {
                a: Switch(3),
                b: Nic(1),
                bw_gbps: x16,
            },
            Link {
                a: Switch(3),
                b: Gpu(4),
                bw_gbps: x16,
            },
        ];
        let mut nodes = Vec::new();
        for l in &links {
            for n in [l.a, l.b] {
                if !nodes.contains(&n) {
                    nodes.push(n);
                }
            }
        }
        Fabric {
            links,
            nodes,
            overhead_bytes: 512.0,
            alpha_seconds: 2.0e-6,
        }
    }

    /// All nodes in the fabric.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    fn neighbors(&self, n: Node) -> Vec<(usize, Node)> {
        self.links
            .iter()
            .enumerate()
            .filter_map(|(i, l)| {
                if l.a == n {
                    Some((i, l.b))
                } else if l.b == n {
                    Some((i, l.a))
                } else {
                    None
                }
            })
            .collect()
    }

    /// The link indices on the (unique, tree) route between two nodes.
    ///
    /// # Panics
    ///
    /// Panics if either node is not in the fabric or no route exists.
    pub fn route(&self, src: Node, dst: Node) -> Vec<usize> {
        assert!(self.nodes.contains(&src), "unknown node {src:?}");
        assert!(self.nodes.contains(&dst), "unknown node {dst:?}");
        if src == dst {
            return Vec::new();
        }
        let mut prev: Vec<Option<(Node, usize)>> = vec![None; self.nodes.len()];
        let at = |n: Node| self.nodes.iter().position(|&m| m == n).expect("known node");
        let mut seen = vec![false; self.nodes.len()];
        seen[at(src)] = true;
        let mut queue = VecDeque::from([src]);
        while let Some(n) = queue.pop_front() {
            for (li, m) in self.neighbors(n) {
                if !seen[at(m)] {
                    seen[at(m)] = true;
                    prev[at(m)] = Some((n, li));
                    queue.push_back(m);
                }
            }
        }
        let mut path = Vec::new();
        let mut cur = dst;
        while cur != src {
            let (p, li) = prev[at(cur)].expect("fabric is connected");
            path.push(li);
            cur = p;
        }
        path.reverse();
        path
    }

    /// Max-min fair rates (GB/s) for a set of simultaneous flows
    /// (progressive water-filling: repeatedly saturate the bottleneck link
    /// and freeze its flows).
    pub fn max_min_rates(&self, flows: &[Flow]) -> Vec<f64> {
        let routes: Vec<Vec<usize>> = flows.iter().map(|f| self.route(f.src, f.dst)).collect();
        let mut rate = vec![0.0f64; flows.len()];
        let mut frozen = vec![false; flows.len()];
        let mut remaining: Vec<f64> = self.links.iter().map(|l| l.bw_gbps).collect();

        loop {
            // Count unfrozen flows per link.
            let mut count = vec![0usize; self.links.len()];
            for (fi, route) in routes.iter().enumerate() {
                if !frozen[fi] {
                    for &li in route {
                        count[li] += 1;
                    }
                }
            }
            // Bottleneck: link with the smallest per-flow share.
            let mut best: Option<(usize, f64)> = None;
            for (li, &c) in count.iter().enumerate() {
                if c > 0 {
                    let share = remaining[li] / c as f64;
                    if best.is_none_or(|(_, s)| share < s) {
                        best = Some((li, share));
                    }
                }
            }
            let Some((bottleneck, share)) = best else {
                break; // all flows frozen (or routeless)
            };
            // Freeze every unfrozen flow crossing the bottleneck.
            for (fi, route) in routes.iter().enumerate() {
                if !frozen[fi] && route.contains(&bottleneck) {
                    frozen[fi] = true;
                    rate[fi] = share;
                    for &li in route {
                        remaining[li] -= share;
                    }
                }
            }
        }
        // Local (same-node) flows or empty routes get the node-internal bw.
        for (fi, route) in routes.iter().enumerate() {
            if route.is_empty() {
                rate[fi] = f64::INFINITY;
            }
        }
        rate
    }

    /// Observed bandwidth (GB/s) of flow `idx` among `flows` when moving
    /// messages of `msg_bytes`: the fair-share rate degraded by protocol
    /// overhead and setup latency.
    pub fn observed_bandwidth(&self, flows: &[Flow], idx: usize, msg_bytes: f64) -> f64 {
        let rate = self.max_min_rates(flows)[idx];
        if !rate.is_finite() {
            return msg_bytes / self.alpha_seconds / 1.0e9;
        }
        let payload_frac = msg_bytes / (msg_bytes + self.overhead_bytes);
        let eff = rate * payload_frac; // GB/s
        let t = self.alpha_seconds + msg_bytes / (eff * 1.0e9);
        msg_bytes / t / 1.0e9
    }

    /// Seconds to transfer `bytes` for flow `idx` among `flows`, at the
    /// fair-share rate with per-message overheads (messages of `msg_bytes`).
    pub fn transfer_seconds(&self, flows: &[Flow], idx: usize, bytes: f64, msg_bytes: f64) -> f64 {
        let bw = self.observed_bandwidth(flows, idx, msg_bytes);
        bytes / (bw * 1.0e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use Node::*;

    #[test]
    fn routes_follow_the_tree() {
        let f = Fabric::standard();
        // GPU1 (socket 0, switch 1) to GPU2 (socket 1, switch 2):
        // gpu1 -> sw1 -> cpu0 -> cpu1 -> sw2 -> gpu2 = 5 links.
        let r = f.route(Gpu(1), Gpu(2));
        assert_eq!(r.len(), 5);
        // Same-switch peer-to-peer: 2 links.
        assert_eq!(f.route(Gpu(0), Gpu(1)).len(), 2);
        assert!(f.route(Cpu(0), Cpu(0)).is_empty());
    }

    #[test]
    fn isolated_flow_gets_full_link_bandwidth() {
        let f = Fabric::standard();
        let flows = [Flow {
            src: Gpu(1),
            dst: Gpu(2),
        }];
        let rates = f.max_min_rates(&flows);
        assert!((rates[0] - 12.5).abs() < 1e-9);
    }

    #[test]
    fn contending_flows_split_the_bottleneck() {
        let f = Fabric::standard();
        // Both flows traverse switch1->cpu0.
        let flows = [
            Flow {
                src: Gpu(1),
                dst: Gpu(2),
            }, // halo exchange cross-socket
            Flow {
                src: Nic(0),
                dst: Cpu(1),
            }, // shuffle through NIC0
        ];
        let rates = f.max_min_rates(&flows);
        assert!((rates[0] - 6.25).abs() < 1e-9, "{rates:?}");
        assert!((rates[1] - 6.25).abs() < 1e-9);
    }

    #[test]
    fn non_overlapping_flows_do_not_interfere() {
        let f = Fabric::standard();
        let flows = [
            Flow {
                src: Gpu(0),
                dst: Gpu(1),
            }, // local to switch 1
            Flow {
                src: Nic(1),
                dst: Cpu(1),
            }, // socket 1
        ];
        let rates = f.max_min_rates(&flows);
        assert!((rates[0] - 12.5).abs() < 1e-9);
        assert!((rates[1] - 12.5).abs() < 1e-9);
    }

    #[test]
    fn bandwidth_curve_matches_fig9_shape() {
        let f = Fabric::standard();
        let halo = Flow {
            src: Gpu(1),
            dst: Gpu(2),
        };
        let shuffle = Flow {
            src: Nic(0),
            dst: Cpu(1),
        };
        let mut prev = 0.0;
        for p in 8..=22 {
            let size = (1u64 << p) as f64;
            let iso = f.observed_bandwidth(&[halo], 0, size);
            let con = f.observed_bandwidth(&[halo, shuffle], 0, size);
            assert!(iso >= con, "contention can only hurt");
            assert!(iso >= prev - 1e-9, "isolated bandwidth is monotone");
            prev = iso;
            let slowdown = iso / con - 1.0;
            assert!(
                (0.0..=1.9).contains(&slowdown),
                "slowdown {slowdown} out of the paper's 0-1.8x band at {size}"
            );
        }
        // Large messages: isolated nears line rate; contention ~halves it.
        let iso = f.observed_bandwidth(&[halo], 0, (1u64 << 22) as f64);
        let con = f.observed_bandwidth(&[halo, shuffle], 0, (1u64 << 22) as f64);
        assert!(iso > 10.0, "isolated {iso}");
        assert!(con < 0.62 * iso, "contention {con} vs isolated {iso}");
        // Small messages: latency-bound, no meaningful slowdown.
        let iso_s = f.observed_bandwidth(&[halo], 0, 256.0);
        let con_s = f.observed_bandwidth(&[halo, shuffle], 0, 256.0);
        assert!(iso_s / con_s < 1.1);
    }

    #[test]
    fn water_filling_conserves_capacity() {
        let f = Fabric::standard();
        // Three flows all crossing cpu0<->cpu1.
        let flows = [
            Flow {
                src: Gpu(0),
                dst: Gpu(3),
            },
            Flow {
                src: Gpu(1),
                dst: Gpu(4),
            },
            Flow {
                src: Nic(0),
                dst: Gpu(2),
            },
        ];
        let rates = f.max_min_rates(&flows);
        let total: f64 = rates.iter().sum();
        assert!(total <= 20.0 + 1e-9, "UPI capacity exceeded: {total}");
        // Max-min: all equal when symmetric over the bottleneck.
        assert!((rates[0] - rates[1]).abs() < 1e-9);
    }

    #[test]
    fn transfer_time_scales_with_bytes() {
        let f = Fabric::standard();
        let flows = [Flow {
            src: Gpu(1),
            dst: Gpu(2),
        }];
        let t1 = f.transfer_seconds(&flows, 0, 1.0e9, 1.0e6);
        let t2 = f.transfer_seconds(&flows, 0, 2.0e9, 1.0e6);
        assert!((t2 / t1 - 2.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "unknown node")]
    fn unknown_node_rejected() {
        let f = Fabric::standard();
        f.route(Gpu(9), Cpu(0));
    }
}
