//! Counter configurations and the traditional round-robin schedule packer.

use bayesperf_events::{try_assign, Catalog, EventId};
use std::fmt;

/// A counter configuration: the set of events programmed onto the PMU
/// during one multiplexing quantum (§3, "a mapping between counters and
/// events").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Configuration {
    events: Vec<EventId>,
}

impl Configuration {
    /// Creates a configuration after validating it against the catalog's
    /// counter constraints (perf's most-constrained-first scheduling).
    ///
    /// # Errors
    ///
    /// Returns [`ScheduleError::InvalidConfiguration`] when the events
    /// cannot all be placed on counters simultaneously.
    pub fn new(catalog: &Catalog, events: Vec<EventId>) -> Result<Self, ScheduleError> {
        match try_assign(catalog, &events, &catalog.pmu()) {
            Ok(_) => Ok(Configuration { events }),
            Err(e) => Err(ScheduleError::InvalidConfiguration(e.to_string())),
        }
    }

    /// Creates a configuration without validity checking (for tests and for
    /// the scheduler's intermediate search states).
    pub fn new_unchecked(events: Vec<EventId>) -> Self {
        Configuration { events }
    }

    /// The events in this configuration.
    pub fn events(&self) -> &[EventId] {
        &self.events
    }

    /// True if `id` is measured by this configuration.
    pub fn contains(&self, id: EventId) -> bool {
        self.events.contains(&id)
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if the configuration measures nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// Errors from schedule construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleError {
    /// A configuration violates the PMU's counter constraints.
    InvalidConfiguration(String),
    /// An event cannot be scheduled on this PMU at all.
    Unschedulable(EventId),
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::InvalidConfiguration(msg) => {
                write!(f, "invalid configuration: {msg}")
            }
            ScheduleError::Unschedulable(id) => {
                write!(f, "event {id} cannot be scheduled on this PMU")
            }
        }
    }
}

impl std::error::Error for ScheduleError {}

/// Packs `events` into the minimal greedy sequence of valid configurations,
/// in request order — the traditional round-robin schedule Linux perf
/// rotates through (Fig. 2, "Traditional").
///
/// Fixed-counter events are skipped (they are always measured).
///
/// # Errors
///
/// Returns [`ScheduleError::Unschedulable`] if some event cannot be placed
/// even alone.
pub fn pack_round_robin(
    catalog: &Catalog,
    events: &[EventId],
) -> Result<Vec<Configuration>, ScheduleError> {
    let pmu = catalog.pmu();
    let mut configs: Vec<Vec<EventId>> = Vec::new();
    let mut current: Vec<EventId> = Vec::new();
    for &id in events {
        if !catalog.event(id).is_programmable() {
            continue;
        }
        let mut candidate = current.clone();
        candidate.push(id);
        if try_assign(catalog, &candidate, &pmu).is_ok() {
            current = candidate;
        } else {
            if try_assign(catalog, &[id], &pmu).is_err() {
                return Err(ScheduleError::Unschedulable(id));
            }
            if !current.is_empty() {
                configs.push(std::mem::take(&mut current));
            }
            current.push(id);
        }
    }
    if !current.is_empty() {
        configs.push(current);
    }
    Ok(configs
        .into_iter()
        .map(Configuration::new_unchecked)
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use bayesperf_events::{Arch, Semantic};

    fn catalog() -> Catalog {
        Catalog::new(Arch::X86SkyLake)
    }

    #[test]
    fn valid_configuration_accepted() {
        let c = catalog();
        let events = vec![c.require(Semantic::BrInst), c.require(Semantic::BrMisp)];
        let cfg = Configuration::new(&c, events.clone()).unwrap();
        assert_eq!(cfg.events(), &events[..]);
        assert!(cfg.contains(events[0]));
        assert_eq!(cfg.len(), 2);
    }

    #[test]
    fn invalid_configuration_rejected() {
        let c = catalog();
        let events = vec![
            c.require(Semantic::UopsIssued),
            c.require(Semantic::UopsRetired),
            c.require(Semantic::BrInst),
            c.require(Semantic::BrMisp),
            c.require(Semantic::L1dMisses),
        ];
        assert!(matches!(
            Configuration::new(&c, events),
            Err(ScheduleError::InvalidConfiguration(_))
        ));
    }

    #[test]
    fn round_robin_packs_greedily() {
        let c = catalog();
        // 10 unconstrained core events -> ceil(10/4) = 3 configurations.
        let events: Vec<EventId> = [
            Semantic::UopsIssued,
            Semantic::UopsRetired,
            Semantic::UopsBadSpec,
            Semantic::IdqMiteUops,
            Semantic::IdqDsbUops,
            Semantic::IdqMsUops,
            Semantic::BrInst,
            Semantic::BrMisp,
            Semantic::L1dMisses,
            Semantic::L2References,
        ]
        .iter()
        .map(|&s| c.require(s))
        .collect();
        let configs = pack_round_robin(&c, &events).unwrap();
        assert_eq!(configs.len(), 3);
        assert_eq!(configs[0].len(), 4);
        assert_eq!(configs[1].len(), 4);
        assert_eq!(configs[2].len(), 2);
        // Every event appears exactly once.
        let mut all: Vec<EventId> = configs.iter().flat_map(|c| c.events().to_vec()).collect();
        all.sort();
        let mut want = events.clone();
        want.sort();
        assert_eq!(all, want);
    }

    #[test]
    fn round_robin_skips_fixed_events() {
        let c = catalog();
        let events = vec![c.require(Semantic::Cycles), c.require(Semantic::BrInst)];
        let configs = pack_round_robin(&c, &events).unwrap();
        assert_eq!(configs.len(), 1);
        assert_eq!(configs[0].len(), 1);
    }

    #[test]
    fn round_robin_mixes_domains() {
        let c = catalog();
        // 4 core + 4 uncore fit in one configuration.
        let events = vec![
            c.require(Semantic::L1dMisses),
            c.require(Semantic::L2Misses),
            c.require(Semantic::LlcMisses),
            c.require(Semantic::LlcHits),
            c.require(Semantic::ImcCasRd),
            c.require(Semantic::ImcCasWr),
            c.require(Semantic::DmaTransactions),
            c.require(Semantic::IioWrTotal),
        ];
        let configs = pack_round_robin(&c, &events).unwrap();
        assert_eq!(configs.len(), 1);
        assert_eq!(configs[0].len(), 8);
    }

    #[test]
    fn constrained_events_split_configs() {
        let c = catalog();
        // Three MSR-hungry events can't share one configuration (2 MSRs).
        let events = vec![
            c.require(Semantic::OroDrdAnyCycles),
            c.require(Semantic::OroDrdBwCycles),
            c.require(Semantic::OroDrdLatCycles),
        ];
        let configs = pack_round_robin(&c, &events).unwrap();
        assert_eq!(configs.len(), 2);
    }
}
