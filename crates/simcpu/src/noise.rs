//! The measurement noise model: the sources of HPC error from §2.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Parameters of the simulated measurement-error process.
///
/// Models the §2 error modalities that survive even on real hardware:
///
/// * `measurement_sigma` — per-PMI-read relative noise (tool overheads,
///   read skew);
/// * `interrupt_rate`/`interrupt_spike` — OS nondeterminism: with some
///   probability per tick, interrupt handling inflates counts by a spike
///   proportional to the count;
/// * `boundary_sigma` — smearing at multiplexing configuration switches:
///   the first tick after an event is swapped in loses or gains a fraction
///   of its count (the async start/stop of §2). More multiplexing means
///   more switches, hence more error — the effect behind Fig. 1;
/// * `overcount_bias` — small systematic overcount some counters exhibit
///   (Weaver et al.); applied at switch boundaries.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NoiseModel {
    /// Relative std-dev of per-sub-sample multiplicative noise.
    pub measurement_sigma: f64,
    /// Probability per tick that an OS interrupt perturbs the reading.
    pub interrupt_rate: f64,
    /// Relative magnitude of an interrupt perturbation.
    pub interrupt_spike: f64,
    /// Relative std-dev of the loss/gain at configuration switches.
    pub boundary_sigma: f64,
    /// Mean relative overcount applied at configuration switches.
    pub overcount_bias: f64,
}

impl Default for NoiseModel {
    fn default() -> Self {
        NoiseModel {
            measurement_sigma: 0.02,
            interrupt_rate: 0.03,
            interrupt_spike: 0.6,
            boundary_sigma: 0.18,
            overcount_bias: 0.02,
        }
    }
}

impl NoiseModel {
    /// A noise-free model (useful for isolating multiplexing error).
    pub fn none() -> Self {
        NoiseModel {
            measurement_sigma: 0.0,
            interrupt_rate: 0.0,
            interrupt_spike: 0.0,
            boundary_sigma: 0.0,
            overcount_bias: 0.0,
        }
    }

    /// Perturbs one tick's true count `v` for a *running* event.
    ///
    /// `at_boundary` marks the first tick after the event's configuration
    /// was switched in.
    pub fn perturb<R: Rng + ?Sized>(&self, rng: &mut R, v: f64, at_boundary: bool) -> f64 {
        let mut out = v;
        if self.measurement_sigma > 0.0 {
            out *= 1.0 + self.measurement_sigma * normal(rng);
        }
        if self.interrupt_rate > 0.0 && rng.gen::<f64>() < self.interrupt_rate {
            out *= 1.0 + self.interrupt_spike * rng.gen::<f64>();
        }
        if at_boundary && (self.boundary_sigma > 0.0 || self.overcount_bias > 0.0) {
            out *= 1.0 + self.overcount_bias + self.boundary_sigma * normal(rng);
        }
        out.max(0.0)
    }
}

fn normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Box-Muller; inlined to keep simcpu independent of the inference crate.
    loop {
        let u1: f64 = rng.gen();
        if u1 <= f64::MIN_POSITIVE {
            continue;
        }
        let u2: f64 = rng.gen();
        return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn no_noise_is_identity() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = NoiseModel::none();
        assert_eq!(n.perturb(&mut rng, 123.0, true), 123.0);
        assert_eq!(n.perturb(&mut rng, 123.0, false), 123.0);
    }

    #[test]
    fn noise_is_unbiased_off_boundary() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = NoiseModel {
            interrupt_rate: 0.0,
            ..NoiseModel::default()
        };
        let count = 50_000;
        let mean: f64 = (0..count)
            .map(|_| n.perturb(&mut rng, 100.0, false))
            .sum::<f64>()
            / count as f64;
        assert!((mean - 100.0).abs() < 0.5, "mean {mean}");
    }

    #[test]
    fn boundary_noise_is_larger() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = NoiseModel::default();
        let spread = |boundary: bool, rng: &mut StdRng| {
            let vals: Vec<f64> = (0..20_000)
                .map(|_| n.perturb(rng, 100.0, boundary))
                .collect();
            let mean = vals.iter().sum::<f64>() / vals.len() as f64;
            (vals.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / vals.len() as f64).sqrt()
        };
        let off = spread(false, &mut rng);
        let on = spread(true, &mut rng);
        assert!(on > off * 1.5, "boundary {on} vs off {off}");
    }

    #[test]
    fn never_negative() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = NoiseModel {
            boundary_sigma: 5.0, // absurdly noisy
            ..NoiseModel::default()
        };
        for _ in 0..10_000 {
            assert!(n.perturb(&mut rng, 1.0, true) >= 0.0);
        }
    }
}
