//! Simulated soft gauge sources: the non-PMU half of the observation plane.
//!
//! A [`SampleSource`] is anything that produces [`Sample`]s tagged with a
//! [`SourceId`]: the PMU simulator is one (implicitly — every sample it
//! emits carries [`SourceId::PMU`]); the gauges here are the others. Each
//! gauge reads the same [`GroundTruth`] the PMU integrates, at its own
//! cadence, through its own seeded noise channel:
//!
//! * near-Gaussian per-read noise of `rel_sigma` (fraction of the reading),
//! * a slow random-walk calibration *drift* shared by all of the source's
//!   events (a miscalibrated meter is wrong consistently),
//! * seeded *dropout* (a scrape that simply didn't happen),
//! * optionally a full [`DataFaultProfile`] stream (NaN/Inf/corrupt/stuck
//!   readings), reusing the compute-plane fault machinery.
//!
//! Determinism contract, mirroring [`DataFaultProfile`]/`LinkProfile`: all
//! stochastic decisions come from a per-source `splitmix64` stream in a
//! **fixed draw order** (drift, then per event: noise, dropout), and the
//! fault stream is a *separate* seeded stream — so enabling faults on one
//! source, or enabling one fault class, never perturbs any other source's
//! samples, nor the non-faulted samples of the same source.

use crate::datafault::{splitmix64, unit, DataFaultProfile, DataFaultState};
use crate::pmu::PmuConfig;
use crate::sample::Sample;
use crate::truth::GroundTruth;
use bayesperf_events::{Catalog, EventId, SourceDesc, SourceId};
use bayesperf_obs::{labeled, Counter, Telemetry};

/// A producer of tagged observation samples.
///
/// The `Monitor` ingest path accepts samples from any number of sources;
/// this trait is how a driving loop polls the non-PMU ones. A source at
/// cadence `c` is *due* every `c`-th window and produces one sample per
/// owned event when polled on a due window (minus dropout/faults).
pub trait SampleSource {
    /// The source's identity, kind, cadence, and advertised error model.
    fn descriptor(&self) -> &SourceDesc;

    /// True if the source is scheduled to produce samples in `window`.
    fn due(&self, window: u32) -> bool {
        window.is_multiple_of(self.descriptor().cadence.max(1))
    }

    /// Polls the source for `window`, appending produced samples to `out`.
    /// Not-due windows are a no-op; sources must tolerate being polled
    /// every window.
    fn poll(&mut self, window: u32, out: &mut Vec<Sample>);
}

/// Seeded noise/dropout profile of a simulated gauge — the simulation-side
/// twin of the catalog's advertised [`bayesperf_events::SourceNoise`],
/// following the `LinkProfile`/[`DataFaultProfile`] idiom (plain data,
/// deterministic per seed, `derive` for per-shard variation).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaugeProfile {
    /// Per-read relative Gaussian noise (fraction of the true reading).
    pub rel_sigma: f64,
    /// Per-poll random-walk step of the calibration drift (relative).
    pub drift_step: f64,
    /// Probability that a due reading is simply never delivered.
    pub dropout_prob: f64,
    /// Stream seed; distinct seeds give independent gauges.
    pub seed: u64,
}

impl GaugeProfile {
    /// A perfect gauge: no noise, no drift, no dropout. Useful as a
    /// baseline and for tests that want exact values.
    pub fn ideal(seed: u64) -> GaugeProfile {
        GaugeProfile {
            rel_sigma: 0.0,
            drift_step: 0.0,
            dropout_prob: 0.0,
            seed,
        }
    }

    /// A profile matched to a source's *advertised* error model: per-read
    /// sigma straight from the descriptor, drift accumulated over ~8 polls
    /// reaching the advertised drift scale, and a small dropout rate.
    pub fn for_source(desc: &SourceDesc, seed: u64) -> GaugeProfile {
        let (rel_sigma, drift) = match desc.noise {
            bayesperf_events::SourceNoise::Gaussian { rel_sigma, drift } => (rel_sigma, drift),
            bayesperf_events::SourceNoise::HeavyTail { rel_sigma } => (rel_sigma, 0.0),
            bayesperf_events::SourceNoise::StudentT => (0.0, 0.0),
        };
        GaugeProfile {
            rel_sigma,
            drift_step: drift / 8.0,
            dropout_prob: 0.02,
            seed,
        }
    }

    /// Derives an independent same-shape profile for `shard`, like
    /// [`DataFaultProfile::derive`].
    pub fn derive(&self, shard: u64) -> GaugeProfile {
        GaugeProfile {
            seed: self
                .seed
                .wrapping_add(shard.wrapping_mul(0xa076_1d64_78bd_642f)),
            ..*self
        }
    }
}

/// Standard Gaussian via Box–Muller over the splitmix stream (always
/// exactly two draws, preserving the fixed draw order).
fn gaussian(state: &mut u64) -> f64 {
    let u1 = unit(splitmix64(state)).max(1e-12);
    let u2 = unit(splitmix64(state));
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// A simulated gauge source: reads the true rates of its owned events from
/// a [`GroundTruth`] at its cadence and reports per-window counts through
/// the profile's noise channel.
///
/// Owns its *own* ground truth handle (truths are deterministic functions
/// of the tick, so a clone of the PMU's truth observes the same machine).
#[derive(Debug, Clone)]
pub struct SimGauge<T: GroundTruth> {
    desc: SourceDesc,
    events: Vec<EventId>,
    profile: GaugeProfile,
    state: u64,
    drift_frac: f64,
    faults: Option<DataFaultState>,
    truth: T,
    quantum_ticks: u64,
    cycles_per_tick: f64,
    n_catalog: usize,
    produced: u64,
    dropped: u64,
    /// `sim.samples_emitted{source=...}` / `sim.samples_dropped{source=...}`
    /// registry handles, present once [`with_telemetry`](Self::with_telemetry)
    /// attaches a plane. `None` costs nothing on the poll path.
    emitted: Option<Counter>,
    lost: Option<Counter>,
}

impl<T: GroundTruth> SimGauge<T> {
    /// Creates a gauge for `source` of `catalog` (which must be built with
    /// [`Catalog::with_observation_plane`]). Returns `None` for an unknown
    /// source id or for the PMU source (the PMU simulator plays that role).
    pub fn new(
        catalog: &Catalog,
        source: SourceId,
        profile: GaugeProfile,
        pmu: &PmuConfig,
        truth: T,
    ) -> Option<SimGauge<T>> {
        if source == SourceId::PMU {
            return None;
        }
        let desc = catalog.source(source)?.clone();
        let events = catalog.events_of_source(source);
        // Warm the mixer so the first decision is well mixed (same idiom
        // as DataFaultState).
        let mut state = profile.seed ^ 0x5851_f42d_4c95_7f2d;
        let _ = splitmix64(&mut state);
        Some(SimGauge {
            desc,
            events,
            profile,
            state,
            drift_frac: 0.0,
            faults: None,
            truth,
            quantum_ticks: pmu.quantum_ticks,
            cycles_per_tick: pmu.cycles_per_tick,
            n_catalog: catalog.len(),
            produced: 0,
            dropped: 0,
            emitted: None,
            lost: None,
        })
    }

    /// Attaches a seeded data-fault stream (applied after gauge noise,
    /// from its own independent stream).
    pub fn with_faults(mut self, profile: DataFaultProfile) -> Self {
        self.faults = Some(DataFaultState::new(profile));
        self
    }

    /// Attaches a telemetry plane: every subsequent poll bumps
    /// `sim.samples_emitted{source=...}` / `sim.samples_dropped{source=...}`
    /// on its registry, labelled with this gauge's source name. Telemetry
    /// never perturbs the sample stream — draws, values and dropout are
    /// bit-identical with and without it.
    pub fn with_telemetry(mut self, tele: &Telemetry) -> Self {
        let reg = tele.registry();
        self.emitted =
            Some(reg.counter(&labeled("sim.samples_emitted", "source", &self.desc.name)));
        self.lost = Some(reg.counter(&labeled("sim.samples_dropped", "source", &self.desc.name)));
        self
    }

    /// Samples delivered so far.
    pub fn produced(&self) -> u64 {
        self.produced
    }

    /// Due readings lost to dropout so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Current accumulated calibration drift (fraction of the reading).
    pub fn drift(&self) -> f64 {
        self.drift_frac
    }
}

impl<T: GroundTruth> SampleSource for SimGauge<T> {
    fn descriptor(&self) -> &SourceDesc {
        &self.desc
    }

    fn poll(&mut self, window: u32, out: &mut Vec<Sample>) {
        if !self.due(window) {
            return;
        }
        // Fixed draw order: drift first (2 draws), then per event in
        // catalog order: noise (2 draws) + dropout (1 draw), always
        // consumed — dropout and faults never shift the noise stream.
        let z_drift = gaussian(&mut self.state);
        self.drift_frac += self.profile.drift_step * z_drift;

        // Integrate true per-window counts exactly like the PMU does.
        let mut rates = vec![0.0; self.n_catalog];
        let mut counts = vec![0.0; self.n_catalog];
        for t in 0..self.quantum_ticks {
            let tick = u64::from(window) * self.quantum_ticks + t;
            self.truth.rates_at(tick, &mut rates);
            for (c, r) in counts.iter_mut().zip(&rates) {
                *c += r * self.cycles_per_tick / 1.0e6;
            }
        }

        let enabled = (u64::from(window) + 1) * self.quantum_ticks;
        for i in 0..self.events.len() {
            let ev = self.events[i];
            let z = gaussian(&mut self.state);
            let d_drop = unit(splitmix64(&mut self.state));
            let value = (counts[ev.index()] * (1.0 + self.drift_frac + self.profile.rel_sigma * z))
                .max(0.0);
            let mut s = Sample {
                event: ev,
                window,
                value,
                sub_mean: value,
                sub_sd: 0.0,
                sub_n: 1,
                time_enabled: enabled,
                time_running: enabled,
                source: self.desc.id,
            };
            if let Some(faults) = &mut self.faults {
                faults.apply(&mut s);
            }
            if d_drop < self.profile.dropout_prob {
                self.dropped += 1;
                if let Some(c) = &self.lost {
                    c.incr();
                }
                continue;
            }
            self.produced += 1;
            if let Some(c) = &self.emitted {
                c.incr();
            }
            out.push(s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::truth::ConstantTruth;
    use bayesperf_events::{synthesize, Arch, FreeParams};

    fn setup() -> (Catalog, ConstantTruth, PmuConfig) {
        let cat = Catalog::with_observation_plane(Arch::X86SkyLake);
        let rates = synthesize(&cat, &FreeParams::default());
        let truth = ConstantTruth::new(rates);
        let pmu = PmuConfig::for_catalog(&cat);
        (cat, truth, pmu)
    }

    fn run(gauge: &mut dyn SampleSource, n_windows: u32) -> Vec<(u32, u16, u64)> {
        // Bit patterns, not f64s: NaN faults must compare equal.
        let mut out = Vec::new();
        for w in 0..n_windows {
            gauge.poll(w, &mut out);
        }
        out.iter()
            .map(|s| (s.window, s.event.index() as u16, s.value.to_bits()))
            .collect()
    }

    #[test]
    fn gauges_respect_their_cadence() {
        let (cat, truth, pmu) = setup();
        for desc in cat.sources().iter().skip(1) {
            let mut g =
                SimGauge::new(&cat, desc.id, GaugeProfile::ideal(7), &pmu, truth.clone()).unwrap();
            let mut out = Vec::new();
            for w in 0..64u32 {
                g.poll(w, &mut out);
            }
            assert!(!out.is_empty());
            for s in &out {
                assert_eq!(s.window % desc.cadence, 0, "{} off cadence", desc.name);
                assert_eq!(s.source, desc.id);
                assert_eq!(s.sub_n, 1, "gauge reads are never extrapolations");
            }
        }
    }

    #[test]
    fn ideal_gauge_reports_exact_true_counts() {
        let (cat, truth, pmu) = setup();
        let sid = cat.sources()[1].id;
        let mut g = SimGauge::new(&cat, sid, GaugeProfile::ideal(1), &pmu, truth.clone()).unwrap();
        let mut out = Vec::new();
        g.poll(0, &mut out);
        let rates = synthesize(&cat, &FreeParams::default());
        let cycles_per_window = pmu.quantum_ticks as f64 * pmu.cycles_per_tick;
        for s in &out {
            let want = rates[s.event.index()] * cycles_per_window / 1.0e6;
            assert!(
                (s.value - want).abs() <= 1e-9 * want.abs().max(1.0),
                "event {}: got {} want {}",
                s.event,
                s.value,
                want
            );
        }
    }

    #[test]
    fn same_seed_same_stream_different_seeds_diverge() {
        let (cat, truth, pmu) = setup();
        let sid = cat.sources()[1].id;
        let prof = GaugeProfile {
            rel_sigma: 0.05,
            drift_step: 0.01,
            dropout_prob: 0.1,
            seed: 42,
        };
        let mut a = SimGauge::new(&cat, sid, prof, &pmu, truth.clone()).unwrap();
        let mut b = SimGauge::new(&cat, sid, prof, &pmu, truth.clone()).unwrap();
        assert_eq!(run(&mut a, 256), run(&mut b, 256));

        let mut c = SimGauge::new(&cat, sid, prof.derive(1), &pmu, truth.clone()).unwrap();
        assert_ne!(run(&mut a, 256), run(&mut c, 256));
    }

    #[test]
    fn the_pmu_source_is_not_a_gauge() {
        let (cat, truth, pmu) = setup();
        assert!(SimGauge::new(&cat, SourceId::PMU, GaugeProfile::ideal(0), &pmu, truth).is_none());
    }

    /// The satellite determinism guarantee: attaching a fault stream to
    /// one source must not perturb another source's samples, and the
    /// fault stream must not shift the gauge's own noise stream (clean
    /// samples stay bit-identical).
    #[test]
    fn faults_on_one_source_never_perturb_another() {
        let (cat, truth, pmu) = setup();
        let s1 = cat.sources()[1].id;
        let s2 = cat.sources()[2].id;
        let prof = GaugeProfile {
            rel_sigma: 0.03,
            drift_step: 0.005,
            dropout_prob: 0.05,
            seed: 9,
        };

        // Baseline: both sources clean.
        let mut a1 = SimGauge::new(&cat, s1, prof, &pmu, truth.clone()).unwrap();
        let mut a2 = SimGauge::new(&cat, s2, prof.derive(1), &pmu, truth.clone()).unwrap();
        let base1 = run(&mut a1, 512);
        let base2 = run(&mut a2, 512);

        // Fault source 2 heavily; source 1's stream must be bit-identical.
        let mut b1 = SimGauge::new(&cat, s1, prof, &pmu, truth.clone()).unwrap();
        let mut b2 = SimGauge::new(&cat, s2, prof.derive(1), &pmu, truth.clone())
            .unwrap()
            .with_faults(DataFaultProfile::noisy(77));
        let f1 = run(&mut b1, 512);
        let f2 = run(&mut b2, 512);
        assert_eq!(base1, f1, "fault stream on src2 leaked into src1");
        assert_ne!(base2, f2, "noisy fault profile must actually fire");

        // Same cardinality: faults poison values, they don't drop samples,
        // and they consume no draws from the gauge noise stream — so the
        // set of (window, event) slots is unchanged.
        let slots = |v: &[(u32, u16, u64)]| v.iter().map(|(w, e, _)| (*w, *e)).collect::<Vec<_>>();
        assert_eq!(slots(&base2), slots(&f2));
    }

    /// Telemetry attachment is observation-only: the sample stream stays
    /// bit-identical, and the labelled registry counters track the
    /// `produced()`/`dropped()` accessors exactly.
    #[test]
    fn telemetry_counts_match_and_never_perturb_the_stream() {
        let (cat, truth, pmu) = setup();
        let sid = cat.sources()[1].id;
        let prof = GaugeProfile {
            rel_sigma: 0.02,
            drift_step: 0.004,
            dropout_prob: 0.2,
            seed: 31,
        };
        let mut plain = SimGauge::new(&cat, sid, prof, &pmu, truth.clone()).unwrap();
        let tele = bayesperf_obs::Telemetry::new();
        let mut instrumented = SimGauge::new(&cat, sid, prof, &pmu, truth.clone())
            .unwrap()
            .with_telemetry(&tele);
        assert_eq!(run(&mut plain, 512), run(&mut instrumented, 512));

        let name = &cat.source(sid).unwrap().name;
        let reg = tele.registry();
        let emitted = reg.counter(&labeled("sim.samples_emitted", "source", name));
        let lost = reg.counter(&labeled("sim.samples_dropped", "source", name));
        assert_eq!(emitted.get(), instrumented.produced());
        assert_eq!(lost.get(), instrumented.dropped());
        assert!(emitted.get() > 0 && lost.get() > 0);
    }

    #[test]
    fn dropout_fires_at_roughly_the_configured_rate() {
        let (cat, truth, pmu) = setup();
        let sid = cat.sources()[1].id;
        let prof = GaugeProfile {
            rel_sigma: 0.0,
            drift_step: 0.0,
            dropout_prob: 0.25,
            seed: 5,
        };
        let mut g = SimGauge::new(&cat, sid, prof, &pmu, truth).unwrap();
        let mut out = Vec::new();
        for w in 0..4096u32 {
            g.poll(w, &mut out);
        }
        let due = g.produced() + g.dropped();
        let rate = g.dropped() as f64 / due as f64;
        assert!(
            (rate - 0.25).abs() < 0.05,
            "dropout rate {rate} too far from 0.25"
        );
    }
}
