//! Multi-machine heterogeneous truth and noise generation.
//!
//! A fleet of monitors (`bayesperf_fleet`) watches many machines running
//! the *same* service, but no two machines see identical conditions:
//! request mixes skew, thermal envelopes differ, co-tenants interfere.
//! This module derives, deterministically from a base seed and a shard
//! index, a per-machine [`ShardProfile`] that perturbs a shared workload
//! into **distinct but correlated** sample streams:
//!
//! * a global rate scale (this machine runs hotter/colder than the mean);
//! * small per-event multipliers (the workload mix skews differently per
//!   machine, so events do not all scale together);
//! * a phase offset in ticks (machines are never phase-locked, so program
//!   phases hit each shard at different windows);
//! * a noise scale (some machines' counters are noisier — busier OS,
//!   more co-tenant interrupts).
//!
//! [`CorrelatedTruth`] applies the truth-side perturbations to any
//! [`GroundTruth`]; [`ShardProfile::pmu_config`] applies the noise-side
//! ones to a base [`PmuConfig`]. Everything is a pure function of
//! `(base_seed, shard)`, so fleet experiments are reproducible shard by
//! shard.

use crate::pmu::PmuConfig;
use crate::truth::GroundTruth;

/// Deterministic per-machine heterogeneity parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardProfile {
    /// The shard (machine/socket) index this profile was derived for.
    pub shard: u32,
    /// Global event-rate multiplier (~[0.75, 1.25]).
    pub rate_scale: f64,
    /// Half-width of the per-event multiplier jitter around
    /// `rate_scale` (each event's own multiplier is drawn in
    /// `rate_scale × [1 - jitter, 1 + jitter]`).
    pub event_jitter: f64,
    /// Ticks this machine's workload lags the reference phase.
    pub phase_offset_ticks: u64,
    /// Multiplier on every [`crate::NoiseModel`] magnitude (~[0.6, 1.6]).
    pub noise_scale: f64,
    /// Per-shard RNG seed for the PMU's noise process.
    pub seed: u64,
}

/// SplitMix64 — the standard small, high-quality seed mixer.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Maps a mixed 64-bit word to a uniform f64 in `[0, 1)`.
fn unit(word: u64) -> f64 {
    (word >> 11) as f64 / (1u64 << 53) as f64
}

impl ShardProfile {
    /// Derives the profile of shard `shard` from a fleet-wide base seed.
    /// Shard 0 of any base seed is the *reference machine*: unit rate
    /// scale, no jitter, no phase offset, unit noise scale — so a
    /// one-shard fleet reproduces the single-machine setup exactly and
    /// every other shard is "like shard 0, but …".
    pub fn derive(base_seed: u64, shard: u32) -> ShardProfile {
        let mut state = base_seed ^ (u64::from(shard)).wrapping_mul(0xa076_1d64_78bd_642f);
        let seed = splitmix64(&mut state);
        if shard == 0 {
            return ShardProfile {
                shard,
                rate_scale: 1.0,
                event_jitter: 0.0,
                phase_offset_ticks: 0,
                noise_scale: 1.0,
                seed: base_seed,
            };
        }
        ShardProfile {
            shard,
            rate_scale: 0.75 + 0.5 * unit(splitmix64(&mut state)),
            event_jitter: 0.08 * unit(splitmix64(&mut state)),
            phase_offset_ticks: splitmix64(&mut state) % 24,
            noise_scale: 0.6 + unit(splitmix64(&mut state)),
            seed,
        }
    }

    /// The per-event rate multiplier of `event_index` under this profile
    /// (deterministic; includes the global `rate_scale`).
    pub fn event_scale(&self, event_index: usize) -> f64 {
        let mut state = self
            .seed
            .wrapping_mul(0xff51_afd7_ed55_8ccd)
            .wrapping_add(event_index as u64);
        let jitter = self.event_jitter * (2.0 * unit(splitmix64(&mut state)) - 1.0);
        self.rate_scale * (1.0 + jitter)
    }

    /// Applies this machine's noise heterogeneity to a base PMU
    /// configuration: shard seed, and every noise magnitude scaled by
    /// `noise_scale` (probabilities are clamped to `[0, 1]`).
    pub fn pmu_config(&self, base: &PmuConfig) -> PmuConfig {
        let mut cfg = *base;
        cfg.seed = self.seed;
        cfg.noise.measurement_sigma *= self.noise_scale;
        cfg.noise.interrupt_rate = (cfg.noise.interrupt_rate * self.noise_scale).min(1.0);
        cfg.noise.boundary_sigma *= self.noise_scale;
        cfg.noise.overcount_bias *= self.noise_scale;
        cfg
    }
}

/// A [`GroundTruth`] adapter that turns one reference workload into the
/// correlated-but-distinct stream one machine of a fleet actually runs:
/// rates are read at a phase-shifted tick and scaled per event by the
/// shard's [`ShardProfile`].
#[derive(Debug, Clone)]
pub struct CorrelatedTruth<T> {
    inner: T,
    profile: ShardProfile,
    /// Per-event multipliers, sized lazily on the first `rates_at` call.
    scales: Vec<f64>,
    name: String,
}

impl<T: GroundTruth> CorrelatedTruth<T> {
    /// Wraps `inner` with the heterogeneity of `profile`.
    pub fn new(inner: T, profile: ShardProfile) -> Self {
        let name = format!("{}@shard{}", inner.name(), profile.shard);
        CorrelatedTruth {
            inner,
            profile,
            scales: Vec::new(),
            name,
        }
    }

    /// The profile this stream was derived with.
    pub fn profile(&self) -> &ShardProfile {
        &self.profile
    }
}

impl<T: GroundTruth> GroundTruth for CorrelatedTruth<T> {
    fn rates_at(&mut self, tick: u64, out: &mut [f64]) {
        if self.scales.len() != out.len() {
            self.scales = (0..out.len())
                .map(|i| self.profile.event_scale(i))
                .collect();
        }
        self.inner
            .rates_at(tick + self.profile.phase_offset_ticks, out);
        for (v, s) in out.iter_mut().zip(&self.scales) {
            *v *= s;
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::truth::ConstantTruth;
    use crate::NoiseModel;

    #[test]
    fn shard_zero_is_the_reference_machine() {
        let p = ShardProfile::derive(42, 0);
        assert_eq!(p.rate_scale, 1.0);
        assert_eq!(p.phase_offset_ticks, 0);
        assert_eq!(p.noise_scale, 1.0);
        assert_eq!(p.seed, 42);
        assert_eq!(p.event_scale(3), 1.0, "no jitter on the reference");
    }

    #[test]
    fn profiles_are_deterministic_and_distinct() {
        for shard in 1..16 {
            let a = ShardProfile::derive(7, shard);
            let b = ShardProfile::derive(7, shard);
            assert_eq!(a, b, "pure function of (seed, shard)");
            let other = ShardProfile::derive(7, shard + 1);
            assert_ne!(a.seed, other.seed, "shards get distinct seeds");
        }
    }

    #[test]
    fn profile_parameters_stay_in_their_documented_ranges() {
        for seed in 0..8u64 {
            for shard in 1..32 {
                let p = ShardProfile::derive(seed, shard);
                assert!((0.75..=1.25).contains(&p.rate_scale), "{p:?}");
                assert!((0.6..=1.6).contains(&p.noise_scale), "{p:?}");
                assert!(p.phase_offset_ticks < 24, "{p:?}");
                for ev in 0..24 {
                    let s = p.event_scale(ev);
                    assert!(s > 0.5 && s < 1.5, "event scale {s} out of range");
                }
            }
        }
    }

    #[test]
    fn correlated_truth_scales_and_shifts_the_reference() {
        let base = vec![100.0, 200.0, 300.0];
        let p = ShardProfile::derive(3, 5);
        let mut shard = CorrelatedTruth::new(ConstantTruth::new(base.clone()), p);
        let mut out = vec![0.0; 3];
        shard.rates_at(0, &mut out);
        for (i, (&got, &reference)) in out.iter().zip(&base).enumerate() {
            let expected = reference * p.event_scale(i);
            assert!(
                (got - expected).abs() < 1e-12,
                "event {i}: {got} vs {expected}"
            );
            // Distinct: scaled away from the reference...
            assert!((got - reference).abs() > 1e-9, "shard 5 must differ");
            // ...but correlated: within the documented envelope of it.
            assert!(got > 0.5 * reference && got < 1.5 * reference);
        }
        assert!(shard.name().contains("shard5"));
    }

    #[test]
    fn pmu_config_scales_noise_and_reseeds() {
        let cfg = PmuConfig {
            quantum_ticks: 4,
            cycles_per_tick: 1.0e6,
            noise: NoiseModel::default(),
            seed: 0,
        };
        let p = ShardProfile::derive(11, 2);
        let shard_cfg = p.pmu_config(&cfg);
        assert_eq!(shard_cfg.seed, p.seed);
        let ratio = shard_cfg.noise.measurement_sigma / cfg.noise.measurement_sigma;
        assert!((ratio - p.noise_scale).abs() < 1e-12);
        assert!(shard_cfg.noise.interrupt_rate <= 1.0);
    }
}
