//! Deterministic link fault profiles for simulated scrape planes.
//!
//! A distributed fleet's aggregator talks to its shards over links that
//! drop, lag, corrupt, and partition. Reproducing those failures against
//! real sockets makes tests slow and flaky; this module instead models a
//! link as a *seeded random process* the transport layer consults once per
//! request/response exchange. Everything is a pure function of
//! `(profile, exchange index)`, so a 100-shard lossy-fleet simulation is
//! exactly reproducible — the same shards time out on the same rounds on
//! every run, on every machine.
//!
//! Time is **virtual**: a drawn latency is compared against the caller's
//! deadline instead of being slept. A lossy 100-shard soak therefore runs
//! in milliseconds of wall clock while still exercising every timeout
//! path the real transports have.
//!
//! [`LinkProfile`] describes the link (drop probability, latency
//! distribution, corruption rate, recurring partition windows);
//! [`LinkState`] is its runtime: call [`LinkState::exchange`] once per
//! request and act on the returned [`LinkFate`].

/// SplitMix64 — the standard small, high-quality seed mixer (same
/// generator the per-shard heterogeneity profiles use).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Maps a mixed 64-bit word to a uniform f64 in `[0, 1)`.
fn unit(word: u64) -> f64 {
    (word >> 11) as f64 / (1u64 << 53) as f64
}

/// A seeded fault model for one aggregator↔shard link.
///
/// Probabilities are per request/response exchange. Latency is drawn
/// uniformly in `latency_us ± latency_jitter_us` (clamped at zero) and
/// compared against the caller's deadline — a draw beyond the deadline is
/// a timeout. Partitions are recurring outage windows in exchange counts:
/// exchange `i` is partitioned when
/// `(i + partition_phase) % partition_period < partition_len`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkProfile {
    /// Probability an exchange is silently dropped (request or response
    /// lost; the caller observes only its deadline expiring).
    pub drop_prob: f64,
    /// Probability a delivered response has one byte flipped in flight.
    pub corrupt_prob: f64,
    /// Median round-trip latency, microseconds.
    pub latency_us: f64,
    /// Uniform jitter half-width around `latency_us`, microseconds.
    pub latency_jitter_us: f64,
    /// Length of the recurring partition cycle in exchanges
    /// (`0` = never partitioned).
    pub partition_period: u64,
    /// Leading exchanges of each cycle during which the link is down.
    pub partition_len: u64,
    /// Phase offset into the partition cycle.
    pub partition_phase: u64,
    /// Seed of the link's fault process.
    pub seed: u64,
}

impl LinkProfile {
    /// A perfect link: no drops, no corruption, negligible latency.
    pub fn clean(seed: u64) -> LinkProfile {
        LinkProfile {
            drop_prob: 0.0,
            corrupt_prob: 0.0,
            latency_us: 50.0,
            latency_jitter_us: 0.0,
            partition_period: 0,
            partition_len: 0,
            partition_phase: 0,
            seed,
        }
    }

    /// A lossy datacenter link: `drop_prob` frame loss, mild corruption,
    /// latency spread wide enough that tight deadlines occasionally
    /// expire. No partitions — add those per shard.
    pub fn lossy(seed: u64, drop_prob: f64) -> LinkProfile {
        LinkProfile {
            drop_prob,
            corrupt_prob: 0.01,
            latency_us: 200.0,
            latency_jitter_us: 150.0,
            partition_period: 0,
            partition_len: 0,
            partition_phase: 0,
            seed,
        }
    }

    /// Derives shard `shard`'s variant of this profile: a distinct fault
    /// seed and a de-phased partition cycle, with the same loss/latency
    /// character. Mirrors [`ShardProfile::derive`](crate::ShardProfile):
    /// one template describes the fleet, each link misbehaves on its own
    /// schedule.
    pub fn derive(&self, shard: u32) -> LinkProfile {
        let mut state = self.seed ^ u64::from(shard).wrapping_mul(0xa076_1d64_78bd_642f);
        let seed = splitmix64(&mut state);
        let phase = if self.partition_period > 0 {
            (self.partition_phase + splitmix64(&mut state)) % self.partition_period
        } else {
            0
        };
        LinkProfile {
            seed,
            partition_phase: phase,
            ..*self
        }
    }
}

/// The outcome the link decided for one exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkFate {
    /// Both frames arrived within the deadline. `corrupt` names a byte to
    /// flip in the response: `(word, mask)` — flip `response[word % len]`
    /// with the non-zero `mask`.
    Delivered {
        /// Round-trip latency of this exchange, microseconds.
        latency_us: u64,
        /// In-flight response corruption to apply, if any.
        corrupt: Option<(u64, u8)>,
    },
    /// A frame was lost; the caller's deadline expires silently.
    Dropped,
    /// The link is inside a partition window; connections fail outright.
    Partitioned,
    /// The drawn latency exceeded the caller's deadline.
    TimedOut {
        /// The latency that was drawn (beyond the deadline).
        latency_us: u64,
    },
}

/// Runtime state of one link: the profile plus the seeded draw stream and
/// the exchange counter that drives partition windows.
#[derive(Debug, Clone)]
pub struct LinkState {
    profile: LinkProfile,
    state: u64,
    exchanges: u64,
}

impl LinkState {
    /// Starts the fault process of `profile`.
    pub fn new(profile: LinkProfile) -> LinkState {
        let mut state = profile.seed ^ 0x5851_f42d_4c95_7f2d;
        // Warm the mixer so near-identical seeds decorrelate immediately.
        splitmix64(&mut state);
        LinkState {
            profile,
            state,
            exchanges: 0,
        }
    }

    /// The profile this link runs.
    pub fn profile(&self) -> &LinkProfile {
        &self.profile
    }

    /// Exchanges decided so far (delivered or not).
    pub fn exchanges(&self) -> u64 {
        self.exchanges
    }

    /// Whether the *next* exchange falls inside a partition window.
    pub fn partitioned(&self) -> bool {
        let p = &self.profile;
        p.partition_period > 0
            && (self.exchanges + p.partition_phase) % p.partition_period < p.partition_len
    }

    /// Decides the fate of one request/response exchange against
    /// `deadline_us`. Draw order is fixed (drop, latency, corruption), so
    /// a link's fate sequence depends only on its profile — never on what
    /// other links or threads are doing.
    pub fn exchange(&mut self, deadline_us: u64) -> LinkFate {
        let partitioned = self.partitioned();
        self.exchanges += 1;
        let p = self.profile;
        if partitioned {
            return LinkFate::Partitioned;
        }
        if p.drop_prob > 0.0 && unit(splitmix64(&mut self.state)) < p.drop_prob {
            return LinkFate::Dropped;
        }
        let spread = 2.0 * (unit(splitmix64(&mut self.state)) - 0.5);
        let latency = (p.latency_us + spread * p.latency_jitter_us).max(0.0) as u64;
        if latency > deadline_us {
            return LinkFate::TimedOut {
                latency_us: latency,
            };
        }
        let corrupt = if p.corrupt_prob > 0.0 && unit(splitmix64(&mut self.state)) < p.corrupt_prob
        {
            let word = splitmix64(&mut self.state);
            let mask = (splitmix64(&mut self.state) % 255) as u8 + 1;
            Some((word, mask))
        } else {
            None
        };
        LinkFate::Delivered {
            latency_us: latency,
            corrupt,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_links_always_deliver_uncorrupted() {
        let mut link = LinkState::new(LinkProfile::clean(7));
        for _ in 0..1000 {
            match link.exchange(1_000) {
                LinkFate::Delivered { corrupt: None, .. } => {}
                other => panic!("clean link misbehaved: {other:?}"),
            }
        }
    }

    #[test]
    fn fate_sequences_are_deterministic_per_seed() {
        let profile = LinkProfile::lossy(11, 0.2);
        let mut a = LinkState::new(profile);
        let mut b = LinkState::new(profile);
        for _ in 0..500 {
            assert_eq!(a.exchange(300), b.exchange(300));
        }
        // A different seed gives a different fate sequence.
        let mut c = LinkState::new(LinkProfile::lossy(12, 0.2));
        let mut a = LinkState::new(profile);
        let same = (0..500)
            .filter(|_| a.exchange(300) == c.exchange(300))
            .count();
        assert!(same < 500, "distinct seeds must diverge");
    }

    #[test]
    fn drop_rate_tracks_the_profile() {
        let mut link = LinkState::new(LinkProfile::lossy(3, 0.15));
        let n = 20_000;
        let dropped = (0..n)
            .filter(|_| matches!(link.exchange(u64::MAX), LinkFate::Dropped))
            .count();
        let rate = dropped as f64 / n as f64;
        assert!((rate - 0.15).abs() < 0.02, "drop rate {rate}");
    }

    #[test]
    fn tight_deadlines_time_out_loose_ones_do_not() {
        let profile = LinkProfile {
            latency_us: 500.0,
            latency_jitter_us: 400.0,
            ..LinkProfile::clean(5)
        };
        let mut link = LinkState::new(profile);
        let timeouts = (0..10_000)
            .filter(|_| matches!(link.exchange(600), LinkFate::TimedOut { .. }))
            .count();
        // latency ~ U[100, 900]: roughly 3/8 of draws exceed 600µs.
        assert!(timeouts > 2_000 && timeouts < 5_500, "timeouts {timeouts}");
        let mut link = LinkState::new(profile);
        for _ in 0..1000 {
            assert!(
                matches!(link.exchange(1_000), LinkFate::Delivered { .. }),
                "900µs worst case fits a 1ms deadline"
            );
        }
    }

    #[test]
    fn partition_windows_recur_and_clear() {
        let profile = LinkProfile {
            partition_period: 10,
            partition_len: 3,
            partition_phase: 0,
            ..LinkProfile::clean(9)
        };
        let mut link = LinkState::new(profile);
        for cycle in 0..5 {
            for i in 0..10 {
                let fate = link.exchange(1_000);
                if i < 3 {
                    assert_eq!(fate, LinkFate::Partitioned, "cycle {cycle} step {i}");
                } else {
                    assert!(
                        matches!(fate, LinkFate::Delivered { .. }),
                        "cycle {cycle} step {i}: {fate:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn derive_reseeds_and_dephases_per_shard() {
        let template = LinkProfile {
            partition_period: 40,
            partition_len: 10,
            ..LinkProfile::lossy(0xBEEF, 0.1)
        };
        let a = template.derive(1);
        let b = template.derive(2);
        assert_ne!(a.seed, b.seed);
        assert_eq!(a.drop_prob, template.drop_prob);
        assert!(a.partition_phase < 40 && b.partition_phase < 40);
        assert_eq!(template.derive(1), a, "pure function of (template, shard)");
        // Corruption masks are never zero (a zero mask would be a no-op
        // "corruption" that tests silently pass through).
        let mut link = LinkState::new(LinkProfile {
            corrupt_prob: 1.0,
            ..LinkProfile::clean(2)
        });
        for _ in 0..200 {
            match link.exchange(1_000) {
                LinkFate::Delivered {
                    corrupt: Some((_, mask)),
                    ..
                } => assert_ne!(mask, 0),
                other => panic!("expected corruption, got {other:?}"),
            }
        }
    }
}
