//! Seeded compute-plane data-fault models: corrupted counter samples.
//!
//! [`LinkProfile`](crate::LinkProfile) models faults *between* machines —
//! drops, latency, byte corruption on the scrape wire. This module models
//! faults *inside* one: the ways a PMU sample can go bad before inference
//! ever sees it. A flaky PMI handler can hand back NaN/Inf after an FP
//! exception, a torn 64-bit read can produce a wildly scaled count, and a
//! wedged counter can report the same stuck value window after window.
//! Robustness work needs these reproducibly, at controlled rates, across
//! hundreds of crash/restart cycles — so, exactly like the link layer,
//! the model is a small pure-function core over a splitmix64 stream:
//! same seed, same samples in, same faults out, no wall clock anywhere.
//!
//! * [`DataFaultProfile`] — immutable per-stream fault rates (a config);
//! * [`DataFaultState`] — the mutable per-stream mixer that decides and
//!   applies one fault per sample;
//! * [`DataFault`] — what happened to a sample, for assertions and
//!   injected-fault accounting in soak tests.

use crate::sample::Sample;

/// What the fault model did to one sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataFault {
    /// The sample passed through untouched.
    Clean,
    /// The counter value became NaN (e.g. an FP-exception-poisoned read).
    Nan,
    /// The counter value became infinite.
    Inf,
    /// The value was scaled by a large bogus factor (torn/misdecoded
    /// read) — finite but far outside the plausible range.
    Corrupted,
    /// The counter wedged: this sample repeats the stream's previous
    /// value instead of its own.
    StuckAt,
    /// The sub-sample moments were poisoned (NaN spread), leaving the
    /// headline value intact — the subtle variant that targets the
    /// Student-t error model rather than the mean.
    SubMomentsNan,
}

impl DataFault {
    /// Whether the sample was altered at all.
    pub fn injected(self) -> bool {
        self != DataFault::Clean
    }
}

/// Immutable per-stream data-fault rates. Mirrors
/// [`LinkProfile`](crate::LinkProfile): construct one per simulated
/// sample stream (or [`derive`](DataFaultProfile::derive) per-shard
/// variants from a fleet-level profile) and drive a [`DataFaultState`]
/// with it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DataFaultProfile {
    /// Probability a sample's value becomes NaN.
    pub nan_prob: f64,
    /// Probability a sample's value becomes ±Inf.
    pub inf_prob: f64,
    /// Probability a sample's value is scaled by [`Self::corrupt_scale`].
    pub corrupt_prob: f64,
    /// The bogus multiplier applied by a corruption fault.
    pub corrupt_scale: f64,
    /// Probability a sample repeats the previous value (stuck counter).
    pub stuck_prob: f64,
    /// Probability a sample's PMI sub-moments (`sub_sd`) become NaN
    /// while the headline value stays valid.
    pub sub_nan_prob: f64,
    /// Stream seed: same seed + same samples ⇒ same faults.
    pub seed: u64,
}

impl DataFaultProfile {
    /// A fault-free profile (every sample passes through clean).
    pub fn clean(seed: u64) -> DataFaultProfile {
        DataFaultProfile {
            nan_prob: 0.0,
            inf_prob: 0.0,
            corrupt_prob: 0.0,
            corrupt_scale: 1e9,
            stuck_prob: 0.0,
            sub_nan_prob: 0.0,
            seed,
        }
    }

    /// A moderately hostile profile: ~2% of samples poisoned across the
    /// fault classes — high enough that a soak run of a few thousand
    /// samples exercises every class, low enough that inference still
    /// has signal to correct.
    pub fn noisy(seed: u64) -> DataFaultProfile {
        DataFaultProfile {
            nan_prob: 0.005,
            inf_prob: 0.003,
            corrupt_prob: 0.005,
            corrupt_scale: 1e9,
            stuck_prob: 0.004,
            sub_nan_prob: 0.003,
            seed,
        }
    }

    /// Derives a per-shard profile with the same rates but an
    /// independent fault stream, so fleet shards corrupt independently
    /// (mirrors [`LinkProfile::derive`](crate::LinkProfile::derive)).
    pub fn derive(&self, shard: u64) -> DataFaultProfile {
        DataFaultProfile {
            seed: self
                .seed
                .wrapping_add(shard.wrapping_mul(0xa076_1d64_78bd_642f)),
            ..*self
        }
    }
}

/// Mutable per-stream fault state: the splitmix64 mixer plus the
/// stuck-at memory, advanced once per [`apply`](DataFaultState::apply).
#[derive(Debug, Clone)]
pub struct DataFaultState {
    profile: DataFaultProfile,
    state: u64,
    /// The previous (pre-fault decision, post-previous-fault) value per
    /// stream — what a wedged counter would keep reporting.
    last_value: Option<f64>,
    samples: u64,
    injected: u64,
}

pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Maps a word to `[0, 1)`.
pub(crate) fn unit(word: u64) -> f64 {
    (word >> 11) as f64 / (1u64 << 53) as f64
}

impl DataFaultState {
    /// Creates the fault stream for `profile` (warms the mixer so the
    /// first decision is already well mixed).
    pub fn new(profile: DataFaultProfile) -> DataFaultState {
        let mut state = profile.seed ^ 0x5851_f42d_4c95_7f2d;
        let _ = splitmix64(&mut state);
        DataFaultState {
            profile,
            state,
            last_value: None,
            samples: 0,
            injected: 0,
        }
    }

    /// Decides and applies at most one fault to `sample`, in a fixed
    /// draw order (nan, inf, corrupt, stuck, sub-moments) so the
    /// decision stream is identical per seed regardless of which rates
    /// are zero. Returns what happened.
    pub fn apply(&mut self, sample: &mut Sample) -> DataFault {
        self.samples += 1;
        let p = &self.profile;
        // One draw per fault class, always consumed, so enabling one
        // class never perturbs another class's stream.
        let d_nan = unit(splitmix64(&mut self.state));
        let d_inf = unit(splitmix64(&mut self.state));
        let d_corrupt = unit(splitmix64(&mut self.state));
        let d_stuck = unit(splitmix64(&mut self.state));
        let d_sub = unit(splitmix64(&mut self.state));
        let sign = splitmix64(&mut self.state);
        let prev = self.last_value.replace(sample.value);

        let fault = if d_nan < p.nan_prob {
            sample.value = f64::NAN;
            DataFault::Nan
        } else if d_inf < p.inf_prob {
            sample.value = if sign & 1 == 0 {
                f64::INFINITY
            } else {
                f64::NEG_INFINITY
            };
            DataFault::Inf
        } else if d_corrupt < p.corrupt_prob {
            sample.value *= p.corrupt_scale;
            sample.sub_mean *= p.corrupt_scale;
            DataFault::Corrupted
        } else if d_stuck < p.stuck_prob {
            match prev {
                Some(v) => {
                    sample.value = v;
                    DataFault::StuckAt
                }
                // Nothing to be stuck at on the first sample.
                None => DataFault::Clean,
            }
        } else if d_sub < p.sub_nan_prob {
            sample.sub_sd = f64::NAN;
            DataFault::SubMomentsNan
        } else {
            DataFault::Clean
        };
        if fault.injected() {
            self.injected += 1;
        }
        fault
    }

    /// Samples run through [`apply`](DataFaultState::apply) so far.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Samples that had a fault injected.
    pub fn injected(&self) -> u64 {
        self.injected
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bayesperf_events::EventId;

    fn sample(window: u32, value: f64) -> Sample {
        Sample {
            event: EventId::from_raw(0),
            window,
            value,
            sub_mean: value / 4.0,
            sub_sd: value.abs().sqrt(),
            sub_n: 4,
            time_enabled: 100,
            time_running: 100,
            source: bayesperf_events::SourceId::PMU,
        }
    }

    // Bit patterns, not f64s: NaN faults must compare equal to themselves.
    fn run(profile: DataFaultProfile, n: u32) -> Vec<(u64, u64, DataFault)> {
        let mut st = DataFaultState::new(profile);
        (0..n)
            .map(|w| {
                let mut s = sample(w, 1000.0 + f64::from(w));
                let f = st.apply(&mut s);
                (s.value.to_bits(), s.sub_sd.to_bits(), f)
            })
            .collect()
    }

    #[test]
    fn same_seed_same_faults() {
        let p = DataFaultProfile::noisy(42);
        assert_eq!(run(p, 500), run(p, 500));
    }

    #[test]
    fn different_seeds_diverge() {
        let a = run(DataFaultProfile::noisy(1), 500);
        let b = run(DataFaultProfile::noisy(2), 500);
        assert_ne!(a, b);
    }

    #[test]
    fn clean_profile_never_touches_samples() {
        let mut st = DataFaultState::new(DataFaultProfile::clean(7));
        for w in 0..200 {
            let mut s = sample(w, 5.0);
            assert_eq!(st.apply(&mut s), DataFault::Clean);
            assert_eq!(s.value, 5.0);
            assert!(s.sub_sd.is_finite());
        }
        assert_eq!(st.injected(), 0);
        assert_eq!(st.samples(), 200);
    }

    #[test]
    fn every_fault_class_fires_at_noisy_rates() {
        let faults: Vec<DataFault> = run(DataFaultProfile::noisy(1234), 20_000)
            .into_iter()
            .map(|(_, _, f)| f)
            .collect();
        for want in [
            DataFault::Nan,
            DataFault::Inf,
            DataFault::Corrupted,
            DataFault::StuckAt,
            DataFault::SubMomentsNan,
        ] {
            assert!(
                faults.contains(&want),
                "fault class {want:?} never fired in 20k samples"
            );
        }
        // Aggregate rate in the right ballpark: 2% nominal, generous
        // bounds so the test is seed-robust.
        let injected = faults.iter().filter(|f| f.injected()).count();
        assert!((100..=1200).contains(&injected), "injected = {injected}");
    }

    #[test]
    fn faults_do_what_they_say() {
        let mut st = DataFaultState::new(DataFaultProfile::noisy(99));
        let mut prev = None;
        for w in 0..20_000u32 {
            let original = 1000.0 + f64::from(w);
            let mut s = sample(w, original);
            match st.apply(&mut s) {
                DataFault::Nan => assert!(s.value.is_nan()),
                DataFault::Inf => assert!(s.value.is_infinite()),
                DataFault::Corrupted => {
                    assert!(s.value.is_finite());
                    assert!((s.value / original - 1e9).abs() < 1e-3);
                }
                DataFault::StuckAt => assert_eq!(Some(s.value), prev),
                DataFault::SubMomentsNan => {
                    assert!(s.sub_sd.is_nan());
                    assert_eq!(s.value, original);
                }
                DataFault::Clean => assert_eq!(s.value, original),
            }
            prev = Some(original);
        }
        assert!(st.injected() > 0);
    }

    #[test]
    fn derive_gives_independent_streams_with_same_rates() {
        let fleet = DataFaultProfile::noisy(7);
        let a = fleet.derive(0);
        let b = fleet.derive(1);
        assert_ne!(a.seed, b.seed);
        assert_eq!(a.nan_prob, fleet.nan_prob);
        assert_ne!(run(a, 500), run(b, 500));
        // Derivation is pure: same shard, same stream.
        assert_eq!(run(fleet.derive(3), 200), run(fleet.derive(3), 200));
    }
}
