//! The sample record produced by the PMU, and its wire encoding.

use bayesperf_events::{EventId, SourceId};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};

/// One multiplexing-window measurement of one event, as delivered through
/// the kernel↔userspace ring buffer.
///
/// Mirrors a Linux perf sample record: the accumulated `value` plus the
/// `time_enabled`/`time_running` pair used for undercount scaling
/// (`value × time_enabled / time_running`, §4). Additionally carries the
/// within-window PMI sub-sample statistics that BayesPerf's Student-t error
/// model consumes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// The measured event.
    pub event: EventId,
    /// Index of the multiplexing window this sample was taken in.
    pub window: u32,
    /// Raw accumulated count over the window (noisy).
    pub value: f64,
    /// Mean of the PMI sub-samples within the window.
    pub sub_mean: f64,
    /// Standard deviation of the PMI sub-samples.
    pub sub_sd: f64,
    /// Number of PMI sub-samples. `0` is reserved as the in-band marker
    /// for scheduler *extrapolations* ([`Sample::is_extrapolated`]):
    /// producers adapting real counter reads must report at least one
    /// sub-sample (a plain unscaled read is `sub_n = 1` with zero
    /// deviation), or the observation model will treat the value as a
    /// carry-forward estimate with deliberately inflated noise.
    pub sub_n: u32,
    /// Ticks this event has been enabled (requested), cumulatively.
    pub time_enabled: u64,
    /// Ticks this event has actually been running on a counter.
    pub time_running: u64,
    /// The observation source that produced this sample
    /// ([`SourceId::PMU`] for counter reads; gauge/`/proc` sources tag
    /// their own id so inference picks the matching error model).
    pub source: SourceId,
}

impl Sample {
    /// True if this sample is a scheduler *extrapolation* (zero PMI
    /// sub-samples): the event's group was not on the counters during this
    /// window and the value is a `time_enabled/time_running`-style
    /// carry-forward estimate, not a hardware read. Observation models
    /// must treat it with inflated noise.
    pub fn is_extrapolated(&self) -> bool {
        self.sub_n == 0
    }

    /// Linux's built-in undercount correction: scale the raw value by
    /// enabled/running time (§4). Returns the raw value when the event
    /// never ran (avoids division by zero; perf reports 0 in that case).
    pub fn linux_scaled(&self) -> f64 {
        if self.time_running == 0 {
            return 0.0;
        }
        self.value * self.time_enabled as f64 / self.time_running as f64
    }

    /// Serialized size in bytes (fixed-width encoding).
    pub const WIRE_SIZE: usize = 2 + 4 + 8 * 3 + 4 + 8 * 2 + 2;

    /// Encodes the sample into `buf` (fixed-width little-endian layout, as a
    /// kernel ring buffer would carry).
    pub fn encode(&self, buf: &mut BytesMut) {
        buf.put_u16_le(self.event.index() as u16);
        buf.put_u32_le(self.window);
        buf.put_f64_le(self.value);
        buf.put_f64_le(self.sub_mean);
        buf.put_f64_le(self.sub_sd);
        buf.put_u32_le(self.sub_n);
        buf.put_u64_le(self.time_enabled);
        buf.put_u64_le(self.time_running);
        buf.put_u16_le(self.source.index() as u16);
    }

    /// Decodes a sample previously written by [`Sample::encode`].
    ///
    /// Returns `None` if `buf` holds fewer than [`Sample::WIRE_SIZE`] bytes.
    pub fn decode(buf: &mut Bytes) -> Option<Sample> {
        if buf.remaining() < Self::WIRE_SIZE {
            return None;
        }
        Some(Sample {
            event: EventId::from_raw(buf.get_u16_le()),
            window: buf.get_u32_le(),
            value: buf.get_f64_le(),
            sub_mean: buf.get_f64_le(),
            sub_sd: buf.get_f64_le(),
            sub_n: buf.get_u32_le(),
            time_enabled: buf.get_u64_le(),
            time_running: buf.get_u64_le(),
            source: SourceId::from_raw(buf.get_u16_le()),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Sample {
        Sample {
            event: EventId::from_raw(7),
            window: 42,
            value: 1234.5,
            sub_mean: 308.6,
            sub_sd: 12.25,
            sub_n: 4,
            time_enabled: 100,
            time_running: 25,
            source: SourceId::PMU,
        }
    }

    #[test]
    fn linux_scaling_multiplies_by_enabled_over_running() {
        let s = sample();
        assert!((s.linux_scaled() - 1234.5 * 4.0).abs() < 1e-9);
    }

    #[test]
    fn linux_scaling_handles_never_ran() {
        let s = Sample {
            time_running: 0,
            ..sample()
        };
        assert_eq!(s.linux_scaled(), 0.0);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let s = sample();
        let mut buf = BytesMut::new();
        s.encode(&mut buf);
        assert_eq!(buf.len(), Sample::WIRE_SIZE);
        let mut bytes = buf.freeze();
        let back = Sample::decode(&mut bytes).unwrap();
        assert_eq!(back, s);

        // Non-PMU source tags survive the wire too.
        let g = Sample {
            source: SourceId::from_raw(3),
            ..sample()
        };
        let mut buf = BytesMut::new();
        g.encode(&mut buf);
        let back = Sample::decode(&mut buf.freeze()).unwrap();
        assert_eq!(back.source, SourceId::from_raw(3));
    }

    #[test]
    fn decode_short_buffer_is_none() {
        let mut short = Bytes::from_static(&[0u8; 10]);
        assert!(Sample::decode(&mut short).is_none());
    }
}
