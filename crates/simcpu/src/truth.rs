//! The ground-truth interface: what the machine is "really doing".

/// A source of true per-mega-cycle event rates over time.
///
/// Implementors (the workload generators) fill `out` — indexed by
/// [`bayesperf_events::EventId`] — with the true rate of every catalog event
/// at the given tick. The PMU simulator integrates these rates into counts
/// and perturbs what the counters would observe; evaluation code keeps the
/// unperturbed values as ground truth.
pub trait GroundTruth {
    /// Writes the true rates (events per mega-cycle) at `tick` into `out`.
    fn rates_at(&mut self, tick: u64, out: &mut [f64]);

    /// Display name for reports.
    fn name(&self) -> &str {
        "anonymous"
    }
}

/// A trivial ground truth with constant rates — useful for tests.
#[derive(Debug, Clone)]
pub struct ConstantTruth {
    rates: Vec<f64>,
}

impl ConstantTruth {
    /// Creates a constant truth from a rate vector.
    pub fn new(rates: Vec<f64>) -> Self {
        ConstantTruth { rates }
    }
}

impl GroundTruth for ConstantTruth {
    fn rates_at(&mut self, _tick: u64, out: &mut [f64]) {
        out.copy_from_slice(&self.rates);
    }

    fn name(&self) -> &str {
        "constant"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_truth_is_constant() {
        let mut t = ConstantTruth::new(vec![1.0, 2.0]);
        let mut a = vec![0.0; 2];
        let mut b = vec![0.0; 2];
        t.rates_at(0, &mut a);
        t.rates_at(99, &mut b);
        assert_eq!(a, b);
        assert_eq!(t.name(), "constant");
    }
}
