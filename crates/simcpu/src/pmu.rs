//! The PMU simulator: multiplexed sampling and polling runs.

use crate::config::Configuration;
use crate::noise::NoiseModel;
use crate::sample::Sample;
use crate::truth::GroundTruth;
use bayesperf_events::{Catalog, Domain, EventId, SourceId};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Simulation parameters of a PMU run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PmuConfig {
    /// Ticks per multiplexing quantum (1 tick models 1 ms).
    pub quantum_ticks: u64,
    /// Core cycles elapsing per tick.
    pub cycles_per_tick: f64,
    /// The measurement-noise model.
    pub noise: NoiseModel,
    /// RNG seed; distinct seeds model distinct application runs.
    pub seed: u64,
}

impl PmuConfig {
    /// Default configuration for an architecture: 4 ms quanta at the
    /// arch's nominal clock.
    pub fn for_catalog(catalog: &Catalog) -> Self {
        PmuConfig {
            quantum_ticks: 4,
            cycles_per_tick: catalog.arch().clock_hz() / 1000.0,
            noise: NoiseModel::default(),
            seed: 0,
        }
    }
}

/// One multiplexing window (= one quantum) of a run.
#[derive(Debug, Clone)]
pub struct Window {
    /// Window index.
    pub index: u32,
    /// Which schedule configuration was active (`usize::MAX` for polling).
    pub config_index: usize,
    /// Samples delivered for this window (fixed events + scheduled events).
    pub samples: Vec<Sample>,
    /// True counts per catalog event during this window (evaluation only —
    /// not visible to estimators on real hardware).
    pub truth: Vec<f64>,
}

impl Window {
    /// The sample for `id` in this window, if the event was measured.
    pub fn sample_for(&self, id: EventId) -> Option<&Sample> {
        self.samples.iter().find(|s| s.event == id)
    }
}

/// The result of a PMU run: a sequence of windows.
#[derive(Debug, Clone)]
pub struct MultiplexRun {
    /// Windows in time order.
    pub windows: Vec<Window>,
    /// Ticks per window.
    pub quantum_ticks: u64,
    /// Cycles per window.
    pub cycles_per_window: f64,
}

impl MultiplexRun {
    /// The ground-truth count series of an event across windows.
    pub fn truth_series(&self, id: EventId) -> Vec<f64> {
        self.windows.iter().map(|w| w.truth[id.index()]).collect()
    }

    /// The windows in which `id` was actually measured (extrapolated
    /// carry-forward samples do not count as measurements).
    pub fn measured_windows(&self, id: EventId) -> Vec<u32> {
        self.windows
            .iter()
            .filter(|w| w.sample_for(id).is_some_and(|s| !s.is_extrapolated()))
            .map(|w| w.index)
            .collect()
    }
}

/// How a driven run represents events whose group is *not* scheduled in a
/// window.
///
/// Real perf tooling reports a count for every requested event every time
/// it is read, scheduled or not: unscheduled stretches are filled with the
/// `time_enabled / time_running` extrapolation — the zero-order hold over
/// the run-average rate that is precisely the §2 scaling error BayesPerf
/// exists to correct (Fig. 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Extrapolate {
    /// Unscheduled events emit nothing; their windows simply have no
    /// sample (the historical [`Pmu::run_multiplexed`] behaviour).
    Off,
    /// Every unscheduled multiplexed event that has run at least once
    /// emits a synthetic carry-forward sample per window: the Linux-scaled
    /// run-average count. `sub_n == 0` marks the sample as extrapolated —
    /// it is an *estimate*, not a hardware read, and downstream observation
    /// models must widen its noise accordingly.
    LinuxScaled,
}

/// The simulated performance monitoring unit.
#[derive(Debug, Clone)]
pub struct Pmu<'a> {
    catalog: &'a Catalog,
    config: PmuConfig,
}

impl<'a> Pmu<'a> {
    /// Creates a PMU over a catalog.
    pub fn new(catalog: &'a Catalog, config: PmuConfig) -> Self {
        Pmu { catalog, config }
    }

    /// The catalog this PMU counts events from.
    pub fn catalog(&self) -> &Catalog {
        self.catalog
    }

    /// The simulation parameters.
    pub fn config(&self) -> &PmuConfig {
        &self.config
    }

    /// Runs `n_windows` of multiplexed sampling: the schedule's
    /// configurations rotate round-robin, one per quantum; fixed-counter
    /// events are always measured.
    ///
    /// # Panics
    ///
    /// Panics if `schedule` is empty.
    pub fn run_multiplexed(
        &self,
        truth: &mut dyn GroundTruth,
        schedule: &[Configuration],
        n_windows: usize,
    ) -> MultiplexRun {
        self.run_driven(truth, schedule, n_windows, Extrapolate::Off, |w, _| {
            w as usize % schedule.len()
        })
    }

    /// Runs `n_windows` of multiplexed sampling with an external schedule
    /// driver: before each window `w`, `pick(w, prev)` chooses which of
    /// `schedule`'s configurations runs next, where `prev` is the
    /// just-completed previous window (`None` for window 0). This is the
    /// feedback-loop entry point: a driver can deliver `prev`'s samples to
    /// an inference service and let the *posterior* decide what to measure
    /// next (the uncertainty-driven multiplexing scheduler).
    ///
    /// With [`Extrapolate::LinuxScaled`], every multiplexed event whose
    /// group is unscheduled in a window (and that has run at least once)
    /// additionally emits a carry-forward sample — the run-average count a
    /// `time_enabled/time_running` scaling read would report, marked
    /// `sub_n == 0`. Those windows thereby carry the paper's scaling error
    /// explicitly instead of silently going missing.
    ///
    /// # Panics
    ///
    /// Panics if `schedule` is empty or `pick` returns an out-of-range
    /// configuration index.
    pub fn run_driven(
        &self,
        truth: &mut dyn GroundTruth,
        schedule: &[Configuration],
        n_windows: usize,
        extrapolate: Extrapolate,
        mut pick: impl FnMut(u64, Option<&Window>) -> usize,
    ) -> MultiplexRun {
        assert!(!schedule.is_empty(), "schedule must not be empty");
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let n_events = self.catalog.len();
        let fixed: Vec<EventId> = self
            .catalog
            .iter()
            .filter(|e| e.domain == Domain::Fixed)
            .map(|e| e.id)
            .collect();
        // The multiplexed pool: every event any configuration measures, in
        // catalog order — the set a LinuxScaled run extrapolates over.
        let mut pool: Vec<EventId> = schedule
            .iter()
            .flat_map(|c| c.events().iter().copied())
            .collect();
        pool.sort_unstable();
        pool.dedup();

        let mut time_running = vec![0u64; n_events];
        let mut cum_raw = vec![0.0f64; n_events];
        let mut rates = vec![0.0; n_events];
        let mut windows: Vec<Window> = Vec::with_capacity(n_windows);
        let mut prev_events: Vec<EventId> = Vec::new();

        for w in 0..n_windows {
            let config_index = pick(w as u64, windows.last());
            assert!(
                config_index < schedule.len(),
                "driver picked configuration {config_index} of {}",
                schedule.len()
            );
            let cfg = &schedule[config_index];
            let mut measured: Vec<EventId> = fixed.clone();
            measured.extend_from_slice(cfg.events());

            let mut truth_counts = vec![0.0; n_events];
            let mut subs: Vec<Vec<f64>> = vec![Vec::new(); measured.len()];

            for t in 0..self.config.quantum_ticks {
                let tick = w as u64 * self.config.quantum_ticks + t;
                truth.rates_at(tick, &mut rates);
                for (i, v) in rates.iter().enumerate() {
                    truth_counts[i] += v * self.config.cycles_per_tick / 1.0e6;
                }
                for (mi, &ev) in measured.iter().enumerate() {
                    let is_fixed = mi < fixed.len();
                    let at_boundary = t == 0 && !is_fixed && !prev_events.contains(&ev);
                    let true_tick = rates[ev.index()] * self.config.cycles_per_tick / 1.0e6;
                    subs[mi].push(self.config.noise.perturb(&mut rng, true_tick, at_boundary));
                }
            }

            let enabled = (w as u64 + 1) * self.config.quantum_ticks;
            for &ev in cfg.events() {
                time_running[ev.index()] += self.config.quantum_ticks;
            }

            let mut samples: Vec<Sample> = measured
                .iter()
                .enumerate()
                .map(|(mi, &ev)| {
                    let is_fixed = mi < fixed.len();
                    let running = if is_fixed {
                        enabled
                    } else {
                        time_running[ev.index()]
                    };
                    let s = make_sample(ev, w as u32, &subs[mi], enabled, running);
                    if !is_fixed {
                        cum_raw[ev.index()] += s.value;
                    }
                    s
                })
                .collect();

            if extrapolate == Extrapolate::LinuxScaled {
                for &ev in &pool {
                    let running = time_running[ev.index()];
                    if cfg.contains(ev) || running == 0 {
                        continue;
                    }
                    // Zero-order hold over the run-average rate: what a
                    // perf read's enabled/running scaling attributes to
                    // this window (§2's smearing error, made explicit).
                    let rate = cum_raw[ev.index()] / running as f64;
                    samples.push(Sample {
                        event: ev,
                        window: w as u32,
                        value: rate * self.config.quantum_ticks as f64,
                        sub_mean: rate,
                        sub_sd: 0.0,
                        sub_n: 0,
                        time_enabled: enabled,
                        time_running: running,
                        source: SourceId::PMU,
                    });
                }
            }

            windows.push(Window {
                index: w as u32,
                config_index,
                samples,
                truth: truth_counts,
            });
            prev_events = cfg.events().to_vec();
        }

        MultiplexRun {
            windows,
            quantum_ticks: self.config.quantum_ticks,
            cycles_per_window: self.config.quantum_ticks as f64 * self.config.cycles_per_tick,
        }
    }

    /// Runs `n_windows` of *polling*: every requested event gets a dedicated
    /// counter (no multiplexing, no boundary smearing) — the paper's
    /// baseline measurement mode for establishing reference traces.
    pub fn run_polling(
        &self,
        truth: &mut dyn GroundTruth,
        events: &[EventId],
        n_windows: usize,
    ) -> MultiplexRun {
        let mut rng = StdRng::seed_from_u64(self.config.seed ^ 0x706f_6c6c); // "poll"
        let n_events = self.catalog.len();
        let mut rates = vec![0.0; n_events];
        let mut windows = Vec::with_capacity(n_windows);

        for w in 0..n_windows {
            let mut truth_counts = vec![0.0; n_events];
            let mut subs: Vec<Vec<f64>> = vec![Vec::new(); events.len()];
            for t in 0..self.config.quantum_ticks {
                let tick = w as u64 * self.config.quantum_ticks + t;
                truth.rates_at(tick, &mut rates);
                for (i, v) in rates.iter().enumerate() {
                    truth_counts[i] += v * self.config.cycles_per_tick / 1.0e6;
                }
                for (mi, &ev) in events.iter().enumerate() {
                    let true_tick = rates[ev.index()] * self.config.cycles_per_tick / 1.0e6;
                    subs[mi].push(self.config.noise.perturb(&mut rng, true_tick, false));
                }
            }
            let enabled = (w as u64 + 1) * self.config.quantum_ticks;
            let samples = events
                .iter()
                .enumerate()
                .map(|(mi, &ev)| make_sample(ev, w as u32, &subs[mi], enabled, enabled))
                .collect();
            windows.push(Window {
                index: w as u32,
                config_index: usize::MAX,
                samples,
                truth: truth_counts,
            });
        }

        MultiplexRun {
            windows,
            quantum_ticks: self.config.quantum_ticks,
            cycles_per_window: self.config.quantum_ticks as f64 * self.config.cycles_per_tick,
        }
    }
}

fn make_sample(ev: EventId, window: u32, subs: &[f64], enabled: u64, running: u64) -> Sample {
    let n = subs.len().max(1) as f64;
    let total: f64 = subs.iter().sum();
    let mean = total / n;
    let var = subs.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / n;
    Sample {
        event: ev,
        window,
        value: total,
        sub_mean: mean,
        sub_sd: var.sqrt(),
        sub_n: subs.len() as u32,
        time_enabled: enabled,
        time_running: running,
        source: SourceId::PMU,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::pack_round_robin;
    use crate::truth::ConstantTruth;
    use bayesperf_events::{synthesize, Arch, FreeParams, Semantic};

    fn setup() -> (Catalog, Vec<f64>) {
        let cat = Catalog::new(Arch::X86SkyLake);
        let rates = synthesize(&cat, &FreeParams::default());
        (cat, rates)
    }

    fn noiseless(cat: &Catalog) -> PmuConfig {
        PmuConfig {
            noise: NoiseModel::none(),
            ..PmuConfig::for_catalog(cat)
        }
    }

    #[test]
    fn truth_integration_is_exact_without_noise() {
        let (cat, rates) = setup();
        let pmu = Pmu::new(&cat, noiseless(&cat));
        let mut truth = ConstantTruth::new(rates.clone());
        let ev = cat.require(Semantic::BrInst);
        let schedule = pack_round_robin(&cat, &[ev]).unwrap();
        let run = pmu.run_multiplexed(&mut truth, &schedule, 5);
        let expected = rates[ev.index()] * pmu.config().cycles_per_tick / 1.0e6
            * pmu.config().quantum_ticks as f64;
        for w in &run.windows {
            assert!((w.truth[ev.index()] - expected).abs() < 1e-6);
            let s = w.sample_for(ev).unwrap();
            assert!((s.value - expected).abs() < 1e-6);
        }
    }

    #[test]
    fn fixed_events_present_in_every_window() {
        let (cat, rates) = setup();
        let pmu = Pmu::new(&cat, noiseless(&cat));
        let mut truth = ConstantTruth::new(rates);
        let ev = cat.require(Semantic::BrInst);
        let schedule = pack_round_robin(&cat, &[ev]).unwrap();
        let run = pmu.run_multiplexed(&mut truth, &schedule, 4);
        let cycles = cat.require(Semantic::Cycles);
        for w in &run.windows {
            assert!(w.sample_for(cycles).is_some(), "window {}", w.index);
        }
    }

    #[test]
    fn multiplexed_events_rotate() {
        let (cat, rates) = setup();
        let pmu = Pmu::new(&cat, noiseless(&cat));
        let mut truth = ConstantTruth::new(rates);
        // 8 core events -> 2 configurations, each event in every 2nd window.
        let events: Vec<EventId> = [
            Semantic::UopsIssued,
            Semantic::UopsRetired,
            Semantic::UopsBadSpec,
            Semantic::IdqMiteUops,
            Semantic::BrInst,
            Semantic::BrMisp,
            Semantic::L1dMisses,
            Semantic::L2References,
        ]
        .iter()
        .map(|&s| cat.require(s))
        .collect();
        let schedule = pack_round_robin(&cat, &events).unwrap();
        assert_eq!(schedule.len(), 2);
        let run = pmu.run_multiplexed(&mut truth, &schedule, 8);
        assert_eq!(run.measured_windows(events[0]), vec![0, 2, 4, 6]);
        assert_eq!(run.measured_windows(events[4]), vec![1, 3, 5, 7]);
    }

    #[test]
    fn time_accounting_tracks_duty_cycle() {
        let (cat, rates) = setup();
        let pmu = Pmu::new(&cat, noiseless(&cat));
        let mut truth = ConstantTruth::new(rates);
        let events: Vec<EventId> = [
            Semantic::UopsIssued,
            Semantic::UopsRetired,
            Semantic::UopsBadSpec,
            Semantic::IdqMiteUops,
            Semantic::BrInst,
            Semantic::BrMisp,
            Semantic::L1dMisses,
            Semantic::L2References,
        ]
        .iter()
        .map(|&s| cat.require(s))
        .collect();
        let schedule = pack_round_robin(&cat, &events).unwrap();
        let run = pmu.run_multiplexed(&mut truth, &schedule, 8);
        // After the final window, each event ran half the time.
        let last = run.windows.last().unwrap();
        let s = last.sample_for(events[4]).unwrap();
        assert_eq!(s.time_enabled, 8 * pmu.config().quantum_ticks);
        assert_eq!(s.time_running, 4 * pmu.config().quantum_ticks);
        // Linux scaling doubles the raw count.
        assert!((s.linux_scaled() - 2.0 * s.value).abs() < 1e-9);
    }

    #[test]
    fn polling_measures_everything_every_window() {
        let (cat, rates) = setup();
        let pmu = Pmu::new(&cat, noiseless(&cat));
        let mut truth = ConstantTruth::new(rates);
        let events: Vec<EventId> = cat.programmable_events();
        let run = pmu.run_polling(&mut truth, &events, 6);
        for w in &run.windows {
            assert_eq!(w.samples.len(), events.len());
            for s in &w.samples {
                assert_eq!(s.time_enabled, s.time_running);
            }
        }
    }

    #[test]
    fn sub_sample_count_equals_quantum() {
        let (cat, rates) = setup();
        let pmu = Pmu::new(&cat, noiseless(&cat));
        let mut truth = ConstantTruth::new(rates);
        let ev = cat.require(Semantic::BrInst);
        let schedule = pack_round_robin(&cat, &[ev]).unwrap();
        let run = pmu.run_multiplexed(&mut truth, &schedule, 2);
        let s = run.windows[0].sample_for(ev).unwrap();
        assert_eq!(s.sub_n as u64, pmu.config().quantum_ticks);
        // Constant truth + no noise -> zero sub-sample deviation.
        assert!(s.sub_sd < 1e-9);
    }

    #[test]
    fn driven_run_follows_the_driver_and_matches_round_robin() {
        let (cat, rates) = setup();
        let mut cfg = PmuConfig::for_catalog(&cat);
        cfg.seed = 9;
        let pmu = Pmu::new(&cat, cfg);
        let events: Vec<EventId> = [
            Semantic::UopsIssued,
            Semantic::UopsRetired,
            Semantic::BrInst,
            Semantic::BrMisp,
            Semantic::L1dMisses,
            Semantic::L2References,
        ]
        .iter()
        .map(|&s| cat.require(s))
        .collect();
        let schedule = pack_round_robin(&cat, &events).unwrap();
        assert!(schedule.len() >= 2);
        // A driver that happens to pick round-robin reproduces
        // run_multiplexed bit for bit (same RNG consumption order).
        let mut truth = ConstantTruth::new(rates.clone());
        let rr = pmu.run_multiplexed(&mut truth, &schedule, 8);
        let mut truth = ConstantTruth::new(rates.clone());
        let mut picks = Vec::new();
        let driven = pmu.run_driven(&mut truth, &schedule, 8, Extrapolate::Off, |w, prev| {
            assert_eq!(prev.map(|p| p.index), (w > 0).then(|| w as u32 - 1));
            let c = w as usize % schedule.len();
            picks.push(c);
            c
        });
        for (a, b) in rr.windows.iter().zip(&driven.windows) {
            assert_eq!(a.config_index, b.config_index);
            assert_eq!(a.samples, b.samples);
        }
        // An arbitrary (non-rotating) driver is honoured verbatim.
        let order = [1usize, 1, 0, 1, 0, 0, 1, 0];
        let mut truth = ConstantTruth::new(rates);
        let run = pmu.run_driven(&mut truth, &schedule, 8, Extrapolate::Off, |w, _| {
            order[w as usize]
        });
        let got: Vec<usize> = run.windows.iter().map(|w| w.config_index).collect();
        assert_eq!(got, order);
    }

    #[test]
    fn extrapolated_samples_fill_unscheduled_windows_with_scaling_error() {
        let (cat, rates) = setup();
        let pmu = Pmu::new(&cat, noiseless(&cat));
        let mut truth = ConstantTruth::new(rates.clone());
        let events: Vec<EventId> = [
            Semantic::UopsIssued,
            Semantic::UopsRetired,
            Semantic::UopsBadSpec,
            Semantic::IdqMiteUops,
            Semantic::BrInst,
            Semantic::BrMisp,
            Semantic::L1dMisses,
            Semantic::L2References,
        ]
        .iter()
        .map(|&s| cat.require(s))
        .collect();
        let schedule = pack_round_robin(&cat, &events).unwrap();
        assert_eq!(schedule.len(), 2);
        let run = pmu.run_driven(
            &mut truth,
            &schedule,
            6,
            Extrapolate::LinuxScaled,
            |w, _| w as usize % 2,
        );
        // Window 0: group 1's events have never run -> no carry-forward.
        assert!(run.windows[0].sample_for(events[4]).is_none());
        // Window 1: group 0 is off the counters but ran in window 0 ->
        // every group-0 event carries an extrapolated sample.
        let s = run.windows[1].sample_for(events[0]).expect("extrapolated");
        assert!(s.is_extrapolated());
        assert_eq!(s.sub_n, 0);
        // Constant truth + no noise: the run-average equals the truth, so
        // the carry-forward is exact here.
        let expected = run.windows[1].truth[events[0].index()];
        assert!(
            (s.value - expected).abs() < 1e-6,
            "{} vs {expected}",
            s.value
        );
        // Extrapolations never count as measurements.
        assert_eq!(run.measured_windows(events[0]), vec![0, 2, 4]);
        // The real sample in window 2 is a hardware read again.
        assert!(!run.windows[2]
            .sample_for(events[0])
            .unwrap()
            .is_extrapolated());
    }

    #[test]
    fn extrapolation_carries_stale_counts_across_phase_changes() {
        // The point of marking extrapolations: under a rate change, the
        // carry-forward is *wrong* by construction (it reports the
        // run-average, not the current phase) — the Fig. 2 scaling error.
        let (cat, rates) = setup();
        let pmu = Pmu::new(&cat, noiseless(&cat));
        let ev = cat.require(Semantic::L1dMisses);
        struct StepTruth {
            rates: Vec<f64>,
            idx: usize,
        }
        impl GroundTruth for StepTruth {
            fn rates_at(&mut self, tick: u64, out: &mut [f64]) {
                out.copy_from_slice(&self.rates);
                if tick >= 8 {
                    out[self.idx] *= 5.0; // phase change mid-run
                }
            }
        }
        let mut truth = StepTruth {
            rates,
            idx: ev.index(),
        };
        let others: Vec<EventId> = [
            Semantic::UopsIssued,
            Semantic::UopsRetired,
            Semantic::BrInst,
            Semantic::BrMisp,
        ]
        .iter()
        .map(|&s| cat.require(s))
        .collect();
        let mut all = vec![ev];
        all.extend(&others);
        let schedule = pack_round_robin(&cat, &all).unwrap();
        assert_eq!(schedule.len(), 2);
        // ev runs only in window 0 (group 0), then stays unscheduled while
        // the rate quintuples at tick 8 (window 2).
        let run = pmu.run_driven(
            &mut truth,
            &schedule,
            6,
            Extrapolate::LinuxScaled,
            |w, _| usize::from(w > 0),
        );
        let w4 = &run.windows[4];
        let s = w4.sample_for(ev).expect("carry-forward");
        assert!(s.is_extrapolated());
        let truth_now = w4.truth[ev.index()];
        assert!(
            s.value < 0.5 * truth_now,
            "stale carry-forward {} must badly undershoot the new phase {truth_now}",
            s.value
        );
    }

    #[test]
    fn noise_grows_with_multiplexing_boundaries() {
        let (cat, rates) = setup();
        let mut cfg = PmuConfig::for_catalog(&cat);
        cfg.seed = 7;
        let pmu = Pmu::new(&cat, cfg);
        let ev = cat.require(Semantic::L1dMisses);
        // Schedule A: event always on (1 config). B: event every 4th window.
        let others: Vec<EventId> = [
            Semantic::UopsIssued,
            Semantic::UopsRetired,
            Semantic::UopsBadSpec,
            Semantic::IdqMiteUops,
            Semantic::BrInst,
            Semantic::BrMisp,
            Semantic::IdqDsbUops,
            Semantic::IdqMsUops,
            Semantic::L2References,
            Semantic::L2Misses,
            Semantic::LlcHits,
            Semantic::LlcMisses,
        ]
        .iter()
        .map(|&s| cat.require(s))
        .collect();
        let mut all = vec![ev];
        all.extend(&others);
        let schedule_a = pack_round_robin(&cat, &[ev]).unwrap();
        let schedule_b = pack_round_robin(&cat, &all).unwrap();
        assert!(schedule_b.len() >= 3);

        let err = |schedule: &[Configuration]| {
            let mut truth = ConstantTruth::new(rates.clone());
            let run = pmu.run_multiplexed(&mut truth, schedule, 64);
            let mut total = 0.0;
            let mut n = 0usize;
            for w in &run.windows {
                if let Some(s) = w.sample_for(ev) {
                    let t = w.truth[ev.index()];
                    total += (s.value - t).abs() / t.max(1.0);
                    n += 1;
                }
            }
            total / n as f64
        };
        let e_always = err(&schedule_a);
        let e_mux = err(&schedule_b);
        assert!(
            e_mux > e_always,
            "multiplexed per-window error {e_mux} should exceed always-on {e_always}"
        );
    }
}
