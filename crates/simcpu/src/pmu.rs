//! The PMU simulator: multiplexed sampling and polling runs.

use crate::config::Configuration;
use crate::noise::NoiseModel;
use crate::sample::Sample;
use crate::truth::GroundTruth;
use bayesperf_events::{Catalog, Domain, EventId};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Simulation parameters of a PMU run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PmuConfig {
    /// Ticks per multiplexing quantum (1 tick models 1 ms).
    pub quantum_ticks: u64,
    /// Core cycles elapsing per tick.
    pub cycles_per_tick: f64,
    /// The measurement-noise model.
    pub noise: NoiseModel,
    /// RNG seed; distinct seeds model distinct application runs.
    pub seed: u64,
}

impl PmuConfig {
    /// Default configuration for an architecture: 4 ms quanta at the
    /// arch's nominal clock.
    pub fn for_catalog(catalog: &Catalog) -> Self {
        PmuConfig {
            quantum_ticks: 4,
            cycles_per_tick: catalog.arch().clock_hz() / 1000.0,
            noise: NoiseModel::default(),
            seed: 0,
        }
    }
}

/// One multiplexing window (= one quantum) of a run.
#[derive(Debug, Clone)]
pub struct Window {
    /// Window index.
    pub index: u32,
    /// Which schedule configuration was active (`usize::MAX` for polling).
    pub config_index: usize,
    /// Samples delivered for this window (fixed events + scheduled events).
    pub samples: Vec<Sample>,
    /// True counts per catalog event during this window (evaluation only —
    /// not visible to estimators on real hardware).
    pub truth: Vec<f64>,
}

impl Window {
    /// The sample for `id` in this window, if the event was measured.
    pub fn sample_for(&self, id: EventId) -> Option<&Sample> {
        self.samples.iter().find(|s| s.event == id)
    }
}

/// The result of a PMU run: a sequence of windows.
#[derive(Debug, Clone)]
pub struct MultiplexRun {
    /// Windows in time order.
    pub windows: Vec<Window>,
    /// Ticks per window.
    pub quantum_ticks: u64,
    /// Cycles per window.
    pub cycles_per_window: f64,
}

impl MultiplexRun {
    /// The ground-truth count series of an event across windows.
    pub fn truth_series(&self, id: EventId) -> Vec<f64> {
        self.windows.iter().map(|w| w.truth[id.index()]).collect()
    }

    /// The windows in which `id` was actually measured.
    pub fn measured_windows(&self, id: EventId) -> Vec<u32> {
        self.windows
            .iter()
            .filter(|w| w.sample_for(id).is_some())
            .map(|w| w.index)
            .collect()
    }
}

/// The simulated performance monitoring unit.
#[derive(Debug, Clone)]
pub struct Pmu<'a> {
    catalog: &'a Catalog,
    config: PmuConfig,
}

impl<'a> Pmu<'a> {
    /// Creates a PMU over a catalog.
    pub fn new(catalog: &'a Catalog, config: PmuConfig) -> Self {
        Pmu { catalog, config }
    }

    /// The catalog this PMU counts events from.
    pub fn catalog(&self) -> &Catalog {
        self.catalog
    }

    /// The simulation parameters.
    pub fn config(&self) -> &PmuConfig {
        &self.config
    }

    /// Runs `n_windows` of multiplexed sampling: the schedule's
    /// configurations rotate round-robin, one per quantum; fixed-counter
    /// events are always measured.
    ///
    /// # Panics
    ///
    /// Panics if `schedule` is empty.
    pub fn run_multiplexed(
        &self,
        truth: &mut dyn GroundTruth,
        schedule: &[Configuration],
        n_windows: usize,
    ) -> MultiplexRun {
        assert!(!schedule.is_empty(), "schedule must not be empty");
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let n_events = self.catalog.len();
        let fixed: Vec<EventId> = self
            .catalog
            .iter()
            .filter(|e| e.domain == Domain::Fixed)
            .map(|e| e.id)
            .collect();

        let mut time_running = vec![0u64; n_events];
        let mut rates = vec![0.0; n_events];
        let mut windows = Vec::with_capacity(n_windows);
        let mut prev_events: Vec<EventId> = Vec::new();

        for w in 0..n_windows {
            let config_index = w % schedule.len();
            let cfg = &schedule[config_index];
            let mut measured: Vec<EventId> = fixed.clone();
            measured.extend_from_slice(cfg.events());

            let mut truth_counts = vec![0.0; n_events];
            let mut subs: Vec<Vec<f64>> = vec![Vec::new(); measured.len()];

            for t in 0..self.config.quantum_ticks {
                let tick = w as u64 * self.config.quantum_ticks + t;
                truth.rates_at(tick, &mut rates);
                for (i, v) in rates.iter().enumerate() {
                    truth_counts[i] += v * self.config.cycles_per_tick / 1.0e6;
                }
                for (mi, &ev) in measured.iter().enumerate() {
                    let is_fixed = mi < fixed.len();
                    let at_boundary = t == 0 && !is_fixed && !prev_events.contains(&ev);
                    let true_tick = rates[ev.index()] * self.config.cycles_per_tick / 1.0e6;
                    subs[mi].push(self.config.noise.perturb(&mut rng, true_tick, at_boundary));
                }
            }

            let enabled = (w as u64 + 1) * self.config.quantum_ticks;
            for &ev in cfg.events() {
                time_running[ev.index()] += self.config.quantum_ticks;
            }

            let samples = measured
                .iter()
                .enumerate()
                .map(|(mi, &ev)| {
                    let is_fixed = mi < fixed.len();
                    let running = if is_fixed {
                        enabled
                    } else {
                        time_running[ev.index()]
                    };
                    make_sample(ev, w as u32, &subs[mi], enabled, running)
                })
                .collect();

            windows.push(Window {
                index: w as u32,
                config_index,
                samples,
                truth: truth_counts,
            });
            prev_events = cfg.events().to_vec();
        }

        MultiplexRun {
            windows,
            quantum_ticks: self.config.quantum_ticks,
            cycles_per_window: self.config.quantum_ticks as f64 * self.config.cycles_per_tick,
        }
    }

    /// Runs `n_windows` of *polling*: every requested event gets a dedicated
    /// counter (no multiplexing, no boundary smearing) — the paper's
    /// baseline measurement mode for establishing reference traces.
    pub fn run_polling(
        &self,
        truth: &mut dyn GroundTruth,
        events: &[EventId],
        n_windows: usize,
    ) -> MultiplexRun {
        let mut rng = StdRng::seed_from_u64(self.config.seed ^ 0x706f_6c6c); // "poll"
        let n_events = self.catalog.len();
        let mut rates = vec![0.0; n_events];
        let mut windows = Vec::with_capacity(n_windows);

        for w in 0..n_windows {
            let mut truth_counts = vec![0.0; n_events];
            let mut subs: Vec<Vec<f64>> = vec![Vec::new(); events.len()];
            for t in 0..self.config.quantum_ticks {
                let tick = w as u64 * self.config.quantum_ticks + t;
                truth.rates_at(tick, &mut rates);
                for (i, v) in rates.iter().enumerate() {
                    truth_counts[i] += v * self.config.cycles_per_tick / 1.0e6;
                }
                for (mi, &ev) in events.iter().enumerate() {
                    let true_tick = rates[ev.index()] * self.config.cycles_per_tick / 1.0e6;
                    subs[mi].push(self.config.noise.perturb(&mut rng, true_tick, false));
                }
            }
            let enabled = (w as u64 + 1) * self.config.quantum_ticks;
            let samples = events
                .iter()
                .enumerate()
                .map(|(mi, &ev)| make_sample(ev, w as u32, &subs[mi], enabled, enabled))
                .collect();
            windows.push(Window {
                index: w as u32,
                config_index: usize::MAX,
                samples,
                truth: truth_counts,
            });
        }

        MultiplexRun {
            windows,
            quantum_ticks: self.config.quantum_ticks,
            cycles_per_window: self.config.quantum_ticks as f64 * self.config.cycles_per_tick,
        }
    }
}

fn make_sample(ev: EventId, window: u32, subs: &[f64], enabled: u64, running: u64) -> Sample {
    let n = subs.len().max(1) as f64;
    let total: f64 = subs.iter().sum();
    let mean = total / n;
    let var = subs.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / n;
    Sample {
        event: ev,
        window,
        value: total,
        sub_mean: mean,
        sub_sd: var.sqrt(),
        sub_n: subs.len() as u32,
        time_enabled: enabled,
        time_running: running,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::pack_round_robin;
    use crate::truth::ConstantTruth;
    use bayesperf_events::{synthesize, Arch, FreeParams, Semantic};

    fn setup() -> (Catalog, Vec<f64>) {
        let cat = Catalog::new(Arch::X86SkyLake);
        let rates = synthesize(&cat, &FreeParams::default());
        (cat, rates)
    }

    fn noiseless(cat: &Catalog) -> PmuConfig {
        PmuConfig {
            noise: NoiseModel::none(),
            ..PmuConfig::for_catalog(cat)
        }
    }

    #[test]
    fn truth_integration_is_exact_without_noise() {
        let (cat, rates) = setup();
        let pmu = Pmu::new(&cat, noiseless(&cat));
        let mut truth = ConstantTruth::new(rates.clone());
        let ev = cat.require(Semantic::BrInst);
        let schedule = pack_round_robin(&cat, &[ev]).unwrap();
        let run = pmu.run_multiplexed(&mut truth, &schedule, 5);
        let expected = rates[ev.index()] * pmu.config().cycles_per_tick / 1.0e6
            * pmu.config().quantum_ticks as f64;
        for w in &run.windows {
            assert!((w.truth[ev.index()] - expected).abs() < 1e-6);
            let s = w.sample_for(ev).unwrap();
            assert!((s.value - expected).abs() < 1e-6);
        }
    }

    #[test]
    fn fixed_events_present_in_every_window() {
        let (cat, rates) = setup();
        let pmu = Pmu::new(&cat, noiseless(&cat));
        let mut truth = ConstantTruth::new(rates);
        let ev = cat.require(Semantic::BrInst);
        let schedule = pack_round_robin(&cat, &[ev]).unwrap();
        let run = pmu.run_multiplexed(&mut truth, &schedule, 4);
        let cycles = cat.require(Semantic::Cycles);
        for w in &run.windows {
            assert!(w.sample_for(cycles).is_some(), "window {}", w.index);
        }
    }

    #[test]
    fn multiplexed_events_rotate() {
        let (cat, rates) = setup();
        let pmu = Pmu::new(&cat, noiseless(&cat));
        let mut truth = ConstantTruth::new(rates);
        // 8 core events -> 2 configurations, each event in every 2nd window.
        let events: Vec<EventId> = [
            Semantic::UopsIssued,
            Semantic::UopsRetired,
            Semantic::UopsBadSpec,
            Semantic::IdqMiteUops,
            Semantic::BrInst,
            Semantic::BrMisp,
            Semantic::L1dMisses,
            Semantic::L2References,
        ]
        .iter()
        .map(|&s| cat.require(s))
        .collect();
        let schedule = pack_round_robin(&cat, &events).unwrap();
        assert_eq!(schedule.len(), 2);
        let run = pmu.run_multiplexed(&mut truth, &schedule, 8);
        assert_eq!(run.measured_windows(events[0]), vec![0, 2, 4, 6]);
        assert_eq!(run.measured_windows(events[4]), vec![1, 3, 5, 7]);
    }

    #[test]
    fn time_accounting_tracks_duty_cycle() {
        let (cat, rates) = setup();
        let pmu = Pmu::new(&cat, noiseless(&cat));
        let mut truth = ConstantTruth::new(rates);
        let events: Vec<EventId> = [
            Semantic::UopsIssued,
            Semantic::UopsRetired,
            Semantic::UopsBadSpec,
            Semantic::IdqMiteUops,
            Semantic::BrInst,
            Semantic::BrMisp,
            Semantic::L1dMisses,
            Semantic::L2References,
        ]
        .iter()
        .map(|&s| cat.require(s))
        .collect();
        let schedule = pack_round_robin(&cat, &events).unwrap();
        let run = pmu.run_multiplexed(&mut truth, &schedule, 8);
        // After the final window, each event ran half the time.
        let last = run.windows.last().unwrap();
        let s = last.sample_for(events[4]).unwrap();
        assert_eq!(s.time_enabled, 8 * pmu.config().quantum_ticks);
        assert_eq!(s.time_running, 4 * pmu.config().quantum_ticks);
        // Linux scaling doubles the raw count.
        assert!((s.linux_scaled() - 2.0 * s.value).abs() < 1e-9);
    }

    #[test]
    fn polling_measures_everything_every_window() {
        let (cat, rates) = setup();
        let pmu = Pmu::new(&cat, noiseless(&cat));
        let mut truth = ConstantTruth::new(rates);
        let events: Vec<EventId> = cat.programmable_events();
        let run = pmu.run_polling(&mut truth, &events, 6);
        for w in &run.windows {
            assert_eq!(w.samples.len(), events.len());
            for s in &w.samples {
                assert_eq!(s.time_enabled, s.time_running);
            }
        }
    }

    #[test]
    fn sub_sample_count_equals_quantum() {
        let (cat, rates) = setup();
        let pmu = Pmu::new(&cat, noiseless(&cat));
        let mut truth = ConstantTruth::new(rates);
        let ev = cat.require(Semantic::BrInst);
        let schedule = pack_round_robin(&cat, &[ev]).unwrap();
        let run = pmu.run_multiplexed(&mut truth, &schedule, 2);
        let s = run.windows[0].sample_for(ev).unwrap();
        assert_eq!(s.sub_n as u64, pmu.config().quantum_ticks);
        // Constant truth + no noise -> zero sub-sample deviation.
        assert!(s.sub_sd < 1e-9);
    }

    #[test]
    fn noise_grows_with_multiplexing_boundaries() {
        let (cat, rates) = setup();
        let mut cfg = PmuConfig::for_catalog(&cat);
        cfg.seed = 7;
        let pmu = Pmu::new(&cat, cfg);
        let ev = cat.require(Semantic::L1dMisses);
        // Schedule A: event always on (1 config). B: event every 4th window.
        let others: Vec<EventId> = [
            Semantic::UopsIssued,
            Semantic::UopsRetired,
            Semantic::UopsBadSpec,
            Semantic::IdqMiteUops,
            Semantic::BrInst,
            Semantic::BrMisp,
            Semantic::IdqDsbUops,
            Semantic::IdqMsUops,
            Semantic::L2References,
            Semantic::L2Misses,
            Semantic::LlcHits,
            Semantic::LlcMisses,
        ]
        .iter()
        .map(|&s| cat.require(s))
        .collect();
        let mut all = vec![ev];
        all.extend(&others);
        let schedule_a = pack_round_robin(&cat, &[ev]).unwrap();
        let schedule_b = pack_round_robin(&cat, &all).unwrap();
        assert!(schedule_b.len() >= 3);

        let err = |schedule: &[Configuration]| {
            let mut truth = ConstantTruth::new(rates.clone());
            let run = pmu.run_multiplexed(&mut truth, schedule, 64);
            let mut total = 0.0;
            let mut n = 0usize;
            for w in &run.windows {
                if let Some(s) = w.sample_for(ev) {
                    let t = w.truth[ev.index()];
                    total += (s.value - t).abs() / t.max(1.0);
                    n += 1;
                }
            }
            total / n as f64
        };
        let e_always = err(&schedule_a);
        let e_mux = err(&schedule_b);
        assert!(
            e_mux > e_always,
            "multiplexed per-window error {e_mux} should exceed always-on {e_always}"
        );
    }
}
