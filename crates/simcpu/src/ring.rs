//! The kernel↔userspace ring buffer.

use std::collections::VecDeque;

/// A bounded FIFO modelling the perf mmap ring buffer between the kernel
/// and the BayesPerf shim (§5): producers enqueue new samples; when the
/// buffer is full new samples are *dropped* (backpressure), and the drop
/// count is surfaced like the kernel's `PERF_RECORD_LOST`.
#[derive(Debug, Clone)]
pub struct RingBuffer<T> {
    buf: VecDeque<T>,
    capacity: usize,
    dropped: u64,
}

impl<T> RingBuffer<T> {
    /// Creates a ring buffer holding at most `capacity` records.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring buffer capacity must be positive");
        RingBuffer {
            buf: VecDeque::with_capacity(capacity),
            capacity,
            dropped: 0,
        }
    }

    /// Enqueues a record. Returns `false` (and counts a drop) when full.
    pub fn push(&mut self, value: T) -> bool {
        if self.buf.len() == self.capacity {
            self.dropped += 1;
            return false;
        }
        self.buf.push_back(value);
        true
    }

    /// Dequeues the oldest record.
    pub fn pop(&mut self) -> Option<T> {
        self.buf.pop_front()
    }

    /// Drains all queued records in FIFO order.
    pub fn drain(&mut self) -> Vec<T> {
        self.buf.drain(..).collect()
    }

    /// Drains all queued records into `out` (appending, FIFO order) —
    /// the allocation-free handoff the shim's inference service uses to
    /// move samples out of the producer-locked ring as quickly as
    /// possible.
    pub fn drain_into(&mut self, out: &mut Vec<T>) {
        out.extend(self.buf.drain(..));
    }

    /// Number of queued records.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Records dropped because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Maximum number of queued records.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fifo_order() {
        let mut rb = RingBuffer::new(4);
        for i in 0..4 {
            assert!(rb.push(i));
        }
        assert_eq!(rb.pop(), Some(0));
        assert_eq!(rb.pop(), Some(1));
        assert!(rb.push(9));
        assert_eq!(rb.drain(), vec![2, 3, 9]);
        assert!(rb.is_empty());
    }

    #[test]
    fn drain_into_appends_in_fifo_order() {
        let mut rb = RingBuffer::new(4);
        for i in 0..3 {
            rb.push(i);
        }
        let mut out = vec![99];
        rb.drain_into(&mut out);
        assert_eq!(out, vec![99, 0, 1, 2]);
        assert!(rb.is_empty());
    }

    #[test]
    fn drops_when_full() {
        let mut rb = RingBuffer::new(2);
        assert!(rb.push(1));
        assert!(rb.push(2));
        assert!(!rb.push(3));
        assert_eq!(rb.dropped(), 1);
        assert_eq!(rb.len(), 2);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        RingBuffer::<u8>::new(0);
    }

    proptest! {
        /// Push/pop sequences preserve FIFO order of retained elements and
        /// never exceed capacity.
        #[test]
        fn random_ops_maintain_invariants(
            cap in 1usize..16,
            ops in proptest::collection::vec(proptest::bool::ANY, 0..200)
        ) {
            let mut rb = RingBuffer::new(cap);
            let mut model: std::collections::VecDeque<u32> = Default::default();
            let mut next = 0u32;
            let mut dropped = 0u64;
            for is_push in ops {
                if is_push {
                    if model.len() == cap {
                        dropped += 1;
                    } else {
                        model.push_back(next);
                    }
                    rb.push(next);
                    next += 1;
                } else {
                    prop_assert_eq!(rb.pop(), model.pop_front());
                }
                prop_assert!(rb.len() <= cap);
                prop_assert_eq!(rb.len(), model.len());
                prop_assert_eq!(rb.dropped(), dropped);
            }
        }
    }
}
