//! A software performance-monitoring unit (PMU) with event multiplexing.
//!
//! This crate is the hardware substrate of the BayesPerf reproduction: a
//! simulated CPU PMU that reproduces the *mechanisms* behind HPC measurement
//! error described in §2 of the paper:
//!
//! * a small pool of fixed + programmable counter registers
//!   ([`bayesperf_events::PmuSpec`]);
//! * timer-driven **multiplexing**: counter configurations rotate every
//!   scheduler quantum, so each programmable event is only *running* for a
//!   fraction of the time it is *enabled* — exactly the
//!   `time_enabled`/`time_running` bookkeeping Linux perf exposes. The
//!   rotation is pluggable: [`Pmu::run_driven`] asks a caller-supplied
//!   driver which configuration to run each quantum (the feedback-loop
//!   entry point for posterior-driven scheduling), and with
//!   [`Extrapolate::LinuxScaled`] unscheduled events emit carry-forward
//!   samples (`sub_n == 0`) that make the §2 scaling error explicit;
//! * **PMI-based sampling** within a quantum, yielding per-event sub-sample
//!   statistics (mean/deviation/count) that feed the paper's §4.2 Student-t
//!   error model;
//! * a seeded **noise model** for OS nondeterminism: per-read measurement
//!   noise, interrupt spikes, and smearing at configuration switches;
//! * the kernel↔userspace [`RingBuffer`] with backpressure drop counting;
//! * deterministic **multi-machine heterogeneity** for fleet simulations:
//!   [`ShardProfile`] derives per-machine rate/phase/noise perturbations
//!   and [`CorrelatedTruth`] turns one reference workload into the
//!   distinct-but-correlated stream each machine of a fleet actually runs;
//! * seeded **link fault models** for distributed scrape planes:
//!   [`LinkProfile`]/[`LinkState`] decide drops, latency (against virtual
//!   deadlines — no sleeping), byte corruption, and recurring partitions
//!   per request exchange, deterministically per seed;
//! * seeded **compute-plane data faults** for robustness soaks:
//!   [`DataFaultProfile`]/[`DataFaultState`] poison individual samples
//!   (NaN/Inf reads, scaled corruption, stuck-at counters, broken PMI
//!   sub-moments) at controlled rates, deterministically per seed;
//! * simulated **soft gauge sources** for the multi-source observation
//!   plane: [`SimGauge`] implements [`SampleSource`], reading the same
//!   ground truth as the PMU at its own cadence through a seeded
//!   [`GaugeProfile`] noise channel (Gaussian read noise, random-walk
//!   calibration drift, dropout), optionally faulted via the same
//!   [`DataFaultProfile`] machinery with independent streams.
//!
//! Because the simulator also records per-window ground truth (which real
//! hardware cannot provide), evaluation code can compute exact error — the
//! paper has to approximate ground truth with a separate polling run, which
//! [`Pmu::run_polling`] models as well.
//!
//! [`Extrapolate::LinuxScaled`]: crate::Extrapolate::LinuxScaled

mod config;
mod datafault;
mod gauge;
mod link;
mod machine;
mod noise;
mod pmu;
mod ring;
mod sample;
mod truth;

pub use config::{pack_round_robin, Configuration, ScheduleError};
pub use datafault::{DataFault, DataFaultProfile, DataFaultState};
pub use gauge::{GaugeProfile, SampleSource, SimGauge};
pub use link::{LinkFate, LinkProfile, LinkState};
pub use machine::{CorrelatedTruth, ShardProfile};
pub use noise::NoiseModel;
pub use pmu::{Extrapolate, MultiplexRun, Pmu, PmuConfig, Window};
pub use ring::RingBuffer;
pub use sample::Sample;
pub use truth::{ConstantTruth, GroundTruth};
