//! The common estimator interface.

use bayesperf_events::EventId;
use bayesperf_simcpu::MultiplexRun;

/// An HPC-correction technique producing a per-window count series for one
/// event from a recorded (multiplexed) run.
pub trait SeriesEstimator {
    /// Short label used in reports ("Linux", "CM", "BayesPerf", ...).
    fn name(&self) -> &'static str;

    /// Estimates the per-window counts of `event` over the whole run.
    fn estimate(&self, run: &MultiplexRun, event: EventId) -> Vec<f64>;
}
