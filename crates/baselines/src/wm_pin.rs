//! WM+Pin (Weaver & McKee): deterministic instruction-count correction.

use crate::estimator::SeriesEstimator;
use crate::linux::LinuxScaling;
use bayesperf_events::{Catalog, EventId, Semantic};
use bayesperf_simcpu::MultiplexRun;

/// The Pin-assisted correction of Weaver & McKee ("Can hardware
/// performance counters be trusted?").
///
/// It intercepts every dynamic instruction through Pin to build an exact
/// opcode stream, and uses it to remove deterministic overcounts from the
/// *instruction* counter only; every other event passes through Linux's
/// scaling unchanged. The paper uses it as a baseline in the Fig. 8
/// counter-scaling study, noting (a) it corrects nothing but instruction
/// counts and (b) the dynamic instrumentation costs up to a 198.2× slowdown
/// across the benchmarks.
#[derive(Debug, Clone, Copy)]
pub struct WmPin {
    instructions: EventId,
    /// Mean relative overcount removed from the instruction stream
    /// (hardware-interrupt instruction inflation).
    pub overcount: f64,
}

impl WmPin {
    /// Creates the estimator for a catalog.
    pub fn new(catalog: &Catalog) -> Self {
        WmPin {
            instructions: catalog.require(Semantic::Instructions),
            overcount: 0.015,
        }
    }

    /// The measured instrumentation slowdown reported in §6.2.
    pub fn slowdown_factor() -> f64 {
        198.2
    }
}

impl SeriesEstimator for WmPin {
    fn name(&self) -> &'static str {
        "WM+Pin"
    }

    fn estimate(&self, run: &MultiplexRun, event: EventId) -> Vec<f64> {
        let linux = LinuxScaling::new().estimate(run, event);
        if event != self.instructions {
            return linux;
        }
        // Pin gives the exact retired-instruction stream; the correction
        // removes the deterministic interrupt overcount.
        linux
            .into_iter()
            .map(|v| v / (1.0 + self.overcount))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bayesperf_events::Arch;
    use bayesperf_simcpu::{pack_round_robin, ConstantTruth, NoiseModel, Pmu, PmuConfig};

    #[test]
    fn only_instructions_are_corrected() {
        let cat = Catalog::new(Arch::X86SkyLake);
        let rates = bayesperf_events::synthesize(&cat, &bayesperf_events::FreeParams::default());
        let mut truth = ConstantTruth::new(rates);
        let pmu = Pmu::new(
            &cat,
            PmuConfig {
                noise: NoiseModel::none(),
                ..PmuConfig::for_catalog(&cat)
            },
        );
        let ev = cat.require(Semantic::L1dMisses);
        let schedule = pack_round_robin(&cat, &[ev]).unwrap();
        let run = pmu.run_multiplexed(&mut truth, &schedule, 6);

        let wm = WmPin::new(&cat);
        let linux = LinuxScaling::new();
        assert_eq!(wm.estimate(&run, ev), linux.estimate(&run, ev));
        let instr = cat.require(Semantic::Instructions);
        let wm_i = wm.estimate(&run, instr);
        let lx_i = linux.estimate(&run, instr);
        for (a, b) in wm_i.iter().zip(&lx_i) {
            assert!(a < b, "corrected instruction count must be lower");
        }
    }

    #[test]
    fn slowdown_is_the_published_number() {
        assert_eq!(WmPin::slowdown_factor(), 198.2);
    }
}
