//! CounterMiner (Lv et al., MICRO'18): Gumbel-test outlier dropping.

use crate::estimator::SeriesEstimator;
use bayesperf_events::EventId;
use bayesperf_inference::Gumbel;
use bayesperf_simcpu::MultiplexRun;

/// CounterMiner-style variance reduction.
///
/// CounterMiner is an offline variance-reduction technique; the paper uses
/// it *online* as its strongest baseline and notes that requirement
/// "manifests as low average correction accuracy, with large variance,
/// when used for online corrections" (§6.2). This port does the same:
/// measured windows pass through a Gumbel extreme-value outlier test over
/// a sliding window (spikes are winsorized); unmeasured gap windows blend
/// the last filtered measurement with the scaled stream perf emits (the
/// only data an online consumer has during a gap), so most of the
/// multiplexing smear survives. No cross-event inference is performed
/// (§7: these methods "assume the underlying distribution of the data
/// remains unchanged").
#[derive(Debug, Clone, Copy)]
pub struct CounterMiner {
    /// Sliding-window length for the outlier statistics.
    pub window: usize,
    /// Tail probability below which a deviation is declared an outlier.
    pub alpha: f64,
}

impl Default for CounterMiner {
    fn default() -> Self {
        CounterMiner {
            window: 8,
            alpha: 0.02,
        }
    }
}

impl CounterMiner {
    /// Creates the estimator with default window/threshold.
    pub fn new() -> Self {
        Self::default()
    }

    /// The Gumbel law of the maximum absolute z-score among `n` standard
    /// normals (classical extreme-value constants).
    fn max_dev_law(n: usize) -> Gumbel {
        let n = n.max(2) as f64;
        let ln2n = (2.0 * n.ln()).max(1e-6);
        let a =
            ln2n.sqrt() - ((n.ln()).ln() + (4.0 * std::f64::consts::PI).ln()) / (2.0 * ln2n.sqrt());
        let b = 1.0 / ln2n.sqrt();
        Gumbel::new(a.max(0.1), b)
    }

    /// True if `z` (an absolute z-score) is an outlier at level `alpha`
    /// for a window of `n` samples.
    pub fn is_outlier(&self, z: f64, n: usize) -> bool {
        let law = Self::max_dev_law(n);
        1.0 - law.cdf(z) < self.alpha && z > 2.0
    }
}

impl SeriesEstimator for CounterMiner {
    fn name(&self) -> &'static str {
        "CM"
    }

    fn estimate(&self, run: &MultiplexRun, event: EventId) -> Vec<f64> {
        // Pass 1: Gumbel-filter the measured windows.
        let mut observed: Vec<(usize, f64)> = Vec::new();
        let mut recent: Vec<f64> = Vec::with_capacity(self.window);
        for (wi, w) in run.windows.iter().enumerate() {
            let Some(sample) = w.sample_for(event) else {
                continue;
            };
            let x = sample.value;
            let value = if recent.len() >= 4 {
                let mean = recent.iter().sum::<f64>() / recent.len() as f64;
                let var = recent.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>()
                    / recent.len() as f64;
                let sd = var.sqrt();
                if sd > 0.0 && self.is_outlier((x - mean).abs() / sd, recent.len()) {
                    // Drop the outlier: winsorize toward the window (keeps
                    // the direction of genuine level shifts instead of
                    // erasing them).
                    mean + (x - mean).signum() * 3.0 * sd
                } else {
                    x
                }
            } else {
                x
            };
            // The window tracks the raw stream so a genuine level shift is
            // absorbed after one step instead of cascading replacements.
            recent.push(x);
            if recent.len() > self.window {
                recent.remove(0);
            }
            observed.push((wi, value));
        }

        // Pass 2 (online): measured windows emit the filtered value; gap
        // windows blend the held value with perf's scaled stream.
        let linux = crate::linux::LinuxScaling::new().estimate(run, event);
        let n = run.windows.len();
        let mut out = vec![0.0; n];
        if observed.is_empty() {
            return out;
        }
        let mut oi = 0usize;
        for (w, slot) in out.iter_mut().enumerate() {
            while oi + 1 < observed.len() && observed[oi + 1].0 <= w {
                oi += 1;
            }
            let (w0, v0) = observed[oi];
            *slot = if w == w0 {
                v0
            } else {
                0.3 * v0 + 0.7 * linux[w]
            };
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bayesperf_events::{Arch, Catalog, Semantic};
    use bayesperf_simcpu::{pack_round_robin, ConstantTruth, NoiseModel, Pmu, PmuConfig};

    #[test]
    fn max_dev_law_grows_with_n() {
        let small = CounterMiner::max_dev_law(5);
        let large = CounterMiner::max_dev_law(100);
        assert!(large.loc > small.loc, "bigger windows expect larger maxima");
    }

    #[test]
    fn outlier_test_flags_extremes_only() {
        let cm = CounterMiner::new();
        assert!(!cm.is_outlier(1.0, 8));
        assert!(cm.is_outlier(6.0, 8));
    }

    #[test]
    fn spikes_are_dropped() {
        let cat = Catalog::new(Arch::X86SkyLake);
        let rates = bayesperf_events::synthesize(&cat, &bayesperf_events::FreeParams::default());
        let mut truth = ConstantTruth::new(rates);
        // Heavy interrupt spikes, no other noise.
        let pmu = Pmu::new(
            &cat,
            PmuConfig {
                noise: NoiseModel {
                    measurement_sigma: 0.005,
                    interrupt_rate: 0.05,
                    interrupt_spike: 5.0,
                    boundary_sigma: 0.0,
                    overcount_bias: 0.0,
                },
                seed: 21,
                ..PmuConfig::for_catalog(&cat)
            },
        );
        let ev = cat.require(Semantic::L1dMisses);
        let schedule = pack_round_robin(&cat, &[ev]).unwrap();
        let run = pmu.run_multiplexed(&mut truth, &schedule, 64);

        let cm_series = CounterMiner::new().estimate(&run, ev);
        let truth_series = run.truth_series(ev);
        let raw_err: f64 = run
            .windows
            .iter()
            .map(|w| {
                let s = w.sample_for(ev).unwrap();
                (s.value - w.truth[ev.index()]).abs() / w.truth[ev.index()]
            })
            .sum::<f64>()
            / 64.0;
        let cm_err: f64 = cm_series
            .iter()
            .zip(&truth_series)
            .map(|(e, t)| (e - t).abs() / t)
            .sum::<f64>()
            / 64.0;
        assert!(
            cm_err < raw_err,
            "CM {cm_err:.4} should beat raw {raw_err:.4} under spikes"
        );
    }

    #[test]
    fn interpolates_gaps_exactly_on_constant_load() {
        let cat = Catalog::new(Arch::X86SkyLake);
        let rates = bayesperf_events::synthesize(&cat, &bayesperf_events::FreeParams::default());
        let mut truth = ConstantTruth::new(rates.clone());
        let pmu = Pmu::new(
            &cat,
            PmuConfig {
                noise: NoiseModel::none(),
                ..PmuConfig::for_catalog(&cat)
            },
        );
        let events = [
            Semantic::L1dMisses,
            Semantic::IcacheMisses,
            Semantic::L2References,
            Semantic::L2Misses,
            Semantic::LlcHits,
            Semantic::LlcMisses,
            Semantic::BrInst,
            Semantic::BrMisp,
        ]
        .map(|s| cat.require(s));
        let schedule = pack_round_robin(&cat, &events).unwrap();
        let run = pmu.run_multiplexed(&mut truth, &schedule, 8);
        let ev = events[0];
        // Constant workload, no noise: interpolation across gaps matches
        // the measured windows exactly.
        let cm = CounterMiner::new().estimate(&run, ev);
        let observed = run.windows[0].sample_for(ev).unwrap().value;
        for (w, v) in cm.iter().enumerate() {
            assert!((v - observed).abs() < 1e-9, "window {w}: {v} vs {observed}");
        }
    }
}
