//! Linux perf's built-in enabled/running-time scaling.

use crate::estimator::SeriesEstimator;
use bayesperf_events::EventId;
use bayesperf_simcpu::MultiplexRun;

/// Linux's inbuilt correction (§4): userspace reads the cumulative count
/// scaled by `time_enabled / time_running`; a per-window series is the
/// sequence of deltas between consecutive reads.
///
/// When the event is not scheduled, the cumulative raw count does not
/// advance but `time_enabled` does, so the delta redistributes the
/// run-average rate over the gap — multiplexing smear.
#[derive(Debug, Clone, Copy, Default)]
pub struct LinuxScaling;

impl LinuxScaling {
    /// Creates the estimator.
    pub fn new() -> Self {
        LinuxScaling
    }
}

impl SeriesEstimator for LinuxScaling {
    fn name(&self) -> &'static str {
        "Linux"
    }

    fn estimate(&self, run: &MultiplexRun, event: EventId) -> Vec<f64> {
        let mut out = Vec::with_capacity(run.windows.len());
        let mut cum_raw = 0.0;
        let mut running = 0u64;
        let mut prev_scaled = 0.0;
        for w in &run.windows {
            if let Some(s) = w.sample_for(event) {
                cum_raw += s.value;
                running = s.time_running;
            }
            let enabled = (w.index as u64 + 1) * run.quantum_ticks;
            let scaled = if running == 0 {
                0.0
            } else {
                cum_raw * enabled as f64 / running as f64
            };
            out.push((scaled - prev_scaled).max(0.0));
            prev_scaled = scaled;
        }
        out
    }
}

/// The reference series of a *polling* run: per-window measured counts with
/// dedicated counters (no multiplexing). This is the paper's baseline trace
/// for the DTW error metric.
///
/// # Panics
///
/// Panics if `event` was not polled in every window of `run`.
pub fn polling_series(run: &MultiplexRun, event: EventId) -> Vec<f64> {
    run.windows
        .iter()
        .map(|w| {
            w.sample_for(event)
                .unwrap_or_else(|| panic!("event {event} not polled in window {}", w.index))
                .value
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bayesperf_events::{Arch, Catalog, Semantic};
    use bayesperf_simcpu::{pack_round_robin, ConstantTruth, NoiseModel, Pmu, PmuConfig};

    fn fixture() -> (Catalog, MultiplexRun, EventId) {
        let cat = Catalog::new(Arch::X86SkyLake);
        let rates = bayesperf_events::synthesize(&cat, &bayesperf_events::FreeParams::default());
        let mut truth = ConstantTruth::new(rates);
        let pmu = Pmu::new(
            &cat,
            PmuConfig {
                noise: NoiseModel::none(),
                ..PmuConfig::for_catalog(&cat)
            },
        );
        let events: Vec<EventId> = [
            Semantic::L1dMisses,
            Semantic::IcacheMisses,
            Semantic::L2References,
            Semantic::L2Misses,
            Semantic::LlcHits,
            Semantic::LlcMisses,
            Semantic::BrInst,
            Semantic::BrMisp,
        ]
        .iter()
        .map(|&s| cat.require(s))
        .collect();
        let schedule = pack_round_robin(&cat, &events).unwrap();
        let run = pmu.run_multiplexed(&mut truth, &schedule, 12);
        (cat, run, events[0])
    }

    #[test]
    fn constant_workload_scaling_converges_to_truth() {
        let (_, run, ev) = fixture();
        let series = LinuxScaling::new().estimate(&run, ev);
        // On a constant-rate workload the smear is harmless: after warmup
        // every window's estimate approximates the true per-window count.
        let truth = run.truth_series(ev);
        for (w, (e, t)) in series.iter().zip(&truth).enumerate().skip(4) {
            let rel = (e - t).abs() / t;
            assert!(rel < 0.05, "window {w}: {e} vs {t}");
        }
    }

    #[test]
    fn series_is_nonnegative_and_full_length() {
        let (_, run, ev) = fixture();
        let series = LinuxScaling::new().estimate(&run, ev);
        assert_eq!(series.len(), run.windows.len());
        assert!(series.iter().all(|v| *v >= 0.0));
    }

    #[test]
    fn polling_series_equals_truth_without_noise() {
        let cat = Catalog::new(Arch::X86SkyLake);
        let rates = bayesperf_events::synthesize(&cat, &bayesperf_events::FreeParams::default());
        let mut truth = ConstantTruth::new(rates);
        let pmu = Pmu::new(
            &cat,
            PmuConfig {
                noise: NoiseModel::none(),
                ..PmuConfig::for_catalog(&cat)
            },
        );
        let ev = cat.require(Semantic::L1dMisses);
        let run = pmu.run_polling(&mut truth, &[ev], 5);
        let series = polling_series(&run, ev);
        let truth_series = run.truth_series(ev);
        for (a, b) in series.iter().zip(&truth_series) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "not polled")]
    fn polling_series_requires_polled_event() {
        let (cat, run, _) = fixture();
        // DtlbMisses was never in the schedule.
        polling_series(&run, cat.require(Semantic::DtlbMisses));
    }
}
