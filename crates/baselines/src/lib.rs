//! The three baselines the paper compares against (§6.2).
//!
//! * [`LinuxScaling`] — perf's built-in correction: cumulative counts scaled
//!   by `time_enabled / time_running`. During unscheduled windows the
//!   per-window delta reflects the run-average rate, which is precisely the
//!   multiplexing smear of §2.
//! * [`CounterMiner`] — Lv et al. (MICRO'18): variance reduction by
//!   dropping outliers detected with a Gumbel extreme-value test over a
//!   sliding window, then mean imputation. Designed for offline "big
//!   performance data" cleaning; used online here, as in the paper's
//!   comparison, where its lack of gap inference caps its accuracy.
//! * [`WmPin`] — Weaver & McKee's deterministic overcount correction,
//!   driven by dynamic-instruction information from Pin. It corrects *only*
//!   instruction counts and costs a ~198× slowdown, which is why the paper
//!   uses it only in the Fig. 8 scaling study.
//!
//! All baselines implement [`SeriesEstimator`]: a per-window count series
//! for one event from a recorded multiplexed run — the same interface the
//! BayesPerf corrector's MLE series satisfies, so the evaluation harness
//! treats every corrector uniformly.

mod counterminer;
mod estimator;
mod linux;
mod wm_pin;

pub use counterminer::CounterMiner;
pub use estimator::SeriesEstimator;
pub use linux::{polling_series, LinuxScaling};
pub use wm_pin::WmPin;
