//! The factor-graph data structure and its queries.

use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, VecDeque};
use std::fmt;

/// Index of a variable node in a [`FactorGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VarId(u32);

impl VarId {
    /// Dense index of this variable.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Index of a factor node in a [`FactorGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FactorId(u32);

impl FactorId {
    /// Dense index of this factor.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for FactorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

#[derive(Debug, Clone)]
struct VarNode<V> {
    payload: V,
    factors: Vec<FactorId>,
}

#[derive(Debug, Clone)]
struct FactorNode<F> {
    payload: F,
    vars: Vec<VarId>,
}

/// A bipartite factor graph with variable payloads `V` and factor payloads
/// `F`.
///
/// ```
/// use bayesperf_graph::FactorGraph;
/// let mut g: FactorGraph<&str, &str> = FactorGraph::new();
/// let a = g.add_var("a");
/// let b = g.add_var("b");
/// let c = g.add_var("c");
/// g.add_factor("f(a,b)", &[a, b]);
/// g.add_factor("g(b,c)", &[b, c]);
/// assert_eq!(g.markov_blanket(a), vec![b]);
/// let path = g.shortest_path(a, c, |_| true).unwrap();
/// assert_eq!(path, vec![a, b, c]);
/// ```
#[derive(Debug, Clone)]
pub struct FactorGraph<V, F> {
    vars: Vec<VarNode<V>>,
    factors: Vec<FactorNode<F>>,
}

impl<V, F> Default for FactorGraph<V, F> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V, F> FactorGraph<V, F> {
    /// Creates an empty graph.
    pub fn new() -> Self {
        FactorGraph {
            vars: Vec::new(),
            factors: Vec::new(),
        }
    }

    /// Adds a variable node, returning its id.
    pub fn add_var(&mut self, payload: V) -> VarId {
        let id = VarId(self.vars.len() as u32);
        self.vars.push(VarNode {
            payload,
            factors: Vec::new(),
        });
        id
    }

    /// Adds a factor node connected to `vars`, returning its id.
    ///
    /// # Panics
    ///
    /// Panics if any variable id is out of range.
    pub fn add_factor(&mut self, payload: F, vars: &[VarId]) -> FactorId {
        let id = FactorId(self.factors.len() as u32);
        for &v in vars {
            assert!(v.index() < self.vars.len(), "variable {v} out of range");
            self.vars[v.index()].factors.push(id);
        }
        self.factors.push(FactorNode {
            payload,
            vars: vars.to_vec(),
        });
        id
    }

    /// Number of variable nodes.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of factor nodes.
    pub fn num_factors(&self) -> usize {
        self.factors.len()
    }

    /// Payload of a variable.
    pub fn var(&self, id: VarId) -> &V {
        &self.vars[id.index()].payload
    }

    /// Payload of a factor.
    pub fn factor(&self, id: FactorId) -> &F {
        &self.factors[id.index()].payload
    }

    /// Factors adjacent to a variable.
    pub fn factors_of(&self, id: VarId) -> &[FactorId] {
        &self.vars[id.index()].factors
    }

    /// Variables adjacent to a factor (its scope).
    pub fn vars_of(&self, id: FactorId) -> &[VarId] {
        &self.factors[id.index()].vars
    }

    /// Iterates over all variable ids.
    pub fn var_ids(&self) -> impl Iterator<Item = VarId> {
        (0..self.vars.len() as u32).map(VarId)
    }

    /// Iterates over all factor ids.
    pub fn factor_ids(&self) -> impl Iterator<Item = FactorId> {
        (0..self.factors.len() as u32).map(FactorId)
    }

    /// The Markov blanket of `v`: all variables sharing at least one factor
    /// with `v`, excluding `v` itself (Koller & Friedman, ch. 4).
    ///
    /// Given its blanket, `v` is conditionally independent of every other
    /// variable in the graph.
    pub fn markov_blanket(&self, v: VarId) -> Vec<VarId> {
        let mut blanket = BTreeSet::new();
        for &f in self.factors_of(v) {
            for &u in self.vars_of(f) {
                if u != v {
                    blanket.insert(u);
                }
            }
        }
        blanket.into_iter().collect()
    }

    /// The Markov blanket of a set: union of member blankets minus the set.
    pub fn markov_blanket_of_set(&self, set: &[VarId]) -> Vec<VarId> {
        let members: BTreeSet<VarId> = set.iter().copied().collect();
        let mut blanket = BTreeSet::new();
        for &v in set {
            for &f in self.factors_of(v) {
                for &u in self.vars_of(f) {
                    if !members.contains(&u) {
                        blanket.insert(u);
                    }
                }
            }
        }
        blanket.into_iter().collect()
    }

    /// True if the Markov blankets of two sets overlap, or one set already
    /// intersects the other's blanket — the paper's criterion for two
    /// consecutive configurations sharing a transitive statistical
    /// dependency (§4.1).
    pub fn blankets_overlap(&self, a: &[VarId], b: &[VarId]) -> bool {
        let ba: BTreeSet<VarId> = self.markov_blanket_of_set(a).into_iter().collect();
        let bb: BTreeSet<VarId> = self.markov_blanket_of_set(b).into_iter().collect();
        if ba.intersection(&bb).next().is_some() {
            return true;
        }
        let sa: BTreeSet<VarId> = a.iter().copied().collect();
        let sb: BTreeSet<VarId> = b.iter().copied().collect();
        sa.intersection(&bb).next().is_some() || sb.intersection(&ba).next().is_some()
    }

    /// Shortest variable path from `from` to `to`, where one step is a hop
    /// through a shared factor (unit edge cost, so Dijkstra reduces to BFS).
    /// Intermediate variables must satisfy `var_ok`; endpoints are exempt.
    ///
    /// Returns the inclusive variable sequence, or `None` if unreachable.
    pub fn shortest_path(
        &self,
        from: VarId,
        to: VarId,
        var_ok: impl Fn(VarId) -> bool,
    ) -> Option<Vec<VarId>> {
        if from == to {
            return Some(vec![from]);
        }
        let mut prev: Vec<Option<VarId>> = vec![None; self.vars.len()];
        let mut seen = vec![false; self.vars.len()];
        seen[from.index()] = true;
        let mut queue = VecDeque::new();
        queue.push_back(from);
        while let Some(v) = queue.pop_front() {
            for &f in self.factors_of(v) {
                for &u in self.vars_of(f) {
                    if seen[u.index()] {
                        continue;
                    }
                    if u != to && !var_ok(u) {
                        continue;
                    }
                    seen[u.index()] = true;
                    prev[u.index()] = Some(v);
                    if u == to {
                        let mut path = vec![to];
                        let mut cur = to;
                        while let Some(p) = prev[cur.index()] {
                            path.push(p);
                            cur = p;
                        }
                        path.reverse();
                        return Some(path);
                    }
                    queue.push_back(u);
                }
            }
        }
        None
    }

    /// BFS hop distances (in factor hops) from any variable of `sources`.
    /// `None` marks unreachable variables.
    pub fn distances_from(&self, sources: &[VarId]) -> Vec<Option<u32>> {
        let mut dist: Vec<Option<u32>> = vec![None; self.vars.len()];
        let mut queue = VecDeque::new();
        for &s in sources {
            if dist[s.index()].is_none() {
                dist[s.index()] = Some(0);
                queue.push_back(s);
            }
        }
        while let Some(v) = queue.pop_front() {
            let d = dist[v.index()].expect("queued variables have distances");
            for &f in self.factors_of(v) {
                for &u in self.vars_of(f) {
                    if dist[u.index()].is_none() {
                        dist[u.index()] = Some(d + 1);
                        queue.push_back(u);
                    }
                }
            }
        }
        dist
    }

    /// The variable→factor adjacency flattened into CSR form.
    ///
    /// The per-variable factor lists become one contiguous `targets` array
    /// indexed by an `offsets` array — the cache-friendly layout the EP
    /// engine farm's delta evaluation walks on every MCMC proposal (one
    /// pointer chase instead of a `Vec<Vec<_>>` double indirection).
    pub fn var_factor_csr(&self) -> CsrAdjacency {
        CsrAdjacency::from_lists(
            self.vars.len(),
            |v| self.vars[v].factors.len(),
            |v, out| {
                for f in &self.vars[v].factors {
                    out.push(f.index() as u32);
                }
            },
        )
    }

    /// Greedy conflict coloring of factors: factors sharing a variable get
    /// distinct colors, so all factors of one color form an independent set.
    ///
    /// Colors are assigned in factor-id order (first-fit), which makes the
    /// result deterministic — the property the parallel EP sweep schedule
    /// relies on to stay bit-identical at any thread count. Returns the
    /// color of every factor and the number of colors used.
    pub fn greedy_factor_coloring(&self) -> (Vec<u32>, u32) {
        let nf = self.factors.len();
        let mut color = vec![u32::MAX; nf];
        // Per variable, the highest-colored incident factor seen so far is
        // not enough (colors are not nested), so track full neighbor color
        // sets via a scratch bitmap over colors.
        let mut used = Vec::new();
        let mut num_colors = 0u32;
        for f in 0..nf {
            used.clear();
            used.resize(num_colors as usize, false);
            for &v in &self.factors[f].vars {
                for &g in &self.vars[v.index()].factors {
                    let c = color[g.index()];
                    if c != u32::MAX {
                        used[c as usize] = true;
                    }
                }
            }
            let c = used
                .iter()
                .position(|&u| !u)
                .map(|c| c as u32)
                .unwrap_or(num_colors);
            if c == num_colors {
                num_colors += 1;
            }
            color[f] = c;
        }
        (color, num_colors)
    }

    /// The greedy factor coloring grouped into conflict-free batches — the
    /// cacheable sweep-schedule value ([`ColorBatches`]) the EP engine farm
    /// replays across sliding windows.
    pub fn conflict_batches(&self) -> ColorBatches {
        let (colors, num_colors) = self.greedy_factor_coloring();
        ColorBatches::from_coloring(&colors, num_colors)
    }

    /// Connected components over variables (two variables connect when they
    /// share a factor). Returns a component index per variable.
    pub fn components(&self) -> Vec<usize> {
        let mut comp = vec![usize::MAX; self.vars.len()];
        let mut next = 0;
        for start in self.var_ids() {
            if comp[start.index()] != usize::MAX {
                continue;
            }
            let mut queue = VecDeque::new();
            comp[start.index()] = next;
            queue.push_back(start);
            while let Some(v) = queue.pop_front() {
                for &f in self.factors_of(v) {
                    for &u in self.vars_of(f) {
                        if comp[u.index()] == usize::MAX {
                            comp[u.index()] = next;
                            queue.push_back(u);
                        }
                    }
                }
            }
            next += 1;
        }
        comp
    }
}

/// A compressed-sparse-row adjacency index: for each of `n` source nodes, a
/// contiguous slice of target indices.
///
/// This is the flat layout backing hot-path locality queries (variable →
/// adjacent factors): `row(v)` is a single slice borrow with no nested
/// allocation, so MCMC delta evaluations touch one contiguous region per
/// proposal.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CsrAdjacency {
    offsets: Vec<u32>,
    targets: Vec<u32>,
}

impl CsrAdjacency {
    /// Builds from per-row callbacks: `row_len(i)` sizes row `i`,
    /// `fill(i, out)` appends its targets.
    pub fn from_lists(
        rows: usize,
        row_len: impl Fn(usize) -> usize,
        fill: impl Fn(usize, &mut Vec<u32>),
    ) -> Self {
        let mut offsets = Vec::with_capacity(rows + 1);
        offsets.push(0u32);
        let total: usize = (0..rows).map(&row_len).sum();
        let mut targets = Vec::with_capacity(total);
        for i in 0..rows {
            fill(i, &mut targets);
            offsets.push(targets.len() as u32);
        }
        CsrAdjacency { offsets, targets }
    }

    /// Builds from `(source, target)` pairs (need not be sorted).
    pub fn from_edges(rows: usize, edges: impl IntoIterator<Item = (usize, u32)> + Clone) -> Self {
        let mut counts = vec![0u32; rows];
        for (s, _) in edges.clone() {
            counts[s] += 1;
        }
        let mut offsets = Vec::with_capacity(rows + 1);
        let mut acc = 0u32;
        offsets.push(0);
        for c in &counts {
            acc += c;
            offsets.push(acc);
        }
        let mut cursor: Vec<u32> = offsets[..rows].to_vec();
        let mut targets = vec![0u32; acc as usize];
        for (s, t) in edges {
            targets[cursor[s] as usize] = t;
            cursor[s] += 1;
        }
        CsrAdjacency { offsets, targets }
    }

    /// Number of source rows.
    pub fn rows(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total number of stored edges.
    pub fn num_edges(&self) -> usize {
        self.targets.len()
    }

    /// The targets adjacent to source `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[inline]
    pub fn row(&self, i: usize) -> &[u32] {
        &self.targets[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }
}

/// A cached conflict-coloring schedule: factors grouped by color into
/// conflict-free batches, CSR-flattened into two arrays.
///
/// This is the value type behind the EP engine farm's sweep schedule. The
/// coloring is a pure function of the graph topology, not of the per-window
/// data, so a corrector that keeps its factor-graph topology fixed across
/// sliding windows computes it **once** and replays it every window — the
/// warm-start path stores one of these per catalog instead of re-coloring
/// per chunk.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ColorBatches {
    /// `offsets[c]..offsets[c + 1]` bounds batch `c` in `members`.
    offsets: Vec<u32>,
    /// Factor indices, grouped by color, ascending within a batch.
    members: Vec<u32>,
}

impl ColorBatches {
    /// Groups `colors[f]` (one entry per factor, colors `< num_colors`)
    /// into per-color batches. Factor order within a batch is ascending.
    pub fn from_coloring(colors: &[u32], num_colors: u32) -> Self {
        let mut counts = vec![0u32; num_colors as usize];
        for &c in colors {
            counts[c as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(num_colors as usize + 1);
        let mut acc = 0u32;
        offsets.push(0);
        for &c in &counts {
            acc += c;
            offsets.push(acc);
        }
        let mut cursor: Vec<u32> = offsets[..num_colors as usize].to_vec();
        let mut members = vec![0u32; colors.len()];
        for (f, &c) in colors.iter().enumerate() {
            members[cursor[c as usize] as usize] = f as u32;
            cursor[c as usize] += 1;
        }
        ColorBatches { offsets, members }
    }

    /// Number of batches (colors).
    pub fn num_batches(&self) -> usize {
        self.offsets.len() - 1
    }

    /// The factor indices of batch `c`, ascending.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range.
    #[inline]
    pub fn batch(&self, c: usize) -> &[u32] {
        &self.members[self.offsets[c] as usize..self.offsets[c + 1] as usize]
    }

    /// Size of the largest batch — the available factor-level parallelism.
    pub fn max_batch_len(&self) -> usize {
        (0..self.num_batches())
            .map(|c| self.batch(c).len())
            .max()
            .unwrap_or(0)
    }

    /// Iterates over the batches in color order.
    pub fn iter(&self) -> impl Iterator<Item = &[u32]> + '_ {
        (0..self.num_batches()).map(move |c| self.batch(c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// A chain graph v0 - v1 - ... - v(n-1) with pairwise factors.
    fn chain(n: usize) -> (FactorGraph<usize, ()>, Vec<VarId>) {
        let mut g = FactorGraph::new();
        let vars: Vec<_> = (0..n).map(|i| g.add_var(i)).collect();
        for w in vars.windows(2) {
            g.add_factor((), &[w[0], w[1]]);
        }
        (g, vars)
    }

    #[test]
    fn blanket_of_interior_chain_node() {
        let (g, v) = chain(5);
        assert_eq!(g.markov_blanket(v[2]), vec![v[1], v[3]]);
        assert_eq!(g.markov_blanket(v[0]), vec![v[1]]);
    }

    #[test]
    fn blanket_of_set_excludes_members() {
        let (g, v) = chain(5);
        assert_eq!(g.markov_blanket_of_set(&[v[1], v[2]]), vec![v[0], v[3]]);
    }

    #[test]
    fn blanket_overlap_detects_adjacency() {
        let (g, v) = chain(6);
        // {v0,v1} and {v3,v4}: blankets {v2} and {v2,v5} overlap at v2.
        assert!(g.blankets_overlap(&[v[0], v[1]], &[v[3], v[4]]));
        // {v0} and {v4,v5}: blankets {v1} and {v3} do not overlap and
        // neither set touches the other's blanket.
        assert!(!g.blankets_overlap(&[v[0]], &[v[4], v[5]]));
    }

    #[test]
    fn shortest_path_on_chain() {
        let (g, v) = chain(5);
        let p = g.shortest_path(v[0], v[4], |_| true).unwrap();
        assert_eq!(p, v);
    }

    #[test]
    fn shortest_path_prefers_wide_factor_shortcut() {
        let (mut g, v) = chain(5);
        // A 3-ary factor connecting the endpoints directly.
        g.add_factor((), &[v[0], v[2], v[4]]);
        let p = g.shortest_path(v[0], v[4], |_| true).unwrap();
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn shortest_path_respects_validity_filter() {
        let (mut g, v) = chain(5);
        g.add_factor((), &[v[0], v[2]]);
        // Block v2: the path must take the long way.
        let p = g.shortest_path(v[0], v[4], |u| u != v[2]);
        assert!(p.is_none(), "chain through v2 is the only route");
        // With a detour factor around v2, the filtered path uses it.
        g.add_factor((), &[v[1], v[3]]);
        let p = g.shortest_path(v[0], v[4], |u| u != v[2]).unwrap();
        assert_eq!(p, vec![v[0], v[1], v[3], v[4]]);
    }

    #[test]
    fn unreachable_returns_none() {
        let mut g: FactorGraph<(), ()> = FactorGraph::new();
        let a = g.add_var(());
        let b = g.add_var(());
        assert!(g.shortest_path(a, b, |_| true).is_none());
    }

    #[test]
    fn trivial_path_is_single_node() {
        let (g, v) = chain(2);
        assert_eq!(g.shortest_path(v[0], v[0], |_| true).unwrap(), vec![v[0]]);
    }

    #[test]
    fn distances_from_multiple_sources() {
        let (g, v) = chain(5);
        let d = g.distances_from(&[v[0], v[4]]);
        assert_eq!(d, vec![Some(0), Some(1), Some(2), Some(1), Some(0)]);
    }

    #[test]
    fn components_separate_islands() {
        let mut g: FactorGraph<(), ()> = FactorGraph::new();
        let a = g.add_var(());
        let b = g.add_var(());
        let c = g.add_var(());
        g.add_factor((), &[a, b]);
        let comp = g.components();
        assert_eq!(comp[a.index()], comp[b.index()]);
        assert_ne!(comp[a.index()], comp[c.index()]);
    }

    #[test]
    fn csr_matches_factor_lists() {
        let (mut g, v) = chain(5);
        g.add_factor((), &[v[0], v[2], v[4]]);
        let csr = g.var_factor_csr();
        assert_eq!(csr.rows(), g.num_vars());
        for var in g.var_ids() {
            let expect: Vec<u32> = g.factors_of(var).iter().map(|f| f.index() as u32).collect();
            assert_eq!(csr.row(var.index()), expect.as_slice(), "row {var}");
        }
        assert_eq!(csr.num_edges(), 4 * 2 + 3);
    }

    #[test]
    fn csr_from_edges_handles_empty_rows() {
        let csr = CsrAdjacency::from_edges(4, [(0usize, 7u32), (2, 1), (2, 9)]);
        assert_eq!(csr.row(0), &[7]);
        assert_eq!(csr.row(1), &[] as &[u32]);
        assert_eq!(csr.row(2), &[1, 9]);
        assert_eq!(csr.row(3), &[] as &[u32]);
    }

    #[test]
    fn coloring_on_chain_uses_two_colors() {
        // Pairwise chain factors: adjacent factors share a variable, so the
        // chain of factors 2-colors.
        let (g, _) = chain(6);
        let (colors, n) = g.greedy_factor_coloring();
        assert_eq!(n, 2);
        assert_eq!(colors, vec![0, 1, 0, 1, 0]);
    }

    #[test]
    fn coloring_is_conflict_free() {
        let (mut g, v) = chain(6);
        g.add_factor((), &[v[0], v[3]]);
        g.add_factor((), &[v[1], v[4], v[5]]);
        let (colors, n) = g.greedy_factor_coloring();
        assert!(n >= 2);
        for var in g.var_ids() {
            let fs = g.factors_of(var);
            for (i, &a) in fs.iter().enumerate() {
                for &b in &fs[i + 1..] {
                    assert_ne!(
                        colors[a.index()],
                        colors[b.index()],
                        "factors {a} and {b} share {var} but share a color"
                    );
                }
            }
        }
    }

    proptest! {
        /// Coloring never assigns one color to two factors sharing a
        /// variable, on random bipartite graphs.
        #[test]
        fn random_coloring_is_conflict_free(
            n in 2usize..12,
            edges in proptest::collection::vec((0usize..12, 0usize..12), 1..30)
        ) {
            let mut g: FactorGraph<usize, ()> = FactorGraph::new();
            let vars: Vec<_> = (0..n).map(|i| g.add_var(i)).collect();
            for (a, b) in edges {
                g.add_factor((), &[vars[a % n], vars[b % n]]);
            }
            let (colors, num) = g.greedy_factor_coloring();
            prop_assert!(colors.iter().all(|&c| c < num));
            for v in g.var_ids() {
                let fs = g.factors_of(v);
                for (i, &a) in fs.iter().enumerate() {
                    for &b in &fs[i + 1..] {
                        prop_assert!(
                            colors[a.index()] != colors[b.index()] || a == b,
                            "conflict at {v}"
                        );
                    }
                }
            }
        }

        /// Path endpoints and adjacency are always consistent.
        #[test]
        fn random_graph_paths_are_valid(
            n in 2usize..20,
            edges in proptest::collection::vec((0usize..20, 0usize..20), 1..40)
        ) {
            let mut g: FactorGraph<usize, ()> = FactorGraph::new();
            let vars: Vec<_> = (0..n).map(|i| g.add_var(i)).collect();
            for (a, b) in edges {
                let (a, b) = (vars[a % n], vars[b % n]);
                g.add_factor((), &[a, b]);
            }
            let from = vars[0];
            let to = vars[n - 1];
            if let Some(path) = g.shortest_path(from, to, |_| true) {
                prop_assert_eq!(path[0], from);
                prop_assert_eq!(*path.last().unwrap(), to);
                // Each consecutive pair shares a factor.
                for w in path.windows(2) {
                    let fs: std::collections::HashSet<_> =
                        g.factors_of(w[0]).iter().copied().collect();
                    prop_assert!(
                        g.factors_of(w[1]).iter().any(|f| fs.contains(f)),
                        "consecutive path nodes must share a factor"
                    );
                }
                // BFS optimality: path length equals hop distance + 1.
                let d = g.distances_from(&[from]);
                prop_assert_eq!(path.len() as u32, d[to.index()].unwrap() + 1);
            } else {
                // Unreachable must agree with distances.
                let d = g.distances_from(&[from]);
                prop_assert!(d[to.index()].is_none());
            }
        }

        /// Markov blanket membership is symmetric.
        #[test]
        fn blanket_symmetry(
            n in 2usize..15,
            edges in proptest::collection::vec((0usize..15, 0usize..15), 1..30)
        ) {
            let mut g: FactorGraph<usize, ()> = FactorGraph::new();
            let vars: Vec<_> = (0..n).map(|i| g.add_var(i)).collect();
            for (a, b) in edges {
                g.add_factor((), &[vars[a % n], vars[b % n]]);
            }
            for &v in &vars {
                for u in g.markov_blanket(v) {
                    prop_assert!(g.markov_blanket(u).contains(&v));
                }
            }
        }
    }
}
