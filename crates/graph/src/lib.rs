//! Bipartite factor graphs for BayesPerf.
//!
//! BayesPerf aggregates all statistical dependencies between events into one
//! graphical structure — a *factor graph* (§4.1): a bipartite graph whose
//! variable nodes are events (or event-at-time-slice instances) and whose
//! factor nodes are joint probability functions derived from
//! microarchitectural invariants, observations, or temporal smoothing.
//!
//! The crate provides the two graph queries the paper's scheduler relies on:
//!
//! * **Markov blankets** ([`FactorGraph::markov_blanket`]) — used to decide
//!   whether two consecutive counter configurations already share a
//!   (transitive) statistical dependency;
//! * **shortest paths** ([`FactorGraph::shortest_path`]) — used to build the
//!   minimal bridge of intermediate configurations when they do not
//!   (Dijkstra with unit edge costs, i.e. BFS, with a per-variable validity
//!   filter).
//!
//! Nodes carry arbitrary payloads so the same structure serves both the
//! schedule-planning graph (variables = events) and the inference graph
//! (variables = event × time slice).
//!
//! For the software EP engine farm the crate additionally provides the two
//! structural queries parallel inference is built on:
//!
//! * **CSR adjacency** ([`CsrAdjacency`], [`FactorGraph::var_factor_csr`]) —
//!   the variable→factor index flattened into one contiguous array, the
//!   cache-friendly layout MCMC delta evaluation walks on every proposal;
//! * **conflict coloring** ([`FactorGraph::greedy_factor_coloring`]) — a
//!   deterministic greedy partition of factors into independent sets, which
//!   the parallel EP sweep uses to batch sites that share no variable.

mod fg;

pub use fg::{ColorBatches, CsrAdjacency, FactorGraph, FactorId, VarId};
