//! Warm-start correctness: a warm-started engine must converge to the same
//! fixed point as a cold run on the same data.
//!
//! The property is checked on randomized Gaussian-linear chain models
//! (random priors, random per-variable observations, random chain
//! couplings — the same shape as a BayesPerf catalog slice with linear
//! invariants). Every site takes the analytic moment path, so EP is a
//! deterministic fixed-point iteration and — because EP is exact for
//! Gaussian models — both paths converge to the *exact* posterior. Run to
//! a tight tolerance, warm and cold marginals must then agree to within
//! 1e-6 absolute mean / 1e-4 relative variance.

use bayesperf_inference::{EpConfig, ExpectationPropagation, FactorSite, Gaussian, MomentStrategy};
use proptest::prelude::*;

/// A tight, noise-free EP configuration: analytic sites converge
/// geometrically, so a small tolerance is reachable.
fn tight_config() -> EpConfig {
    EpConfig {
        max_sweeps: 400,
        warm_max_sweeps: 400,
        damping: 0.8,
        tol: 1e-11,
        ..EpConfig::default()
    }
}

/// Builds the chain model: one Gaussian-linear observation per variable,
/// one coupling factor per consecutive pair.
fn build_model(
    priors: &[(f64, f64)],
    obs: &[(f64, f64)],
    couplings: &[(f64, f64)],
) -> ExpectationPropagation {
    let prior: Vec<Gaussian> = priors.iter().map(|&(m, v)| Gaussian::new(m, v)).collect();
    let mut ep = ExpectationPropagation::new(prior, tight_config());
    for (i, &(value, var)) in obs.iter().enumerate() {
        ep.add_site(
            FactorSite::builder(vec![i])
                .gaussian_linear(&[0], &[1.0], value, var)
                .build(),
        );
    }
    for (i, &(diff, var)) in couplings.iter().enumerate() {
        ep.add_site(
            FactorSite::builder(vec![i, i + 1])
                .gaussian_linear(&[0, 1], &[-1.0, 1.0], diff, var)
                .build(),
        );
    }
    ep
}

proptest! {
    /// Warm-started marginals match a cold run on the new window's data.
    #[test]
    fn warm_marginals_match_cold_marginals(
        priors in proptest::collection::vec((-5.0f64..5.0, 0.5f64..10.0), 2..6),
        obs_seed in proptest::collection::vec((-10.0f64..10.0, 0.1f64..2.0), 6..7),
        deltas in proptest::collection::vec(-0.5f64..0.5, 6..7),
        couplings in proptest::collection::vec((-2.0f64..2.0, 0.2f64..2.0), 5..6),
    ) {
        let n = priors.len();
        let obs_a: Vec<(f64, f64)> = obs_seed[..n].to_vec();
        // Window B: the same topology, slightly moved observations.
        let obs_b: Vec<(f64, f64)> = obs_a
            .iter()
            .zip(&deltas)
            .map(|(&(v, var), &d)| (v + d, var))
            .collect();
        let couplings = couplings[..n - 1].to_vec();

        // Warm path: run window A, swap observations to window B in
        // place, warm-start, run again.
        let mut warm_ep = build_model(&priors, &obs_a, &couplings);
        let warm_a = warm_ep.run_parallel(1, 2);
        prop_assert!(warm_a.converged, "window A must converge");
        for (i, &(value, _)) in obs_b.iter().enumerate() {
            warm_ep
                .site_mut::<FactorSite>(i)
                .expect("observation sites are FactorSites")
                .set_linear_obs(0, value);
        }
        let prior: Vec<Gaussian> = priors.iter().map(|&(m, v)| Gaussian::new(m, v)).collect();
        warm_ep.warm_start(&prior);
        let warm = warm_ep.run_parallel(2, 2);
        prop_assert!(warm.converged, "warm window B must converge");
        prop_assert_eq!(warm.mcmc_site_updates, 0, "all sites analytic");

        // Cold path: a fresh engine on window B's data.
        let mut cold_ep = build_model(&priors, &obs_b, &couplings);
        let cold = cold_ep.run_parallel(3, 1);
        prop_assert!(cold.converged, "cold window B must converge");

        for (v, (w, c)) in warm.marginals.iter().zip(&cold.marginals).enumerate() {
            prop_assert!(
                (w.mean - c.mean).abs() <= 1e-6,
                "variable {v}: warm mean {} vs cold {}",
                w.mean,
                c.mean
            );
            prop_assert!(
                (w.var - c.var).abs() / c.var <= 1e-4,
                "variable {v}: warm var {} vs cold {}",
                w.var,
                c.var
            );
        }
    }
}

#[test]
fn all_sites_take_the_analytic_path() {
    let ep = build_model(
        &[(0.0, 4.0), (1.0, 2.0)],
        &[(3.0, 1.0), (5.0, 0.5)],
        &[(1.0, 0.3)],
    );
    let _ = ep; // sites checked through the site type directly:
    let site = FactorSite::builder(vec![0])
        .gaussian_linear(&[0], &[1.0], 3.0, 1.0)
        .build();
    assert_eq!(
        bayesperf_inference::EpSite::moment_strategy(&site),
        MomentStrategy::Analytic
    );
}
