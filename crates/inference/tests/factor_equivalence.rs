//! `FactorSite` must be a drop-in for `FnSite`: on the crate docs' invariant
//! example (x0 + x1 = 10 with x0 observed), the factor-structured site and
//! the closure site define *the same* log-likelihood, so EP with the same
//! deterministic seed must produce bit-identical posteriors — the sparse
//! delta path may skip factors, but never change values.

use bayesperf_inference::{EpConfig, EpSite, ExpectationPropagation, FactorSite, FnSite, Gaussian};

fn fn_site_model() -> ExpectationPropagation {
    let prior = vec![Gaussian::new(5.0, 100.0), Gaussian::new(5.0, 100.0)];
    let mut ep = ExpectationPropagation::new(prior, EpConfig::default());
    ep.add_site(FnSite::new(vec![0], |x: &[f64]| {
        Gaussian::new(3.0, 0.01).log_pdf(x[0])
    }));
    ep.add_site(FnSite::new(vec![0, 1], |x: &[f64]| {
        Gaussian::new(0.0, 0.01).log_pdf(x[0] + x[1] - 10.0)
    }));
    ep
}

fn factor_site_model() -> ExpectationPropagation {
    let prior = vec![Gaussian::new(5.0, 100.0), Gaussian::new(5.0, 100.0)];
    let mut ep = ExpectationPropagation::new(prior, EpConfig::default());
    ep.add_site(
        FactorSite::builder(vec![0])
            .factor(&[0], |x: &[f64]| Gaussian::new(3.0, 0.01).log_pdf(x[0]))
            .build(),
    );
    ep.add_site(
        FactorSite::builder(vec![0, 1])
            .factor(&[0, 1], |x: &[f64]| {
                Gaussian::new(0.0, 0.01).log_pdf(x[0] + x[1] - 10.0)
            })
            .build(),
    );
    ep
}

#[test]
fn same_likelihood_same_delta() {
    let fn_site = FnSite::new(vec![0, 1], |x: &[f64]| {
        Gaussian::new(0.0, 0.01).log_pdf(x[0] + x[1] - 10.0)
    });
    let factor_site = FactorSite::builder(vec![0, 1])
        .factor(&[0, 1], |x: &[f64]| {
            Gaussian::new(0.0, 0.01).log_pdf(x[0] + x[1] - 10.0)
        })
        .build();
    for (a, b) in [(3.0, 7.0), (0.0, 0.0), (-2.5, 13.1)] {
        let x = [a, b];
        assert_eq!(
            fn_site.log_likelihood(&x).to_bits(),
            factor_site.log_likelihood(&x).to_bits()
        );
        let mut xa = x.to_vec();
        let mut xb = x.to_vec();
        let da = fn_site.log_likelihood_delta(&mut xa, 1, b + 0.5);
        let db = factor_site.log_likelihood_delta(&mut xb, 1, b + 0.5);
        assert_eq!(da.to_bits(), db.to_bits(), "delta at ({a}, {b})");
    }
}

#[test]
fn ep_posteriors_are_bit_identical() {
    let ra = fn_site_model().run_parallel(42, 1);
    let rb = factor_site_model().run_parallel(42, 1);
    assert_eq!(ra.sweeps_run, rb.sweeps_run);
    assert_eq!(ra.converged, rb.converged);
    for (ga, gb) in ra.marginals.iter().zip(&rb.marginals) {
        assert_eq!(ga.mean.to_bits(), gb.mean.to_bits());
        assert_eq!(ga.var.to_bits(), gb.var.to_bits());
    }
    // And the inference itself is right: x1 ≈ 10 − 3 = 7.
    assert!(
        (rb.marginals[1].mean - 7.0).abs() < 0.5,
        "x1 {}",
        rb.marginals[1].mean
    );
}

#[test]
fn multi_factor_split_matches_monolithic_closure() {
    // A site whose likelihood is a *product* of three factors, written
    // once as a single closure and once factored. Sparse evaluation must
    // not change EP results (same seed → bit-identical).
    let monolithic = || {
        let prior = vec![Gaussian::new(0.0, 25.0); 3];
        let mut ep = ExpectationPropagation::new(prior, EpConfig::default());
        ep.add_site(FnSite::new(vec![0, 1, 2], |x: &[f64]| {
            Gaussian::new(1.0, 0.1).log_pdf(x[0])
                + Gaussian::new(0.0, 0.2).log_pdf(x[1] - x[0])
                + Gaussian::new(0.0, 0.2).log_pdf(x[2] - x[1])
        }));
        ep
    };
    let factored = || {
        let prior = vec![Gaussian::new(0.0, 25.0); 3];
        let mut ep = ExpectationPropagation::new(prior, EpConfig::default());
        ep.add_site(
            FactorSite::builder(vec![0, 1, 2])
                .factor(&[0], |x: &[f64]| Gaussian::new(1.0, 0.1).log_pdf(x[0]))
                .factor(&[0, 1], |x: &[f64]| {
                    Gaussian::new(0.0, 0.2).log_pdf(x[1] - x[0])
                })
                .factor(&[1, 2], |x: &[f64]| {
                    Gaussian::new(0.0, 0.2).log_pdf(x[2] - x[1])
                })
                .build(),
        );
        ep
    };
    let ra = monolithic().run_parallel(7, 1);
    let rb = factored().run_parallel(7, 2);
    for (v, (ga, gb)) in ra.marginals.iter().zip(&rb.marginals).enumerate() {
        // Factored delta sums a subset of terms, so results agree exactly
        // only when per-factor arithmetic is order-identical; the split
        // changes the summation grouping, so allow float-roundoff scale
        // differences while requiring statistical identity.
        assert!(
            (ga.mean - gb.mean).abs() < 1e-6,
            "var {v}: {} vs {}",
            ga.mean,
            gb.mean
        );
        assert!((ga.var - gb.var).abs() < 1e-6);
    }
}
