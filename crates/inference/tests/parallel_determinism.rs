//! The engine farm's headline guarantee: `run_parallel(seed, threads)` is
//! bit-identical for any thread count. Posterior means, variances, sweep
//! counts, convergence flags, and acceptance statistics must all match to
//! the last bit between 1, 2, and 8 workers.

use bayesperf_inference::{
    EpConfig, EpResult, ExpectationPropagation, FactorSite, FnSite, Gaussian,
};

/// A 64-site model shaped like the corrector's chunks: 32 variables in a
/// chain, one observation site per variable, one coupling site per adjacent
/// pair — plenty of conflicts for the coloring to untangle.
fn chain_model() -> ExpectationPropagation {
    let n = 32;
    let prior = vec![Gaussian::new(5.0, 50.0); n];
    let mut ep = ExpectationPropagation::new(prior, EpConfig::default());
    for v in 0..n {
        let center = 2.0 + (v as f64) * 0.25;
        ep.add_site(FnSite::new(vec![v], move |x: &[f64]| {
            Gaussian::new(center, 0.5).log_pdf(x[0])
        }));
    }
    for v in 0..n - 1 {
        ep.add_site(FnSite::new(vec![v, v + 1], |x: &[f64]| {
            Gaussian::new(0.25, 0.1).log_pdf(x[1] - x[0])
        }));
    }
    ep
}

fn run_with_threads(threads: usize) -> EpResult {
    chain_model().run_parallel(0xB4FE5, threads)
}

fn assert_bit_identical(a: &EpResult, b: &EpResult, what: &str) {
    assert_eq!(a.sweeps_run, b.sweeps_run, "{what}: sweep count");
    assert_eq!(a.sweeps_total, b.sweeps_total, "{what}: cumulative sweeps");
    assert_eq!(a.converged, b.converged, "{what}: convergence flag");
    assert_eq!(
        a.mean_acceptance.to_bits(),
        b.mean_acceptance.to_bits(),
        "{what}: acceptance"
    );
    assert_eq!(a.marginals.len(), b.marginals.len());
    for (v, (ga, gb)) in a.marginals.iter().zip(&b.marginals).enumerate() {
        assert_eq!(
            ga.mean.to_bits(),
            gb.mean.to_bits(),
            "{what}: mean of variable {v} ({} vs {})",
            ga.mean,
            gb.mean
        );
        assert_eq!(
            ga.var.to_bits(),
            gb.var.to_bits(),
            "{what}: var of variable {v}"
        );
    }
}

#[test]
fn bit_identical_across_1_2_8_threads() {
    let t1 = run_with_threads(1);
    let t2 = run_with_threads(2);
    let t8 = run_with_threads(8);
    assert_bit_identical(&t1, &t2, "1 vs 2 threads");
    assert_bit_identical(&t1, &t8, "1 vs 8 threads");
    // And the run must have actually inferred something.
    assert!(t1.mean_acceptance > 0.0);
    assert!((t1.marginals[0].mean - 2.0).abs() < 1.5);
}

#[test]
fn rerun_same_seed_is_reproducible() {
    let a = run_with_threads(3);
    let b = run_with_threads(3);
    assert_bit_identical(&a, &b, "rerun");
}

#[test]
fn different_seeds_differ() {
    let a = chain_model().run_parallel(1, 2);
    let b = chain_model().run_parallel(2, 2);
    assert!(
        a.marginals
            .iter()
            .zip(&b.marginals)
            .any(|(x, y)| x.mean.to_bits() != y.mean.to_bits()),
        "distinct seeds should yield distinct MCMC noise"
    );
}

#[test]
fn warm_start_is_bit_identical_across_1_2_8_threads() {
    // The warm-start lifecycle — run, warm_start (keep messages, re-seat
    // the prior), run again — must stay bit-identical at any thread count:
    // the adaptive-budget decisions derive from cavity history that is
    // merged in deterministic site order, so they are part of the
    // guarantee, not an exception to it.
    let prior = vec![Gaussian::new(5.0, 50.0); 32];
    let run_seq = |threads: usize| -> EpResult {
        let mut ep = chain_model();
        let _ = ep.run_parallel(0xC0FFEE, threads);
        ep.warm_start(&prior);
        let warm1 = ep.run_parallel(0xC0FFEE + 1, threads);
        assert!(ep.is_warm());
        ep.warm_start(&prior);
        let warm2 = ep.run_parallel(0xC0FFEE + 2, threads);
        // The second warm window must continue from the first's state.
        assert!(warm2.sweeps_total > warm2.sweeps_run);
        assert_eq!(warm1.marginals.len(), warm2.marginals.len());
        warm2
    };
    let t1 = run_seq(1);
    let t2 = run_seq(2);
    let t8 = run_seq(8);
    assert_bit_identical(&t1, &t2, "warm 1 vs 2 threads");
    assert_bit_identical(&t1, &t8, "warm 1 vs 8 threads");
}

#[test]
fn factor_sites_are_bit_identical_across_threads_too() {
    let build = || {
        let n = 12;
        let prior = vec![Gaussian::new(1.0, 25.0); n];
        let mut ep = ExpectationPropagation::new(prior, EpConfig::default());
        for v in 0..n - 1 {
            ep.add_site(
                FactorSite::builder(vec![v, v + 1])
                    .factor(&[0], move |x: &[f64]| {
                        Gaussian::new(v as f64, 0.3).log_pdf(x[0])
                    })
                    .factor(&[0, 1], |x: &[f64]| {
                        Gaussian::new(1.0, 0.05).log_pdf(x[1] - x[0])
                    })
                    .build(),
            );
        }
        ep
    };
    let mut a = build();
    let mut b = build();
    let ra = a.run_parallel(77, 1);
    let rb = b.run_parallel(77, 8);
    assert_bit_identical(&ra, &rb, "factor sites 1 vs 8 threads");
}
