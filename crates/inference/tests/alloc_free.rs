//! Proof that the MCMC hot path is allocation-free after warm-up: a
//! counting global allocator wraps the system allocator, and a warmed-up
//! `run_with_scratch` call must not change the allocation counter.
//!
//! This file holds exactly one test so no concurrent test can pollute the
//! global counter.

use bayesperf_inference::{Gaussian, McmcConfig, McmcSampler, McmcScratch, Target};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// A factor-structured target (two coupled Gaussians) whose evaluation
/// allocates nothing — mirroring the slice sites the corrector builds.
struct Coupled;

impl Target for Coupled {
    fn dim(&self) -> usize {
        2
    }
    fn log_density(&self, x: &[f64]) -> f64 {
        Gaussian::new(2.0, 1.0).log_pdf(x[0]) + Gaussian::new(x[0], 0.25).log_pdf(x[1])
    }
    fn log_density_delta(&self, x: &mut [f64], i: usize, new: f64) -> f64 {
        let old = x[i];
        let before = self.log_density(x);
        x[i] = new;
        let after = self.log_density(x);
        x[i] = old;
        after - before
    }
}

#[test]
fn run_with_scratch_allocates_nothing_after_warmup() {
    let sampler = McmcSampler::new(McmcConfig::default());
    let mut scratch = McmcScratch::new();
    let mut rng = StdRng::seed_from_u64(99);

    // Warm-up: buffers grow to the target dimension.
    sampler.run_with_scratch(&Coupled, &[0.0, 0.0], &[1.0, 1.0], &mut rng, &mut scratch);

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for _ in 0..5 {
        sampler.run_with_scratch(&Coupled, &[0.0, 0.0], &[1.0, 1.0], &mut rng, &mut scratch);
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "warmed-up run_with_scratch must not allocate ({} allocations observed)",
        after - before
    );

    // Sanity: the runs still produce sensible moments.
    assert!((scratch.mean()[0] - 2.0).abs() < 0.5);
    assert!(scratch.var()[0] > 0.0);
    assert!(scratch.acceptance() > 0.05 && scratch.acceptance() < 0.95);
}
