//! Component-wise random-walk Metropolis-Hastings.
//!
//! This is the software model of the AcMC²-generated sampler IPs of §5: a
//! random-walk MCMC kernel whose per-variable proposals only need the log
//! density change of the factors adjacent to that variable. The accelerator
//! runs many of these in parallel; in software we run them sequentially
//! inside each EP site update.

use crate::standard_normal;
use rand::Rng;

/// A log-density target for MCMC.
pub trait Target {
    /// Dimension of the state vector.
    fn dim(&self) -> usize;

    /// Log density (up to an additive constant) of the full state.
    fn log_density(&self, x: &[f64]) -> f64;

    /// Change in log density when component `i` moves from `x[i]` to `new`.
    ///
    /// The default recomputes the full density twice; targets with factor
    /// structure should override with the local (adjacent-factors-only)
    /// computation — that locality is exactly what the accelerator's
    /// parallel samplers exploit.
    fn log_density_delta(&self, x: &mut [f64], i: usize, new: f64) -> f64 {
        let old = x[i];
        let before = self.log_density(x);
        x[i] = new;
        let after = self.log_density(x);
        x[i] = old;
        after - before
    }
}

/// Configuration of the random-walk sampler.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct McmcConfig {
    /// Adaptation sweeps discarded before collecting moments.
    pub burn_in: usize,
    /// Sweeps collected for moment estimation.
    pub samples: usize,
    /// Initial proposal standard deviation (per component, scaled by the
    /// caller-provided component scales).
    pub initial_step: f64,
    /// Target acceptance rate for step adaptation (~0.44 is optimal for
    /// component-wise random walks).
    pub target_acceptance: f64,
}

impl Default for McmcConfig {
    fn default() -> Self {
        McmcConfig {
            burn_in: 150,
            samples: 300,
            initial_step: 1.0,
            target_acceptance: 0.44,
        }
    }
}

/// First and second moments of the visited states.
#[derive(Debug, Clone, PartialEq)]
pub struct McmcStats {
    /// Per-component posterior mean estimate.
    pub mean: Vec<f64>,
    /// Per-component posterior variance estimate (biased, ≥ 0).
    pub var: Vec<f64>,
    /// Overall acceptance rate of proposals.
    pub acceptance: f64,
}

/// Component-wise random-walk Metropolis-Hastings sampler with per-component
/// step-size adaptation during burn-in.
#[derive(Debug, Clone)]
pub struct McmcSampler {
    config: McmcConfig,
}

impl McmcSampler {
    /// Creates a sampler with the given configuration.
    pub fn new(config: McmcConfig) -> Self {
        McmcSampler { config }
    }

    /// Runs the chain on `target`, starting from `init`, with per-component
    /// proposal scales `scales` (e.g. cavity standard deviations).
    ///
    /// # Panics
    ///
    /// Panics if `init` or `scales` length differs from `target.dim()`.
    pub fn run<T: Target, R: Rng + ?Sized>(
        &self,
        target: &T,
        init: &[f64],
        scales: &[f64],
        rng: &mut R,
    ) -> McmcStats {
        let d = target.dim();
        assert_eq!(init.len(), d, "init length mismatch");
        assert_eq!(scales.len(), d, "scales length mismatch");
        let mut x = init.to_vec();
        let mut steps: Vec<f64> = scales
            .iter()
            .map(|s| self.config.initial_step * s.abs().max(1e-9))
            .collect();

        let mut sum = vec![0.0; d];
        let mut sum_sq = vec![0.0; d];
        let mut accepted = 0usize;
        let mut proposed = 0usize;

        // Adaptation bookkeeping, per component.
        let mut acc_window = vec![0usize; d];
        let mut prop_window = vec![0usize; d];
        const ADAPT_EVERY: usize = 20;

        let total = self.config.burn_in + self.config.samples;
        for sweep in 0..total {
            let burning = sweep < self.config.burn_in;
            for i in 0..d {
                let new = x[i] + steps[i] * standard_normal(rng);
                let delta = target.log_density_delta(&mut x, i, new);
                proposed += 1;
                prop_window[i] += 1;
                if delta >= 0.0 || rng.gen::<f64>() < delta.exp() {
                    x[i] = new;
                    accepted += 1;
                    acc_window[i] += 1;
                }
                if burning && prop_window[i] >= ADAPT_EVERY {
                    let rate = acc_window[i] as f64 / prop_window[i] as f64;
                    if rate > self.config.target_acceptance {
                        steps[i] *= 1.15;
                    } else {
                        steps[i] *= 0.85;
                    }
                    acc_window[i] = 0;
                    prop_window[i] = 0;
                }
            }
            if !burning {
                for i in 0..d {
                    sum[i] += x[i];
                    sum_sq[i] += x[i] * x[i];
                }
            }
        }

        let n = self.config.samples.max(1) as f64;
        let mean: Vec<f64> = sum.iter().map(|s| s / n).collect();
        let var: Vec<f64> = sum_sq
            .iter()
            .zip(&mean)
            .map(|(sq, m)| (sq / n - m * m).max(0.0))
            .collect();
        McmcStats {
            mean,
            var,
            acceptance: accepted as f64 / proposed.max(1) as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::Gaussian;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    struct GaussTarget {
        components: Vec<Gaussian>,
    }

    impl Target for GaussTarget {
        fn dim(&self) -> usize {
            self.components.len()
        }
        fn log_density(&self, x: &[f64]) -> f64 {
            x.iter()
                .zip(&self.components)
                .map(|(xi, g)| g.log_pdf(*xi))
                .sum()
        }
        fn log_density_delta(&self, x: &mut [f64], i: usize, new: f64) -> f64 {
            self.components[i].log_pdf(new) - self.components[i].log_pdf(x[i])
        }
    }

    #[test]
    fn recovers_independent_gaussian_moments() {
        let target = GaussTarget {
            components: vec![Gaussian::new(2.0, 1.0), Gaussian::new(-5.0, 4.0)],
        };
        let sampler = McmcSampler::new(McmcConfig {
            burn_in: 300,
            samples: 3000,
            ..McmcConfig::default()
        });
        let mut rng = StdRng::seed_from_u64(42);
        let stats = sampler.run(&target, &[0.0, 0.0], &[1.0, 2.0], &mut rng);
        assert!((stats.mean[0] - 2.0).abs() < 0.15, "mean0 {}", stats.mean[0]);
        assert!((stats.mean[1] + 5.0).abs() < 0.3, "mean1 {}", stats.mean[1]);
        assert!((stats.var[0] - 1.0).abs() < 0.3, "var0 {}", stats.var[0]);
        assert!((stats.var[1] - 4.0).abs() < 1.2, "var1 {}", stats.var[1]);
    }

    struct CorrelatedTarget;

    impl Target for CorrelatedTarget {
        fn dim(&self) -> usize {
            2
        }
        // x0 ~ N(0,1); x1 | x0 ~ N(x0, 0.01): strong coupling.
        fn log_density(&self, x: &[f64]) -> f64 {
            Gaussian::new(0.0, 1.0).log_pdf(x[0]) + Gaussian::new(x[0], 0.01).log_pdf(x[1])
        }
    }

    #[test]
    fn tracks_correlated_target() {
        let sampler = McmcSampler::new(McmcConfig {
            burn_in: 1000,
            samples: 20_000,
            ..McmcConfig::default()
        });
        let mut rng = StdRng::seed_from_u64(43);
        let stats = sampler.run(&CorrelatedTarget, &[1.0, -1.0], &[1.0, 1.0], &mut rng);
        // Marginals of both are N(0, ~1); component-wise walks mix slowly on
        // near-degenerate correlation, so bounds are generous.
        assert!(stats.mean[0].abs() < 0.35, "mean0 {}", stats.mean[0]);
        assert!(stats.mean[1].abs() < 0.35, "mean1 {}", stats.mean[1]);
        assert!(stats.acceptance > 0.1 && stats.acceptance < 0.9);
    }

    #[test]
    fn default_delta_matches_full_recompute() {
        struct Full;
        impl Target for Full {
            fn dim(&self) -> usize {
                2
            }
            fn log_density(&self, x: &[f64]) -> f64 {
                -(x[0] * x[0] + x[0] * x[1] + x[1] * x[1])
            }
        }
        let t = Full;
        let mut x = vec![0.5, -0.25];
        let before = t.log_density(&x);
        let delta = t.log_density_delta(&mut x, 0, 1.5);
        // State must be restored.
        assert_eq!(x[0], 0.5);
        let mut y = x.clone();
        y[0] = 1.5;
        assert!((delta - (t.log_density(&y) - before)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "init length mismatch")]
    fn rejects_wrong_init_length() {
        let t = GaussTarget {
            components: vec![Gaussian::new(0.0, 1.0)],
        };
        let mut rng = StdRng::seed_from_u64(1);
        McmcSampler::new(McmcConfig::default()).run(&t, &[0.0, 0.0], &[1.0, 1.0], &mut rng);
    }
}
