//! Component-wise random-walk Metropolis-Hastings.
//!
//! This is the software model of the AcMC²-generated sampler IPs of §5: a
//! random-walk MCMC kernel whose per-variable proposals only need the log
//! density change of the factors adjacent to that variable. The accelerator
//! runs many of these in parallel; in software the EP engine farm runs one
//! chain per site update across worker threads, so the kernel is built to be
//! allocation-free after warm-up: all chain state, step sizes, and moment
//! accumulators live in a caller-owned [`McmcScratch`] that is reused across
//! site updates ([`McmcSampler::run_with_scratch`]). Moments are accumulated
//! with Welford's online algorithm, which is numerically stable for counter
//! magnitudes like 1e9 cycles where the naive `Σx²/n − mean²` form loses all
//! significant digits to catastrophic cancellation.

use crate::standard_normal;
use rand::Rng;

/// A log-density target for MCMC.
pub trait Target {
    /// Dimension of the state vector.
    fn dim(&self) -> usize;

    /// Log density (up to an additive constant) of the full state.
    fn log_density(&self, x: &[f64]) -> f64;

    /// Change in log density when component `i` moves from `x[i]` to `new`.
    ///
    /// The default recomputes the full density twice; targets with factor
    /// structure should override with the local (adjacent-factors-only)
    /// computation — that locality is exactly what the accelerator's
    /// parallel samplers exploit.
    fn log_density_delta(&self, x: &mut [f64], i: usize, new: f64) -> f64 {
        let old = x[i];
        let before = self.log_density(x);
        x[i] = new;
        let after = self.log_density(x);
        x[i] = old;
        after - before
    }
}

/// Configuration of the random-walk sampler.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct McmcConfig {
    /// Adaptation sweeps discarded before collecting moments.
    pub burn_in: usize,
    /// Sweeps collected for moment estimation.
    pub samples: usize,
    /// Initial proposal standard deviation (per component, scaled by the
    /// caller-provided component scales).
    pub initial_step: f64,
    /// Target acceptance rate for step adaptation (~0.44 is optimal for
    /// component-wise random walks).
    pub target_acceptance: f64,
}

impl Default for McmcConfig {
    fn default() -> Self {
        McmcConfig {
            burn_in: 150,
            samples: 300,
            initial_step: 1.0,
            target_acceptance: 0.44,
        }
    }
}

/// First and second moments of the visited states (owned snapshot).
#[derive(Debug, Clone, PartialEq)]
pub struct McmcStats {
    /// Per-component posterior mean estimate.
    pub mean: Vec<f64>,
    /// Per-component posterior variance estimate (biased, ≥ 0).
    pub var: Vec<f64>,
    /// Overall acceptance rate of proposals.
    pub acceptance: f64,
}

/// Reusable chain state and moment accumulators — the allocation-free MCMC
/// hot path.
///
/// Allocate one per worker (or one per sequential driver), call
/// [`McmcSampler::run_with_scratch`] repeatedly, and read the results
/// through [`McmcScratch::mean`]/[`McmcScratch::var`]. Once every buffer has
/// grown to the largest site dimension encountered, subsequent runs perform
/// **zero** heap allocation (asserted by the `alloc_free` integration
/// test).
#[derive(Debug, Clone, Default)]
pub struct McmcScratch {
    /// Chain state.
    x: Vec<f64>,
    /// Per-component proposal step sizes.
    steps: Vec<f64>,
    /// Welford running means.
    mean: Vec<f64>,
    /// Welford sum of squared deviations (M₂).
    m2: Vec<f64>,
    /// Finalized biased variances.
    var: Vec<f64>,
    /// Burn-in adaptation windows.
    acc_window: Vec<u32>,
    prop_window: Vec<u32>,
    /// Acceptance rate of the last run.
    acceptance: f64,
    /// Post-burn-in sweeps collected by the last run.
    samples_run: u32,
    /// Proposals made / accepted by the last run (across all components and
    /// sweeps, burn-in included) — the raw counts behind `acceptance`,
    /// exposed so EP can aggregate a proposal-weighted mean over MCMC sites.
    proposed: u64,
    accepted: u64,
}

impl McmcScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a scratch pre-sized for `dim`-dimensional targets, so even
    /// the first run allocates nothing.
    pub fn with_dim(dim: usize) -> Self {
        let mut s = Self::default();
        s.reserve(dim);
        s
    }

    /// Grows every buffer to hold `dim` components.
    pub fn reserve(&mut self, dim: usize) {
        self.x.reserve(dim);
        self.steps.reserve(dim);
        self.mean.reserve(dim);
        self.m2.reserve(dim);
        self.var.reserve(dim);
        self.acc_window.reserve(dim);
        self.prop_window.reserve(dim);
    }

    /// Resets buffers for a `d`-dimensional run (no allocation once
    /// capacity suffices).
    fn prepare(&mut self, init: &[f64], scales: &[f64], initial_step: f64) {
        self.x.clear();
        self.x.extend_from_slice(init);
        self.steps.clear();
        self.steps
            .extend(scales.iter().map(|s| initial_step * s.abs().max(1e-9)));
        let d = init.len();
        self.mean.clear();
        self.mean.resize(d, 0.0);
        self.m2.clear();
        self.m2.resize(d, 0.0);
        self.var.clear();
        self.var.resize(d, 0.0);
        self.acc_window.clear();
        self.acc_window.resize(d, 0);
        self.prop_window.clear();
        self.prop_window.resize(d, 0);
        self.acceptance = 0.0;
        self.samples_run = 0;
        self.proposed = 0;
        self.accepted = 0;
    }

    /// Per-component posterior mean estimates of the last run.
    pub fn mean(&self) -> &[f64] {
        &self.mean
    }

    /// Per-component posterior variance estimates of the last run (biased,
    /// ≥ 0).
    pub fn var(&self) -> &[f64] {
        &self.var
    }

    /// Acceptance rate of the last run.
    pub fn acceptance(&self) -> f64 {
        self.acceptance
    }

    /// Post-burn-in sweeps collected by the last run (the per-site MCMC
    /// sample count the adaptive budget varies).
    pub fn samples_run(&self) -> u32 {
        self.samples_run
    }

    /// Proposals made by the last run (all components, burn-in included).
    pub fn proposed(&self) -> u64 {
        self.proposed
    }

    /// Proposals accepted by the last run.
    pub fn accepted(&self) -> u64 {
        self.accepted
    }

    /// Owned snapshot of the last run's statistics.
    pub fn to_stats(&self) -> McmcStats {
        McmcStats {
            mean: self.mean.clone(),
            var: self.var.clone(),
            acceptance: self.acceptance,
        }
    }
}

/// Component-wise random-walk Metropolis-Hastings sampler with per-component
/// step-size adaptation during burn-in.
#[derive(Debug, Clone)]
pub struct McmcSampler {
    config: McmcConfig,
}

impl McmcSampler {
    /// Creates a sampler with the given configuration.
    pub fn new(config: McmcConfig) -> Self {
        McmcSampler { config }
    }

    /// Runs the chain, returning owned statistics. Convenience wrapper over
    /// [`McmcSampler::run_with_scratch`] that allocates a fresh scratch —
    /// use the scratch API on hot paths.
    ///
    /// # Panics
    ///
    /// Panics if `init` or `scales` length differs from `target.dim()`.
    pub fn run<T: Target, R: Rng + ?Sized>(
        &self,
        target: &T,
        init: &[f64],
        scales: &[f64],
        rng: &mut R,
    ) -> McmcStats {
        let mut scratch = McmcScratch::new();
        self.run_with_scratch(target, init, scales, rng, &mut scratch);
        scratch.to_stats()
    }

    /// Runs the chain on `target`, starting from `init`, with per-component
    /// proposal scales `scales` (e.g. cavity standard deviations), storing
    /// all state and results in `scratch`.
    ///
    /// This is the engine-farm hot path: after `scratch`'s buffers have
    /// grown to the site dimension, the call performs no heap allocation.
    ///
    /// # Panics
    ///
    /// Panics if `init` or `scales` length differs from `target.dim()`.
    pub fn run_with_scratch<T: Target, R: Rng + ?Sized>(
        &self,
        target: &T,
        init: &[f64],
        scales: &[f64],
        rng: &mut R,
        scratch: &mut McmcScratch,
    ) {
        self.run_budgeted(
            target,
            init,
            scales,
            rng,
            scratch,
            self.config.burn_in,
            self.config.samples,
        );
    }

    /// [`McmcSampler::run_with_scratch`] with an explicit per-run budget
    /// overriding the configured `burn_in`/`samples` — the hook EP's
    /// adaptive budget uses to shrink warm-started site updates without
    /// rebuilding the sampler.
    ///
    /// # Panics
    ///
    /// Panics if `init` or `scales` length differs from `target.dim()`.
    #[allow(clippy::too_many_arguments)]
    pub fn run_budgeted<T: Target, R: Rng + ?Sized>(
        &self,
        target: &T,
        init: &[f64],
        scales: &[f64],
        rng: &mut R,
        scratch: &mut McmcScratch,
        burn_in: usize,
        samples: usize,
    ) {
        let d = target.dim();
        assert_eq!(init.len(), d, "init length mismatch");
        assert_eq!(scales.len(), d, "scales length mismatch");
        scratch.prepare(init, scales, self.config.initial_step);

        let mut accepted = 0usize;
        let mut proposed = 0usize;
        const ADAPT_EVERY: u32 = 20;

        let total = burn_in + samples;
        let mut n = 0u64; // Welford sample counter
        for sweep in 0..total {
            let burning = sweep < burn_in;
            for i in 0..d {
                let new = scratch.x[i] + scratch.steps[i] * standard_normal(rng);
                let delta = target.log_density_delta(&mut scratch.x, i, new);
                proposed += 1;
                scratch.prop_window[i] += 1;
                if delta >= 0.0 || rng.gen::<f64>() < delta.exp() {
                    scratch.x[i] = new;
                    accepted += 1;
                    scratch.acc_window[i] += 1;
                }
                if burning && scratch.prop_window[i] >= ADAPT_EVERY {
                    let rate = scratch.acc_window[i] as f64 / scratch.prop_window[i] as f64;
                    if rate > self.config.target_acceptance {
                        scratch.steps[i] *= 1.15;
                    } else {
                        scratch.steps[i] *= 0.85;
                    }
                    scratch.acc_window[i] = 0;
                    scratch.prop_window[i] = 0;
                }
            }
            if !burning {
                // Welford online update: stable where Σx²/n − mean² would
                // cancel catastrophically (e.g. counters near 1e9 with
                // spread of a few units).
                n += 1;
                let inv_n = 1.0 / n as f64;
                for i in 0..d {
                    let delta = scratch.x[i] - scratch.mean[i];
                    scratch.mean[i] += delta * inv_n;
                    scratch.m2[i] += delta * (scratch.x[i] - scratch.mean[i]);
                }
            }
        }

        scratch.samples_run = n as u32;
        let n = (n.max(1)) as f64;
        for i in 0..d {
            scratch.var[i] = (scratch.m2[i] / n).max(0.0);
        }
        scratch.acceptance = accepted as f64 / proposed.max(1) as f64;
        scratch.proposed = proposed as u64;
        scratch.accepted = accepted as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::Gaussian;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    struct GaussTarget {
        components: Vec<Gaussian>,
    }

    impl Target for GaussTarget {
        fn dim(&self) -> usize {
            self.components.len()
        }
        fn log_density(&self, x: &[f64]) -> f64 {
            x.iter()
                .zip(&self.components)
                .map(|(xi, g)| g.log_pdf(*xi))
                .sum()
        }
        fn log_density_delta(&self, x: &mut [f64], i: usize, new: f64) -> f64 {
            self.components[i].log_pdf(new) - self.components[i].log_pdf(x[i])
        }
    }

    #[test]
    fn recovers_independent_gaussian_moments() {
        let target = GaussTarget {
            components: vec![Gaussian::new(2.0, 1.0), Gaussian::new(-5.0, 4.0)],
        };
        let sampler = McmcSampler::new(McmcConfig {
            burn_in: 300,
            samples: 3000,
            ..McmcConfig::default()
        });
        let mut rng = StdRng::seed_from_u64(42);
        let stats = sampler.run(&target, &[0.0, 0.0], &[1.0, 2.0], &mut rng);
        assert!(
            (stats.mean[0] - 2.0).abs() < 0.15,
            "mean0 {}",
            stats.mean[0]
        );
        assert!((stats.mean[1] + 5.0).abs() < 0.3, "mean1 {}", stats.mean[1]);
        assert!((stats.var[0] - 1.0).abs() < 0.3, "var0 {}", stats.var[0]);
        assert!((stats.var[1] - 4.0).abs() < 1.2, "var1 {}", stats.var[1]);
    }

    #[test]
    fn welford_is_stable_at_counter_magnitudes() {
        // A tight Gaussian around 1e9 (cycle-count scale). The naive
        // sum-of-squares estimator loses all precision here: 1e18 + O(1)
        // swamps f64's 15–16 significant digits. Welford keeps the spread.
        let target = GaussTarget {
            components: vec![Gaussian::new(1.0e9, 4.0)],
        };
        let sampler = McmcSampler::new(McmcConfig {
            burn_in: 500,
            samples: 8000,
            ..McmcConfig::default()
        });
        let mut rng = StdRng::seed_from_u64(44);
        let stats = sampler.run(&target, &[1.0e9], &[2.0], &mut rng);
        assert!(
            (stats.mean[0] - 1.0e9).abs() < 0.5,
            "mean {}",
            stats.mean[0]
        );
        let rel = (stats.var[0] - 4.0).abs() / 4.0;
        assert!(rel < 0.4, "var {} (rel err {rel})", stats.var[0]);
    }

    #[test]
    fn scratch_reuse_matches_fresh_run() {
        let target = GaussTarget {
            components: vec![Gaussian::new(1.0, 2.0), Gaussian::new(-2.0, 0.5)],
        };
        let sampler = McmcSampler::new(McmcConfig::default());
        let fresh = {
            let mut rng = StdRng::seed_from_u64(9);
            sampler.run(&target, &[0.0, 0.0], &[1.0, 1.0], &mut rng)
        };
        // Dirty the scratch with a different-dimension run first.
        let mut scratch = McmcScratch::new();
        let other = GaussTarget {
            components: vec![Gaussian::new(0.0, 1.0); 5],
        };
        let mut rng = StdRng::seed_from_u64(1);
        sampler.run_with_scratch(&other, &[0.0; 5], &[1.0; 5], &mut rng, &mut scratch);
        let mut rng = StdRng::seed_from_u64(9);
        sampler.run_with_scratch(&target, &[0.0, 0.0], &[1.0, 1.0], &mut rng, &mut scratch);
        assert_eq!(
            scratch.to_stats(),
            fresh,
            "scratch reuse must not leak state"
        );
    }

    struct CorrelatedTarget;

    impl Target for CorrelatedTarget {
        fn dim(&self) -> usize {
            2
        }
        // x0 ~ N(0,1); x1 | x0 ~ N(x0, 0.01): strong coupling.
        fn log_density(&self, x: &[f64]) -> f64 {
            Gaussian::new(0.0, 1.0).log_pdf(x[0]) + Gaussian::new(x[0], 0.01).log_pdf(x[1])
        }
    }

    #[test]
    fn tracks_correlated_target() {
        let sampler = McmcSampler::new(McmcConfig {
            burn_in: 1000,
            samples: 40_000,
            ..McmcConfig::default()
        });
        let mut rng = StdRng::seed_from_u64(43);
        let stats = sampler.run(&CorrelatedTarget, &[1.0, -1.0], &[1.0, 1.0], &mut rng);
        // Marginals of both are N(0, ~1); component-wise walks mix slowly on
        // near-degenerate correlation, so bounds are generous.
        assert!(stats.mean[0].abs() < 0.35, "mean0 {}", stats.mean[0]);
        assert!(stats.mean[1].abs() < 0.35, "mean1 {}", stats.mean[1]);
        assert!(stats.acceptance > 0.1 && stats.acceptance < 0.9);
    }

    #[test]
    fn default_delta_matches_full_recompute() {
        struct Full;
        impl Target for Full {
            fn dim(&self) -> usize {
                2
            }
            fn log_density(&self, x: &[f64]) -> f64 {
                -(x[0] * x[0] + x[0] * x[1] + x[1] * x[1])
            }
        }
        let t = Full;
        let mut x = vec![0.5, -0.25];
        let before = t.log_density(&x);
        let delta = t.log_density_delta(&mut x, 0, 1.5);
        // State must be restored.
        assert_eq!(x[0], 0.5);
        let mut y = x.clone();
        y[0] = 1.5;
        assert!((delta - (t.log_density(&y) - before)).abs() < 1e-12);
    }

    #[test]
    fn budget_override_shrinks_the_run_and_is_accounted() {
        let target = GaussTarget {
            components: vec![Gaussian::new(0.0, 1.0), Gaussian::new(0.0, 1.0)],
        };
        let sampler = McmcSampler::new(McmcConfig::default());
        let mut scratch = McmcScratch::new();
        let mut rng = StdRng::seed_from_u64(21);
        sampler.run_budgeted(
            &target,
            &[0.0, 0.0],
            &[1.0, 1.0],
            &mut rng,
            &mut scratch,
            10,
            40,
        );
        assert_eq!(scratch.samples_run(), 40);
        // (10 + 40) sweeps × 2 components proposals.
        assert_eq!(scratch.proposed(), 100);
        assert!(scratch.accepted() <= scratch.proposed());
        assert!(
            (scratch.acceptance() - scratch.accepted() as f64 / scratch.proposed() as f64).abs()
                < 1e-12
        );
    }

    #[test]
    #[should_panic(expected = "init length mismatch")]
    fn rejects_wrong_init_length() {
        let t = GaussTarget {
            components: vec![Gaussian::new(0.0, 1.0)],
        };
        let mut rng = StdRng::seed_from_u64(1);
        McmcSampler::new(McmcConfig::default()).run(&t, &[0.0, 0.0], &[1.0, 1.0], &mut rng);
    }
}
