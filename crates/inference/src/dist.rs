//! Probability distributions used by the BayesPerf model.

use crate::special::ln_gamma;
use crate::{gamma, standard_normal};
use rand::Rng;
use serde::{Deserialize, Serialize};

const LN_2PI: f64 = 1.837_877_066_409_345_6;

/// A univariate Gaussian, parameterized by mean and variance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Gaussian {
    /// Mean.
    pub mean: f64,
    /// Variance (must be positive).
    pub var: f64,
}

impl Gaussian {
    /// Creates a Gaussian.
    ///
    /// # Panics
    ///
    /// Panics if `var` is not finite and positive.
    pub fn new(mean: f64, var: f64) -> Self {
        assert!(
            var.is_finite() && var > 0.0,
            "variance must be positive, got {var}"
        );
        Gaussian { mean, var }
    }

    /// Standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.var.sqrt()
    }

    /// Log probability density at `x`.
    pub fn log_pdf(&self, x: f64) -> f64 {
        let d = x - self.mean;
        -0.5 * (LN_2PI + self.var.ln()) - d * d / (2.0 * self.var)
    }

    /// Draws a sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.std_dev() * standard_normal(rng)
    }

    /// The symmetric credible interval at the given number of standard
    /// deviations (e.g. `1.96` for ~95%).
    pub fn interval(&self, z: f64) -> (f64, f64) {
        let h = z * self.std_dev();
        (self.mean - h, self.mean + h)
    }
}

/// A scaled and shifted Student's t-distribution.
///
/// This is the paper's §4.2 observation model: given `N` noisy samples of an
/// HPC with sample mean `μ` and sample variance `S²`, the marginal over the
/// unknown true value (variance marginalized out) is
/// `μ + (S/√N)·StudentT(ν = N−1)` — construct it with
/// [`StudentT::posterior_of_mean`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StudentT {
    /// Location.
    pub loc: f64,
    /// Scale (must be positive).
    pub scale: f64,
    /// Degrees of freedom ν (must be positive).
    pub dof: f64,
}

impl StudentT {
    /// Creates a scaled/shifted Student-t.
    ///
    /// # Panics
    ///
    /// Panics if `scale` or `dof` is not positive and finite.
    pub fn new(loc: f64, scale: f64, dof: f64) -> Self {
        assert!(
            scale.is_finite() && scale > 0.0,
            "scale must be positive, got {scale}"
        );
        assert!(
            dof.is_finite() && dof > 0.0,
            "degrees of freedom must be positive, got {dof}"
        );
        StudentT { loc, scale, dof }
    }

    /// The marginal posterior of a Gaussian's unknown mean from `n` samples
    /// with sample mean `mean` and sample standard deviation `sd`
    /// (Gelman et al., *Bayesian Data Analysis*; the paper's Eq. in §4.2).
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` (the marginal needs at least two samples) or `sd`
    /// is negative.
    pub fn posterior_of_mean(mean: f64, sd: f64, n: usize) -> Self {
        assert!(n >= 2, "need at least 2 samples, got {n}");
        assert!(sd >= 0.0, "standard deviation must be non-negative");
        // A zero sample deviation still leaves measurement quantization;
        // floor the scale to keep the density proper.
        let scale = (sd / (n as f64).sqrt()).max(1e-12);
        StudentT::new(mean, scale, (n - 1) as f64)
    }

    /// Log probability density at `x`.
    pub fn log_pdf(&self, x: f64) -> f64 {
        let v = self.dof;
        let z = (x - self.loc) / self.scale;
        ln_gamma((v + 1.0) / 2.0)
            - ln_gamma(v / 2.0)
            - 0.5 * (v * std::f64::consts::PI).ln()
            - self.scale.ln()
            - (v + 1.0) / 2.0 * (z * z / v).ln_1p()
    }

    /// Draws a sample (normal / sqrt(chi²/ν) representation).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let z = standard_normal(rng);
        let chi2 = 2.0 * gamma(rng, self.dof / 2.0);
        self.loc + self.scale * z / (chi2 / self.dof).sqrt()
    }

    /// Mean (defined for ν > 1).
    pub fn mean(&self) -> f64 {
        self.loc
    }

    /// Variance (defined for ν > 2; returns `None` otherwise).
    pub fn variance(&self) -> Option<f64> {
        if self.dof > 2.0 {
            Some(self.scale * self.scale * self.dof / (self.dof - 2.0))
        } else {
            None
        }
    }
}

/// The Gumbel (type-I extreme value) distribution.
///
/// Used by the CounterMiner baseline's outlier test: the maximum deviation
/// among a window of samples follows a Gumbel law, so an observation with
/// Gumbel tail probability below a threshold is flagged as an outlier.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Gumbel {
    /// Location μ.
    pub loc: f64,
    /// Scale β (must be positive).
    pub scale: f64,
}

impl Gumbel {
    /// Creates a Gumbel distribution.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not positive and finite.
    pub fn new(loc: f64, scale: f64) -> Self {
        assert!(
            scale.is_finite() && scale > 0.0,
            "scale must be positive, got {scale}"
        );
        Gumbel { loc, scale }
    }

    /// Method-of-moments fit from a sample mean and standard deviation.
    ///
    /// # Panics
    ///
    /// Panics if `sd` is not positive and finite.
    pub fn from_moments(mean: f64, sd: f64) -> Self {
        const EULER_GAMMA: f64 = 0.577_215_664_901_532_9;
        let scale = sd * 6f64.sqrt() / std::f64::consts::PI;
        Gumbel::new(mean - EULER_GAMMA * scale, scale)
    }

    /// Cumulative distribution function at `x`.
    pub fn cdf(&self, x: f64) -> f64 {
        (-(-(x - self.loc) / self.scale).exp()).exp()
    }

    /// Log probability density at `x`.
    pub fn log_pdf(&self, x: f64) -> f64 {
        let z = (x - self.loc) / self.scale;
        -self.scale.ln() - z - (-z).exp()
    }

    /// Draws a sample via inverse-CDF.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        self.loc - self.scale * (-u.ln()).ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_moments(samples: &[f64]) -> (f64, f64) {
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        (mean, var)
    }

    #[test]
    fn gaussian_log_pdf_peak() {
        let g = Gaussian::new(2.0, 4.0);
        assert!(g.log_pdf(2.0) > g.log_pdf(3.0));
        // pdf at mean = 1/sqrt(2π·4)
        let expected = -(0.5 * (LN_2PI + 4f64.ln()));
        assert!((g.log_pdf(2.0) - expected).abs() < 1e-12);
    }

    #[test]
    fn gaussian_sampling_moments() {
        let g = Gaussian::new(-3.0, 2.25);
        let mut rng = StdRng::seed_from_u64(11);
        let samples: Vec<f64> = (0..100_000).map(|_| g.sample(&mut rng)).collect();
        let (mean, var) = sample_moments(&samples);
        assert!((mean + 3.0).abs() < 0.02);
        assert!((var - 2.25).abs() < 0.05);
    }

    #[test]
    #[should_panic(expected = "variance must be positive")]
    fn gaussian_rejects_zero_variance() {
        Gaussian::new(0.0, 0.0);
    }

    #[test]
    fn student_t_integrates_to_one() {
        // Trapezoid over a wide grid.
        let t = StudentT::new(1.0, 2.0, 4.0);
        let (a, b, n) = (-200.0, 202.0, 400_000);
        let h = (b - a) / n as f64;
        let mut acc = 0.0;
        for i in 0..=n {
            let x = a + i as f64 * h;
            let w = if i == 0 || i == n { 0.5 } else { 1.0 };
            acc += w * t.log_pdf(x).exp();
        }
        assert!((acc * h - 1.0).abs() < 1e-3, "integral {}", acc * h);
    }

    #[test]
    fn student_t_sampling_moments() {
        let t = StudentT::new(5.0, 1.5, 10.0);
        let mut rng = StdRng::seed_from_u64(13);
        let samples: Vec<f64> = (0..200_000).map(|_| t.sample(&mut rng)).collect();
        let (mean, var) = sample_moments(&samples);
        assert!((mean - 5.0).abs() < 0.05, "mean {mean}");
        let expected_var = t.variance().unwrap();
        assert!(
            (var - expected_var).abs() < 0.15 * expected_var,
            "var {var}"
        );
    }

    #[test]
    fn posterior_of_mean_narrows_with_n() {
        let wide = StudentT::posterior_of_mean(10.0, 2.0, 5);
        let narrow = StudentT::posterior_of_mean(10.0, 2.0, 50);
        assert!(narrow.scale < wide.scale);
        assert_eq!(narrow.dof, 49.0);
    }

    #[test]
    fn posterior_of_mean_handles_zero_sd() {
        let t = StudentT::posterior_of_mean(3.0, 0.0, 4);
        assert!(t.scale > 0.0);
    }

    #[test]
    fn gumbel_cdf_monotone_and_bounded() {
        let g = Gumbel::new(0.0, 1.0);
        assert!(g.cdf(-5.0) < 1e-3);
        assert!(g.cdf(10.0) > 0.999);
        assert!(g.cdf(0.0) < g.cdf(1.0));
    }

    #[test]
    fn gumbel_from_moments_roundtrip() {
        let g = Gumbel::from_moments(7.0, 2.0);
        let mut rng = StdRng::seed_from_u64(17);
        let samples: Vec<f64> = (0..200_000).map(|_| g.sample(&mut rng)).collect();
        let (mean, var) = sample_moments(&samples);
        assert!((mean - 7.0).abs() < 0.05, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.05, "sd {}", var.sqrt());
    }

    proptest! {
        #[test]
        fn gaussian_interval_contains_mean(mean in -100.0f64..100.0, var in 0.01f64..100.0, z in 0.1f64..5.0) {
            let g = Gaussian::new(mean, var);
            let (lo, hi) = g.interval(z);
            prop_assert!(lo <= mean && mean <= hi);
        }

        #[test]
        fn student_t_log_pdf_is_symmetric(loc in -10.0f64..10.0, scale in 0.1f64..5.0, dof in 1.0f64..30.0, d in 0.0f64..10.0) {
            let t = StudentT::new(loc, scale, dof);
            let a = t.log_pdf(loc + d);
            let b = t.log_pdf(loc - d);
            prop_assert!((a - b).abs() < 1e-9);
        }

        #[test]
        fn gumbel_cdf_in_unit_interval(loc in -10.0f64..10.0, scale in 0.1f64..5.0, x in -50.0f64..50.0) {
            let g = Gumbel::new(loc, scale);
            let c = g.cdf(x);
            prop_assert!((0.0..=1.0).contains(&c));
        }
    }
}
