//! Closed-form tilted moments for Gaussian-linear sites.
//!
//! When every factor of a site is a Gaussian density on a *linear*
//! combination of the site's variables, the tilted distribution
//! `cavity × likelihood` is exactly a multivariate Gaussian: its precision
//! is the diagonal cavity precision plus one rank-1 term `c·cᵀ/σ²` per
//! factor, and its information vector accumulates `c·m/σ²`. The EP moment
//! step then needs no MCMC at all — a dense Cholesky solve of the site-local
//! `d×d` system yields the exact marginal means and variances in
//! `O(d³ + F·arity²)` flops, versus thousands of likelihood evaluations for
//! a sampled estimate. This is the [`MomentStrategy::Analytic`] fast path
//! (high-count Poisson observations and linear-constraint factors in
//! BayesPerf's catalogs are exactly this shape).
//!
//! [`MomentStrategy::Analytic`]: crate::MomentStrategy::Analytic
//!
//! All state lives in a caller-owned [`AnalyticScratch`] so the hot path is
//! allocation-free once the buffers have grown to the largest site
//! dimension.

use crate::dist::Gaussian;

/// Reusable buffers for one site's Gaussian-linear moment solve.
///
/// Lifecycle per site update: [`AnalyticScratch::begin`] with the cavity,
/// one [`AnalyticScratch::add_term`] per factor, then
/// [`AnalyticScratch::solve`]; read the results through
/// [`AnalyticScratch::mean`]/[`AnalyticScratch::var`].
#[derive(Debug, Clone, Default)]
pub struct AnalyticScratch {
    dim: usize,
    /// Tilted precision matrix, row-major `dim × dim` (symmetric; the
    /// Cholesky factor overwrites the lower triangle in `solve`).
    prec: Vec<f64>,
    /// Information vector `Λμ`.
    info: Vec<f64>,
    /// Lower-triangular inverse of the Cholesky factor (for marginal
    /// variances: `(Λ⁻¹)ⱼⱼ = Σᵢ (L⁻¹)ᵢⱼ²`).
    linv: Vec<f64>,
    mean: Vec<f64>,
    var: Vec<f64>,
}

impl AnalyticScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts a `cavity.len()`-dimensional solve: precision = diagonal
    /// cavity precision, information = precision-weighted cavity means.
    pub fn begin(&mut self, cavity: &[Gaussian]) {
        let d = cavity.len();
        self.dim = d;
        self.prec.clear();
        self.prec.resize(d * d, 0.0);
        self.info.clear();
        self.linv.clear();
        self.linv.resize(d * d, 0.0);
        self.mean.clear();
        self.mean.resize(d, 0.0);
        self.var.clear();
        self.var.resize(d, 0.0);
        for (j, g) in cavity.iter().enumerate() {
            let p = 1.0 / g.var;
            self.prec[j * d + j] = p;
            self.info.push(g.mean * p);
        }
    }

    /// Accumulates one Gaussian-linear factor: the linear combination
    /// `Σᵢ coeffs[i]·x[locals[i]]` observed as `obs` with variance `var`.
    ///
    /// # Panics
    ///
    /// Panics if `locals` and `coeffs` lengths differ, a local index is out
    /// of range, or `var` is not positive.
    pub fn add_term(&mut self, locals: &[usize], coeffs: &[f64], obs: f64, var: f64) {
        assert_eq!(locals.len(), coeffs.len(), "locals/coeffs length mismatch");
        assert!(
            var > 0.0,
            "linear-term variance must be positive, got {var}"
        );
        let d = self.dim;
        let w = 1.0 / var;
        for (&la, &ca) in locals.iter().zip(coeffs) {
            assert!(la < d, "local {la} out of range for dimension {d}");
            self.info[la] += ca * obs * w;
            for (&lb, &cb) in locals.iter().zip(coeffs) {
                self.prec[la * d + lb] += ca * cb * w;
            }
        }
    }

    /// Solves for the tilted marginal means and variances. Returns `false`
    /// (leaving outputs unspecified) if the precision matrix is not
    /// numerically positive definite — the caller then falls back to MCMC.
    pub fn solve(&mut self) -> bool {
        let d = self.dim;
        // In-place Cholesky: lower triangle of `prec` becomes L.
        for i in 0..d {
            for j in 0..=i {
                let mut s = self.prec[i * d + j];
                for k in 0..j {
                    s -= self.prec[i * d + k] * self.prec[j * d + k];
                }
                if i == j {
                    if s <= 0.0 || !s.is_finite() {
                        return false;
                    }
                    self.prec[i * d + i] = s.sqrt();
                } else {
                    self.prec[i * d + j] = s / self.prec[j * d + j];
                }
            }
        }
        // mean = Λ⁻¹·info via two triangular solves (y reuses `mean`).
        for i in 0..d {
            let mut s = self.info[i];
            for k in 0..i {
                s -= self.prec[i * d + k] * self.mean[k];
            }
            self.mean[i] = s / self.prec[i * d + i];
        }
        for i in (0..d).rev() {
            let mut s = self.mean[i];
            for k in i + 1..d {
                s -= self.prec[k * d + i] * self.mean[k];
            }
            self.mean[i] = s / self.prec[i * d + i];
        }
        // L⁻¹ by forward substitution per column, then marginal variances
        // (Λ⁻¹)ⱼⱼ = Σᵢ (L⁻¹)ᵢⱼ².
        for j in 0..d {
            self.linv[j * d + j] = 1.0 / self.prec[j * d + j];
            for i in j + 1..d {
                let mut s = 0.0;
                for k in j..i {
                    s += self.prec[i * d + k] * self.linv[k * d + j];
                }
                self.linv[i * d + j] = -s / self.prec[i * d + i];
            }
        }
        for j in 0..d {
            let mut s = 0.0;
            for i in j..d {
                let l = self.linv[i * d + j];
                s += l * l;
            }
            self.var[j] = s;
        }
        true
    }

    /// Marginal means of the last successful solve.
    pub fn mean(&self) -> &[f64] {
        &self.mean
    }

    /// Marginal variances of the last successful solve.
    pub fn var(&self) -> &[f64] {
        &self.var
    }
}

#[cfg(test)]
impl AnalyticScratch {
    /// Test-only access to the raw precision buffer.
    fn prec_mut(&mut self) -> &mut [f64] {
        &mut self.prec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_observation_matches_conjugate_update() {
        // Prior N(0, 4), observation x ~ N(6, 1): posterior N(4.8, 0.8).
        let mut ws = AnalyticScratch::new();
        ws.begin(&[Gaussian::new(0.0, 4.0)]);
        ws.add_term(&[0], &[1.0], 6.0, 1.0);
        assert!(ws.solve());
        assert!((ws.mean()[0] - 4.8).abs() < 1e-12);
        assert!((ws.var()[0] - 0.8).abs() < 1e-12);
    }

    #[test]
    fn linear_constraint_transfers_information() {
        // Wide cavities; x0 observed at 3 (tight), x0 + x1 observed at 10.
        let mut ws = AnalyticScratch::new();
        ws.begin(&[Gaussian::new(0.0, 1e4), Gaussian::new(0.0, 1e4)]);
        ws.add_term(&[0], &[1.0], 3.0, 1e-4);
        ws.add_term(&[0, 1], &[1.0, 1.0], 10.0, 1e-4);
        assert!(ws.solve());
        assert!((ws.mean()[0] - 3.0).abs() < 1e-3);
        assert!((ws.mean()[1] - 7.0).abs() < 1e-3);
        // x1 inherits both uncertainties: var ≈ 2e-4.
        assert!(ws.var()[1] > ws.var()[0]);
    }

    #[test]
    fn scaled_combination_solves_exactly() {
        // 2·x0 − x1 = 1 (σ² = 0.01) with cavities N(1, 1), N(2, 1).
        // Posterior precision: [[4/.01+1, -2/.01], [-2/.01, 1/.01+1]] …
        // verify against a dense hand solve instead: check Λ·mean = info.
        let cavity = [Gaussian::new(1.0, 1.0), Gaussian::new(2.0, 1.0)];
        let mut ws = AnalyticScratch::new();
        ws.begin(&cavity);
        ws.add_term(&[0, 1], &[2.0, -1.0], 1.0, 0.01);
        assert!(ws.solve());
        let (m0, m1) = (ws.mean()[0], ws.mean()[1]);
        // Residual of the constraint should be nearly satisfied.
        assert!(
            (2.0 * m0 - m1 - 1.0).abs() < 0.05,
            "residual {}",
            2.0 * m0 - m1 - 1.0
        );
        // And the solution must stay near the cavity means in the
        // unconstrained direction (1·m0 + 2·m1 ≈ 1·1 + 2·2 = 5).
        assert!((m0 + 2.0 * m1 - 5.0).abs() < 0.1);
    }

    #[test]
    fn reuse_across_dimensions_does_not_leak() {
        let mut ws = AnalyticScratch::new();
        ws.begin(&[Gaussian::new(0.0, 1.0); 5]);
        ws.add_term(&[0, 4], &[1.0, 1.0], 3.0, 0.5);
        assert!(ws.solve());
        // Smaller problem afterwards must match a fresh scratch.
        ws.begin(&[Gaussian::new(0.0, 4.0)]);
        ws.add_term(&[0], &[1.0], 6.0, 1.0);
        assert!(ws.solve());
        assert!((ws.mean()[0] - 4.8).abs() < 1e-12);
        assert!((ws.var()[0] - 0.8).abs() < 1e-12);
    }

    #[test]
    fn degenerate_precision_reports_failure() {
        let mut ws = AnalyticScratch::new();
        ws.begin(&[Gaussian::new(0.0, 1.0), Gaussian::new(0.0, 1.0)]);
        // A malicious negative-variance-like term that destroys positive
        // definiteness cannot be built through `add_term` (var > 0), so
        // emulate an ill-conditioned system by cancelling the diagonal.
        ws.prec_mut()[0] = -1.0;
        assert!(!ws.solve());
    }
}
