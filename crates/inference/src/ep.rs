//! Expectation Propagation over partitioned likelihoods (Alg. 1 of the
//! paper).
//!
//! The target density factorizes as `f(θ) = Π fₖ(θ)` where each `fₖ` is the
//! likelihood of the data captured in one partition — for BayesPerf, one
//! scheduled HPC configuration / time slice. EP maintains a global Gaussian
//! mean-field approximation `g(θ) = prior · Π gₖ(θ)` and iterates:
//!
//! 1. cavity: `g₋ₖ ∝ g / gₖ`
//! 2. tilted: `g\ₖ ∝ Pr(yₖ|θ) · g₋ₖ` — moments estimated by MCMC
//! 3. local update: moment-match a Gaussian to the tilted distribution
//! 4. global update: `g ← g · Δgₖ` with damping
//!
//! Because sites only interact through the global approximation, site
//! updates are independent — the parallelism the BayesPerf accelerator's EP
//! engines exploit (§5).

use crate::dist::Gaussian;
use crate::mcmc::{McmcConfig, McmcSampler, McmcStats, Target};
use crate::message::GaussianMessage;
use rand::Rng;

/// One partition of the data: a likelihood term over a subset of the global
/// variables.
pub trait EpSite {
    /// Indices of the global variables this site's likelihood touches.
    fn vars(&self) -> &[usize];

    /// Log likelihood of the site's data given the site-local state `x`
    /// (aligned with [`EpSite::vars`]).
    fn log_likelihood(&self, x: &[f64]) -> f64;

    /// Change in log likelihood when local variable `i` moves from `x[i]`
    /// to `new`; must leave `x` unchanged.
    ///
    /// The default recomputes the full likelihood twice. Sites with factor
    /// structure should override it to only re-evaluate the factors adjacent
    /// to `i` — the locality the BayesPerf accelerator exploits.
    fn log_likelihood_delta(&self, x: &mut [f64], i: usize, new: f64) -> f64 {
        let old = x[i];
        let before = self.log_likelihood(x);
        x[i] = new;
        let after = self.log_likelihood(x);
        x[i] = old;
        after - before
    }

    /// Optional MCMC initialization hint for local variable `i` (e.g. the
    /// scaled observation of that counter). `None` starts at the cavity
    /// mean.
    fn init_hint(&self, i: usize) -> Option<f64> {
        let _ = i;
        None
    }

    /// Optional proposal-scale hint for local variable `i` (e.g. the
    /// observation factor's width). `None` uses the cavity standard
    /// deviation.
    fn scale_hint(&self, i: usize) -> Option<f64> {
        let _ = i;
        None
    }
}

/// An [`EpSite`] built from a closure.
#[derive(Debug, Clone)]
pub struct FnSite<F> {
    vars: Vec<usize>,
    f: F,
}

impl<F: Fn(&[f64]) -> f64> FnSite<F> {
    /// Creates a site over `vars` with log-likelihood `f`.
    ///
    /// # Panics
    ///
    /// Panics if `vars` contains duplicates.
    pub fn new(vars: Vec<usize>, f: F) -> Self {
        let mut sorted = vars.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), vars.len(), "site variables must be unique");
        FnSite { vars, f }
    }
}

impl<F: Fn(&[f64]) -> f64> EpSite for FnSite<F> {
    fn vars(&self) -> &[usize] {
        &self.vars
    }
    fn log_likelihood(&self, x: &[f64]) -> f64 {
        (self.f)(x)
    }
}

/// Configuration of the EP driver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpConfig {
    /// Maximum outer sweeps over all sites.
    pub max_sweeps: usize,
    /// Damping factor η ∈ (0, 1] for site/global updates.
    pub damping: f64,
    /// Convergence tolerance: maximum |Δmean|/σ across variables per sweep.
    pub tol: f64,
    /// Variance floor applied to tilted moments (guards MCMC degeneracy).
    pub min_var: f64,
    /// MCMC settings used for tilted-moment estimation.
    pub mcmc: McmcConfig,
}

impl Default for EpConfig {
    fn default() -> Self {
        EpConfig {
            max_sweeps: 6,
            damping: 0.6,
            tol: 0.02,
            min_var: 1e-10,
            mcmc: McmcConfig::default(),
        }
    }
}

/// Result of running EP.
#[derive(Debug, Clone)]
pub struct EpResult {
    /// Posterior marginal per global variable.
    pub marginals: Vec<Gaussian>,
    /// Number of sweeps executed.
    pub sweeps: usize,
    /// Whether the tolerance was met before `max_sweeps`.
    pub converged: bool,
    /// Mean MCMC acceptance rate across all site updates.
    pub mean_acceptance: f64,
}

/// The EP driver: owns the prior, the sites, and the evolving global
/// approximation.
pub struct ExpectationPropagation {
    prior: Vec<Gaussian>,
    global: Vec<GaussianMessage>,
    sites: Vec<Box<dyn EpSite>>,
    site_approx: Vec<Vec<GaussianMessage>>,
    config: EpConfig,
}

impl std::fmt::Debug for ExpectationPropagation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExpectationPropagation")
            .field("num_vars", &self.prior.len())
            .field("num_sites", &self.sites.len())
            .field("config", &self.config)
            .finish()
    }
}

impl ExpectationPropagation {
    /// Creates a driver with the given per-variable Gaussian prior.
    pub fn new(prior: Vec<Gaussian>, config: EpConfig) -> Self {
        let global = prior.iter().map(GaussianMessage::from_gaussian).collect();
        ExpectationPropagation {
            prior,
            global,
            sites: Vec::new(),
            site_approx: Vec::new(),
            config,
        }
    }

    /// Number of global variables.
    pub fn num_vars(&self) -> usize {
        self.prior.len()
    }

    /// Number of registered sites.
    pub fn num_sites(&self) -> usize {
        self.sites.len()
    }

    /// Registers a site (initialized with the vacuous approximation).
    ///
    /// # Panics
    ///
    /// Panics if the site references a variable out of range.
    pub fn add_site<S: EpSite + 'static>(&mut self, site: S) {
        for &v in site.vars() {
            assert!(v < self.prior.len(), "site variable {v} out of range");
        }
        self.site_approx
            .push(vec![GaussianMessage::uniform(); site.vars().len()]);
        self.sites.push(Box::new(site));
    }

    /// The current posterior marginal of variable `v` (prior if no update
    /// has touched it).
    pub fn marginal(&self, v: usize) -> Gaussian {
        self.global[v].to_gaussian().unwrap_or(self.prior[v])
    }

    /// Runs EP to convergence (or `max_sweeps`).
    pub fn run<R: Rng + ?Sized>(&mut self, rng: &mut R) -> EpResult {
        let sampler = McmcSampler::new(self.config.mcmc);
        let mut sweeps = 0;
        let mut converged = false;
        let mut acc_sum = 0.0;
        let mut acc_n = 0usize;

        while sweeps < self.config.max_sweeps {
            sweeps += 1;
            let mut max_shift = 0.0f64;
            for k in 0..self.sites.len() {
                let stats = self.update_site(k, &sampler, rng, &mut max_shift);
                acc_sum += stats.acceptance;
                acc_n += 1;
            }
            if max_shift <= self.config.tol {
                converged = true;
                break;
            }
        }

        EpResult {
            marginals: (0..self.prior.len()).map(|v| self.marginal(v)).collect(),
            sweeps,
            converged,
            mean_acceptance: if acc_n == 0 { 0.0 } else { acc_sum / acc_n as f64 },
        }
    }

    /// One site update (lines 3–7 of Alg. 1). Returns the MCMC statistics;
    /// updates `max_shift` with the largest normalized posterior-mean move.
    fn update_site<R: Rng + ?Sized>(
        &mut self,
        k: usize,
        sampler: &McmcSampler,
        rng: &mut R,
        max_shift: &mut f64,
    ) -> McmcStats {
        let scope: Vec<usize> = self.sites[k].vars().to_vec();
        let d = scope.len();

        // Line 3: cavity distribution g₋ₖ = g / gₖ, with a widened-prior
        // fallback when the quotient is improper.
        let mut cavity_msgs = Vec::with_capacity(d);
        let mut cavity = Vec::with_capacity(d);
        for (j, &v) in scope.iter().enumerate() {
            let msg = self.global[v].div(&self.site_approx[k][j]);
            let gauss = msg.to_gaussian().unwrap_or_else(|| {
                let p = self.prior[v];
                Gaussian::new(self.marginal(v).mean, p.var * 100.0)
            });
            cavity_msgs.push(GaussianMessage::from_gaussian(&gauss));
            cavity.push(gauss);
        }

        // Line 4: tilted moments via MCMC on Pr(yₖ|θ)·g₋ₖ(θ).
        let target = TiltedTarget {
            site: self.sites[k].as_ref(),
            cavity: &cavity,
        };
        let init: Vec<f64> = cavity
            .iter()
            .enumerate()
            .map(|(j, g)| self.sites[k].init_hint(j).unwrap_or(g.mean))
            .collect();
        let scales: Vec<f64> = cavity
            .iter()
            .enumerate()
            .map(|(j, g)| match self.sites[k].scale_hint(j) {
                Some(h) => h.min(g.std_dev()),
                None => g.std_dev(),
            })
            .collect();
        let stats = sampler.run(&target, &init, &scales, rng);

        // Lines 5–7: local moment match, damped site update, global update.
        for (j, &v) in scope.iter().enumerate() {
            let tilted = GaussianMessage::from_moments(
                stats.mean[j],
                stats.var[j].max(self.config.min_var),
            );
            let new_site = tilted.div(&cavity_msgs[j]);
            let damped = self.site_approx[k][j].damped_toward(&new_site, self.config.damping);
            let candidate = self.global[v].div(&self.site_approx[k][j]).mul(&damped);
            if let Some(g_new) = candidate.to_gaussian() {
                let g_old = self.marginal(v);
                let shift = (g_new.mean - g_old.mean).abs() / g_old.std_dev().max(1e-12);
                *max_shift = max_shift.max(shift);
                self.global[v] = candidate;
                self.site_approx[k][j] = damped;
            }
        }
        stats
    }
}

/// The tilted distribution of one site: likelihood × cavity.
struct TiltedTarget<'a> {
    site: &'a dyn EpSite,
    cavity: &'a [Gaussian],
}

impl Target for TiltedTarget<'_> {
    fn dim(&self) -> usize {
        self.cavity.len()
    }

    fn log_density(&self, x: &[f64]) -> f64 {
        let prior: f64 = x
            .iter()
            .zip(self.cavity)
            .map(|(xi, g)| g.log_pdf(*xi))
            .sum();
        prior + self.site.log_likelihood(x)
    }

    fn log_density_delta(&self, x: &mut [f64], i: usize, new: f64) -> f64 {
        let d_prior = self.cavity[i].log_pdf(new) - self.cavity[i].log_pdf(x[i]);
        d_prior + self.site.log_likelihood_delta(x, i, new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(12345)
    }

    #[test]
    fn gaussian_observation_matches_analytic_posterior() {
        // Prior N(0, 4); observation x ~ N(6, 1). Posterior: N(4.8, 0.8).
        let mut ep = ExpectationPropagation::new(
            vec![Gaussian::new(0.0, 4.0)],
            EpConfig::default(),
        );
        ep.add_site(FnSite::new(vec![0], |x: &[f64]| {
            Gaussian::new(6.0, 1.0).log_pdf(x[0])
        }));
        let r = ep.run(&mut rng());
        assert!(
            (r.marginals[0].mean - 4.8).abs() < 0.25,
            "mean {}",
            r.marginals[0].mean
        );
        assert!(
            (r.marginals[0].var - 0.8).abs() < 0.4,
            "var {}",
            r.marginals[0].var
        );
    }

    #[test]
    fn two_sites_combine_like_a_product() {
        // Two unit-variance observations at 0 and 10 on a flat-ish prior:
        // posterior mean ≈ 5.
        let mut ep = ExpectationPropagation::new(
            vec![Gaussian::new(5.0, 1000.0)],
            EpConfig::default(),
        );
        ep.add_site(FnSite::new(vec![0], |x: &[f64]| {
            Gaussian::new(0.0, 1.0).log_pdf(x[0])
        }));
        ep.add_site(FnSite::new(vec![0], |x: &[f64]| {
            Gaussian::new(10.0, 1.0).log_pdf(x[0])
        }));
        let r = ep.run(&mut rng());
        assert!(
            (r.marginals[0].mean - 5.0).abs() < 0.4,
            "mean {}",
            r.marginals[0].mean
        );
        // Posterior variance ≈ 0.5 (product of two unit-variance terms).
        assert!(r.marginals[0].var < 1.5);
    }

    #[test]
    fn linear_constraint_transfers_information() {
        // x0 + x1 ≈ 10 (tight), x0 observed near 3 -> x1 ≈ 7 with
        // uncertainty larger than x0's.
        let mut ep = ExpectationPropagation::new(
            vec![Gaussian::new(5.0, 100.0), Gaussian::new(5.0, 100.0)],
            EpConfig::default(),
        );
        ep.add_site(FnSite::new(vec![0], |x: &[f64]| {
            Gaussian::new(3.0, 0.01).log_pdf(x[0])
        }));
        ep.add_site(FnSite::new(vec![0, 1], |x: &[f64]| {
            Gaussian::new(0.0, 0.01).log_pdf(x[0] + x[1] - 10.0)
        }));
        let r = ep.run(&mut rng());
        assert!(
            (r.marginals[0].mean - 3.0).abs() < 0.3,
            "x0 {}",
            r.marginals[0].mean
        );
        assert!(
            (r.marginals[1].mean - 7.0).abs() < 0.5,
            "x1 {}",
            r.marginals[1].mean
        );
    }

    #[test]
    fn chained_constraints_propagate_transitively() {
        // x0 observed; x0 + x1 = 10; x1 + x2 = 12 -> x2 ≈ x0 + 2.
        let prior = vec![
            Gaussian::new(4.0, 50.0),
            Gaussian::new(4.0, 50.0),
            Gaussian::new(4.0, 50.0),
        ];
        let mut cfg = EpConfig::default();
        cfg.max_sweeps = 10;
        let mut ep = ExpectationPropagation::new(prior, cfg);
        ep.add_site(FnSite::new(vec![0], |x: &[f64]| {
            Gaussian::new(4.0, 0.01).log_pdf(x[0])
        }));
        ep.add_site(FnSite::new(vec![0, 1], |x: &[f64]| {
            Gaussian::new(0.0, 0.02).log_pdf(x[0] + x[1] - 10.0)
        }));
        ep.add_site(FnSite::new(vec![1, 2], |x: &[f64]| {
            Gaussian::new(0.0, 0.02).log_pdf(x[0] + x[1] - 12.0)
        }));
        let r = ep.run(&mut rng());
        assert!(
            (r.marginals[2].mean - 6.0).abs() < 0.7,
            "x2 {}",
            r.marginals[2].mean
        );
    }

    #[test]
    fn untouched_variable_keeps_prior() {
        let mut ep = ExpectationPropagation::new(
            vec![Gaussian::new(1.0, 2.0), Gaussian::new(9.0, 3.0)],
            EpConfig::default(),
        );
        ep.add_site(FnSite::new(vec![0], |x: &[f64]| {
            Gaussian::new(1.0, 1.0).log_pdf(x[0])
        }));
        let r = ep.run(&mut rng());
        assert_eq!(r.marginals[1].mean, 9.0);
        assert_eq!(r.marginals[1].var, 3.0);
    }

    #[test]
    fn converges_and_reports_acceptance() {
        let mut ep = ExpectationPropagation::new(
            vec![Gaussian::new(0.0, 10.0)],
            EpConfig {
                max_sweeps: 20,
                ..EpConfig::default()
            },
        );
        ep.add_site(FnSite::new(vec![0], |x: &[f64]| {
            Gaussian::new(2.0, 0.5).log_pdf(x[0])
        }));
        let r = ep.run(&mut rng());
        assert!(r.converged, "should converge in 20 sweeps");
        assert!(r.sweeps < 20);
        assert!(r.mean_acceptance > 0.05 && r.mean_acceptance < 0.95);
    }

    #[test]
    #[should_panic(expected = "site variable 3 out of range")]
    fn rejects_out_of_range_site() {
        let mut ep =
            ExpectationPropagation::new(vec![Gaussian::new(0.0, 1.0)], EpConfig::default());
        ep.add_site(FnSite::new(vec![3], |_: &[f64]| 0.0));
    }

    #[test]
    #[should_panic(expected = "site variables must be unique")]
    fn rejects_duplicate_site_vars() {
        FnSite::new(vec![0, 0], |_: &[f64]| 0.0);
    }
}
