//! Expectation Propagation over partitioned likelihoods (Alg. 1 of the
//! paper), executed by a software "EP engine farm".
//!
//! The target density factorizes as `f(θ) = Π fₖ(θ)` where each `fₖ` is the
//! likelihood of the data captured in one partition — for BayesPerf, one
//! scheduled HPC configuration / time slice. EP maintains a global Gaussian
//! mean-field approximation `g(θ) = prior · Π gₖ(θ)` and iterates:
//!
//! 1. cavity: `g₋ₖ ∝ g / gₖ`
//! 2. tilted: `g\ₖ ∝ Pr(yₖ|θ) · g₋ₖ` — moments estimated by MCMC
//! 3. local update: moment-match a Gaussian to the tilted distribution
//! 4. global update: `g ← g · Δgₖ` with damping
//!
//! # The batched-parallel sweep schedule
//!
//! Sites only interact through the global approximation — the parallelism
//! the BayesPerf accelerator's EP engines exploit (§5). The software farm
//! ([`ExpectationPropagation::run_parallel`]) realizes it in three steps:
//!
//! 1. **Conflict-free batching.** Sites are partitioned by greedy coloring
//!    of the site-conflict graph (two sites conflict when their variable
//!    scopes intersect; see [`SweepSchedule`]). Within a batch, updates
//!    touch disjoint variables, so Jacobi-style batch application equals
//!    the sequential Gauss-Seidel order exactly.
//! 2. **Parallel compute, ordered merge.** Each sweep walks the batches;
//!    a batch's site updates are computed concurrently on
//!    `std::thread::scope` workers into per-site [`SiteUpdate`] records,
//!    then merged into the global approximation sequentially in ascending
//!    site order. The merge is cheap (a handful of message writes per
//!    site); all MCMC work happens in the parallel phase.
//! 3. **Counter-based RNG streams.** Every site update draws from its own
//!    [`SiteRng`] stream, keyed by `(seed, site, sweep)` — no shared
//!    sequential generator.
//!
//! # Determinism guarantee
//!
//! Because the schedule is a pure function of the site list, each site's
//! randomness is a pure function of `(seed, site, sweep)`, batch members
//! read disjoint state, and merges happen in a fixed order,
//! `run_parallel(seed, threads)` returns **bit-identical** [`EpResult`]s
//! for any `threads ≥ 1`. Thread count is purely a throughput knob — the
//! `parallel_determinism` integration test pins this down.
//!
//! The legacy [`ExpectationPropagation::run`] keeps the original
//! caller-supplied-RNG sequential path (site updates in registration
//! order, one shared stream); its results depend on the RNG stream, not on
//! any scheduling choice.
//!
//! The hot path is allocation-free after warm-up: per-worker
//! [`SiteWorkspace`] buffers (cavity state, MCMC scratch) and per-site
//! [`SiteUpdate`] records are reused across sweeps.

use crate::dist::Gaussian;
use crate::mcmc::{McmcConfig, McmcSampler, Target};
use crate::message::GaussianMessage;
use crate::parallel::{SiteUpdate, SiteWorkspace, SweepSchedule};
use crate::rng::SiteRng;
use rand::Rng;

/// One partition of the data: a likelihood term over a subset of the global
/// variables.
pub trait EpSite {
    /// Indices of the global variables this site's likelihood touches.
    fn vars(&self) -> &[usize];

    /// Log likelihood of the site's data given the site-local state `x`
    /// (aligned with [`EpSite::vars`]).
    fn log_likelihood(&self, x: &[f64]) -> f64;

    /// Change in log likelihood when local variable `i` moves from `x[i]`
    /// to `new`; must leave `x` unchanged.
    ///
    /// The default recomputes the full likelihood twice. Sites with factor
    /// structure should override it to only re-evaluate the factors adjacent
    /// to `i` — the locality the BayesPerf accelerator exploits.
    /// [`FactorSite`](crate::FactorSite) implements exactly that, backed by
    /// a CSR variable→factor index.
    fn log_likelihood_delta(&self, x: &mut [f64], i: usize, new: f64) -> f64 {
        let old = x[i];
        let before = self.log_likelihood(x);
        x[i] = new;
        let after = self.log_likelihood(x);
        x[i] = old;
        after - before
    }

    /// Optional MCMC initialization hint for local variable `i` (e.g. the
    /// scaled observation of that counter). `None` starts at the cavity
    /// mean.
    fn init_hint(&self, i: usize) -> Option<f64> {
        let _ = i;
        None
    }

    /// Optional proposal-scale hint for local variable `i` (e.g. the
    /// observation factor's width). `None` uses the cavity standard
    /// deviation.
    fn scale_hint(&self, i: usize) -> Option<f64> {
        let _ = i;
        None
    }
}

/// An [`EpSite`] built from a closure.
#[derive(Debug, Clone)]
pub struct FnSite<F> {
    vars: Vec<usize>,
    f: F,
}

impl<F: Fn(&[f64]) -> f64> FnSite<F> {
    /// Creates a site over `vars` with log-likelihood `f`.
    ///
    /// # Panics
    ///
    /// Panics if `vars` contains duplicates.
    pub fn new(vars: Vec<usize>, f: F) -> Self {
        let mut sorted = vars.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), vars.len(), "site variables must be unique");
        FnSite { vars, f }
    }
}

impl<F: Fn(&[f64]) -> f64> EpSite for FnSite<F> {
    fn vars(&self) -> &[usize] {
        &self.vars
    }
    fn log_likelihood(&self, x: &[f64]) -> f64 {
        (self.f)(x)
    }
}

/// Configuration of the EP driver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpConfig {
    /// Maximum outer sweeps over all sites.
    pub max_sweeps: usize,
    /// Damping factor η ∈ (0, 1] for site/global updates.
    pub damping: f64,
    /// Convergence tolerance: maximum |Δmean|/σ across variables per sweep.
    pub tol: f64,
    /// Variance floor applied to tilted moments (guards MCMC degeneracy).
    pub min_var: f64,
    /// MCMC settings used for tilted-moment estimation.
    pub mcmc: McmcConfig,
}

impl Default for EpConfig {
    fn default() -> Self {
        EpConfig {
            max_sweeps: 6,
            damping: 0.6,
            tol: 0.02,
            min_var: 1e-10,
            mcmc: McmcConfig::default(),
        }
    }
}

/// Result of running EP.
#[derive(Debug, Clone, PartialEq)]
pub struct EpResult {
    /// Posterior marginal per global variable.
    pub marginals: Vec<Gaussian>,
    /// Number of sweeps executed.
    pub sweeps: usize,
    /// Whether the tolerance was met before `max_sweeps`.
    pub converged: bool,
    /// Mean MCMC acceptance rate across all site updates.
    pub mean_acceptance: f64,
}

/// The EP driver: owns the prior, the sites, and the evolving global
/// approximation.
pub struct ExpectationPropagation {
    prior: Vec<Gaussian>,
    global: Vec<GaussianMessage>,
    sites: Vec<Box<dyn EpSite + Send + Sync>>,
    site_approx: Vec<Vec<GaussianMessage>>,
    config: EpConfig,
}

impl std::fmt::Debug for ExpectationPropagation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExpectationPropagation")
            .field("num_vars", &self.prior.len())
            .field("num_sites", &self.sites.len())
            .field("config", &self.config)
            .finish()
    }
}

impl ExpectationPropagation {
    /// Creates a driver with the given per-variable Gaussian prior.
    pub fn new(prior: Vec<Gaussian>, config: EpConfig) -> Self {
        let global = prior.iter().map(GaussianMessage::from_gaussian).collect();
        ExpectationPropagation {
            prior,
            global,
            sites: Vec::new(),
            site_approx: Vec::new(),
            config,
        }
    }

    /// Number of global variables.
    pub fn num_vars(&self) -> usize {
        self.prior.len()
    }

    /// Number of registered sites.
    pub fn num_sites(&self) -> usize {
        self.sites.len()
    }

    /// Registers a site (initialized with the vacuous approximation).
    ///
    /// Sites must be `Send + Sync` so the engine farm can update them from
    /// worker threads.
    ///
    /// # Panics
    ///
    /// Panics if the site references a variable out of range.
    pub fn add_site<S: EpSite + Send + Sync + 'static>(&mut self, site: S) {
        for &v in site.vars() {
            assert!(v < self.prior.len(), "site variable {v} out of range");
        }
        self.site_approx
            .push(vec![GaussianMessage::uniform(); site.vars().len()]);
        self.sites.push(Box::new(site));
    }

    /// The current posterior marginal of variable `v` (prior if no update
    /// has touched it).
    pub fn marginal(&self, v: usize) -> Gaussian {
        self.global[v].to_gaussian().unwrap_or(self.prior[v])
    }

    /// The conflict-free batch schedule the engine farm would run — exposed
    /// for diagnostics and benchmarks.
    pub fn sweep_schedule(&self) -> SweepSchedule {
        SweepSchedule::for_sites(self.prior.len(), &self.sites)
    }

    /// Runs EP sequentially with a caller-supplied RNG (the legacy path):
    /// sites update in registration order, Gauss-Seidel style, all drawing
    /// from `rng`'s single stream.
    ///
    /// Results depend on `rng`'s stream; for scheduling-independent,
    /// thread-scalable inference use
    /// [`ExpectationPropagation::run_parallel`].
    pub fn run<R: Rng + ?Sized>(&mut self, rng: &mut R) -> EpResult {
        let sampler = McmcSampler::new(self.config.mcmc);
        let mut ws = SiteWorkspace::new();
        let mut out = SiteUpdate::default();
        let mut sweeps = 0;
        let mut converged = false;
        let mut acc_sum = 0.0;
        let mut acc_n = 0usize;

        while sweeps < self.config.max_sweeps {
            sweeps += 1;
            let mut max_shift = 0.0f64;
            for k in 0..self.sites.len() {
                out.prepare(self.sites[k].as_ref());
                compute_site_update(
                    self.sites[k].as_ref(),
                    &self.site_approx[k],
                    &self.global,
                    &self.prior,
                    &self.config,
                    &sampler,
                    rng,
                    &mut ws,
                    &mut out,
                );
                let shift = self.apply_site_update(k, &out);
                max_shift = max_shift.max(shift);
                acc_sum += out.acceptance;
                acc_n += 1;
            }
            if max_shift <= self.config.tol {
                converged = true;
                break;
            }
        }

        self.result(sweeps, converged, acc_sum, acc_n)
    }

    /// Runs EP on the engine farm: conflict-free batches of site updates
    /// computed concurrently on up to `threads` workers, merged
    /// deterministically.
    ///
    /// The result is **bit-identical for any `threads ≥ 1`** given the same
    /// `seed` — see the module docs for why. `threads` is clamped to at
    /// least 1 and at most the largest batch size (more workers than sites
    /// in a batch cannot help).
    pub fn run_parallel(&mut self, seed: u64, threads: usize) -> EpResult {
        let schedule = self.sweep_schedule();
        let threads = threads.clamp(1, schedule.max_batch_len().max(1));
        let sampler = McmcSampler::new(self.config.mcmc);

        // Per-site result records and per-worker workspaces, allocated once
        // and reused across sweeps.
        let mut outs: Vec<Vec<SiteUpdate>> = schedule
            .batches()
            .iter()
            .map(|batch| {
                batch
                    .iter()
                    .map(|&k| {
                        let mut u = SiteUpdate::default();
                        u.prepare(self.sites[k].as_ref());
                        u
                    })
                    .collect()
            })
            .collect();
        let mut workspaces: Vec<SiteWorkspace> =
            (0..threads).map(|_| SiteWorkspace::new()).collect();

        let mut sweeps = 0;
        let mut converged = false;
        let mut acc_sum = 0.0;
        let mut acc_n = 0usize;

        while sweeps < self.config.max_sweeps {
            let sweep_idx = sweeps;
            sweeps += 1;
            let mut max_shift = 0.0f64;
            for (batch, batch_out) in schedule.batches().iter().zip(outs.iter_mut()) {
                let chunk = batch.len().div_ceil(threads).max(1);
                {
                    let sites = &self.sites;
                    let site_approx = &self.site_approx;
                    let global = &self.global;
                    let prior = &self.prior;
                    let config = &self.config;
                    let sampler = &sampler;
                    let mut work = batch
                        .chunks(chunk)
                        .zip(batch_out.chunks_mut(chunk))
                        .zip(workspaces.iter_mut());
                    if threads == 1 {
                        // Inline on the driver thread: same code path, no
                        // spawn overhead (and trivially the same results —
                        // workers never observe each other's writes).
                        for ((site_chunk, out_chunk), ws) in work {
                            farm_worker(
                                sites,
                                site_approx,
                                global,
                                prior,
                                config,
                                sampler,
                                seed,
                                sweep_idx,
                                site_chunk,
                                out_chunk,
                                ws,
                            );
                        }
                    } else {
                        std::thread::scope(|scope| {
                            for ((site_chunk, out_chunk), ws) in &mut work {
                                scope.spawn(move || {
                                    farm_worker(
                                        sites,
                                        site_approx,
                                        global,
                                        prior,
                                        config,
                                        sampler,
                                        seed,
                                        sweep_idx,
                                        site_chunk,
                                        out_chunk,
                                        ws,
                                    );
                                });
                            }
                        });
                    }
                }
                // Deterministic merge: ascending site order within the
                // batch, regardless of which worker computed what.
                for (&k, out) in batch.iter().zip(batch_out.iter()) {
                    let shift = self.apply_site_update(k, out);
                    max_shift = max_shift.max(shift);
                    acc_sum += out.acceptance;
                    acc_n += 1;
                }
            }
            if max_shift <= self.config.tol {
                converged = true;
                break;
            }
        }

        self.result(sweeps, converged, acc_sum, acc_n)
    }

    /// Merges one staged site update into the global approximation.
    /// Returns the largest normalized posterior-mean shift it caused.
    fn apply_site_update(&mut self, k: usize, out: &SiteUpdate) -> f64 {
        let mut max_shift = 0.0f64;
        for (j, &v) in out.scope.iter().enumerate() {
            if !out.accepted[j] {
                continue;
            }
            let g_old = self.global[v].to_gaussian().unwrap_or(self.prior[v]);
            if let Some(g_new) = out.global_new[j].to_gaussian() {
                let shift = (g_new.mean - g_old.mean).abs() / g_old.std_dev().max(1e-12);
                max_shift = max_shift.max(shift);
            }
            self.global[v] = out.global_new[j];
            self.site_approx[k][j] = out.damped[j];
        }
        max_shift
    }

    fn result(&self, sweeps: usize, converged: bool, acc_sum: f64, acc_n: usize) -> EpResult {
        EpResult {
            marginals: (0..self.prior.len()).map(|v| self.marginal(v)).collect(),
            sweeps,
            converged,
            mean_acceptance: if acc_n == 0 {
                0.0
            } else {
                acc_sum / acc_n as f64
            },
        }
    }
}

/// One worker's share of a batch: compute site updates for `site_chunk`
/// into `out_chunk`, each site on its own counter-based RNG stream.
#[allow(clippy::too_many_arguments)]
fn farm_worker(
    sites: &[Box<dyn EpSite + Send + Sync>],
    site_approx: &[Vec<GaussianMessage>],
    global: &[GaussianMessage],
    prior: &[Gaussian],
    config: &EpConfig,
    sampler: &McmcSampler,
    seed: u64,
    sweep: usize,
    site_chunk: &[usize],
    out_chunk: &mut [SiteUpdate],
    ws: &mut SiteWorkspace,
) {
    for (&k, out) in site_chunk.iter().zip(out_chunk.iter_mut()) {
        let mut rng = SiteRng::for_site(seed, k, sweep);
        compute_site_update(
            sites[k].as_ref(),
            &site_approx[k],
            global,
            prior,
            config,
            sampler,
            &mut rng,
            ws,
            out,
        );
    }
}

/// One site update (lines 3–7 of Alg. 1), staged into `out` without
/// touching shared state — the pure-compute half the engine farm runs in
/// parallel. `out` must already be [`SiteUpdate::prepare`]d for `site`.
#[allow(clippy::too_many_arguments)]
fn compute_site_update<R: Rng + ?Sized>(
    site: &dyn EpSite,
    approx_k: &[GaussianMessage],
    global: &[GaussianMessage],
    prior: &[Gaussian],
    config: &EpConfig,
    sampler: &McmcSampler,
    rng: &mut R,
    ws: &mut SiteWorkspace,
    out: &mut SiteUpdate,
) {
    let SiteWorkspace {
        cavity_msgs,
        cavity,
        init,
        scales,
        scratch,
    } = ws;
    let scope = site.vars();

    // Line 3: cavity distribution g₋ₖ = g / gₖ, with a widened-prior
    // fallback when the quotient is improper.
    cavity_msgs.clear();
    cavity.clear();
    for (j, &v) in scope.iter().enumerate() {
        let msg = global[v].div(&approx_k[j]);
        let gauss = msg.to_gaussian().unwrap_or_else(|| {
            let p = prior[v];
            let mean = global[v].to_gaussian().unwrap_or(p).mean;
            Gaussian::new(mean, p.var * 100.0)
        });
        cavity_msgs.push(GaussianMessage::from_gaussian(&gauss));
        cavity.push(gauss);
    }

    // Line 4: tilted moments via MCMC on Pr(yₖ|θ)·g₋ₖ(θ).
    init.clear();
    scales.clear();
    for (j, g) in cavity.iter().enumerate() {
        init.push(site.init_hint(j).unwrap_or(g.mean));
        scales.push(match site.scale_hint(j) {
            Some(h) => h.min(g.std_dev()),
            None => g.std_dev(),
        });
    }
    let target = TiltedTarget { site, cavity };
    sampler.run_with_scratch(&target, init, scales, rng, scratch);
    out.acceptance = scratch.acceptance();

    // Lines 5–7: local moment match, damped site update, staged global
    // update.
    for (j, &v) in scope.iter().enumerate() {
        let tilted =
            GaussianMessage::from_moments(scratch.mean()[j], scratch.var()[j].max(config.min_var));
        let new_site = tilted.div(&cavity_msgs[j]);
        let damped = approx_k[j].damped_toward(&new_site, config.damping);
        let candidate = global[v].div(&approx_k[j]).mul(&damped);
        if candidate.is_proper() {
            out.accepted[j] = true;
            out.global_new[j] = candidate;
            out.damped[j] = damped;
        } else {
            out.accepted[j] = false;
        }
    }
}

/// The tilted distribution of one site: likelihood × cavity.
struct TiltedTarget<'a> {
    site: &'a dyn EpSite,
    cavity: &'a [Gaussian],
}

impl Target for TiltedTarget<'_> {
    fn dim(&self) -> usize {
        self.cavity.len()
    }

    fn log_density(&self, x: &[f64]) -> f64 {
        let prior: f64 = x
            .iter()
            .zip(self.cavity)
            .map(|(xi, g)| g.log_pdf(*xi))
            .sum();
        prior + self.site.log_likelihood(x)
    }

    fn log_density_delta(&self, x: &mut [f64], i: usize, new: f64) -> f64 {
        let d_prior = self.cavity[i].log_pdf(new) - self.cavity[i].log_pdf(x[i]);
        d_prior + self.site.log_likelihood_delta(x, i, new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(12345)
    }

    #[test]
    fn gaussian_observation_matches_analytic_posterior() {
        // Prior N(0, 4); observation x ~ N(6, 1). Posterior: N(4.8, 0.8).
        let mut ep =
            ExpectationPropagation::new(vec![Gaussian::new(0.0, 4.0)], EpConfig::default());
        ep.add_site(FnSite::new(vec![0], |x: &[f64]| {
            Gaussian::new(6.0, 1.0).log_pdf(x[0])
        }));
        let r = ep.run(&mut rng());
        assert!(
            (r.marginals[0].mean - 4.8).abs() < 0.25,
            "mean {}",
            r.marginals[0].mean
        );
        assert!(
            (r.marginals[0].var - 0.8).abs() < 0.4,
            "var {}",
            r.marginals[0].var
        );
    }

    #[test]
    fn two_sites_combine_like_a_product() {
        // Two unit-variance observations at 0 and 10 on a flat-ish prior:
        // posterior mean ≈ 5.
        let mut ep =
            ExpectationPropagation::new(vec![Gaussian::new(5.0, 1000.0)], EpConfig::default());
        ep.add_site(FnSite::new(vec![0], |x: &[f64]| {
            Gaussian::new(0.0, 1.0).log_pdf(x[0])
        }));
        ep.add_site(FnSite::new(vec![0], |x: &[f64]| {
            Gaussian::new(10.0, 1.0).log_pdf(x[0])
        }));
        let r = ep.run(&mut rng());
        assert!(
            (r.marginals[0].mean - 5.0).abs() < 0.4,
            "mean {}",
            r.marginals[0].mean
        );
        // Posterior variance ≈ 0.5 (product of two unit-variance terms).
        assert!(r.marginals[0].var < 1.5);
    }

    #[test]
    fn linear_constraint_transfers_information() {
        // x0 + x1 ≈ 10 (tight), x0 observed near 3 -> x1 ≈ 7 with
        // uncertainty larger than x0's.
        let mut ep = ExpectationPropagation::new(
            vec![Gaussian::new(5.0, 100.0), Gaussian::new(5.0, 100.0)],
            EpConfig::default(),
        );
        ep.add_site(FnSite::new(vec![0], |x: &[f64]| {
            Gaussian::new(3.0, 0.01).log_pdf(x[0])
        }));
        ep.add_site(FnSite::new(vec![0, 1], |x: &[f64]| {
            Gaussian::new(0.0, 0.01).log_pdf(x[0] + x[1] - 10.0)
        }));
        let r = ep.run(&mut rng());
        assert!(
            (r.marginals[0].mean - 3.0).abs() < 0.3,
            "x0 {}",
            r.marginals[0].mean
        );
        assert!(
            (r.marginals[1].mean - 7.0).abs() < 0.5,
            "x1 {}",
            r.marginals[1].mean
        );
    }

    #[test]
    fn parallel_run_matches_sequential_quality() {
        // Same model as above, through the engine farm path.
        let mut ep = ExpectationPropagation::new(
            vec![Gaussian::new(5.0, 100.0), Gaussian::new(5.0, 100.0)],
            EpConfig::default(),
        );
        ep.add_site(FnSite::new(vec![0], |x: &[f64]| {
            Gaussian::new(3.0, 0.01).log_pdf(x[0])
        }));
        ep.add_site(FnSite::new(vec![0, 1], |x: &[f64]| {
            Gaussian::new(0.0, 0.01).log_pdf(x[0] + x[1] - 10.0)
        }));
        let r = ep.run_parallel(2024, 2);
        assert!(
            (r.marginals[0].mean - 3.0).abs() < 0.3,
            "x0 {}",
            r.marginals[0].mean
        );
        assert!(
            (r.marginals[1].mean - 7.0).abs() < 0.5,
            "x1 {}",
            r.marginals[1].mean
        );
        assert!(r.mean_acceptance > 0.05 && r.mean_acceptance < 0.95);
    }

    #[test]
    fn chained_constraints_propagate_transitively() {
        // x0 observed; x0 + x1 = 10; x1 + x2 = 12 -> x2 ≈ x0 + 2.
        let prior = vec![
            Gaussian::new(4.0, 50.0),
            Gaussian::new(4.0, 50.0),
            Gaussian::new(4.0, 50.0),
        ];
        let cfg = EpConfig {
            max_sweeps: 10,
            ..EpConfig::default()
        };
        let mut ep = ExpectationPropagation::new(prior, cfg);
        ep.add_site(FnSite::new(vec![0], |x: &[f64]| {
            Gaussian::new(4.0, 0.01).log_pdf(x[0])
        }));
        ep.add_site(FnSite::new(vec![0, 1], |x: &[f64]| {
            Gaussian::new(0.0, 0.02).log_pdf(x[0] + x[1] - 10.0)
        }));
        ep.add_site(FnSite::new(vec![1, 2], |x: &[f64]| {
            Gaussian::new(0.0, 0.02).log_pdf(x[0] + x[1] - 12.0)
        }));
        let r = ep.run(&mut rng());
        assert!(
            (r.marginals[2].mean - 6.0).abs() < 0.7,
            "x2 {}",
            r.marginals[2].mean
        );
    }

    #[test]
    fn untouched_variable_keeps_prior() {
        let mut ep = ExpectationPropagation::new(
            vec![Gaussian::new(1.0, 2.0), Gaussian::new(9.0, 3.0)],
            EpConfig::default(),
        );
        ep.add_site(FnSite::new(vec![0], |x: &[f64]| {
            Gaussian::new(1.0, 1.0).log_pdf(x[0])
        }));
        let r = ep.run(&mut rng());
        assert_eq!(r.marginals[1].mean, 9.0);
        assert_eq!(r.marginals[1].var, 3.0);
    }

    #[test]
    fn converges_and_reports_acceptance() {
        // Extra MCMC samples shrink tilted-moment noise so the sweep shift
        // reliably drops below tol (the default budget converges for most
        // seeds but is a coin flip near the tolerance boundary).
        let mut ep = ExpectationPropagation::new(
            vec![Gaussian::new(0.0, 10.0)],
            EpConfig {
                max_sweeps: 30,
                mcmc: McmcConfig {
                    samples: 1200,
                    ..McmcConfig::default()
                },
                ..EpConfig::default()
            },
        );
        ep.add_site(FnSite::new(vec![0], |x: &[f64]| {
            Gaussian::new(2.0, 0.5).log_pdf(x[0])
        }));
        let r = ep.run(&mut rng());
        assert!(r.converged, "should converge in 30 sweeps");
        assert!(r.sweeps < 30);
        assert!(r.mean_acceptance > 0.05 && r.mean_acceptance < 0.95);
    }

    #[test]
    #[should_panic(expected = "site variable 3 out of range")]
    fn rejects_out_of_range_site() {
        let mut ep =
            ExpectationPropagation::new(vec![Gaussian::new(0.0, 1.0)], EpConfig::default());
        ep.add_site(FnSite::new(vec![3], |_: &[f64]| 0.0));
    }

    #[test]
    #[should_panic(expected = "site variables must be unique")]
    fn rejects_duplicate_site_vars() {
        FnSite::new(vec![0, 0], |_: &[f64]| 0.0);
    }
}
