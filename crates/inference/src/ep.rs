//! Expectation Propagation over partitioned likelihoods (Alg. 1 of the
//! paper), executed by a software "EP engine farm".
//!
//! The target density factorizes as `f(θ) = Π fₖ(θ)` where each `fₖ` is the
//! likelihood of the data captured in one partition — for BayesPerf, one
//! scheduled HPC configuration / time slice. EP maintains a global Gaussian
//! mean-field approximation `g(θ) = prior · Π gₖ(θ)` and iterates:
//!
//! 1. cavity: `g₋ₖ ∝ g / gₖ`
//! 2. tilted: `g\ₖ ∝ Pr(yₖ|θ) · g₋ₖ` — moments estimated by MCMC, or in
//!    closed form when the site is Gaussian-linear (see below)
//! 3. local update: moment-match a Gaussian to the tilted distribution
//! 4. global update: `g ← g · Δgₖ` with damping
//!
//! # The batched-parallel sweep schedule
//!
//! Sites only interact through the global approximation — the parallelism
//! the BayesPerf accelerator's EP engines exploit (§5). The software farm
//! ([`ExpectationPropagation::run_parallel`]) realizes it in three steps:
//!
//! 1. **Conflict-free batching.** Sites are partitioned by greedy coloring
//!    of the site-conflict graph (two sites conflict when their variable
//!    scopes intersect; see [`SweepSchedule`]). Within a batch, updates
//!    touch disjoint variables, so Jacobi-style batch application equals
//!    the sequential Gauss-Seidel order exactly.
//! 2. **Parallel compute, ordered merge.** Each sweep walks the batches;
//!    a batch's site updates are computed concurrently on
//!    `std::thread::scope` workers into per-site [`SiteUpdate`] records,
//!    then merged into the global approximation sequentially in ascending
//!    site order. The merge is cheap (a handful of message writes per
//!    site); all MCMC work happens in the parallel phase.
//! 3. **Counter-based RNG streams.** Every site update draws from its own
//!    [`SiteRng`] stream, keyed by `(seed, site, sweep)` — no shared
//!    sequential generator.
//!
//! # Determinism guarantee
//!
//! Because the schedule is a pure function of the site list, each site's
//! randomness is a pure function of `(seed, site, sweep)`, batch members
//! read disjoint state, and merges happen in a fixed order,
//! `run_parallel(seed, threads)` returns **bit-identical** [`EpResult`]s
//! for any `threads ≥ 1`. Thread count is purely a throughput knob — the
//! `parallel_determinism` integration test pins this down. The guarantee
//! extends to warm-started runs: the adaptive MCMC budget is derived from
//! per-site cavity history that is itself updated in deterministic merge
//! order.
//!
//! # Warm-start lifecycle
//!
//! A `Corrector` that slides across multiplexing windows solves a sequence
//! of *nearly identical* inference problems: the factor-graph topology is a
//! pure function of the event catalog, only the observed counts move. The
//! engine is therefore built to be **reused**, not rebuilt:
//!
//! ```text
//!   build once            per window                     per window
//!   ──────────            ───────────                    ───────────
//!   new() + add_site()    site_mut() — swap observations  run_parallel()
//!        │                warm_start(prior) — keep            │
//!        ▼                site messages, re-seat prior        ▼
//!   first run_parallel()  (or cold_reset() to discard)    marginals
//! ```
//!
//! * [`ExpectationPropagation::warm_start`] re-seats the per-variable prior
//!   (e.g. the chained prior from the previous window's posterior), keeps
//!   all site messages and rebuilds the global approximation as
//!   `prior · Π site messages`. Because the previous window's messages
//!   already approximate the new window's likelihoods, warm runs converge
//!   in 1–2 sweeps (capped by [`EpConfig::warm_max_sweeps`]) instead of the
//!   cold sweep budget.
//! * The **adaptive MCMC budget** ([`EpConfig::adaptive`]) shrinks the
//!   per-site chain to [`AdaptiveBudget`]'s floor when the site's cavity
//!   barely moved since its previous update (measured by
//!   [`GaussianMessage::moments_shift`]); cold starts and post-swap jumps
//!   keep the full configured budget. Sites whose cavity *jumped* past
//!   [`AdaptiveBudget::jump_tol`] vote to extend the warm run by an extra
//!   sweep ([`EpConfig::warm_escalation`]).
//! * [`ExpectationPropagation::reset_site`] selectively discards one
//!   site's messages — the warm-started corrector applies it to the
//!   slices of a detected data phase change, re-solving just those from
//!   scratch while the rest of the window stays warm.
//! * [`ExpectationPropagation::cold_reset`] discards all messages (vacuous
//!   approximation, global = prior) while **keeping** the cached sweep
//!   schedule, site-update records and per-worker workspaces — the
//!   structural reuse the independent-chunks corrector mode relies on.
//! * Sites whose tilted distribution is exactly Gaussian
//!   ([`MomentStrategy::Analytic`], e.g. [`FactorSite`](crate::FactorSite)s
//!   made of linear-Gaussian / high-count-Poisson factors) bypass MCMC
//!   entirely and compute moments by a site-local Cholesky solve.
//!
//! The hot path is allocation-free after warm-up: the sweep schedule,
//! per-worker [`SiteWorkspace`] buffers (cavity state, MCMC scratch,
//! analytic scratch) and per-site [`SiteUpdate`] records are cached inside
//! the engine and reused across sweeps *and* across windows.
//!
//! The legacy [`ExpectationPropagation::run`] keeps the original
//! caller-supplied-RNG sequential path (site updates in registration
//! order, one shared stream); its results depend on the RNG stream, not on
//! any scheduling choice.

use crate::analytic::AnalyticScratch;
use crate::dist::Gaussian;
use crate::mcmc::{McmcConfig, McmcSampler, Target};
use crate::message::GaussianMessage;
use crate::parallel::{SiteUpdate, SiteWorkspace, SweepSchedule};
use crate::rng::SiteRng;
use rand::Rng;

/// How a site's tilted moments are computed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MomentStrategy {
    /// Estimate moments by running the site's MCMC chain (the general
    /// path; any log-likelihood).
    Mcmc,
    /// Compute moments in closed form — valid when the site's likelihood
    /// is Gaussian in a linear transform of its variables, so the tilted
    /// distribution `cavity × likelihood` is exactly Gaussian.
    Analytic,
}

/// One partition of the data: a likelihood term over a subset of the global
/// variables.
pub trait EpSite {
    /// Indices of the global variables this site's likelihood touches.
    fn vars(&self) -> &[usize];

    /// Log likelihood of the site's data given the site-local state `x`
    /// (aligned with [`EpSite::vars`]).
    fn log_likelihood(&self, x: &[f64]) -> f64;

    /// Change in log likelihood when local variable `i` moves from `x[i]`
    /// to `new`; must leave `x` unchanged.
    ///
    /// The default recomputes the full likelihood twice. Sites with factor
    /// structure should override it to only re-evaluate the factors adjacent
    /// to `i` — the locality the BayesPerf accelerator exploits.
    /// [`FactorSite`](crate::FactorSite) implements exactly that, backed by
    /// a CSR variable→factor index.
    fn log_likelihood_delta(&self, x: &mut [f64], i: usize, new: f64) -> f64 {
        let old = x[i];
        let before = self.log_likelihood(x);
        x[i] = new;
        let after = self.log_likelihood(x);
        x[i] = old;
        after - before
    }

    /// Optional MCMC initialization hint for local variable `i` (e.g. the
    /// scaled observation of that counter). `None` starts at the cavity
    /// mean.
    fn init_hint(&self, i: usize) -> Option<f64> {
        let _ = i;
        None
    }

    /// Optional proposal-scale hint for local variable `i` (e.g. the
    /// observation factor's width). `None` uses the cavity standard
    /// deviation.
    fn scale_hint(&self, i: usize) -> Option<f64> {
        let _ = i;
        None
    }

    /// How this site's tilted moments should be computed. Sites returning
    /// [`MomentStrategy::Analytic`] must also implement
    /// [`EpSite::analytic_moments`].
    fn moment_strategy(&self) -> MomentStrategy {
        MomentStrategy::Mcmc
    }

    /// Computes the tilted moments in closed form into `ws` (read back via
    /// [`AnalyticScratch::mean`]/[`AnalyticScratch::var`]). Returns `false`
    /// to decline — the driver then falls back to MCMC, so a conservative
    /// implementation may bail on numerically degenerate cavities.
    fn analytic_moments(&self, cavity: &[Gaussian], ws: &mut AnalyticScratch) -> bool {
        let _ = (cavity, ws);
        false
    }
}

/// Object-safe site storage: [`EpSite`] plus `Any` for typed mutable access
/// (the warm-start observation swap) — implemented for every concrete site
/// automatically.
trait SiteObj: EpSite + Send + Sync {
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any;
}

impl<S: EpSite + Send + Sync + 'static> SiteObj for S {
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// An [`EpSite`] built from a closure.
#[derive(Debug, Clone)]
pub struct FnSite<F> {
    vars: Vec<usize>,
    f: F,
}

impl<F: Fn(&[f64]) -> f64> FnSite<F> {
    /// Creates a site over `vars` with log-likelihood `f`.
    ///
    /// # Panics
    ///
    /// Panics if `vars` contains duplicates.
    pub fn new(vars: Vec<usize>, f: F) -> Self {
        let mut sorted = vars.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), vars.len(), "site variables must be unique");
        FnSite { vars, f }
    }
}

impl<F: Fn(&[f64]) -> f64> EpSite for FnSite<F> {
    fn vars(&self) -> &[usize] {
        &self.vars
    }
    fn log_likelihood(&self, x: &[f64]) -> f64 {
        (self.f)(x)
    }
}

/// Floor budget and trigger threshold for the adaptive MCMC budget of
/// warm-started runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveBudget {
    /// Cavity movement (per [`GaussianMessage::moments_shift`], averaged
    /// over the site's variables) below which the floor budget applies.
    /// EP-with-MCMC churns individual weak variables by ~1 normalized unit
    /// per sweep even at a fixed point, so the useful threshold sits above
    /// that churn floor: a genuine window-to-window data jump moves many
    /// observed variables at once and pushes the mean past it.
    pub move_tol: f64,
    /// Single-variable jump threshold: if *any* of the site's variables
    /// moved past this (far above the churn tail), the site takes the full
    /// budget regardless of the diluted mean, and casts a "hot" vote
    /// toward sweep escalation ([`EpConfig::warm_escalation`]). This is
    /// what catches a data phase change that only touches a few observed
    /// variables of a wide site.
    pub jump_tol: f64,
    /// Floor burn-in sweeps.
    pub burn_in: usize,
    /// Floor sample sweeps.
    pub samples: usize,
}

impl Default for AdaptiveBudget {
    fn default() -> Self {
        AdaptiveBudget {
            move_tol: 2.0,
            jump_tol: 40.0,
            burn_in: 25,
            samples: 60,
        }
    }
}

/// Configuration of the EP driver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpConfig {
    /// Maximum outer sweeps over all sites (cold runs).
    pub max_sweeps: usize,
    /// Maximum outer sweeps for warm-started runs (after
    /// [`ExpectationPropagation::warm_start`]) — warm runs start near the
    /// fixed point, so 1–2 sweeps usually suffice.
    pub warm_max_sweeps: usize,
    /// Damping factor η ∈ (0, 1] for site/global updates.
    pub damping: f64,
    /// Convergence tolerance: maximum |Δmean|/σ across variables per sweep.
    pub tol: f64,
    /// Variance floor applied to tilted moments (guards MCMC degeneracy).
    pub min_var: f64,
    /// Per-variable site-message precision ceiling, as a multiple of the
    /// variable's prior precision. Noisy tilted-variance estimates can
    /// otherwise ratchet site precisions toward infinity across sweeps
    /// (and, warm-started, across windows): an under-measured variance
    /// tightens the cavity, which shrinks the next chain's proposals,
    /// which under-measures again. The ceiling bounds the feedback loop
    /// while leaving legitimately tight observations (a few orders above
    /// the prior precision) untouched.
    pub max_precision_ratio: f64,
    /// MCMC settings used for tilted-moment estimation (the full budget).
    pub mcmc: McmcConfig,
    /// Adaptive MCMC budget for warm-started runs: sites whose cavity
    /// barely moved since their previous update shrink to the floor
    /// budget. `None` disables adaptation; cold runs always use the full
    /// budget either way.
    pub adaptive: Option<AdaptiveBudget>,
    /// Exponential forgetting applied by
    /// [`ExpectationPropagation::warm_start`]: every site message's
    /// natural parameters are scaled by this factor (`1.0` = keep all
    /// information, smaller = wider starting approximation). A sliding
    /// window *replaces* its observations, so the messages fitted to the
    /// previous window are partially stale — decaying them lets the new
    /// window's data dominate within the short warm sweep budget instead
    /// of fighting an overconfident carried-over posterior at data phase
    /// changes. The decay only moves the starting point, not the fixed
    /// point: run to convergence, warm still matches cold.
    pub warm_decay: f64,
    /// Sweep-escalation threshold for warm runs, as a fraction of the
    /// sweep's MCMC site updates that cast a "hot" vote (some variable's
    /// cavity jumped past [`AdaptiveBudget::jump_tol`], or the site was
    /// selectively reset). When a warm run reaches `warm_max_sweeps` and
    /// at least this fraction of the last sweep's sites were hot, it runs
    /// **one** extra polishing sweep (never beyond `max_sweeps`) — reset
    /// sites re-fit in their first full-budget update, so a single extra
    /// sweep recovers most of the cold refinement at a fraction of its
    /// cost, while quiet windows keep the 1–2 sweep fast path. Values
    /// above 1.0 disable escalation; escalation is also inert when
    /// [`EpConfig::adaptive`] is `None` (no votes are cast).
    pub warm_escalation: f64,
}

impl Default for EpConfig {
    fn default() -> Self {
        EpConfig {
            max_sweeps: 6,
            warm_max_sweeps: 6,
            damping: 0.6,
            tol: 0.02,
            min_var: 1e-10,
            max_precision_ratio: 1e6,
            mcmc: McmcConfig::default(),
            adaptive: Some(AdaptiveBudget::default()),
            warm_decay: 1.0,
            warm_escalation: 0.25,
        }
    }
}

/// Per-run scalar statistics — the allocation-free subset of [`EpResult`]
/// that [`ExpectationPropagation::run_farm`] returns on the steady-state
/// corrector path.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EpRunStats {
    /// Cumulative sweeps executed since engine creation / last
    /// [`ExpectationPropagation::cold_reset`] (grows across warm windows).
    pub sweeps_total: usize,
    /// Sweeps executed by this run only.
    pub sweeps_run: usize,
    /// Whether the tolerance was met before the sweep cap.
    pub converged: bool,
    /// Proposal-weighted mean MCMC acceptance rate across the MCMC-path
    /// site updates of this run; `0.0` (not NaN) when every site took the
    /// analytic path.
    pub mean_acceptance: f64,
    /// Site updates that estimated moments by MCMC.
    pub mcmc_site_updates: u64,
    /// Site updates that computed moments analytically (no sampling).
    pub analytic_site_updates: u64,
    /// Total MCMC samples collected across all site updates of this run.
    pub mcmc_samples: u64,
    /// Site updates whose tilted moments came back non-finite and were
    /// quarantined back to the prior instead of merged (the typed
    /// divergence counter — nonzero means an observation or chain
    /// diverged and was contained, not propagated).
    pub sites_quarantined: u64,
}

/// Result of running EP.
#[derive(Debug, Clone, PartialEq)]
pub struct EpResult {
    /// Posterior marginal per global variable.
    pub marginals: Vec<Gaussian>,
    /// Cumulative sweeps executed since engine creation (equals
    /// `sweeps_run` for a fresh or cold-reset engine; grows across warm
    /// windows).
    pub sweeps_total: usize,
    /// Sweeps executed by this run.
    pub sweeps_run: usize,
    /// Whether the tolerance was met before the sweep cap.
    pub converged: bool,
    /// Proposal-weighted mean MCMC acceptance rate over MCMC-path site
    /// updates only — analytic sites are excluded, so the value is NaN-free
    /// even when no sampling happened (`0.0` then).
    pub mean_acceptance: f64,
    /// Site updates that estimated moments by MCMC.
    pub mcmc_site_updates: u64,
    /// Site updates that computed moments analytically.
    pub analytic_site_updates: u64,
    /// Total MCMC samples collected across this run's site updates.
    pub mcmc_samples: u64,
    /// Site updates quarantined back to the prior on non-finite moments.
    pub sites_quarantined: u64,
}

impl EpResult {
    fn from_stats(marginals: Vec<Gaussian>, s: EpRunStats) -> Self {
        EpResult {
            marginals,
            sweeps_total: s.sweeps_total,
            sweeps_run: s.sweeps_run,
            converged: s.converged,
            mean_acceptance: s.mean_acceptance,
            mcmc_site_updates: s.mcmc_site_updates,
            analytic_site_updates: s.analytic_site_updates,
            mcmc_samples: s.mcmc_samples,
            sites_quarantined: s.sites_quarantined,
        }
    }
}

/// Cached farm state: the conflict-free sweep schedule plus the per-batch
/// site-update records and per-worker workspaces, built on first use and
/// reused across runs (and, for a warm-started corrector, across windows).
struct FarmCache {
    schedule: SweepSchedule,
    outs: Vec<Vec<SiteUpdate>>,
    workspaces: Vec<SiteWorkspace>,
}

/// Running aggregates of one run's site updates.
#[derive(Default)]
struct RunAccum {
    proposed: u64,
    accepted: u64,
    mcmc_updates: u64,
    analytic_updates: u64,
    mcmc_samples: u64,
    quarantined: u64,
}

impl RunAccum {
    fn absorb(&mut self, out: &SiteUpdate) {
        if out.quarantined {
            self.quarantined += 1;
            return;
        }
        if out.used_mcmc {
            self.mcmc_updates += 1;
            self.mcmc_samples += out.mcmc_samples as u64;
            self.proposed += out.proposed;
            self.accepted += out.accepted_n;
        } else {
            self.analytic_updates += 1;
        }
    }

    fn mean_acceptance(&self) -> f64 {
        if self.proposed == 0 {
            0.0
        } else {
            self.accepted as f64 / self.proposed as f64
        }
    }
}

/// One sweep's adaptive-budget vote tally — the sweep-escalation signal.
#[derive(Default)]
struct SweepVotes {
    mcmc_updates: usize,
    full_budget_votes: usize,
}

impl SweepVotes {
    fn absorb(&mut self, out: &SiteUpdate) {
        if out.used_mcmc {
            self.mcmc_updates += 1;
            if out.full_budget_vote {
                self.full_budget_votes += 1;
            }
        }
    }

    /// Whether at least `frac` of the sweep's MCMC site updates (and at
    /// least one) voted for the full budget.
    fn hot(&self, frac: f64) -> bool {
        self.full_budget_votes > 0
            && self.full_budget_votes as f64 >= frac * self.mcmc_updates as f64
    }
}

/// The EP driver: owns the prior, the sites, and the evolving global
/// approximation.
pub struct ExpectationPropagation {
    prior: Vec<Gaussian>,
    global: Vec<GaussianMessage>,
    sites: Vec<Box<dyn SiteObj>>,
    site_approx: Vec<Vec<GaussianMessage>>,
    /// Cavity snapshot from each site's previous update (empty until the
    /// site has been updated once) — the adaptive-budget movement baseline.
    site_prev_cavity: Vec<Vec<GaussianMessage>>,
    config: EpConfig,
    cache: Option<FarmCache>,
    total_sweeps: usize,
    /// Whether the current messages carry over from a previous window
    /// (set by [`ExpectationPropagation::warm_start`]).
    warm: bool,
}

impl std::fmt::Debug for ExpectationPropagation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExpectationPropagation")
            .field("num_vars", &self.prior.len())
            .field("num_sites", &self.sites.len())
            .field("warm", &self.warm)
            .field("config", &self.config)
            .finish()
    }
}

impl ExpectationPropagation {
    /// Creates a driver with the given per-variable Gaussian prior.
    pub fn new(prior: Vec<Gaussian>, config: EpConfig) -> Self {
        let global = prior.iter().map(GaussianMessage::from_gaussian).collect();
        ExpectationPropagation {
            prior,
            global,
            sites: Vec::new(),
            site_approx: Vec::new(),
            site_prev_cavity: Vec::new(),
            config,
            cache: None,
            total_sweeps: 0,
            warm: false,
        }
    }

    /// Number of global variables.
    pub fn num_vars(&self) -> usize {
        self.prior.len()
    }

    /// Number of registered sites.
    pub fn num_sites(&self) -> usize {
        self.sites.len()
    }

    /// Whether the next run is warm-started (messages carried over from a
    /// previous window).
    pub fn is_warm(&self) -> bool {
        self.warm
    }

    /// Registers a site (initialized with the vacuous approximation).
    ///
    /// Sites must be `Send + Sync` so the engine farm can update them from
    /// worker threads.
    ///
    /// # Panics
    ///
    /// Panics if the site references a variable out of range.
    pub fn add_site<S: EpSite + Send + Sync + 'static>(&mut self, site: S) {
        for &v in site.vars() {
            assert!(v < self.prior.len(), "site variable {v} out of range");
        }
        self.site_approx
            .push(vec![GaussianMessage::uniform(); site.vars().len()]);
        self.site_prev_cavity.push(Vec::new());
        self.sites.push(Box::new(site));
        // Topology changed: the cached schedule and update records are
        // stale.
        self.cache = None;
    }

    /// Typed mutable access to site `k` — the warm-start observation swap.
    ///
    /// Returns `None` if `k` is out of range or the site is not an `S`.
    /// The caller must only mutate per-window *data* (observed values,
    /// hints); the variable scope must stay fixed, since the cached sweep
    /// schedule depends on it.
    pub fn site_mut<S: EpSite + Send + Sync + 'static>(&mut self, k: usize) -> Option<&mut S> {
        self.sites.get_mut(k)?.as_any_mut().downcast_mut::<S>()
    }

    /// The current posterior marginal of variable `v` (prior if no update
    /// has touched it).
    pub fn marginal(&self, v: usize) -> Gaussian {
        self.global[v].to_gaussian().unwrap_or(self.prior[v])
    }

    /// The conflict-free batch schedule the engine farm would run — exposed
    /// for diagnostics and benchmarks.
    pub fn sweep_schedule(&self) -> SweepSchedule {
        SweepSchedule::for_scopes(self.prior.len(), self.sites.iter().map(|s| s.vars()))
    }

    /// Prepares the engine for the next window of a sliding-window
    /// sequence: re-seats the per-variable prior (length must match),
    /// **keeps** every site message, and rebuilds the global approximation
    /// as `prior · Π site messages`. Subsequent runs are warm: they start
    /// from the previous window's approximation, are capped at
    /// [`EpConfig::warm_max_sweeps`], and may shrink per-site MCMC budgets
    /// via [`EpConfig::adaptive`].
    ///
    /// Swap the new window's observations into the sites (via
    /// [`ExpectationPropagation::site_mut`]) before or after this call,
    /// but before the next run.
    ///
    /// # Panics
    ///
    /// Panics if `prior.len() != self.num_vars()`.
    pub fn warm_start(&mut self, prior: &[Gaussian]) {
        assert_eq!(prior.len(), self.prior.len(), "prior length mismatch");
        self.prior.copy_from_slice(prior);
        // Exponential forgetting: scale every site message's natural
        // parameters so stale observation information fades (see
        // [`EpConfig::warm_decay`]). A no-op at the default 1.0.
        let decay = self.config.warm_decay;
        if decay < 1.0 {
            for msgs in &mut self.site_approx {
                for m in msgs {
                    m.precision *= decay;
                    m.mean_times_precision *= decay;
                }
            }
        }
        self.rebuild_global();
        self.warm = true;
    }

    /// Resets a single site's statistical state: its messages become
    /// vacuous and its cavity history clears, so its next update runs with
    /// the full MCMC budget (and votes for sweep escalation) while every
    /// other site stays warm. This is the *selective* restart a
    /// sliding-window corrector applies to the slices of a detected data
    /// jump — the stale, confidently-wrong messages about the jumped
    /// window are discarded without paying a whole-model cold start.
    ///
    /// Call before [`ExpectationPropagation::warm_start`] (which rebuilds
    /// the global approximation from the surviving messages).
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn reset_site(&mut self, k: usize) {
        for m in &mut self.site_approx[k] {
            *m = GaussianMessage::uniform();
        }
        self.site_prev_cavity[k].clear();
    }

    /// Discards all statistical state — site messages become vacuous, the
    /// global approximation returns to the (new) prior, cavity history and
    /// the sweep counter reset — while keeping the cached sweep schedule
    /// and buffers. The next run is cold (full budgets), but pays no
    /// topology or allocation cost: this is the structural-reuse path the
    /// independent-chunks corrector mode uses.
    ///
    /// # Panics
    ///
    /// Panics if `prior.len() != self.num_vars()`.
    pub fn cold_reset(&mut self, prior: &[Gaussian]) {
        assert_eq!(prior.len(), self.prior.len(), "prior length mismatch");
        self.prior.copy_from_slice(prior);
        for msgs in &mut self.site_approx {
            for m in msgs {
                *m = GaussianMessage::uniform();
            }
        }
        for pc in &mut self.site_prev_cavity {
            pc.clear();
        }
        for (g, p) in self.global.iter_mut().zip(&self.prior) {
            *g = GaussianMessage::from_gaussian(p);
        }
        self.total_sweeps = 0;
        self.warm = false;
    }

    /// Rebuilds `global[v] = prior[v] · Π site messages touching v`.
    fn rebuild_global(&mut self) {
        for (g, p) in self.global.iter_mut().zip(&self.prior) {
            *g = GaussianMessage::from_gaussian(p);
        }
        for (site, approx) in self.sites.iter().zip(&self.site_approx) {
            for (&v, m) in site.vars().iter().zip(approx) {
                self.global[v] = self.global[v].mul(m);
            }
        }
    }

    /// Runs EP sequentially with a caller-supplied RNG (the legacy path):
    /// sites update in registration order, Gauss-Seidel style, all drawing
    /// from `rng`'s single stream.
    ///
    /// Results depend on `rng`'s stream; for scheduling-independent,
    /// thread-scalable inference use
    /// [`ExpectationPropagation::run_parallel`].
    pub fn run<R: Rng + ?Sized>(&mut self, rng: &mut R) -> EpResult {
        let sampler = McmcSampler::new(self.config.mcmc);
        let mut ws = SiteWorkspace::new();
        let mut out = SiteUpdate::default();
        let mut sweeps = 0;
        let mut converged = false;
        let mut accum = RunAccum::default();
        let mut hot = false;

        while self.keep_sweeping(sweeps, hot) {
            sweeps += 1;
            let mut max_shift = 0.0f64;
            let mut votes = SweepVotes::default();
            for k in 0..self.sites.len() {
                out.prepare(self.sites[k].as_ref());
                compute_site_update(
                    self.sites[k].as_ref(),
                    &self.site_approx[k],
                    &self.site_prev_cavity[k],
                    &self.global,
                    &self.prior,
                    &self.config,
                    self.warm,
                    hot,
                    &sampler,
                    rng,
                    &mut ws,
                    &mut out,
                );
                let shift = self.apply_site_update(k, &out);
                max_shift = max_shift.max(shift);
                accum.absorb(&out);
                votes.absorb(&out);
            }
            hot = votes.hot(self.config.warm_escalation);
            if max_shift <= self.config.tol {
                converged = true;
                break;
            }
        }
        self.total_sweeps += sweeps;

        let stats = self.stats(sweeps, converged, &accum);
        EpResult::from_stats(self.collect_marginals(), stats)
    }

    /// Runs EP on the engine farm: conflict-free batches of site updates
    /// computed concurrently on up to `threads` workers, merged
    /// deterministically.
    ///
    /// The result is **bit-identical for any `threads ≥ 1`** given the same
    /// `seed` — see the module docs for why. `threads` is clamped to at
    /// least 1 and at most the largest batch size (more workers than sites
    /// in a batch cannot help).
    pub fn run_parallel(&mut self, seed: u64, threads: usize) -> EpResult {
        let stats = self.run_farm(seed, threads);
        EpResult::from_stats(self.collect_marginals(), stats)
    }

    /// [`ExpectationPropagation::run_parallel`] without materializing the
    /// marginal vector — the steady-state warm-start path, allocation-free
    /// once the engine caches are grown. Read marginals back through
    /// [`ExpectationPropagation::marginal`].
    pub fn run_farm(&mut self, seed: u64, threads: usize) -> EpRunStats {
        self.ensure_cache();
        let mut cache = self.cache.take().expect("cache just ensured");
        let threads = threads.clamp(1, cache.schedule.max_batch_len().max(1));
        while cache.workspaces.len() < threads {
            cache.workspaces.push(SiteWorkspace::new());
        }
        let sampler = McmcSampler::new(self.config.mcmc);

        let mut sweeps = 0;
        let mut converged = false;
        let mut accum = RunAccum::default();
        let mut hot = false;

        while self.keep_sweeping(sweeps, hot) {
            let sweep_idx = self.total_sweeps + sweeps;
            sweeps += 1;
            let mut max_shift = 0.0f64;
            let mut votes = SweepVotes::default();
            for (b, batch_out) in cache.outs.iter_mut().enumerate() {
                let batch = cache.schedule.batch(b);
                let chunk = batch.len().div_ceil(threads).max(1);
                {
                    let sites = &self.sites;
                    let site_approx = &self.site_approx;
                    let site_prev_cavity = &self.site_prev_cavity;
                    let global = &self.global;
                    let prior = &self.prior;
                    let config = &self.config;
                    let warm = self.warm;
                    let hot_prev = hot;
                    let sampler = &sampler;
                    let mut work = batch
                        .chunks(chunk)
                        .zip(batch_out.chunks_mut(chunk))
                        .zip(cache.workspaces.iter_mut());
                    if threads == 1 {
                        // Inline on the driver thread: same code path, no
                        // spawn overhead (and trivially the same results —
                        // workers never observe each other's writes).
                        for ((site_chunk, out_chunk), ws) in work {
                            farm_worker(
                                sites,
                                site_approx,
                                site_prev_cavity,
                                global,
                                prior,
                                config,
                                warm,
                                hot_prev,
                                sampler,
                                seed,
                                sweep_idx,
                                site_chunk,
                                out_chunk,
                                ws,
                            );
                        }
                    } else {
                        std::thread::scope(|scope| {
                            for ((site_chunk, out_chunk), ws) in &mut work {
                                scope.spawn(move || {
                                    farm_worker(
                                        sites,
                                        site_approx,
                                        site_prev_cavity,
                                        global,
                                        prior,
                                        config,
                                        warm,
                                        hot_prev,
                                        sampler,
                                        seed,
                                        sweep_idx,
                                        site_chunk,
                                        out_chunk,
                                        ws,
                                    );
                                });
                            }
                        });
                    }
                }
                // Deterministic merge: ascending site order within the
                // batch, regardless of which worker computed what.
                for (&k, out) in batch.iter().zip(batch_out.iter()) {
                    let shift = self.apply_site_update(k as usize, out);
                    max_shift = max_shift.max(shift);
                    accum.absorb(out);
                    votes.absorb(out);
                }
            }
            hot = votes.hot(self.config.warm_escalation);
            if max_shift <= self.config.tol {
                converged = true;
                break;
            }
        }
        self.total_sweeps += sweeps;
        self.cache = Some(cache);

        self.stats(sweeps, converged, &accum)
    }

    /// Whether another sweep should run, given how many already did and
    /// whether the previous sweep was "hot" (enough adaptive-budget votes
    /// for the full budget — the data-jump signal). Cold runs sweep to
    /// `max_sweeps`; warm runs stop at `warm_max_sweeps` unless hot, in
    /// which case they escalate by one extra sweep (capped by the cold
    /// budget) — reset sites re-fit in their first full-budget update, so
    /// one polishing sweep recovers most of the cold path's refinement at
    /// a fraction of its cost.
    fn keep_sweeping(&self, sweeps: usize, hot: bool) -> bool {
        if !self.warm {
            return sweeps < self.config.max_sweeps;
        }
        if sweeps < self.config.warm_max_sweeps {
            return true;
        }
        hot && sweeps < (self.config.warm_max_sweeps + 1).min(self.config.max_sweeps)
    }

    /// Builds the schedule / update records / workspaces if missing.
    fn ensure_cache(&mut self) {
        if self.cache.is_some() {
            return;
        }
        let schedule = self.sweep_schedule();
        let outs: Vec<Vec<SiteUpdate>> = schedule
            .iter()
            .map(|batch| {
                batch
                    .iter()
                    .map(|&k| {
                        let mut u = SiteUpdate::default();
                        u.prepare(self.sites[k as usize].as_ref());
                        u
                    })
                    .collect()
            })
            .collect();
        self.cache = Some(FarmCache {
            schedule,
            outs,
            workspaces: Vec::new(),
        });
    }

    /// Merges one staged site update into the global approximation.
    /// Returns the largest normalized posterior-mean shift it caused.
    fn apply_site_update(&mut self, k: usize, out: &SiteUpdate) -> f64 {
        if out.quarantined {
            return self.quarantine_site(k, out);
        }
        let mut max_shift = 0.0f64;
        for (j, &v) in out.scope.iter().enumerate() {
            if !out.accepted[j] {
                continue;
            }
            let g_old = self.global[v].to_gaussian().unwrap_or(self.prior[v]);
            if let Some(g_new) = out.global_new[j].to_gaussian() {
                let shift = (g_new.mean - g_old.mean).abs() / g_old.std_dev().max(1e-12);
                max_shift = max_shift.max(shift);
            }
            self.global[v] = out.global_new[j];
            self.site_approx[k][j] = out.damped[j];
        }
        // Record the cavity this update saw — the movement baseline the
        // adaptive budget compares against next time this site updates.
        let prev = &mut self.site_prev_cavity[k];
        prev.clear();
        prev.extend_from_slice(&out.cavity);
        max_shift
    }

    /// Removes a diverged site's contribution from the global
    /// approximation and resets its messages to vacuous — the factor-graph
    /// equivalent of dropping the poisoned observation back to the prior.
    /// Its cavity history clears too, so the site re-fits with the full
    /// budget on its next (hopefully finite) update. Returns the shift the
    /// stripping caused so convergence accounting stays honest.
    fn quarantine_site(&mut self, k: usize, out: &SiteUpdate) -> f64 {
        let mut max_shift = 0.0f64;
        for (j, &v) in out.scope.iter().enumerate() {
            let g_old = self.global[v].to_gaussian().unwrap_or(self.prior[v]);
            let stripped = self.global[v].div(&self.site_approx[k][j]);
            self.global[v] = if stripped.is_proper() {
                stripped
            } else {
                GaussianMessage::from_gaussian(&self.prior[v])
            };
            if let Some(g_new) = self.global[v].to_gaussian() {
                let shift = (g_new.mean - g_old.mean).abs() / g_old.std_dev().max(1e-12);
                max_shift = max_shift.max(shift);
            }
            self.site_approx[k][j] = GaussianMessage::uniform();
        }
        self.site_prev_cavity[k].clear();
        max_shift
    }

    fn collect_marginals(&self) -> Vec<Gaussian> {
        (0..self.prior.len()).map(|v| self.marginal(v)).collect()
    }

    fn stats(&self, sweeps: usize, converged: bool, accum: &RunAccum) -> EpRunStats {
        EpRunStats {
            sweeps_total: self.total_sweeps,
            sweeps_run: sweeps,
            converged,
            mean_acceptance: accum.mean_acceptance(),
            mcmc_site_updates: accum.mcmc_updates,
            analytic_site_updates: accum.analytic_updates,
            mcmc_samples: accum.mcmc_samples,
            sites_quarantined: accum.quarantined,
        }
    }
}

/// One worker's share of a batch: compute site updates for `site_chunk`
/// into `out_chunk`, each site on its own counter-based RNG stream.
#[allow(clippy::too_many_arguments)]
fn farm_worker(
    sites: &[Box<dyn SiteObj>],
    site_approx: &[Vec<GaussianMessage>],
    site_prev_cavity: &[Vec<GaussianMessage>],
    global: &[GaussianMessage],
    prior: &[Gaussian],
    config: &EpConfig,
    warm: bool,
    hot_prev: bool,
    sampler: &McmcSampler,
    seed: u64,
    sweep: usize,
    site_chunk: &[u32],
    out_chunk: &mut [SiteUpdate],
    ws: &mut SiteWorkspace,
) {
    for (&k, out) in site_chunk.iter().zip(out_chunk.iter_mut()) {
        let k = k as usize;
        let mut rng = SiteRng::for_site(seed, k, sweep);
        out.prepare(sites[k].as_ref());
        compute_site_update(
            sites[k].as_ref(),
            &site_approx[k],
            &site_prev_cavity[k],
            global,
            prior,
            config,
            warm,
            hot_prev,
            sampler,
            &mut rng,
            ws,
            out,
        );
    }
}

/// One site update (lines 3–7 of Alg. 1), staged into `out` without
/// touching shared state — the pure-compute half the engine farm runs in
/// parallel. `out` must already be [`SiteUpdate::prepare`]d for `site`.
#[allow(clippy::too_many_arguments)]
fn compute_site_update<R: Rng + ?Sized>(
    site: &dyn EpSite,
    approx_k: &[GaussianMessage],
    prev_cavity_k: &[GaussianMessage],
    global: &[GaussianMessage],
    prior: &[Gaussian],
    config: &EpConfig,
    warm: bool,
    hot_prev: bool,
    sampler: &McmcSampler,
    rng: &mut R,
    ws: &mut SiteWorkspace,
    out: &mut SiteUpdate,
) {
    let SiteWorkspace {
        cavity_msgs,
        cavity,
        init,
        scales,
        scratch,
        analytic,
    } = ws;
    let scope = site.vars();

    // Line 3: cavity distribution g₋ₖ = g / gₖ, with a widened-prior
    // fallback when the quotient is improper.
    cavity_msgs.clear();
    cavity.clear();
    for (j, &v) in scope.iter().enumerate() {
        let msg = global[v].div(&approx_k[j]);
        let gauss = msg.to_gaussian().unwrap_or_else(|| {
            let p = prior[v];
            let mean = global[v].to_gaussian().unwrap_or(p).mean;
            Gaussian::new(mean, p.var * 100.0)
        });
        cavity_msgs.push(GaussianMessage::from_gaussian(&gauss));
        cavity.push(gauss);
    }
    // Snapshot the cavity for the engine's per-site movement history.
    out.cavity.copy_from_slice(cavity_msgs);

    // Line 4: tilted moments — in closed form for Gaussian-linear sites,
    // by MCMC on Pr(yₖ|θ)·g₋ₖ(θ) otherwise.
    let analytic_ok = site.moment_strategy() == MomentStrategy::Analytic
        && site.analytic_moments(cavity, analytic);
    out.full_budget_vote = false;
    if analytic_ok {
        out.used_mcmc = false;
        out.mcmc_samples = 0;
        out.proposed = 0;
        out.accepted_n = 0;
        out.acceptance = 0.0;
    } else {
        init.clear();
        scales.clear();
        for (j, g) in cavity.iter().enumerate() {
            init.push(site.init_hint(j).unwrap_or(g.mean));
            scales.push(match site.scale_hint(j) {
                Some(h) => h.min(g.std_dev()),
                None => g.std_dev(),
            });
        }
        // Adaptive budget: a warm site whose cavity barely moved since its
        // previous update tracks the posterior with the floor budget; cold
        // starts (or a site with no history) keep the full budget, and a
        // sweep following a "hot" one (data jump in flight) runs every
        // site at the full budget — cold-level refinement for the
        // transient.
        let (burn_in, samples) = match (warm, config.adaptive) {
            (true, Some(ab)) if !prev_cavity_k.is_empty() => {
                // Two movement statistics over the site's variables:
                // * the mean — EP-with-MCMC churns individual weak
                //   variables by ~1 unit per sweep even at a fixed point,
                //   so the aggregate separates "same data, sampling noise"
                //   from "broad data movement";
                // * the max against a much higher bar (`jump_tol`) — a
                //   phase change that only touches a few observed
                //   variables of a wide site is invisible to the diluted
                //   mean but blows through the churn tail on those
                //   variables.
                let mut mean_shift = 0.0f64;
                let mut max_shift = 0.0f64;
                for (p, c) in prev_cavity_k.iter().zip(cavity_msgs.iter()) {
                    let s = p.moments_shift(c);
                    mean_shift += s;
                    max_shift = max_shift.max(s);
                }
                mean_shift /= prev_cavity_k.len().max(1) as f64;
                // Single-variable jump: a vote toward extending the warm
                // run past its sweep cap (and always the full budget).
                out.full_budget_vote = max_shift > ab.jump_tol;
                // A sweep following a "hot" one keeps everything at full
                // budget only if this site itself is still moving; quiet
                // sites stay floored even mid-transient.
                if out.full_budget_vote
                    || mean_shift >= ab.move_tol
                    || (hot_prev && mean_shift >= ab.move_tol * 0.5)
                {
                    (config.mcmc.burn_in, config.mcmc.samples)
                } else {
                    (ab.burn_in, ab.samples)
                }
            }
            (true, Some(_)) => {
                // A site with no cavity history inside a warm run was
                // selectively reset (a detected data jump): full budget,
                // and a vote toward extending the run.
                out.full_budget_vote = true;
                (config.mcmc.burn_in, config.mcmc.samples)
            }
            _ => (config.mcmc.burn_in, config.mcmc.samples),
        };
        let target = TiltedTarget { site, cavity };
        sampler.run_budgeted(&target, init, scales, rng, scratch, burn_in, samples);
        out.used_mcmc = true;
        out.mcmc_samples = scratch.samples_run();
        out.proposed = scratch.proposed();
        out.accepted_n = scratch.accepted();
        out.acceptance = scratch.acceptance();
    }
    let (means, vars): (&[f64], &[f64]) = if analytic_ok {
        (analytic.mean(), analytic.var())
    } else {
        (scratch.mean(), scratch.var())
    };

    // Divergence guard: a poisoned observation or a diverged MCMC chain
    // yields NaN/Inf tilted moments. `vars[j].max(min_var)` would silently
    // floor a NaN variance (f64::max ignores NaN) and a NaN *mean* passes
    // every variance check — either way the poison would enter the global
    // approximation and spread through every overlapping site on the next
    // sweep. Quarantine instead: stage no update and tell the driver to
    // strip this site's existing contribution back to the prior.
    if scope
        .iter()
        .enumerate()
        .any(|(j, _)| !means[j].is_finite() || !vars[j].is_finite())
    {
        out.quarantined = true;
        for a in out.accepted.iter_mut() {
            *a = false;
        }
        return;
    }

    // Lines 5–7: local moment match, damped site update, staged global
    // update.
    for (j, &v) in scope.iter().enumerate() {
        let tilted = GaussianMessage::from_moments(means[j], vars[j].max(config.min_var));
        let prec_cap = config.max_precision_ratio / prior[v].var;
        let new_site = tilted.div(&cavity_msgs[j]).capped_precision(prec_cap);
        let damped = approx_k[j].damped_toward(&new_site, config.damping);
        let candidate = global[v].div(&approx_k[j]).mul(&damped);
        if candidate.is_proper() {
            out.accepted[j] = true;
            out.global_new[j] = candidate;
            out.damped[j] = damped;
        } else {
            out.accepted[j] = false;
        }
    }
}

/// The tilted distribution of one site: likelihood × cavity.
struct TiltedTarget<'a> {
    site: &'a dyn EpSite,
    cavity: &'a [Gaussian],
}

impl Target for TiltedTarget<'_> {
    fn dim(&self) -> usize {
        self.cavity.len()
    }

    fn log_density(&self, x: &[f64]) -> f64 {
        let prior: f64 = x
            .iter()
            .zip(self.cavity)
            .map(|(xi, g)| g.log_pdf(*xi))
            .sum();
        prior + self.site.log_likelihood(x)
    }

    fn log_density_delta(&self, x: &mut [f64], i: usize, new: f64) -> f64 {
        let d_prior = self.cavity[i].log_pdf(new) - self.cavity[i].log_pdf(x[i]);
        d_prior + self.site.log_likelihood_delta(x, i, new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factor::FactorSite;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(12345)
    }

    #[test]
    fn gaussian_observation_matches_analytic_posterior() {
        // Prior N(0, 4); observation x ~ N(6, 1). Posterior: N(4.8, 0.8).
        let mut ep =
            ExpectationPropagation::new(vec![Gaussian::new(0.0, 4.0)], EpConfig::default());
        ep.add_site(FnSite::new(vec![0], |x: &[f64]| {
            Gaussian::new(6.0, 1.0).log_pdf(x[0])
        }));
        let r = ep.run(&mut rng());
        assert!(
            (r.marginals[0].mean - 4.8).abs() < 0.25,
            "mean {}",
            r.marginals[0].mean
        );
        assert!(
            (r.marginals[0].var - 0.8).abs() < 0.4,
            "var {}",
            r.marginals[0].var
        );
    }

    #[test]
    fn non_finite_observation_is_quarantined_not_propagated() {
        // A Gaussian-linear site whose observation is swapped to NaN (the
        // poisoned-sample path): its analytic solve yields NaN moments.
        // The guard must quarantine the site back to prior — every
        // marginal stays finite and the divergence counter records it.
        let prior = vec![Gaussian::new(2.0, 4.0), Gaussian::new(2.0, 4.0)];
        let mut ep = ExpectationPropagation::new(prior, EpConfig::default());
        let mut poisoned = FactorSite::builder(vec![0])
            .gaussian_linear(&[0], &[1.0], 6.0, 1.0)
            .build();
        poisoned.set_linear_obs(0, f64::NAN);
        ep.add_site(poisoned);
        // A healthy coupled site that would inhale the poison through the
        // shared variable if the quarantine failed.
        ep.add_site(
            FactorSite::builder(vec![0, 1])
                .gaussian_linear(&[0, 1], &[1.0, 1.0], 8.0, 0.5)
                .build(),
        );
        let r = ep.run_parallel(99, 2);
        assert!(r.sites_quarantined > 0, "divergence counter must record");
        for (v, g) in r.marginals.iter().enumerate() {
            assert!(
                g.mean.is_finite() && g.var.is_finite() && g.var > 0.0,
                "marginal {v} poisoned: {g:?}"
            );
        }
        // The healthy site's information still flowed: x0 + x1 ~ N(8, .5)
        // on N(2,4) priors pulls both means toward 4.
        assert!((r.marginals[1].mean - 4.0).abs() < 1.0);
    }

    #[test]
    fn quarantined_site_recovers_on_sequential_path_too() {
        let mut ep =
            ExpectationPropagation::new(vec![Gaussian::new(0.0, 4.0)], EpConfig::default());
        let mut poisoned = FactorSite::builder(vec![0])
            .gaussian_linear(&[0], &[1.0], 6.0, 1.0)
            .build();
        poisoned.set_linear_obs(0, f64::INFINITY);
        ep.add_site(poisoned);
        let r = ep.run(&mut rng());
        assert!(r.sites_quarantined > 0);
        // With its only site quarantined, the posterior is the prior.
        assert!((r.marginals[0].mean - 0.0).abs() < 1e-9);
        assert!((r.marginals[0].var - 4.0).abs() < 1e-9);
    }

    #[test]
    fn two_sites_combine_like_a_product() {
        // Two unit-variance observations at 0 and 10 on a flat-ish prior:
        // posterior mean ≈ 5.
        let mut ep =
            ExpectationPropagation::new(vec![Gaussian::new(5.0, 1000.0)], EpConfig::default());
        ep.add_site(FnSite::new(vec![0], |x: &[f64]| {
            Gaussian::new(0.0, 1.0).log_pdf(x[0])
        }));
        ep.add_site(FnSite::new(vec![0], |x: &[f64]| {
            Gaussian::new(10.0, 1.0).log_pdf(x[0])
        }));
        let r = ep.run(&mut rng());
        assert!(
            (r.marginals[0].mean - 5.0).abs() < 0.4,
            "mean {}",
            r.marginals[0].mean
        );
        // Posterior variance ≈ 0.5 (product of two unit-variance terms).
        assert!(r.marginals[0].var < 1.5);
    }

    #[test]
    fn linear_constraint_transfers_information() {
        // x0 + x1 ≈ 10 (tight), x0 observed near 3 -> x1 ≈ 7 with
        // uncertainty larger than x0's.
        let mut ep = ExpectationPropagation::new(
            vec![Gaussian::new(5.0, 100.0), Gaussian::new(5.0, 100.0)],
            EpConfig::default(),
        );
        ep.add_site(FnSite::new(vec![0], |x: &[f64]| {
            Gaussian::new(3.0, 0.01).log_pdf(x[0])
        }));
        ep.add_site(FnSite::new(vec![0, 1], |x: &[f64]| {
            Gaussian::new(0.0, 0.01).log_pdf(x[0] + x[1] - 10.0)
        }));
        let r = ep.run(&mut rng());
        assert!(
            (r.marginals[0].mean - 3.0).abs() < 0.3,
            "x0 {}",
            r.marginals[0].mean
        );
        assert!(
            (r.marginals[1].mean - 7.0).abs() < 0.5,
            "x1 {}",
            r.marginals[1].mean
        );
    }

    #[test]
    fn parallel_run_matches_sequential_quality() {
        // Same model as above, through the engine farm path.
        let mut ep = ExpectationPropagation::new(
            vec![Gaussian::new(5.0, 100.0), Gaussian::new(5.0, 100.0)],
            EpConfig::default(),
        );
        ep.add_site(FnSite::new(vec![0], |x: &[f64]| {
            Gaussian::new(3.0, 0.01).log_pdf(x[0])
        }));
        ep.add_site(FnSite::new(vec![0, 1], |x: &[f64]| {
            Gaussian::new(0.0, 0.01).log_pdf(x[0] + x[1] - 10.0)
        }));
        let r = ep.run_parallel(2024, 2);
        assert!(
            (r.marginals[0].mean - 3.0).abs() < 0.3,
            "x0 {}",
            r.marginals[0].mean
        );
        assert!(
            (r.marginals[1].mean - 7.0).abs() < 0.5,
            "x1 {}",
            r.marginals[1].mean
        );
        assert!(r.mean_acceptance > 0.05 && r.mean_acceptance < 0.95);
        assert_eq!(r.analytic_site_updates, 0);
        assert!(r.mcmc_site_updates > 0);
        assert!(r.mcmc_samples > 0);
    }

    #[test]
    fn chained_constraints_propagate_transitively() {
        // x0 observed; x0 + x1 = 10; x1 + x2 = 12 -> x2 ≈ x0 + 2.
        let prior = vec![
            Gaussian::new(4.0, 50.0),
            Gaussian::new(4.0, 50.0),
            Gaussian::new(4.0, 50.0),
        ];
        let cfg = EpConfig {
            max_sweeps: 10,
            ..EpConfig::default()
        };
        let mut ep = ExpectationPropagation::new(prior, cfg);
        ep.add_site(FnSite::new(vec![0], |x: &[f64]| {
            Gaussian::new(4.0, 0.01).log_pdf(x[0])
        }));
        ep.add_site(FnSite::new(vec![0, 1], |x: &[f64]| {
            Gaussian::new(0.0, 0.02).log_pdf(x[0] + x[1] - 10.0)
        }));
        ep.add_site(FnSite::new(vec![1, 2], |x: &[f64]| {
            Gaussian::new(0.0, 0.02).log_pdf(x[0] + x[1] - 12.0)
        }));
        let r = ep.run(&mut rng());
        assert!(
            (r.marginals[2].mean - 6.0).abs() < 0.7,
            "x2 {}",
            r.marginals[2].mean
        );
    }

    #[test]
    fn untouched_variable_keeps_prior() {
        let mut ep = ExpectationPropagation::new(
            vec![Gaussian::new(1.0, 2.0), Gaussian::new(9.0, 3.0)],
            EpConfig::default(),
        );
        ep.add_site(FnSite::new(vec![0], |x: &[f64]| {
            Gaussian::new(1.0, 1.0).log_pdf(x[0])
        }));
        let r = ep.run(&mut rng());
        assert_eq!(r.marginals[1].mean, 9.0);
        assert_eq!(r.marginals[1].var, 3.0);
    }

    #[test]
    fn converges_and_reports_acceptance() {
        // Extra MCMC samples shrink tilted-moment noise so the sweep shift
        // reliably drops below tol (the default budget converges for most
        // seeds but is a coin flip near the tolerance boundary).
        let mut ep = ExpectationPropagation::new(
            vec![Gaussian::new(0.0, 10.0)],
            EpConfig {
                max_sweeps: 30,
                mcmc: McmcConfig {
                    samples: 1200,
                    ..McmcConfig::default()
                },
                ..EpConfig::default()
            },
        );
        ep.add_site(FnSite::new(vec![0], |x: &[f64]| {
            Gaussian::new(2.0, 0.5).log_pdf(x[0])
        }));
        let r = ep.run(&mut rng());
        assert!(r.converged, "should converge in 30 sweeps");
        assert!(r.sweeps_run < 30);
        assert_eq!(
            r.sweeps_total, r.sweeps_run,
            "fresh engine: cumulative == run"
        );
        assert!(r.mean_acceptance > 0.05 && r.mean_acceptance < 0.95);
    }

    #[test]
    fn analytic_sites_bypass_mcmc_entirely() {
        // Two Gaussian-linear sites: the whole run must be sample-free and
        // match the exact posterior (EP is exact for Gaussian models).
        let mut ep = ExpectationPropagation::new(
            vec![Gaussian::new(5.0, 100.0), Gaussian::new(5.0, 100.0)],
            EpConfig {
                max_sweeps: 40,
                tol: 1e-10,
                damping: 0.8,
                ..EpConfig::default()
            },
        );
        ep.add_site(
            FactorSite::builder(vec![0])
                .gaussian_linear(&[0], &[1.0], 3.0, 0.01)
                .build(),
        );
        ep.add_site(
            FactorSite::builder(vec![0, 1])
                .gaussian_linear(&[0, 1], &[1.0, 1.0], 10.0, 0.01)
                .build(),
        );
        let r = ep.run_parallel(7, 2);
        assert_eq!(r.mcmc_site_updates, 0, "no MCMC on the analytic path");
        assert_eq!(r.mcmc_samples, 0);
        assert!(r.analytic_site_updates > 0);
        assert_eq!(r.mean_acceptance, 0.0, "NaN-free when nothing sampled");
        // Exact posterior (the wide prior pulls ~4e-4 off the observations).
        assert!(
            (r.marginals[0].mean - 3.0).abs() < 0.01,
            "x0 {}",
            r.marginals[0].mean
        );
        assert!(
            (r.marginals[1].mean - 7.0).abs() < 0.01,
            "x1 {}",
            r.marginals[1].mean
        );
    }

    #[test]
    fn mixed_sites_report_acceptance_over_mcmc_only() {
        let mut ep = ExpectationPropagation::new(
            vec![Gaussian::new(0.0, 10.0), Gaussian::new(0.0, 10.0)],
            EpConfig::default(),
        );
        ep.add_site(
            FactorSite::builder(vec![0])
                .gaussian_linear(&[0], &[1.0], 2.0, 0.5)
                .build(),
        );
        ep.add_site(FnSite::new(vec![1], |x: &[f64]| {
            Gaussian::new(-1.0, 0.5).log_pdf(x[0])
        }));
        let r = ep.run_parallel(3, 1);
        assert!(r.analytic_site_updates > 0);
        assert!(r.mcmc_site_updates > 0);
        // Aggregated over the MCMC site only — still a real rate.
        assert!(r.mean_acceptance > 0.05 && r.mean_acceptance < 0.95);
    }

    #[test]
    fn warm_start_keeps_messages_and_shrinks_the_run() {
        let prior = vec![Gaussian::new(0.0, 25.0)];
        let cfg = EpConfig {
            max_sweeps: 30,
            warm_max_sweeps: 30,
            tol: 1e-9,
            damping: 0.9,
            ..EpConfig::default()
        };
        let mut ep = ExpectationPropagation::new(prior.clone(), cfg);
        ep.add_site(
            FactorSite::builder(vec![0])
                .gaussian_linear(&[0], &[1.0], 4.0, 1.0)
                .build(),
        );
        let cold = ep.run_parallel(11, 1);
        assert!(cold.converged);
        // Swap the observation slightly and warm-start.
        ep.site_mut::<FactorSite>(0).unwrap().set_linear_obs(0, 4.1);
        ep.warm_start(&prior);
        assert!(ep.is_warm());
        let warm = ep.run_parallel(12, 1);
        assert!(warm.converged);
        assert!(
            warm.sweeps_run <= cold.sweeps_run,
            "warm {} vs cold {} sweeps",
            warm.sweeps_run,
            cold.sweeps_run
        );
        assert!(
            warm.sweeps_total > warm.sweeps_run,
            "cumulative includes history"
        );
        // Exact posterior of N(0,25) with N(4.1,1): mean 4.1·(25/26).
        let expect = 4.1 * 25.0 / 26.0;
        assert!(
            (warm.marginals[0].mean - expect).abs() < 1e-4,
            "mean {} vs {expect}",
            warm.marginals[0].mean
        );
    }

    #[test]
    fn cold_reset_matches_fresh_engine_bitwise() {
        let prior = vec![Gaussian::new(5.0, 100.0), Gaussian::new(5.0, 100.0)];
        let build = |ep: &mut ExpectationPropagation| {
            ep.add_site(FnSite::new(vec![0], |x: &[f64]| {
                Gaussian::new(3.0, 0.01).log_pdf(x[0])
            }));
            ep.add_site(FnSite::new(vec![0, 1], |x: &[f64]| {
                Gaussian::new(0.0, 0.01).log_pdf(x[0] + x[1] - 10.0)
            }));
        };
        let mut fresh = ExpectationPropagation::new(prior.clone(), EpConfig::default());
        build(&mut fresh);
        let want = fresh.run_parallel(42, 1);

        let mut reused = ExpectationPropagation::new(prior.clone(), EpConfig::default());
        build(&mut reused);
        let _ = reused.run_parallel(7, 1); // dirty the state
        reused.cold_reset(&prior);
        let got = reused.run_parallel(42, 1);
        assert_eq!(want.sweeps_total, got.sweeps_total);
        for (a, b) in want.marginals.iter().zip(&got.marginals) {
            assert_eq!(a.mean.to_bits(), b.mean.to_bits());
            assert_eq!(a.var.to_bits(), b.var.to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "site variable 3 out of range")]
    fn rejects_out_of_range_site() {
        let mut ep =
            ExpectationPropagation::new(vec![Gaussian::new(0.0, 1.0)], EpConfig::default());
        ep.add_site(FnSite::new(vec![3], |_: &[f64]| 0.0));
    }

    #[test]
    #[should_panic(expected = "site variables must be unique")]
    fn rejects_duplicate_site_vars() {
        FnSite::new(vec![0, 0], |_: &[f64]| 0.0);
    }
}
