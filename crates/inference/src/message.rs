//! Gaussian messages in natural parameters — the algebra EP is built on.

use crate::dist::Gaussian;
use serde::{Deserialize, Serialize};

/// An (unnormalized) Gaussian factor in natural parameters:
/// precision `λ = 1/σ²` and precision-adjusted mean `η = μ/σ²`.
///
/// Unlike [`Gaussian`], a message may have zero precision (the uniform
/// message — multiplicative identity) or even *negative* precision, which
/// arises transiently as a quotient during EP cavity computation. Convert to
/// a proper distribution with [`GaussianMessage::to_gaussian`], which
/// requires positive precision.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GaussianMessage {
    /// Precision λ (may be zero or negative for improper messages).
    pub precision: f64,
    /// Precision-adjusted mean η = λ·μ.
    pub mean_times_precision: f64,
}

impl GaussianMessage {
    /// The uniform (vacuous) message: multiplicative identity.
    pub fn uniform() -> Self {
        GaussianMessage {
            precision: 0.0,
            mean_times_precision: 0.0,
        }
    }

    /// Message form of a proper Gaussian.
    pub fn from_gaussian(g: &Gaussian) -> Self {
        let precision = 1.0 / g.var;
        GaussianMessage {
            precision,
            mean_times_precision: g.mean * precision,
        }
    }

    /// Message with the given moments.
    ///
    /// # Panics
    ///
    /// Panics if `var` is not positive and finite.
    pub fn from_moments(mean: f64, var: f64) -> Self {
        Self::from_gaussian(&Gaussian::new(mean, var))
    }

    /// Product of two messages (precisions add).
    pub fn mul(&self, other: &GaussianMessage) -> GaussianMessage {
        GaussianMessage {
            precision: self.precision + other.precision,
            mean_times_precision: self.mean_times_precision + other.mean_times_precision,
        }
    }

    /// Quotient of two messages (precisions subtract). The result may be
    /// improper; EP handles that at the call site.
    pub fn div(&self, other: &GaussianMessage) -> GaussianMessage {
        GaussianMessage {
            precision: self.precision - other.precision,
            mean_times_precision: self.mean_times_precision - other.mean_times_precision,
        }
    }

    /// True if this message corresponds to a proper (normalizable) Gaussian.
    pub fn is_proper(&self) -> bool {
        self.precision > 0.0 && self.precision.is_finite() && self.mean_times_precision.is_finite()
    }

    /// Converts to a proper Gaussian, or `None` if the message is improper.
    pub fn to_gaussian(&self) -> Option<Gaussian> {
        if !self.is_proper() {
            return None;
        }
        let var = 1.0 / self.precision;
        Some(Gaussian::new(self.mean_times_precision * var, var))
    }

    /// The mean if proper.
    pub fn mean(&self) -> Option<f64> {
        if self.is_proper() {
            Some(self.mean_times_precision / self.precision)
        } else {
            None
        }
    }

    /// Normalized movement between two messages viewed as Gaussians: the
    /// mean shift in units of the *wider* standard deviation plus the
    /// variance change relative to the *larger* variance (so the variance
    /// term is bounded by 1 — a transient widened-cavity fallback reads as
    /// "moved", not as a numerical explosion). Returns `f64::INFINITY`
    /// when either message is improper — an improper cavity always counts
    /// as "moved", so adaptive budgets fall back to the full MCMC budget
    /// there.
    pub fn moments_shift(&self, other: &GaussianMessage) -> f64 {
        match (self.to_gaussian(), other.to_gaussian()) {
            (Some(a), Some(b)) => {
                let var = a.var.max(b.var).max(1e-12);
                (b.mean - a.mean).abs() / var.sqrt() + (b.var - a.var).abs() / var
            }
            _ => f64::INFINITY,
        }
    }

    /// Caps the precision at `cap`, preserving the mean: messages more
    /// precise than `cap` are flattened to exactly `cap`. Improper and
    /// below-cap messages pass through unchanged.
    ///
    /// EP site messages estimated from noisy (MCMC) tilted moments can
    /// ratchet toward infinite precision when a chain under-measures an
    /// already-tight tilted variance — each sweep then tightens the cavity
    /// further, amplifying the next under-measurement. A per-variable
    /// precision ceiling bounds that feedback loop (see
    /// `EpConfig::max_precision_ratio`).
    pub fn capped_precision(&self, cap: f64) -> GaussianMessage {
        if self.precision > cap {
            GaussianMessage {
                precision: cap,
                mean_times_precision: self.mean_times_precision / self.precision * cap,
            }
        } else {
            *self
        }
    }

    /// Damped geometric interpolation toward `target` in natural-parameter
    /// space: `(1-η)·self + η·target`. `eta` in `[0, 1]`; `eta = 1` jumps to
    /// `target`. This is the standard damping used to stabilize EP updates.
    pub fn damped_toward(&self, target: &GaussianMessage, eta: f64) -> GaussianMessage {
        let eta = eta.clamp(0.0, 1.0);
        GaussianMessage {
            precision: (1.0 - eta) * self.precision + eta * target.precision,
            mean_times_precision: (1.0 - eta) * self.mean_times_precision
                + eta * target.mean_times_precision,
        }
    }
}

impl Default for GaussianMessage {
    fn default() -> Self {
        Self::uniform()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn uniform_is_identity() {
        let m = GaussianMessage::from_moments(3.0, 2.0);
        let u = GaussianMessage::uniform();
        assert_eq!(m.mul(&u), m);
        assert_eq!(m.div(&u), m);
        assert!(!u.is_proper());
    }

    #[test]
    fn product_of_gaussians_matches_precision_weighted_mean() {
        let a = GaussianMessage::from_moments(0.0, 1.0);
        let b = GaussianMessage::from_moments(10.0, 1.0);
        let g = a.mul(&b).to_gaussian().unwrap();
        assert!((g.mean - 5.0).abs() < 1e-12);
        assert!((g.var - 0.5).abs() < 1e-12);
    }

    #[test]
    fn quotient_can_be_improper() {
        let wide = GaussianMessage::from_moments(0.0, 10.0);
        let narrow = GaussianMessage::from_moments(0.0, 1.0);
        let q = wide.div(&narrow);
        assert!(!q.is_proper());
        assert!(q.to_gaussian().is_none());
    }

    #[test]
    fn moments_shift_measures_normalized_movement() {
        let a = GaussianMessage::from_moments(0.0, 4.0);
        let same = GaussianMessage::from_moments(0.0, 4.0);
        assert_eq!(a.moments_shift(&same), 0.0);
        // Mean moved by one sd, variance unchanged -> shift 1.
        let moved = GaussianMessage::from_moments(2.0, 4.0);
        assert!((a.moments_shift(&moved) - 1.0).abs() < 1e-12);
        // Symmetric, and the variance term is bounded by 1 even for a
        // collapsed-vs-widened pair (the EP fallback transient).
        assert_eq!(a.moments_shift(&moved), moved.moments_shift(&a));
        let tight = GaussianMessage::from_moments(1.0, 1e-9);
        let wide = GaussianMessage::from_moments(1.0, 900.0);
        assert!(tight.moments_shift(&wide) <= 1.0 + 1e-12);
        // Improper comparand counts as infinite movement.
        assert_eq!(a.moments_shift(&GaussianMessage::uniform()), f64::INFINITY);
        assert_eq!(GaussianMessage::uniform().moments_shift(&a), f64::INFINITY);
    }

    #[test]
    fn capped_precision_preserves_mean() {
        let m = GaussianMessage::from_moments(3.0, 1e-8); // precision 1e8
        let capped = m.capped_precision(1e4);
        assert_eq!(capped.precision, 1e4);
        assert!((capped.mean().unwrap() - 3.0).abs() < 1e-12);
        // Below-cap and improper messages pass through.
        assert_eq!(m.capped_precision(1e12), m);
        let u = GaussianMessage::uniform();
        assert_eq!(u.capped_precision(1.0), u);
    }

    #[test]
    fn damping_interpolates() {
        let a = GaussianMessage::from_moments(0.0, 1.0);
        let b = GaussianMessage::from_moments(4.0, 1.0);
        let half = a.damped_toward(&b, 0.5);
        assert!((half.mean().unwrap() - 2.0).abs() < 1e-12);
        assert_eq!(a.damped_toward(&b, 1.0), b);
        assert_eq!(a.damped_toward(&b, 0.0), a);
    }

    proptest! {
        /// (a*b)/b == a in natural parameters.
        #[test]
        fn mul_div_roundtrip(
            m1 in -50.0f64..50.0, v1 in 0.01f64..50.0,
            m2 in -50.0f64..50.0, v2 in 0.01f64..50.0,
        ) {
            let a = GaussianMessage::from_moments(m1, v1);
            let b = GaussianMessage::from_moments(m2, v2);
            let back = a.mul(&b).div(&b);
            prop_assert!((back.precision - a.precision).abs() < 1e-9 * a.precision.max(1.0));
            prop_assert!((back.mean_times_precision - a.mean_times_precision).abs() < 1e-6);
        }

        /// Multiplication is commutative and associative.
        #[test]
        fn mul_commutes(
            m1 in -10.0f64..10.0, v1 in 0.01f64..10.0,
            m2 in -10.0f64..10.0, v2 in 0.01f64..10.0,
            m3 in -10.0f64..10.0, v3 in 0.01f64..10.0,
        ) {
            let a = GaussianMessage::from_moments(m1, v1);
            let b = GaussianMessage::from_moments(m2, v2);
            let c = GaussianMessage::from_moments(m3, v3);
            prop_assert_eq!(a.mul(&b), b.mul(&a));
            let ab_c = a.mul(&b).mul(&c);
            let a_bc = a.mul(&b.mul(&c));
            prop_assert!((ab_c.precision - a_bc.precision).abs() < 1e-9);
            prop_assert!((ab_c.mean_times_precision - a_bc.mean_times_precision).abs() < 1e-9);
        }

        /// Moments roundtrip through natural parameters.
        #[test]
        fn moments_roundtrip(mean in -100.0f64..100.0, var in 0.001f64..1000.0) {
            let g = GaussianMessage::from_moments(mean, var).to_gaussian().unwrap();
            prop_assert!((g.mean - mean).abs() < 1e-6 * mean.abs().max(1.0));
            prop_assert!((g.var - var).abs() < 1e-6 * var);
        }

        /// (a/b)*b == a even when the intermediate quotient is improper —
        /// the transient state EP's cavity computation passes through.
        #[test]
        fn div_mul_roundtrip_through_improper(
            m1 in -50.0f64..50.0, v1 in 0.01f64..50.0,
            m2 in -50.0f64..50.0, v2 in 0.01f64..50.0,
        ) {
            let a = GaussianMessage::from_moments(m1, v1);
            let b = GaussianMessage::from_moments(m2, v2);
            let back = a.div(&b).mul(&b);
            prop_assert!((back.precision - a.precision).abs() < 1e-9 * a.precision.max(1.0));
            prop_assert!((back.mean_times_precision - a.mean_times_precision).abs() < 1e-6);
        }

        /// Damping is linear in natural parameters and stays within the
        /// endpoint precisions.
        #[test]
        fn damping_is_a_natural_parameter_mixture(
            m1 in -20.0f64..20.0, v1 in 0.01f64..20.0,
            m2 in -20.0f64..20.0, v2 in 0.01f64..20.0,
            eta in 0.0f64..1.0,
        ) {
            let a = GaussianMessage::from_moments(m1, v1);
            let b = GaussianMessage::from_moments(m2, v2);
            let d = a.damped_toward(&b, eta);
            let expect_prec = (1.0 - eta) * a.precision + eta * b.precision;
            prop_assert!((d.precision - expect_prec).abs() < 1e-12 * expect_prec.max(1.0));
            let lo = a.precision.min(b.precision) - 1e-12;
            let hi = a.precision.max(b.precision) + 1e-12;
            prop_assert!(d.precision >= lo && d.precision <= hi);
        }

        /// The uniform message is the two-sided identity under mul/div.
        #[test]
        fn uniform_identity_everywhere(m in -100.0f64..100.0, v in 0.01f64..100.0) {
            let a = GaussianMessage::from_moments(m, v);
            let u = GaussianMessage::uniform();
            prop_assert_eq!(a.mul(&u), a);
            prop_assert_eq!(u.mul(&a), a);
            prop_assert_eq!(a.div(&u), a);
        }
    }
}
