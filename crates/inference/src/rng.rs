//! Counter-based RNG streams for deterministic parallel inference.
//!
//! The EP engine farm updates many sites concurrently. If all sites drew
//! from one shared sequential generator, the stream each site sees would
//! depend on execution interleaving — results would vary with thread count
//! and scheduling. Instead, every `(seed, site, sweep)` triple names its own
//! independent stream: a [`SiteRng`] derived by mixing the triple through
//! SplitMix64-style finalizers into a xoshiro256++ state. Site updates are
//! then pure functions of `(global approximation, site data, seed, site id,
//! sweep)` — bit-identical no matter how many workers run them or in what
//! order, which is the determinism guarantee `run_parallel` advertises.
//!
//! This is the software analogue of the per-engine hardware RNGs in the
//! accelerator's AcMC² sampler IPs (§5): each engine owns its stream; no
//! cross-engine synchronization is ever needed for randomness.

use rand::RngCore;

/// 64-bit avalanche mixer (SplitMix64 finalizer). Distinct inputs map to
/// effectively independent outputs.
#[inline]
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Derives an independent sub-seed from a base seed and a stream index —
/// the shared mixer behind per-site and per-chunk stream derivation (one
/// implementation, so stream-separation hardening happens in one place).
pub fn derive_stream_seed(seed: u64, index: usize) -> u64 {
    mix64(
        seed.wrapping_add(0x9e3779b97f4a7c15)
            .wrapping_add((index as u64).wrapping_mul(0xbf58476d1ce4e5b9)),
    )
}

/// A per-`(seed, site, sweep)` random stream.
///
/// Construction is O(1) — no warm-up draws — so the parallel sweep can mint
/// a fresh stream per site update without touching shared state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SiteRng {
    s: [u64; 4],
}

impl SiteRng {
    /// Creates the stream for `(seed, site, sweep)`.
    ///
    /// The three coordinates are mixed with distinct round constants before
    /// state expansion, so neighboring sites/sweeps get unrelated streams
    /// (a plain XOR of the triple would make `(site=1, sweep=0)` collide
    /// with `(site=0, sweep=1)` under many seed values).
    pub fn for_site(seed: u64, site: usize, sweep: usize) -> Self {
        let a = mix64(seed);
        let b = mix64((site as u64).wrapping_add(0xa076_1d64_78bd_642f));
        let c = mix64((sweep as u64).wrapping_add(0xe703_7ed1_a0b4_28db));
        let mut state = a ^ b.rotate_left(21) ^ c.rotate_left(42);
        let mut s = [0u64; 4];
        for w in &mut s {
            state = mix64(state);
            *w = state;
        }
        if s == [0, 0, 0, 0] {
            s[0] = 0x9e3779b97f4a7c15;
        }
        SiteRng { s }
    }
}

impl RngCore for SiteRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        // xoshiro256++, same generator family as the workspace StdRng.
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_coordinates_same_stream() {
        let mut a = SiteRng::for_site(7, 3, 2);
        let mut b = SiteRng::for_site(7, 3, 2);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn coordinates_are_not_interchangeable() {
        // (site, sweep) = (1, 0) vs (0, 1) must differ — the collision a
        // naive seed ^ site ^ sweep scheme would produce.
        let mut a = SiteRng::for_site(7, 1, 0);
        let mut b = SiteRng::for_site(7, 0, 1);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn streams_look_independent() {
        // Cross-correlation of neighboring site streams should be tiny.
        let n = 20_000;
        let mut x = SiteRng::for_site(1, 0, 0);
        let mut y = SiteRng::for_site(1, 1, 0);
        let mut dot = 0.0;
        for _ in 0..n {
            let a: f64 = x.gen::<f64>() - 0.5;
            let b: f64 = y.gen::<f64>() - 0.5;
            dot += a * b;
        }
        let corr = dot / n as f64 / (1.0 / 12.0);
        assert!(corr.abs() < 0.05, "cross-correlation {corr}");
    }

    #[test]
    fn uniform_moments() {
        let mut rng = SiteRng::for_site(42, 9, 4);
        let n = 50_000;
        let mut sum = 0.0;
        for _ in 0..n {
            sum += rng.gen::<f64>();
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
