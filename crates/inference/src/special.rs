//! Special functions needed by the distribution implementations.

/// Natural log of the Gamma function, Lanczos approximation (g = 7, n = 9).
///
/// Accurate to ~1e-13 over the positive reals; negative arguments are
/// handled via the reflection formula.
pub fn ln_gamma(x: f64) -> f64 {
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection: Γ(x)Γ(1−x) = π / sin(πx).
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEFFS[0];
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_known_values() {
        // Γ(1) = Γ(2) = 1, Γ(5) = 24, Γ(0.5) = sqrt(pi).
        assert!(ln_gamma(1.0).abs() < 1e-12);
        assert!(ln_gamma(2.0).abs() < 1e-12);
        assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-11);
        assert!((ln_gamma(0.5) - 0.5 * std::f64::consts::PI.ln()).abs() < 1e-11);
    }

    #[test]
    fn satisfies_recurrence() {
        // ln Γ(x+1) = ln x + ln Γ(x)
        for x in [0.3, 1.7, 4.2, 11.5, 33.3] {
            let lhs = ln_gamma(x + 1.0);
            let rhs = x.ln() + ln_gamma(x);
            assert!((lhs - rhs).abs() < 1e-10, "x = {x}");
        }
    }
}
