//! Bayesian inference engines for BayesPerf.
//!
//! Implements the machinery of §4.2–§4.3 of the paper:
//!
//! * probability distributions ([`Gaussian`], [`StudentT`], [`Gumbel`]) with
//!   sampling implemented from scratch (Box-Muller, Marsaglia-Tsang) so no
//!   external distribution crate is needed;
//! * natural-parameter [`GaussianMessage`] algebra — the multiply/divide
//!   operations Expectation Propagation's cavity computation is built on;
//! * a component-wise random-walk Metropolis-Hastings [`McmcSampler`] with
//!   step-size adaptation, matching the AcMC²-style samplers the
//!   accelerator parallelizes;
//! * the [`ExpectationPropagation`] driver (Alg. 1): sites are partitions of
//!   the data (one per scheduled HPC configuration / time slice); each site
//!   update forms a cavity distribution, estimates tilted moments by MCMC,
//!   and applies a damped global update under a Gaussian mean-field
//!   approximation.
//!
//! # Example: inferring an unmeasured counter through an invariant
//!
//! ```
//! use bayesperf_inference::{EpConfig, ExpectationPropagation, FnSite, Gaussian};
//!
//! // Two events with invariant x0 + x1 = 10; only x0 is observed (≈ 3).
//! let prior = vec![Gaussian::new(5.0, 100.0), Gaussian::new(5.0, 100.0)];
//! let mut ep = ExpectationPropagation::new(prior, EpConfig::default());
//! ep.add_site(FnSite::new(vec![0], |x: &[f64]| {
//!     Gaussian::new(3.0, 0.01).log_pdf(x[0])
//! }));
//! ep.add_site(FnSite::new(vec![0, 1], |x: &[f64]| {
//!     Gaussian::new(0.0, 0.01).log_pdf(x[0] + x[1] - 10.0)
//! }));
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! # use rand::SeedableRng;
//! let result = ep.run(&mut rng);
//! assert!((result.marginals[1].mean - 7.0).abs() < 0.5);
//! ```

mod analytic;
mod dist;
mod ep;
mod factor;
mod mcmc;
mod message;
mod parallel;
mod rng;
mod special;

pub use analytic::AnalyticScratch;
pub use dist::{Gaussian, Gumbel, StudentT};
pub use ep::{
    AdaptiveBudget, EpConfig, EpResult, EpRunStats, EpSite, ExpectationPropagation, FnSite,
    MomentStrategy,
};
pub use factor::{
    FactorSite, FactorSiteBuilder, LinearGaussianFactor, LocalFactor, PoissonFactor,
    POISSON_GAUSSIAN_COUNT,
};
pub use mcmc::{McmcConfig, McmcSampler, McmcScratch, McmcStats, Target};
pub use message::GaussianMessage;
pub use parallel::{SiteWorkspace, SweepSchedule};
pub use rng::{derive_stream_seed, SiteRng};
pub use special::ln_gamma;

/// Draws a standard-normal variate (Box-Muller transform).
pub fn standard_normal<R: rand::Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        if u1 <= f64::MIN_POSITIVE {
            continue;
        }
        let u2: f64 = rng.gen::<f64>();
        return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    }
}

/// Draws from Gamma(shape, 1) via Marsaglia-Tsang; `shape` must be positive.
///
/// # Panics
///
/// Panics if `shape` is not finite and positive.
pub fn gamma<R: rand::Rng + ?Sized>(rng: &mut R, shape: f64) -> f64 {
    assert!(
        shape.is_finite() && shape > 0.0,
        "gamma shape must be positive, got {shape}"
    );
    if shape < 1.0 {
        // Boost: Gamma(a) = Gamma(a+1) * U^(1/a).
        let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        return gamma(rng, shape + 1.0) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = standard_normal(rng);
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = rng.gen();
        if u < 1.0 - 0.0331 * x.powi(4) || u.ln() < 0.5 * x * x + d * (1.0 - v + v.ln()) {
            return d * v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn gamma_moments() {
        let mut rng = StdRng::seed_from_u64(2);
        for shape in [0.5, 1.0, 3.0, 10.0] {
            let n = 100_000;
            let samples: Vec<f64> = (0..n).map(|_| gamma(&mut rng, shape)).collect();
            let mean = samples.iter().sum::<f64>() / n as f64;
            assert!(
                (mean - shape).abs() < 0.08 * shape.max(1.0),
                "shape {shape}: mean {mean}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "gamma shape must be positive")]
    fn gamma_rejects_nonpositive_shape() {
        let mut rng = StdRng::seed_from_u64(3);
        gamma(&mut rng, 0.0);
    }
}
