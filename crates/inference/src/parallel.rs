//! Scheduling and buffers for the software EP engine farm.
//!
//! The paper's accelerator (§5) exploits that EP site updates only interact
//! through the global approximation: its EP engines update many sites
//! concurrently. The software farm reproduces that with three pieces:
//!
//! * [`SweepSchedule`] — a deterministic partition of sites into
//!   *conflict-free batches*: greedy coloring of the site-conflict graph
//!   (two sites conflict when they share a global variable), computed with
//!   [`bayesperf_graph`]'s factor coloring. Within a batch no two sites
//!   touch the same variable, so their updates commute and can run on any
//!   worker in any order;
//! * [`SiteWorkspace`] — one per worker thread: cavity buffers, MCMC init
//!   and proposal-scale vectors, and the sampler's [`McmcScratch`]. All
//!   reused across site updates, so the steady-state sweep performs no heap
//!   allocation;
//! * [`SiteUpdate`] — the per-site result record (damped site message, new
//!   global message, acceptance) workers fill in parallel and the driver
//!   applies sequentially in site order, keeping the merge deterministic.

use crate::dist::Gaussian;
use crate::ep::EpSite;
use crate::mcmc::McmcScratch;
use crate::message::GaussianMessage;
use bayesperf_graph::FactorGraph;

/// The batched sweep schedule: sites partitioned into conflict-free groups.
#[derive(Debug, Clone)]
pub struct SweepSchedule {
    batches: Vec<Vec<usize>>,
}

impl SweepSchedule {
    /// Builds the schedule for `sites` over `num_vars` global variables.
    ///
    /// Two sites conflict iff their variable scopes intersect; conflicts are
    /// discovered through a bipartite [`FactorGraph`] (variables ↔ sites)
    /// and resolved by [`FactorGraph::greedy_factor_coloring`], whose
    /// first-fit order makes the schedule a pure function of the site list —
    /// the foundation of the bit-identical-at-any-thread-count guarantee.
    pub fn for_sites(num_vars: usize, sites: &[Box<dyn EpSite + Send + Sync>]) -> Self {
        let mut g: FactorGraph<(), usize> = FactorGraph::new();
        let vars: Vec<_> = (0..num_vars).map(|_| g.add_var(())).collect();
        for (k, site) in sites.iter().enumerate() {
            let scope: Vec<_> = site.vars().iter().map(|&v| vars[v]).collect();
            g.add_factor(k, &scope);
        }
        let (colors, num_colors) = g.greedy_factor_coloring();
        let mut batches = vec![Vec::new(); num_colors as usize];
        for (k, &c) in colors.iter().enumerate() {
            batches[c as usize].push(k);
        }
        SweepSchedule { batches }
    }

    /// The conflict-free batches, in execution order. Site indices within a
    /// batch are ascending.
    pub fn batches(&self) -> &[Vec<usize>] {
        &self.batches
    }

    /// Number of batches (colors) per sweep.
    pub fn num_batches(&self) -> usize {
        self.batches.len()
    }

    /// Size of the largest batch — the available site-level parallelism.
    pub fn max_batch_len(&self) -> usize {
        self.batches.iter().map(Vec::len).max().unwrap_or(0)
    }
}

/// Per-worker reusable buffers for one site update.
///
/// Everything a site update needs besides the shared read-only state:
/// cavity messages/distributions, MCMC initialization and proposal scales,
/// and the chain's [`McmcScratch`]. Buffers grow to the largest site
/// dimension seen, then stay allocation-free.
#[derive(Debug, Default)]
pub struct SiteWorkspace {
    pub(crate) cavity_msgs: Vec<GaussianMessage>,
    pub(crate) cavity: Vec<Gaussian>,
    pub(crate) init: Vec<f64>,
    pub(crate) scales: Vec<f64>,
    pub(crate) scratch: McmcScratch,
}

impl SiteWorkspace {
    /// Creates an empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// The result of one site update, staged by a worker and merged by the
/// driver.
#[derive(Debug, Clone, Default)]
pub struct SiteUpdate {
    /// Global variable indices of the site (copied so the driver can apply
    /// without re-borrowing the site).
    pub(crate) scope: Vec<usize>,
    /// Damped new site approximation per local variable.
    pub(crate) damped: Vec<GaussianMessage>,
    /// New global message per local variable (valid where `accepted`).
    pub(crate) global_new: Vec<GaussianMessage>,
    /// Whether the candidate global message was proper (update applied).
    pub(crate) accepted: Vec<bool>,
    /// MCMC acceptance rate of the site's chain.
    pub(crate) acceptance: f64,
}

impl SiteUpdate {
    /// Sizes the record for `site` (idempotent; no allocation once grown).
    pub(crate) fn prepare(&mut self, site: &dyn EpSite) {
        self.scope.clear();
        self.scope.extend_from_slice(site.vars());
        let d = self.scope.len();
        self.damped.clear();
        self.damped.resize(d, GaussianMessage::uniform());
        self.global_new.clear();
        self.global_new.resize(d, GaussianMessage::uniform());
        self.accepted.clear();
        self.accepted.resize(d, false);
        self.acceptance = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ep::FnSite;

    fn boxed(vars: Vec<usize>) -> Box<dyn EpSite + Send + Sync> {
        Box::new(FnSite::new(vars, |_: &[f64]| 0.0))
    }

    #[test]
    fn disjoint_sites_share_one_batch() {
        let sites = vec![boxed(vec![0]), boxed(vec![1]), boxed(vec![2, 3])];
        let s = SweepSchedule::for_sites(4, &sites);
        assert_eq!(s.num_batches(), 1);
        assert_eq!(s.batches()[0], vec![0, 1, 2]);
        assert_eq!(s.max_batch_len(), 3);
    }

    #[test]
    fn conflicting_sites_are_separated() {
        // Chain of overlapping pairs: {0,1}, {1,2}, {2,3} -> 2 colors.
        let sites = vec![
            boxed(vec![0, 1]),
            boxed(vec![1, 2]),
            boxed(vec![2, 3]),
            boxed(vec![4]),
        ];
        let s = SweepSchedule::for_sites(5, &sites);
        assert_eq!(s.num_batches(), 2);
        // Every batch is conflict-free.
        for batch in s.batches() {
            let mut seen = std::collections::BTreeSet::new();
            for &k in batch {
                for &v in sites[k].vars() {
                    assert!(seen.insert(v), "batch shares variable {v}");
                }
            }
        }
        // All sites scheduled exactly once.
        let mut all: Vec<usize> = s.batches().iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3]);
    }

    #[test]
    fn schedule_is_deterministic() {
        let mk = || {
            vec![
                boxed(vec![0, 1]),
                boxed(vec![2]),
                boxed(vec![1, 2]),
                boxed(vec![3, 4]),
            ]
        };
        let a = SweepSchedule::for_sites(5, &mk());
        let b = SweepSchedule::for_sites(5, &mk());
        assert_eq!(a.batches(), b.batches());
    }
}
