//! Scheduling and buffers for the software EP engine farm.
//!
//! The paper's accelerator (§5) exploits that EP site updates only interact
//! through the global approximation: its EP engines update many sites
//! concurrently. The software farm reproduces that with three pieces:
//!
//! * [`SweepSchedule`] — a deterministic partition of sites into
//!   *conflict-free batches*: greedy coloring of the site-conflict graph
//!   (two sites conflict when they share a global variable), computed with
//!   [`bayesperf_graph`]'s factor coloring and stored as a cacheable
//!   [`ColorBatches`] value. The schedule is a pure function of the site
//!   topology — not the per-window data — so a warm-started engine computes
//!   it once and replays it across sliding windows;
//! * [`SiteWorkspace`] — one per worker thread: cavity buffers, MCMC init
//!   and proposal-scale vectors, the sampler's [`McmcScratch`], and the
//!   analytic solver's [`AnalyticScratch`]. All reused across site updates,
//!   so the steady-state sweep performs no heap allocation;
//! * [`SiteUpdate`] — the per-site result record (damped site message, new
//!   global message, cavity snapshot, MCMC accounting) workers fill in
//!   parallel and the driver applies sequentially in site order, keeping
//!   the merge deterministic.

use crate::analytic::AnalyticScratch;
use crate::dist::Gaussian;
use crate::ep::EpSite;
use crate::mcmc::McmcScratch;
use crate::message::GaussianMessage;
use bayesperf_graph::{ColorBatches, FactorGraph};

/// The batched sweep schedule: sites partitioned into conflict-free groups.
#[derive(Debug, Clone)]
pub struct SweepSchedule {
    batches: ColorBatches,
}

impl SweepSchedule {
    /// Builds the schedule for `sites` over `num_vars` global variables.
    ///
    /// Two sites conflict iff their variable scopes intersect; conflicts are
    /// discovered through a bipartite [`FactorGraph`] (variables ↔ sites)
    /// and resolved by [`FactorGraph::greedy_factor_coloring`], whose
    /// first-fit order makes the schedule a pure function of the site list —
    /// the foundation of the bit-identical-at-any-thread-count guarantee.
    pub fn for_sites(num_vars: usize, sites: &[Box<dyn EpSite + Send + Sync>]) -> Self {
        Self::for_scopes(num_vars, sites.iter().map(|s| s.vars()))
    }

    /// Builds the schedule from raw variable scopes (one per site).
    pub fn for_scopes<'a>(num_vars: usize, scopes: impl Iterator<Item = &'a [usize]>) -> Self {
        let mut g: FactorGraph<(), usize> = FactorGraph::new();
        let vars: Vec<_> = (0..num_vars).map(|_| g.add_var(())).collect();
        for (k, scope) in scopes.enumerate() {
            let scope: Vec<_> = scope.iter().map(|&v| vars[v]).collect();
            g.add_factor(k, &scope);
        }
        SweepSchedule {
            batches: g.conflict_batches(),
        }
    }

    /// The site indices of batch `c` (ascending).
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range.
    #[inline]
    pub fn batch(&self, c: usize) -> &[u32] {
        self.batches.batch(c)
    }

    /// Iterates over the conflict-free batches in execution order.
    pub fn iter(&self) -> impl Iterator<Item = &[u32]> + '_ {
        self.batches.iter()
    }

    /// Number of batches (colors) per sweep.
    pub fn num_batches(&self) -> usize {
        self.batches.num_batches()
    }

    /// Size of the largest batch — the available site-level parallelism.
    pub fn max_batch_len(&self) -> usize {
        self.batches.max_batch_len()
    }
}

/// Per-worker reusable buffers for one site update.
///
/// Everything a site update needs besides the shared read-only state:
/// cavity messages/distributions, MCMC initialization and proposal scales,
/// the chain's [`McmcScratch`], and the Gaussian-linear solver's
/// [`AnalyticScratch`]. Buffers grow to the largest site dimension seen,
/// then stay allocation-free.
#[derive(Debug, Default)]
pub struct SiteWorkspace {
    pub(crate) cavity_msgs: Vec<GaussianMessage>,
    pub(crate) cavity: Vec<Gaussian>,
    pub(crate) init: Vec<f64>,
    pub(crate) scales: Vec<f64>,
    pub(crate) scratch: McmcScratch,
    pub(crate) analytic: AnalyticScratch,
}

impl SiteWorkspace {
    /// Creates an empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// The result of one site update, staged by a worker and merged by the
/// driver.
#[derive(Debug, Clone, Default)]
pub struct SiteUpdate {
    /// Global variable indices of the site (copied so the driver can apply
    /// without re-borrowing the site).
    pub(crate) scope: Vec<usize>,
    /// Damped new site approximation per local variable.
    pub(crate) damped: Vec<GaussianMessage>,
    /// New global message per local variable (valid where `accepted`).
    pub(crate) global_new: Vec<GaussianMessage>,
    /// Whether the candidate global message was proper (update applied).
    pub(crate) accepted: Vec<bool>,
    /// The cavity this update was computed against — merged into the
    /// engine's per-site history so the next update of the same site can
    /// measure how far its cavity moved (the adaptive-budget signal).
    pub(crate) cavity: Vec<GaussianMessage>,
    /// Whether the tilted moments came from MCMC (false: analytic path).
    pub(crate) used_mcmc: bool,
    /// Whether the update produced non-finite tilted moments (NaN/Inf mean
    /// or variance — a diverged MCMC chain or a poisoned observation). The
    /// driver quarantines the site back to its prior instead of merging.
    pub(crate) quarantined: bool,
    /// Whether a warm adaptive-budget decision voted for the *full* MCMC
    /// budget (the site's cavity jumped) — the sweep-escalation signal.
    /// Always false for cold runs, analytic sites, or `adaptive: None`.
    pub(crate) full_budget_vote: bool,
    /// MCMC samples collected (0 on the analytic path).
    pub(crate) mcmc_samples: u32,
    /// MCMC proposals made / accepted (0 on the analytic path) — the raw
    /// counts behind the proposal-weighted acceptance aggregate.
    pub(crate) proposed: u64,
    pub(crate) accepted_n: u64,
    /// MCMC acceptance rate of the site's chain (unset on analytic path).
    pub(crate) acceptance: f64,
}

impl SiteUpdate {
    /// Sizes the record for `site` (idempotent; no allocation once grown).
    pub(crate) fn prepare(&mut self, site: &dyn EpSite) {
        self.scope.clear();
        self.scope.extend_from_slice(site.vars());
        let d = self.scope.len();
        self.damped.clear();
        self.damped.resize(d, GaussianMessage::uniform());
        self.global_new.clear();
        self.global_new.resize(d, GaussianMessage::uniform());
        self.accepted.clear();
        self.accepted.resize(d, false);
        self.cavity.clear();
        self.cavity.resize(d, GaussianMessage::uniform());
        self.used_mcmc = false;
        self.quarantined = false;
        self.full_budget_vote = false;
        self.mcmc_samples = 0;
        self.proposed = 0;
        self.accepted_n = 0;
        self.acceptance = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ep::FnSite;

    fn boxed(vars: Vec<usize>) -> Box<dyn EpSite + Send + Sync> {
        Box::new(FnSite::new(vars, |_: &[f64]| 0.0))
    }

    #[test]
    fn disjoint_sites_share_one_batch() {
        let sites = vec![boxed(vec![0]), boxed(vec![1]), boxed(vec![2, 3])];
        let s = SweepSchedule::for_sites(4, &sites);
        assert_eq!(s.num_batches(), 1);
        assert_eq!(s.batch(0), &[0, 1, 2]);
        assert_eq!(s.max_batch_len(), 3);
    }

    #[test]
    fn conflicting_sites_are_separated() {
        // Chain of overlapping pairs: {0,1}, {1,2}, {2,3} -> 2 colors.
        let sites = vec![
            boxed(vec![0, 1]),
            boxed(vec![1, 2]),
            boxed(vec![2, 3]),
            boxed(vec![4]),
        ];
        let s = SweepSchedule::for_sites(5, &sites);
        assert_eq!(s.num_batches(), 2);
        // Every batch is conflict-free.
        for batch in s.iter() {
            let mut seen = std::collections::BTreeSet::new();
            for &k in batch {
                for &v in sites[k as usize].vars() {
                    assert!(seen.insert(v), "batch shares variable {v}");
                }
            }
        }
        // All sites scheduled exactly once.
        let mut all: Vec<u32> = s.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3]);
    }

    #[test]
    fn schedule_is_deterministic() {
        let mk = || {
            vec![
                boxed(vec![0, 1]),
                boxed(vec![2]),
                boxed(vec![1, 2]),
                boxed(vec![3, 4]),
            ]
        };
        let a = SweepSchedule::for_sites(5, &mk());
        let b = SweepSchedule::for_sites(5, &mk());
        let batches =
            |s: &SweepSchedule| -> Vec<Vec<u32>> { s.iter().map(|b| b.to_vec()).collect() };
        assert_eq!(batches(&a), batches(&b));
    }
}
