//! Factor-structured EP sites with sparse delta evaluation.
//!
//! [`EpSite::log_likelihood_delta`] documents the locality contract — when
//! one local variable moves, only the factors adjacent to it need
//! re-evaluation — but a closure-based [`FnSite`](crate::FnSite) cannot
//! exploit it: the closure is opaque, so every proposal pays the full
//! likelihood twice. [`FactorSite`] makes the factorization explicit: the
//! site is a list of factors, each declaring which local variables it
//! touches, and a CSR-flattened variable→factor index
//! ([`bayesperf_graph::CsrAdjacency`]) drives the delta evaluation. For a
//! site with `F` factors of bounded arity, a proposal costs `O(deg(i))`
//! instead of `O(F)` — the same sparsity the accelerator's AcMC² sampler IPs
//! exploit in hardware (§5).

use crate::ep::EpSite;
use bayesperf_graph::CsrAdjacency;

/// One factor of a [`FactorSite`]: a log-density over the site-local state.
///
/// Implemented for any `Fn(&[f64]) -> f64`; the closure receives the *full*
/// local state (aligned with the site's variable scope) and should read only
/// the variables it declared when registered.
pub trait LocalFactor: Send + Sync {
    /// Log density contribution (up to an additive constant).
    fn log_pdf(&self, x: &[f64]) -> f64;
}

impl<F: Fn(&[f64]) -> f64 + Send + Sync> LocalFactor for F {
    fn log_pdf(&self, x: &[f64]) -> f64 {
        self(x)
    }
}

/// Builder for [`FactorSite`]: collect factors, then seal the CSR index.
#[derive(Default)]
pub struct FactorSiteBuilder {
    vars: Vec<usize>,
    factors: Vec<Box<dyn LocalFactor>>,
    edges: Vec<(usize, u32)>,
    hints: Vec<Option<f64>>,
    scale_hints: Vec<Option<f64>>,
}

impl FactorSiteBuilder {
    /// Starts a site over the global variables `vars`.
    ///
    /// # Panics
    ///
    /// Panics if `vars` contains duplicates.
    pub fn new(vars: Vec<usize>) -> Self {
        let mut sorted = vars.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), vars.len(), "site variables must be unique");
        let n = vars.len();
        FactorSiteBuilder {
            vars,
            factors: Vec::new(),
            edges: Vec::new(),
            hints: vec![None; n],
            scale_hints: vec![None; n],
        }
    }

    /// Adds a factor touching the *local* variable indices `locals`
    /// (positions within the site's scope, not global indices).
    ///
    /// # Panics
    ///
    /// Panics if a local index is out of range or repeated.
    pub fn factor(
        mut self,
        locals: &[usize],
        f: impl Fn(&[f64]) -> f64 + Send + Sync + 'static,
    ) -> Self {
        let fi = self.factors.len() as u32;
        let mut seen = locals.to_vec();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), locals.len(), "factor locals must be unique");
        for &l in locals {
            assert!(
                l < self.vars.len(),
                "factor local {l} out of range for a {}-variable site",
                self.vars.len()
            );
            self.edges.push((l, fi));
        }
        self.factors.push(Box::new(f));
        self
    }

    /// Sets the MCMC initialization hint for local variable `local`.
    ///
    /// # Panics
    ///
    /// Panics if `local` is out of range.
    pub fn init_hint(mut self, local: usize, value: f64) -> Self {
        self.hints[local] = Some(value);
        self
    }

    /// Sets the proposal-scale hint for local variable `local`.
    ///
    /// # Panics
    ///
    /// Panics if `local` is out of range.
    pub fn scale_hint(mut self, local: usize, value: f64) -> Self {
        self.scale_hints[local] = Some(value);
        self
    }

    /// Seals the builder: flattens the variable→factor index into CSR form.
    pub fn build(self) -> FactorSite {
        let adj = CsrAdjacency::from_edges(self.vars.len(), self.edges.iter().copied());
        FactorSite {
            vars: self.vars,
            factors: self.factors,
            adj,
            hints: self.hints,
            scale_hints: self.scale_hints,
        }
    }
}

/// An [`EpSite`] whose likelihood is an explicit product of factors, with
/// CSR-indexed sparse delta evaluation.
pub struct FactorSite {
    vars: Vec<usize>,
    factors: Vec<Box<dyn LocalFactor>>,
    adj: CsrAdjacency,
    hints: Vec<Option<f64>>,
    scale_hints: Vec<Option<f64>>,
}

impl std::fmt::Debug for FactorSite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FactorSite")
            .field("num_vars", &self.vars.len())
            .field("num_factors", &self.factors.len())
            .finish()
    }
}

impl FactorSite {
    /// Starts building a site over the global variables `vars`.
    pub fn builder(vars: Vec<usize>) -> FactorSiteBuilder {
        FactorSiteBuilder::new(vars)
    }

    /// Number of factors.
    pub fn num_factors(&self) -> usize {
        self.factors.len()
    }

    /// The factor indices adjacent to local variable `i`.
    pub fn factors_of(&self, i: usize) -> &[u32] {
        self.adj.row(i)
    }
}

impl EpSite for FactorSite {
    fn vars(&self) -> &[usize] {
        &self.vars
    }

    fn log_likelihood(&self, x: &[f64]) -> f64 {
        self.factors.iter().map(|f| f.log_pdf(x)).sum()
    }

    fn log_likelihood_delta(&self, x: &mut [f64], i: usize, new: f64) -> f64 {
        let old = x[i];
        let mut before = 0.0;
        for &fi in self.adj.row(i) {
            before += self.factors[fi as usize].log_pdf(x);
        }
        x[i] = new;
        let mut after = 0.0;
        for &fi in self.adj.row(i) {
            after += self.factors[fi as usize].log_pdf(x);
        }
        x[i] = old;
        after - before
    }

    fn init_hint(&self, i: usize) -> Option<f64> {
        self.hints[i]
    }

    fn scale_hint(&self, i: usize) -> Option<f64> {
        self.scale_hints[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::Gaussian;

    fn two_factor_site() -> FactorSite {
        // x0 observed near 3; x0 + x1 ≈ 10.
        FactorSite::builder(vec![0, 1])
            .factor(&[0], |x: &[f64]| Gaussian::new(3.0, 0.01).log_pdf(x[0]))
            .factor(&[0, 1], |x: &[f64]| {
                Gaussian::new(0.0, 0.01).log_pdf(x[0] + x[1] - 10.0)
            })
            .build()
    }

    #[test]
    fn likelihood_is_factor_sum() {
        let site = two_factor_site();
        let x = [2.5, 7.1];
        let expect = Gaussian::new(3.0, 0.01).log_pdf(2.5)
            + Gaussian::new(0.0, 0.01).log_pdf(2.5 + 7.1 - 10.0);
        assert!((site.log_likelihood(&x) - expect).abs() < 1e-12);
    }

    #[test]
    fn delta_matches_full_recompute_and_restores_state() {
        let site = two_factor_site();
        let mut x = vec![2.5, 7.1];
        let before = site.log_likelihood(&x);
        let delta = site.log_likelihood_delta(&mut x, 1, 6.4);
        assert_eq!(x, vec![2.5, 7.1], "state must be restored");
        let full = site.log_likelihood(&[2.5, 6.4]) - before;
        assert!((delta - full).abs() < 1e-12, "delta {delta} vs {full}");
    }

    #[test]
    fn delta_only_visits_adjacent_factors() {
        // Factor 0 touches only local 0, factor 1 touches both.
        let site = two_factor_site();
        assert_eq!(site.factors_of(0), &[0, 1]);
        assert_eq!(site.factors_of(1), &[1]);
        // Moving local 1 must not evaluate factor 0: make that observable
        // with a factor that panics when evaluated.
        let trap = FactorSite::builder(vec![0, 1])
            .factor(&[0], |_: &[f64]| -> f64 { panic!("factor 0 must not run") })
            .factor(&[1], |x: &[f64]| -x[1] * x[1])
            .build();
        let mut x = vec![0.0, 1.0];
        let d = trap.log_likelihood_delta(&mut x, 1, 2.0);
        assert!((d - (-4.0 + 1.0)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "factor local 2 out of range")]
    fn rejects_out_of_range_local() {
        let _ = FactorSite::builder(vec![0, 1]).factor(&[2], |_: &[f64]| 0.0);
    }

    #[test]
    #[should_panic(expected = "site variables must be unique")]
    fn rejects_duplicate_vars() {
        FactorSiteBuilder::new(vec![0, 0]);
    }
}
