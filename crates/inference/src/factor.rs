//! Factor-structured EP sites with sparse delta evaluation and an analytic
//! Gaussian-linear fast path.
//!
//! [`EpSite::log_likelihood_delta`] documents the locality contract — when
//! one local variable moves, only the factors adjacent to it need
//! re-evaluation — but a closure-based [`FnSite`](crate::FnSite) cannot
//! exploit it: the closure is opaque, so every proposal pays the full
//! likelihood twice. [`FactorSite`] makes the factorization explicit: the
//! site is a list of factors, each declaring which local variables it
//! touches, and a CSR-flattened variable→factor index
//! ([`bayesperf_graph::CsrAdjacency`]) drives the delta evaluation. For a
//! site with `F` factors of bounded arity, a proposal costs `O(deg(i))`
//! instead of `O(F)` — the same sparsity the accelerator's AcMC² sampler IPs
//! exploit in hardware (§5).
//!
//! # Typed factors and the analytic moment fast path
//!
//! Beyond opaque closures, a site can hold *typed* factors:
//!
//! * [`FactorSiteBuilder::gaussian_linear`] — a Gaussian pseudo-observation
//!   of a linear combination `Σ cᵢ·xᵢ ~ N(obs, var)` (BayesPerf's
//!   linear-constraint invariants, e.g. `refs = hits + misses`);
//! * [`FactorSiteBuilder::poisson`] — a Poisson count observation
//!   `k ~ Poisson(exposure·x)`; at high counts (`k ≥ 64`) it is
//!   statistically indistinguishable from the Gaussian
//!   `exposure·x − k ~ N(0, k)` and reports that linearization.
//!
//! When **every** factor of a site is Gaussian-linear (including
//! high-count Poissons), the tilted distribution is exactly Gaussian and
//! the site advertises [`MomentStrategy::Analytic`]: the EP driver computes
//! tilted moments in closed form through [`AnalyticScratch`]
//! (`O(d³)` Cholesky) and never runs MCMC for the site. A single low-count
//! Poisson or opaque closure demotes the whole site to
//! [`MomentStrategy::Mcmc`].

use crate::analytic::AnalyticScratch;
use crate::dist::Gaussian;
use crate::ep::{EpSite, MomentStrategy};
use bayesperf_graph::CsrAdjacency;

/// Observed counts at or above this threshold let a Poisson factor use its
/// Gaussian approximation `N(k, k)` (relative moment error below ~1%).
pub const POISSON_GAUSSIAN_COUNT: f64 = 64.0;

/// One factor of a [`FactorSite`]: a log-density over the site-local state.
///
/// Implemented for any `Fn(&[f64]) -> f64`; the closure receives the *full*
/// local state (aligned with the site's variable scope) and should read only
/// the variables it declared when registered.
pub trait LocalFactor: Send + Sync {
    /// Log density contribution (up to an additive constant).
    fn log_pdf(&self, x: &[f64]) -> f64;
}

impl<F: Fn(&[f64]) -> f64 + Send + Sync> LocalFactor for F {
    fn log_pdf(&self, x: &[f64]) -> f64 {
        self(x)
    }
}

/// A Gaussian pseudo-observation of a linear combination of local
/// variables: `Σᵢ coeffs[i]·x[locals[i]] ~ N(obs, var)`.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearGaussianFactor {
    locals: Vec<usize>,
    coeffs: Vec<f64>,
    obs: f64,
    var: f64,
}

impl LinearGaussianFactor {
    /// Creates the factor.
    ///
    /// # Panics
    ///
    /// Panics if `locals`/`coeffs` lengths differ, `locals` repeats an
    /// index, or `var` is not positive and finite.
    pub fn new(locals: Vec<usize>, coeffs: Vec<f64>, obs: f64, var: f64) -> Self {
        assert_eq!(locals.len(), coeffs.len(), "locals/coeffs length mismatch");
        let mut sorted = locals.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), locals.len(), "factor locals must be unique");
        assert!(
            var.is_finite() && var > 0.0,
            "variance must be positive, got {var}"
        );
        LinearGaussianFactor {
            locals,
            coeffs,
            obs,
            var,
        }
    }

    /// The observed value of the linear combination.
    pub fn obs(&self) -> f64 {
        self.obs
    }

    fn log_pdf(&self, x: &[f64]) -> f64 {
        let s: f64 = self
            .locals
            .iter()
            .zip(&self.coeffs)
            .map(|(&l, &c)| c * x[l])
            .sum();
        let d = s - self.obs;
        -0.5 * d * d / self.var - 0.5 * self.var.ln()
    }
}

/// A Poisson count observation on one local variable:
/// `count ~ Poisson(exposure · x)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoissonFactor {
    local: usize,
    count: f64,
    exposure: f64,
}

impl PoissonFactor {
    /// Creates the factor.
    ///
    /// # Panics
    ///
    /// Panics if `count` is negative or `exposure` is not positive and
    /// finite.
    pub fn new(local: usize, count: f64, exposure: f64) -> Self {
        assert!(count >= 0.0, "count must be non-negative, got {count}");
        assert!(
            exposure.is_finite() && exposure > 0.0,
            "exposure must be positive, got {exposure}"
        );
        PoissonFactor {
            local,
            count,
            exposure,
        }
    }

    /// The observed count.
    pub fn count(&self) -> f64 {
        self.count
    }

    /// Whether the count is high enough for the Gaussian approximation.
    pub fn is_gaussian(&self) -> bool {
        self.count >= POISSON_GAUSSIAN_COUNT
    }

    fn log_pdf(&self, x: &[f64]) -> f64 {
        let lambda = self.exposure * x[self.local];
        if lambda <= 0.0 {
            return f64::NEG_INFINITY;
        }
        self.count * lambda.ln() - lambda
    }
}

/// Internal representation of one site factor.
enum SiteFactor {
    /// An opaque closure — never analytic.
    Opaque(Box<dyn LocalFactor>),
    /// A typed Gaussian-linear factor — always analytic.
    Linear(LinearGaussianFactor),
    /// A typed Poisson factor — analytic at high counts.
    Poisson(PoissonFactor),
}

impl SiteFactor {
    fn log_pdf(&self, x: &[f64]) -> f64 {
        match self {
            SiteFactor::Opaque(f) => f.log_pdf(x),
            SiteFactor::Linear(f) => f.log_pdf(x),
            SiteFactor::Poisson(f) => f.log_pdf(x),
        }
    }

    /// Accumulates this factor's Gaussian-linear form into `ws`, or reports
    /// that it has none.
    fn add_linear_term(&self, ws: &mut AnalyticScratch) -> bool {
        match self {
            SiteFactor::Opaque(_) => false,
            SiteFactor::Linear(f) => {
                ws.add_term(&f.locals, &f.coeffs, f.obs, f.var);
                true
            }
            SiteFactor::Poisson(f) => {
                if !f.is_gaussian() {
                    return false;
                }
                ws.add_term(
                    std::slice::from_ref(&f.local),
                    std::slice::from_ref(&f.exposure),
                    f.count,
                    f.count.max(1.0),
                );
                true
            }
        }
    }

    fn is_linear(&self) -> bool {
        match self {
            SiteFactor::Opaque(_) => false,
            SiteFactor::Linear(_) => true,
            SiteFactor::Poisson(f) => f.is_gaussian(),
        }
    }
}

/// Builder for [`FactorSite`]: collect factors, then seal the CSR index.
#[derive(Default)]
pub struct FactorSiteBuilder {
    vars: Vec<usize>,
    factors: Vec<SiteFactor>,
    edges: Vec<(usize, u32)>,
    hints: Vec<Option<f64>>,
    scale_hints: Vec<Option<f64>>,
}

impl FactorSiteBuilder {
    /// Starts a site over the global variables `vars`.
    ///
    /// # Panics
    ///
    /// Panics if `vars` contains duplicates.
    pub fn new(vars: Vec<usize>) -> Self {
        let mut sorted = vars.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), vars.len(), "site variables must be unique");
        let n = vars.len();
        FactorSiteBuilder {
            vars,
            factors: Vec::new(),
            edges: Vec::new(),
            hints: vec![None; n],
            scale_hints: vec![None; n],
        }
    }

    fn register_edges(&mut self, locals: &[usize]) {
        let fi = self.factors.len() as u32;
        let mut seen = locals.to_vec();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), locals.len(), "factor locals must be unique");
        for &l in locals {
            assert!(
                l < self.vars.len(),
                "factor local {l} out of range for a {}-variable site",
                self.vars.len()
            );
            self.edges.push((l, fi));
        }
    }

    /// Adds an opaque factor touching the *local* variable indices `locals`
    /// (positions within the site's scope, not global indices). Opaque
    /// factors force the site onto the MCMC moment path.
    ///
    /// # Panics
    ///
    /// Panics if a local index is out of range or repeated.
    pub fn factor(
        mut self,
        locals: &[usize],
        f: impl Fn(&[f64]) -> f64 + Send + Sync + 'static,
    ) -> Self {
        self.register_edges(locals);
        self.factors.push(SiteFactor::Opaque(Box::new(f)));
        self
    }

    /// Adds a typed Gaussian-linear factor:
    /// `Σᵢ coeffs[i]·x[locals[i]] ~ N(obs, var)`.
    ///
    /// # Panics
    ///
    /// Panics if a local index is out of range or repeated, lengths differ,
    /// or `var` is not positive.
    pub fn gaussian_linear(mut self, locals: &[usize], coeffs: &[f64], obs: f64, var: f64) -> Self {
        self.register_edges(locals);
        self.factors
            .push(SiteFactor::Linear(LinearGaussianFactor::new(
                locals.to_vec(),
                coeffs.to_vec(),
                obs,
                var,
            )));
        self
    }

    /// Adds a typed Poisson count observation:
    /// `count ~ Poisson(exposure·x[local])`.
    ///
    /// # Panics
    ///
    /// Panics if `local` is out of range, `count` is negative, or
    /// `exposure` is not positive.
    pub fn poisson(mut self, local: usize, count: f64, exposure: f64) -> Self {
        self.register_edges(&[local]);
        self.factors.push(SiteFactor::Poisson(PoissonFactor::new(
            local, count, exposure,
        )));
        self
    }

    /// Sets the MCMC initialization hint for local variable `local`.
    ///
    /// # Panics
    ///
    /// Panics if `local` is out of range.
    pub fn init_hint(mut self, local: usize, value: f64) -> Self {
        self.hints[local] = Some(value);
        self
    }

    /// Sets the proposal-scale hint for local variable `local`.
    ///
    /// # Panics
    ///
    /// Panics if `local` is out of range.
    pub fn scale_hint(mut self, local: usize, value: f64) -> Self {
        self.scale_hints[local] = Some(value);
        self
    }

    /// Seals the builder: flattens the variable→factor index into CSR form.
    pub fn build(self) -> FactorSite {
        let adj = CsrAdjacency::from_edges(self.vars.len(), self.edges.iter().copied());
        FactorSite {
            vars: self.vars,
            factors: self.factors,
            adj,
            hints: self.hints,
            scale_hints: self.scale_hints,
        }
    }
}

/// An [`EpSite`] whose likelihood is an explicit product of factors, with
/// CSR-indexed sparse delta evaluation and, when every factor is
/// Gaussian-linear, closed-form tilted moments.
pub struct FactorSite {
    vars: Vec<usize>,
    factors: Vec<SiteFactor>,
    adj: CsrAdjacency,
    hints: Vec<Option<f64>>,
    scale_hints: Vec<Option<f64>>,
}

impl std::fmt::Debug for FactorSite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FactorSite")
            .field("num_vars", &self.vars.len())
            .field("num_factors", &self.factors.len())
            .field("strategy", &EpSite::moment_strategy(self))
            .finish()
    }
}

impl FactorSite {
    /// Starts building a site over the global variables `vars`.
    pub fn builder(vars: Vec<usize>) -> FactorSiteBuilder {
        FactorSiteBuilder::new(vars)
    }

    /// Number of factors.
    pub fn num_factors(&self) -> usize {
        self.factors.len()
    }

    /// The factor indices adjacent to local variable `i`.
    pub fn factors_of(&self, i: usize) -> &[u32] {
        self.adj.row(i)
    }

    /// Replaces the observed value of the Gaussian-linear factor at
    /// `factor_idx` — the warm-start observation swap (topology and
    /// coefficients stay fixed; only the datum moves between windows).
    ///
    /// # Panics
    ///
    /// Panics if `factor_idx` is out of range or names a non-linear factor.
    pub fn set_linear_obs(&mut self, factor_idx: usize, obs: f64) {
        match &mut self.factors[factor_idx] {
            SiteFactor::Linear(f) => f.obs = obs,
            _ => panic!("factor {factor_idx} is not a Gaussian-linear factor"),
        }
    }

    /// Replaces the observed count of the Poisson factor at `factor_idx`.
    ///
    /// # Panics
    ///
    /// Panics if `factor_idx` is out of range, names a non-Poisson factor,
    /// or `count` is negative.
    pub fn set_poisson_count(&mut self, factor_idx: usize, count: f64) {
        assert!(count >= 0.0, "count must be non-negative, got {count}");
        match &mut self.factors[factor_idx] {
            SiteFactor::Poisson(f) => f.count = count,
            _ => panic!("factor {factor_idx} is not a Poisson factor"),
        }
    }
}

impl EpSite for FactorSite {
    fn vars(&self) -> &[usize] {
        &self.vars
    }

    fn log_likelihood(&self, x: &[f64]) -> f64 {
        self.factors.iter().map(|f| f.log_pdf(x)).sum()
    }

    fn log_likelihood_delta(&self, x: &mut [f64], i: usize, new: f64) -> f64 {
        let old = x[i];
        let mut before = 0.0;
        for &fi in self.adj.row(i) {
            before += self.factors[fi as usize].log_pdf(x);
        }
        x[i] = new;
        let mut after = 0.0;
        for &fi in self.adj.row(i) {
            after += self.factors[fi as usize].log_pdf(x);
        }
        x[i] = old;
        after - before
    }

    fn init_hint(&self, i: usize) -> Option<f64> {
        self.hints[i]
    }

    fn scale_hint(&self, i: usize) -> Option<f64> {
        self.scale_hints[i]
    }

    fn moment_strategy(&self) -> MomentStrategy {
        if !self.factors.is_empty() && self.factors.iter().all(SiteFactor::is_linear) {
            MomentStrategy::Analytic
        } else {
            MomentStrategy::Mcmc
        }
    }

    fn analytic_moments(&self, cavity: &[Gaussian], ws: &mut AnalyticScratch) -> bool {
        ws.begin(cavity);
        for f in &self.factors {
            if !f.add_linear_term(ws) {
                return false;
            }
        }
        ws.solve()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_factor_site() -> FactorSite {
        // x0 observed near 3; x0 + x1 ≈ 10.
        FactorSite::builder(vec![0, 1])
            .factor(&[0], |x: &[f64]| Gaussian::new(3.0, 0.01).log_pdf(x[0]))
            .factor(&[0, 1], |x: &[f64]| {
                Gaussian::new(0.0, 0.01).log_pdf(x[0] + x[1] - 10.0)
            })
            .build()
    }

    #[test]
    fn likelihood_is_factor_sum() {
        let site = two_factor_site();
        let x = [2.5, 7.1];
        let expect = Gaussian::new(3.0, 0.01).log_pdf(2.5)
            + Gaussian::new(0.0, 0.01).log_pdf(2.5 + 7.1 - 10.0);
        assert!((site.log_likelihood(&x) - expect).abs() < 1e-12);
    }

    #[test]
    fn delta_matches_full_recompute_and_restores_state() {
        let site = two_factor_site();
        let mut x = vec![2.5, 7.1];
        let before = site.log_likelihood(&x);
        let delta = site.log_likelihood_delta(&mut x, 1, 6.4);
        assert_eq!(x, vec![2.5, 7.1], "state must be restored");
        let full = site.log_likelihood(&[2.5, 6.4]) - before;
        assert!((delta - full).abs() < 1e-12, "delta {delta} vs {full}");
    }

    #[test]
    fn delta_only_visits_adjacent_factors() {
        // Factor 0 touches only local 0, factor 1 touches both.
        let site = two_factor_site();
        assert_eq!(site.factors_of(0), &[0, 1]);
        assert_eq!(site.factors_of(1), &[1]);
        // Moving local 1 must not evaluate factor 0: make that observable
        // with a factor that panics when evaluated.
        let trap = FactorSite::builder(vec![0, 1])
            .factor(&[0], |_: &[f64]| -> f64 { panic!("factor 0 must not run") })
            .factor(&[1], |x: &[f64]| -x[1] * x[1])
            .build();
        let mut x = vec![0.0, 1.0];
        let d = trap.log_likelihood_delta(&mut x, 1, 2.0);
        assert!((d - (-4.0 + 1.0)).abs() < 1e-12);
    }

    #[test]
    fn opaque_factors_select_mcmc() {
        assert_eq!(two_factor_site().moment_strategy(), MomentStrategy::Mcmc);
    }

    #[test]
    fn all_linear_factors_select_analytic() {
        let site = FactorSite::builder(vec![0, 1])
            .gaussian_linear(&[0], &[1.0], 3.0, 0.01)
            .gaussian_linear(&[0, 1], &[1.0, 1.0], 10.0, 0.01)
            .build();
        assert_eq!(site.moment_strategy(), MomentStrategy::Analytic);
    }

    #[test]
    fn one_opaque_factor_demotes_to_mcmc() {
        let site = FactorSite::builder(vec![0, 1])
            .gaussian_linear(&[0], &[1.0], 3.0, 0.01)
            .factor(&[1], |x: &[f64]| -x[1] * x[1])
            .build();
        assert_eq!(site.moment_strategy(), MomentStrategy::Mcmc);
    }

    #[test]
    fn poisson_strategy_depends_on_count() {
        let high = FactorSite::builder(vec![0])
            .poisson(0, 1000.0, 10.0)
            .build();
        assert_eq!(high.moment_strategy(), MomentStrategy::Analytic);
        let low = FactorSite::builder(vec![0]).poisson(0, 5.0, 10.0).build();
        assert_eq!(low.moment_strategy(), MomentStrategy::Mcmc);
    }

    #[test]
    fn analytic_moments_match_conjugate_update() {
        let site = FactorSite::builder(vec![0])
            .gaussian_linear(&[0], &[1.0], 6.0, 1.0)
            .build();
        let mut ws = AnalyticScratch::new();
        assert!(site.analytic_moments(&[Gaussian::new(0.0, 4.0)], &mut ws));
        assert!((ws.mean()[0] - 4.8).abs() < 1e-12);
        assert!((ws.var()[0] - 0.8).abs() < 1e-12);
    }

    #[test]
    fn high_count_poisson_moments_match_gaussian_limit() {
        // k = 10_000 at exposure 100: posterior of x concentrates near
        // k/exposure = 100 with var ≈ k/exposure² = 1 (wide cavity).
        let site = FactorSite::builder(vec![0])
            .poisson(0, 10_000.0, 100.0)
            .build();
        let mut ws = AnalyticScratch::new();
        assert!(site.analytic_moments(&[Gaussian::new(90.0, 1e6)], &mut ws));
        assert!((ws.mean()[0] - 100.0).abs() < 0.1, "mean {}", ws.mean()[0]);
        assert!((ws.var()[0] - 1.0).abs() < 0.05, "var {}", ws.var()[0]);
    }

    #[test]
    fn observation_swap_updates_linear_factor() {
        let mut site = FactorSite::builder(vec![0])
            .gaussian_linear(&[0], &[1.0], 6.0, 1.0)
            .build();
        site.set_linear_obs(0, 8.0);
        let mut ws = AnalyticScratch::new();
        assert!(site.analytic_moments(&[Gaussian::new(0.0, 4.0)], &mut ws));
        // Posterior mean of N(0,4) prior with N(8,1) obs: 8·(4/5) = 6.4.
        assert!((ws.mean()[0] - 6.4).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "is not a Gaussian-linear factor")]
    fn observation_swap_rejects_wrong_kind() {
        let mut site = FactorSite::builder(vec![0]).poisson(0, 100.0, 1.0).build();
        site.set_linear_obs(0, 1.0);
    }

    #[test]
    fn poisson_log_pdf_peaks_at_rate() {
        let f = PoissonFactor::new(0, 100.0, 10.0);
        // λ = 10·x; peak at x = k/exposure = 10.
        assert!(f.log_pdf(&[10.0]) > f.log_pdf(&[9.0]));
        assert!(f.log_pdf(&[10.0]) > f.log_pdf(&[11.0]));
        assert_eq!(f.log_pdf(&[-1.0]), f64::NEG_INFINITY);
    }

    #[test]
    #[should_panic(expected = "factor local 2 out of range")]
    fn rejects_out_of_range_local() {
        let _ = FactorSite::builder(vec![0, 1]).factor(&[2], |_: &[f64]| 0.0);
    }

    #[test]
    #[should_panic(expected = "site variables must be unique")]
    fn rejects_duplicate_vars() {
        FactorSiteBuilder::new(vec![0, 0]);
    }
}
