//! Ground-truth synthesis: turn a small set of free workload parameters into
//! a complete, invariant-consistent vector of event counts.
//!
//! The simulator needs a "true" value for every catalog event at every
//! instant. Rather than specifying 45 correlated rates by hand per workload
//! phase, workloads specify ~20 free parameters (IPC, miss ratios, stall
//! fractions, IO rates); `synthesize` derives all event counts so that every
//! *exact* invariant in the catalog holds by construction, and the soft
//! invariants hold up to their stated tolerance.

use crate::catalog::Catalog;
use crate::event::Semantic;
use serde::{Deserialize, Serialize};

/// Free workload parameters, in per-mega-cycle units.
///
/// All `*_mpki` fields are events per kilo-instruction; `*_frac`/`*_ratio`
/// fields are dimensionless in `[0, 1]`; `*_pmc` fields are counts per
/// mega-cycle.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FreeParams {
    /// Instructions per cycle.
    pub ipc: f64,
    /// µops per instruction (soft-invariant center is arch nominal).
    pub uops_per_inst: f64,
    /// Branches per instruction.
    pub branch_frac: f64,
    /// Branch mispredictions per kilo-instruction.
    pub branch_mpki: f64,
    /// Machine clears per mega-cycle.
    pub machine_clears_pmc: f64,
    /// I-cache misses per kilo-instruction.
    pub icache_mpki: f64,
    /// ITLB misses per kilo-instruction.
    pub itlb_mpki: f64,
    /// DTLB load misses per kilo-instruction.
    pub dtlb_mpki: f64,
    /// L1D misses per kilo-instruction.
    pub l1d_mpki: f64,
    /// L2 miss ratio (L2 misses / L2 references).
    pub l2_miss_ratio: f64,
    /// LLC hit ratio (LLC hits / LLC references).
    pub llc_hit_ratio: f64,
    /// LLC writebacks as a fraction of LLC misses.
    pub llc_wb_ratio: f64,
    /// Fraction of issue slots starved by the frontend.
    pub fe_bound_frac: f64,
    /// Fraction of issued µops from the microcode sequencer.
    pub ms_frac: f64,
    /// Fraction of (non-MS) issued µops from the µop cache.
    pub dsb_frac: f64,
    /// Fraction of cycles stalled with memory outstanding.
    pub mem_stall_frac: f64,
    /// Share of memory stalls that have an L2 miss pending.
    pub l2pend_share: f64,
    /// Fraction of cycles stalled for non-memory reasons.
    pub other_stall_frac: f64,
    /// Fraction of cycles with ≥1 outstanding DRAM demand read.
    pub oro_any_frac: f64,
    /// Share of outstanding-read cycles that are bandwidth-bound.
    pub oro_bw_share: f64,
    /// IIO allocating writes per mega-cycle.
    pub iio_wr_alloc_pmc: f64,
    /// IIO full-line writes per mega-cycle.
    pub iio_wr_full_pmc: f64,
    /// IIO partial writes per mega-cycle.
    pub iio_wr_part_pmc: f64,
    /// IIO non-snoop writes per mega-cycle.
    pub iio_wr_nonsnoop_pmc: f64,
    /// IIO code reads per mega-cycle.
    pub iio_rd_code_pmc: f64,
    /// IIO partial/MMIO reads per mega-cycle.
    pub iio_rd_part_pmc: f64,
}

impl Default for FreeParams {
    /// A mid-of-the-road, cache-friendly workload used for nominal scales.
    fn default() -> Self {
        FreeParams {
            ipc: 1.4,
            uops_per_inst: 1.12,
            branch_frac: 0.16,
            branch_mpki: 3.0,
            machine_clears_pmc: 20.0,
            icache_mpki: 2.0,
            itlb_mpki: 0.2,
            dtlb_mpki: 0.8,
            l1d_mpki: 18.0,
            l2_miss_ratio: 0.35,
            llc_hit_ratio: 0.6,
            llc_wb_ratio: 0.4,
            fe_bound_frac: 0.12,
            ms_frac: 0.04,
            dsb_frac: 0.65,
            mem_stall_frac: 0.22,
            l2pend_share: 0.55,
            other_stall_frac: 0.08,
            oro_any_frac: 0.25,
            oro_bw_share: 0.4,
            iio_wr_alloc_pmc: 120.0,
            iio_wr_full_pmc: 300.0,
            iio_wr_part_pmc: 40.0,
            iio_wr_nonsnoop_pmc: 60.0,
            iio_rd_code_pmc: 25.0,
            iio_rd_part_pmc: 35.0,
        }
    }
}

impl FreeParams {
    /// Clamps every field into its physically-meaningful range.
    ///
    /// Called by `synthesize`, so slightly-out-of-range parameters (e.g.
    /// after additive phase modulation) are tolerated rather than producing
    /// negative counts.
    pub fn clamped(&self) -> FreeParams {
        let frac = |v: f64| v.clamp(0.0, 0.95);
        let pos = |v: f64| v.max(0.0);
        FreeParams {
            ipc: self.ipc.clamp(0.05, 3.8),
            uops_per_inst: self.uops_per_inst.clamp(1.0, 1.6),
            branch_frac: frac(self.branch_frac),
            branch_mpki: pos(self.branch_mpki),
            machine_clears_pmc: pos(self.machine_clears_pmc),
            icache_mpki: pos(self.icache_mpki),
            itlb_mpki: pos(self.itlb_mpki),
            dtlb_mpki: pos(self.dtlb_mpki),
            l1d_mpki: pos(self.l1d_mpki),
            l2_miss_ratio: frac(self.l2_miss_ratio),
            llc_hit_ratio: frac(self.llc_hit_ratio),
            llc_wb_ratio: frac(self.llc_wb_ratio),
            fe_bound_frac: frac(self.fe_bound_frac),
            ms_frac: frac(self.ms_frac),
            dsb_frac: frac(self.dsb_frac),
            mem_stall_frac: frac(self.mem_stall_frac),
            l2pend_share: frac(self.l2pend_share),
            other_stall_frac: frac(self.other_stall_frac),
            oro_any_frac: frac(self.oro_any_frac),
            oro_bw_share: frac(self.oro_bw_share),
            iio_wr_alloc_pmc: pos(self.iio_wr_alloc_pmc),
            iio_wr_full_pmc: pos(self.iio_wr_full_pmc),
            iio_wr_part_pmc: pos(self.iio_wr_part_pmc),
            iio_wr_nonsnoop_pmc: pos(self.iio_wr_nonsnoop_pmc),
            iio_rd_code_pmc: pos(self.iio_rd_code_pmc),
            iio_rd_part_pmc: pos(self.iio_rd_part_pmc),
        }
    }
}

/// Cycles in one synthesis unit: all outputs are counts per mega-cycle.
pub const MEGA: f64 = 1.0e6;

/// Nominal I/O request size tying disk bytes to disk operations (one
/// 4 KiB page per IOP) — the center of the `disk_io_size` invariant.
pub(crate) const DISK_IO_BYTES_PER_OP: f64 = 4096.0;

/// Static (leakage) package power per cycle — center of `power_activity`.
pub(crate) const POWER_STATIC_W_PER_CYCLE: f64 = 4.0e-5;

/// Dynamic package power per issued µop — center of `power_activity`.
pub(crate) const POWER_DYN_W_PER_UOP: f64 = 2.0e-5;

/// Synthesizes a complete per-mega-cycle event-count vector (indexed by
/// [`crate::EventId`]) from free parameters, such that all exact catalog
/// invariants hold.
pub fn synthesize(catalog: &Catalog, params: &FreeParams) -> Vec<f64> {
    let mut out = vec![0.0; catalog.len()];
    synthesize_into(catalog, params, &mut out);
    out
}

/// Like [`synthesize`] but writes into a caller-provided buffer
/// (`out.len()` must equal `catalog.len()`).
///
/// # Panics
///
/// Panics if `out` has the wrong length.
pub fn synthesize_into(catalog: &Catalog, params: &FreeParams, out: &mut [f64]) {
    assert_eq!(out.len(), catalog.len(), "output buffer length mismatch");
    let p = params.clamped();
    let a = catalog.params();
    let w = a.issue_width;
    let slots = w * MEGA;

    let mut inst = p.ipc * MEGA;
    let mut br = inst * p.branch_frac;
    let mut brm = (inst / 1000.0 * p.branch_mpki).min(br);
    let mut mc = p.machine_clears_pmc;

    // Feasibility: issue demand plus recovery slots cannot exceed the slot
    // budget. Demand is linear in the instruction stream, so if the request
    // is infeasible the whole stream (instructions, branches, clears) is
    // scaled down — preserving every flow-conservation invariant.
    let demand = |inst: f64, brm: f64, mc: f64| {
        let recovery = a.recovery_per_branch_miss * brm + a.recovery_per_machine_clear * mc;
        let bad = a.badspec_uops_per_branch_miss * brm + a.badspec_uops_per_machine_clear * mc;
        inst * p.uops_per_inst + bad + w * recovery
    };
    let committed0 = demand(inst, brm, mc);
    if committed0 > slots {
        let s = slots / committed0;
        inst *= s;
        br *= s;
        brm *= s;
        mc *= s;
    }

    let kinst = inst / 1000.0;
    let uops_ret = inst * p.uops_per_inst;
    let recovery = a.recovery_per_branch_miss * brm + a.recovery_per_machine_clear * mc;
    let bad_uops = a.badspec_uops_per_branch_miss * brm + a.badspec_uops_per_machine_clear * mc;
    let uops_issued = uops_ret + bad_uops;

    // Frontend slots are whatever the remaining budget allows; backend is
    // the (non-negative) remainder.
    let committed = uops_issued + w * recovery;
    let fe = (p.fe_bound_frac * slots).min((slots - committed).max(0.0));
    let backend = (slots - committed - fe).max(0.0);

    let ms = p.ms_frac * uops_issued;
    let dsb = p.dsb_frac * (uops_issued - ms);
    let mite = uops_issued - ms - dsb;

    let l1d = kinst * p.l1d_mpki;
    let icache = kinst * p.icache_mpki;
    let l2_refs = l1d + icache;
    let l2_miss = p.l2_miss_ratio * l2_refs;
    let llc_refs = l2_miss;
    let llc_hits = p.llc_hit_ratio * llc_refs;
    let llc_miss = llc_refs - llc_hits;
    let llc_wb = p.llc_wb_ratio * llc_miss;

    let iio_wr = p.iio_wr_alloc_pmc + p.iio_wr_full_pmc + p.iio_wr_part_pmc + p.iio_wr_nonsnoop_pmc;
    let iio_rd = p.iio_rd_code_pmc + p.iio_rd_part_pmc;
    let dma = iio_wr + iio_rd;

    // Split DRAM commands so reads carry demand fills + DMA reads and writes
    // carry writebacks + DMA writes; the exact invariant constrains only the
    // sum.
    let cas_rd = llc_miss + iio_rd;
    let cas_wr = llc_wb + iio_wr;

    let mem_stall = p.mem_stall_frac * MEGA;
    let l2pend = p.l2pend_share * mem_stall;
    let l1dpend_stall = mem_stall - l2pend;
    let other_stall = p.other_stall_frac * MEGA;
    let total_stall = mem_stall + other_stall;

    let oro_any = p.oro_any_frac * MEGA;
    let oro_bw = p.oro_bw_share * oro_any;
    let oro_lat = oro_any - oro_bw;

    let mut set = |sem: Semantic, v: f64| {
        if let Some(id) = catalog.id(sem) {
            out[id.index()] = v;
        }
    };

    set(Semantic::Cycles, MEGA);
    if let Some(r) = a.ref_cycle_ratio {
        set(Semantic::RefCycles, r * MEGA);
    }
    set(Semantic::Instructions, inst);
    set(Semantic::UopsIssued, uops_issued);
    set(Semantic::UopsRetired, uops_ret);
    set(Semantic::UopsBadSpec, bad_uops);
    set(Semantic::IdqUopsNotDelivered, fe);
    set(Semantic::IdqMiteUops, mite);
    set(Semantic::IdqDsbUops, dsb);
    set(Semantic::IdqMsUops, ms);
    set(Semantic::RecoveryCycles, recovery);
    set(Semantic::BackendStallSlots, backend);
    set(Semantic::MachineClears, mc);
    set(Semantic::BrInst, br);
    set(Semantic::BrMisp, brm);
    set(Semantic::IcacheMisses, icache);
    set(Semantic::ItlbMisses, kinst * p.itlb_mpki);
    set(Semantic::DtlbMisses, kinst * p.dtlb_mpki);
    set(Semantic::L1dMisses, l1d);
    set(Semantic::L1dPendMissPending, a.l1d_miss_latency * l1d);
    set(Semantic::L2References, l2_refs);
    set(Semantic::L2Misses, l2_miss);
    set(Semantic::LlcReferences, llc_refs);
    set(Semantic::LlcHits, llc_hits);
    set(Semantic::LlcMisses, llc_miss);
    set(Semantic::LlcWritebacks, llc_wb);
    set(Semantic::StallsTotal, total_stall);
    set(Semantic::StallsMemAny, mem_stall);
    set(Semantic::StallsL2Pending, l2pend);
    set(Semantic::StallsL1dPending, l1dpend_stall);
    set(Semantic::StallsOther, other_stall);
    set(Semantic::OroDrdAnyCycles, oro_any);
    set(Semantic::OroDrdBwCycles, oro_bw);
    set(Semantic::OroDrdLatCycles, oro_lat);
    set(Semantic::DmaTransactions, dma);
    set(Semantic::ImcCasRd, cas_rd);
    set(Semantic::ImcCasWr, cas_wr);
    set(Semantic::IioWrAlloc, p.iio_wr_alloc_pmc);
    set(Semantic::IioWrFull, p.iio_wr_full_pmc);
    set(Semantic::IioWrPart, p.iio_wr_part_pmc);
    set(Semantic::IioWrNonSnoop, p.iio_wr_nonsnoop_pmc);
    set(Semantic::IioRdCode, p.iio_rd_code_pmc);
    set(Semantic::IioRdPart, p.iio_rd_part_pmc);
    set(Semantic::IioWrTotal, iio_wr);
    set(Semantic::IioRdTotal, iio_rd);

    // Soft gauge truths (no-ops on base catalogs: `set` guards on
    // presence). Disk traffic is the device DMA stream the IIO counters
    // see, cache-line sized; operations follow at the nominal request
    // size; power is static-per-cycle plus dynamic-per-µop.
    let disk_rd_bytes = a.cacheline_bytes * iio_rd;
    let disk_wr_bytes = a.cacheline_bytes * iio_wr;
    set(Semantic::DiskReadBytes, disk_rd_bytes);
    set(Semantic::DiskWriteBytes, disk_wr_bytes);
    set(Semantic::DiskReadOps, disk_rd_bytes / DISK_IO_BYTES_PER_OP);
    set(Semantic::DiskWriteOps, disk_wr_bytes / DISK_IO_BYTES_PER_OP);
    set(
        Semantic::PowerWatts,
        POWER_STATIC_W_PER_CYCLE * MEGA + POWER_DYN_W_PER_UOP * uops_issued,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::Arch;
    use proptest::prelude::*;

    fn check_exact_invariants(arch: Arch, p: &FreeParams) {
        let cat = Catalog::new(arch);
        let truth = synthesize(&cat, p);
        for inv in cat.invariants().iter().filter(|i| i.is_exact()) {
            let r = inv.relative_residual(&truth);
            assert!(
                r.abs() < 1e-9,
                "{} on {}: relative residual {}",
                inv.name,
                arch,
                r
            );
        }
    }

    #[test]
    fn default_params_satisfy_exact_invariants() {
        for arch in Arch::all() {
            check_exact_invariants(arch, &FreeParams::default());
        }
    }

    #[test]
    fn counts_are_nonnegative() {
        for arch in Arch::all() {
            let cat = Catalog::new(arch);
            let truth = synthesize(&cat, &FreeParams::default());
            for (i, v) in truth.iter().enumerate() {
                assert!(*v >= 0.0, "event {i} negative: {v}");
            }
        }
    }

    #[test]
    fn infeasible_ipc_is_squeezed_not_negative() {
        let p = FreeParams {
            ipc: 10.0, // clamped to 3.8
            fe_bound_frac: 0.9,
            ..FreeParams::default()
        };
        for arch in Arch::all() {
            check_exact_invariants(arch, &p);
        }
    }

    #[test]
    fn observation_plane_truths_satisfy_cross_source_invariants() {
        for arch in Arch::all() {
            let cat = Catalog::with_observation_plane(arch);
            let truth = synthesize(&cat, &FreeParams::default());
            for inv in cat.invariants() {
                let r = inv.relative_residual(&truth).abs();
                let tol = if inv.is_exact() {
                    1e-9
                } else {
                    inv.rel_noise + 1e-9
                };
                assert!(
                    r <= tol,
                    "{} on {}: residual {} > tolerance {}",
                    inv.name,
                    arch,
                    r,
                    tol
                );
            }
            for g in Semantic::gauges() {
                let id = cat.id(*g).expect("gauge present in extended catalog");
                assert!(
                    truth[id.index()] > 0.0,
                    "gauge {g} truth must be positive at nominal"
                );
            }
        }
    }

    #[test]
    fn soft_invariants_hold_within_tolerance_at_nominal() {
        let cat = Catalog::new(Arch::X86SkyLake);
        let truth = synthesize(&cat, &FreeParams::default());
        for inv in cat.invariants() {
            let r = inv.relative_residual(&truth).abs();
            assert!(
                r <= inv.rel_noise + 1e-9,
                "{}: residual {} > tolerance {}",
                inv.name,
                r,
                inv.rel_noise
            );
        }
    }

    proptest! {
        #[test]
        fn random_params_satisfy_exact_invariants(
            ipc in 0.1f64..3.5,
            upi in 1.0f64..1.4,
            bf in 0.02f64..0.3,
            bmpki in 0.0f64..20.0,
            mc in 0.0f64..200.0,
            l1 in 0.0f64..60.0,
            l2r in 0.0f64..0.95,
            l3h in 0.0f64..0.95,
            fe in 0.0f64..0.6,
            mem in 0.0f64..0.7,
            dma in 0.0f64..2000.0,
        ) {
            let p = FreeParams {
                ipc,
                uops_per_inst: upi,
                branch_frac: bf,
                branch_mpki: bmpki,
                machine_clears_pmc: mc,
                l1d_mpki: l1,
                l2_miss_ratio: l2r,
                llc_hit_ratio: l3h,
                fe_bound_frac: fe,
                mem_stall_frac: mem,
                iio_wr_full_pmc: dma,
                ..FreeParams::default()
            };
            for arch in Arch::all() {
                check_exact_invariants(arch, &p);
            }
        }

        #[test]
        fn random_params_produce_nonnegative_counts(
            ipc in 0.05f64..3.8,
            fe in 0.0f64..1.0,
            mem in 0.0f64..1.0,
        ) {
            let p = FreeParams {
                ipc,
                fe_bound_frac: fe,
                mem_stall_frac: mem,
                ..FreeParams::default()
            };
            let cat = Catalog::new(Arch::X86SkyLake);
            let truth = synthesize(&cat, &p);
            for v in truth {
                prop_assert!(v >= 0.0);
            }
        }
    }
}
