//! Configuration validity: assigning a set of events to hardware counters.
//!
//! Mirrors the Linux perf scheduling behaviour the paper relies on (§4.1):
//! the checker iterates from the most-constrained event to the least
//! constrained, and an assignment is valid only if every event obtains a
//! register in its domain that its `counter_mask` allows, without exceeding
//! the MSR budget.

use crate::arch::PmuSpec;
use crate::catalog::Catalog;
use crate::event::Domain;
use crate::id::{CounterId, EventId};
use std::fmt;

/// A successful placement of events onto counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Assignment {
    /// (event, core counter) pairs for core-domain events.
    pub core: Vec<(EventId, CounterId)>,
    /// (event, uncore counter) pairs for uncore-domain events.
    pub uncore: Vec<(EventId, CounterId)>,
    /// Number of offcore MSRs consumed.
    pub msrs_used: u8,
}

/// Why a configuration cannot be scheduled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AssignmentError {
    /// More core events than core counters, or masks admit no matching.
    CoreConflict {
        /// The event perf would report as failing to schedule.
        failed: EventId,
    },
    /// More uncore events than uncore counters.
    UncoreOverflow {
        /// Number of uncore events requested.
        requested: usize,
        /// Number of uncore counters available.
        available: usize,
    },
    /// More MSR-consuming events than MSRs.
    MsrOverflow {
        /// Number of MSR-consuming events requested.
        requested: usize,
        /// Number of MSRs available.
        available: usize,
    },
    /// A fixed event was passed; fixed counters are not configurable.
    FixedEventInConfiguration(EventId),
    /// A gauge event was passed; gauges are sampled from OS interfaces at
    /// their own cadence and never occupy a PMU register.
    GaugeEventInConfiguration(EventId),
}

impl fmt::Display for AssignmentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AssignmentError::CoreConflict { failed } => {
                write!(f, "no core counter available for event {failed}")
            }
            AssignmentError::UncoreOverflow {
                requested,
                available,
            } => write!(f, "{requested} uncore events but only {available} counters"),
            AssignmentError::MsrOverflow {
                requested,
                available,
            } => write!(f, "{requested} offcore events but only {available} MSRs"),
            AssignmentError::FixedEventInConfiguration(id) => {
                write!(f, "fixed event {id} cannot be placed in a configuration")
            }
            AssignmentError::GaugeEventInConfiguration(id) => {
                write!(
                    f,
                    "gauge event {id} is not a PMU event and cannot be scheduled"
                )
            }
        }
    }
}

impl std::error::Error for AssignmentError {}

/// Attempts to place `events` onto the counters of `pmu`.
///
/// Core events are matched to registers by backtracking search ordered from
/// most-constrained (fewest allowed registers) to least, the strategy perf
/// uses to maximize counter utilization. Uncore events only need a free
/// register. Duplicate events are rejected implicitly (each instance needs
/// its own register).
///
/// # Errors
///
/// Returns the first scheduling failure, identifying the event that could
/// not be placed — matching perf's "iterate until an event fails" behaviour.
pub fn try_assign(
    catalog: &Catalog,
    events: &[EventId],
    pmu: &PmuSpec,
) -> Result<Assignment, AssignmentError> {
    let mut core: Vec<EventId> = Vec::new();
    let mut uncore: Vec<EventId> = Vec::new();
    let mut msrs = 0usize;

    for &id in events {
        let desc = catalog.event(id);
        match desc.domain {
            Domain::Fixed => return Err(AssignmentError::FixedEventInConfiguration(id)),
            Domain::Core => core.push(id),
            Domain::Uncore => uncore.push(id),
            Domain::Gauge => return Err(AssignmentError::GaugeEventInConfiguration(id)),
        }
        if desc.needs_msr {
            msrs += 1;
        }
    }

    if msrs > pmu.n_msr as usize {
        return Err(AssignmentError::MsrOverflow {
            requested: msrs,
            available: pmu.n_msr as usize,
        });
    }
    if uncore.len() > pmu.n_uncore as usize {
        return Err(AssignmentError::UncoreOverflow {
            requested: uncore.len(),
            available: pmu.n_uncore as usize,
        });
    }

    // Most-constrained first: fewest allowed counters, then id for stability.
    core.sort_by_key(|&id| (catalog.event(id).core_counter_choices(), id));

    let n_core = pmu.n_core as usize;
    let mut used = vec![false; n_core];
    let mut placement: Vec<(EventId, CounterId)> = Vec::with_capacity(core.len());
    if !place(catalog, &core, 0, n_core, &mut used, &mut placement) {
        // Report the most-constrained unplaced event, like perf's iteration.
        let failed = core.last().copied().unwrap_or(EventId::from_raw(0));
        return Err(AssignmentError::CoreConflict { failed });
    }

    let uncore_placed = uncore
        .iter()
        .enumerate()
        .map(|(i, &id)| (id, CounterId::from_raw(i as u8)))
        .collect();

    Ok(Assignment {
        core: placement,
        uncore: uncore_placed,
        msrs_used: msrs as u8,
    })
}

fn place(
    catalog: &Catalog,
    order: &[EventId],
    idx: usize,
    n_core: usize,
    used: &mut [bool],
    placement: &mut Vec<(EventId, CounterId)>,
) -> bool {
    if idx == order.len() {
        return true;
    }
    if order.len() - idx > used.iter().filter(|u| !**u).count() {
        return false;
    }
    let id = order[idx];
    let mask = catalog.event(id).counter_mask;
    for ctr in 0..n_core {
        if !used[ctr] && mask & (1 << ctr) != 0 {
            used[ctr] = true;
            placement.push((id, CounterId::from_raw(ctr as u8)));
            if place(catalog, order, idx + 1, n_core, used, placement) {
                return true;
            }
            placement.pop();
            used[ctr] = false;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::Arch;
    use crate::event::Semantic;
    use proptest::prelude::*;

    fn cat() -> Catalog {
        Catalog::new(Arch::X86SkyLake)
    }

    #[test]
    fn four_unconstrained_core_events_fit() {
        let c = cat();
        let events = [
            Semantic::UopsIssued,
            Semantic::UopsRetired,
            Semantic::BrInst,
            Semantic::BrMisp,
        ]
        .map(|s| c.require(s));
        let a = try_assign(&c, &events, &c.pmu()).unwrap();
        assert_eq!(a.core.len(), 4);
        // All four counters distinct.
        let mut ctrs: Vec<_> = a.core.iter().map(|(_, c)| *c).collect();
        ctrs.sort();
        ctrs.dedup();
        assert_eq!(ctrs.len(), 4);
    }

    #[test]
    fn five_core_events_overflow() {
        let c = cat();
        let events = [
            Semantic::UopsIssued,
            Semantic::UopsRetired,
            Semantic::BrInst,
            Semantic::BrMisp,
            Semantic::L1dMisses,
        ]
        .map(|s| c.require(s));
        assert!(matches!(
            try_assign(&c, &events, &c.pmu()),
            Err(AssignmentError::CoreConflict { .. })
        ));
    }

    #[test]
    fn pinned_event_forces_backtracking() {
        let c = cat();
        // L1D_PEND_MISS.PENDING can only live on counter 3; the two stall
        // events only on counters 2-3 -> together they conflict.
        let pend = c.require(Semantic::L1dPendMissPending);
        let s2 = c.require(Semantic::StallsL2Pending);
        let s1 = c.require(Semantic::StallsL1dPending);
        let free = c.require(Semantic::BrInst);
        // pend + one stall + two free is satisfiable...
        let ok = try_assign(&c, &[pend, s2, free, c.require(Semantic::BrMisp)], &c.pmu()).unwrap();
        assert!(ok
            .core
            .iter()
            .any(|(e, ctr)| *e == pend && ctr.index() == 3));
        // ...but pend + both stalls is not (three events, two upper slots).
        assert!(try_assign(&c, &[pend, s2, s1], &c.pmu()).is_err());
    }

    #[test]
    fn msr_budget_enforced() {
        let c = cat();
        let events = [
            Semantic::OroDrdAnyCycles,
            Semantic::OroDrdBwCycles,
            Semantic::OroDrdLatCycles,
        ]
        .map(|s| c.require(s));
        assert!(matches!(
            try_assign(&c, &events, &c.pmu()),
            Err(AssignmentError::MsrOverflow {
                requested: 3,
                available: 2
            })
        ));
    }

    #[test]
    fn uncore_budget_enforced() {
        let c = cat();
        let events = [
            Semantic::ImcCasRd,
            Semantic::ImcCasWr,
            Semantic::IioWrTotal,
            Semantic::IioRdTotal,
            Semantic::DmaTransactions,
        ]
        .map(|s| c.require(s));
        assert!(matches!(
            try_assign(&c, &events, &c.pmu()),
            Err(AssignmentError::UncoreOverflow {
                requested: 5,
                available: 4
            })
        ));
    }

    #[test]
    fn fixed_events_rejected() {
        let c = cat();
        let ev = c.require(Semantic::Cycles);
        assert!(matches!(
            try_assign(&c, &[ev], &c.pmu()),
            Err(AssignmentError::FixedEventInConfiguration(_))
        ));
    }

    #[test]
    fn mixed_domain_configuration_valid() {
        let c = cat();
        let events = vec![
            c.require(Semantic::L1dMisses),
            c.require(Semantic::LlcMisses),
            c.require(Semantic::OroDrdAnyCycles),
            c.require(Semantic::L1dPendMissPending),
            c.require(Semantic::ImcCasRd),
            c.require(Semantic::ImcCasWr),
            c.require(Semantic::DmaTransactions),
        ];
        let a = try_assign(&c, &events, &c.pmu()).unwrap();
        assert_eq!(a.core.len(), 4);
        assert_eq!(a.uncore.len(), 3);
        assert_eq!(a.msrs_used, 1);
    }

    proptest! {
        /// Any assignment returned is consistent: distinct registers,
        /// masks respected, budgets respected.
        #[test]
        fn assignments_are_consistent(indices in proptest::collection::vec(0usize..42, 1..8)) {
            let c = cat();
            let prog = c.programmable_events();
            let mut events: Vec<_> = indices.iter().map(|&i| prog[i % prog.len()]).collect();
            events.sort();
            events.dedup();
            if let Ok(a) = try_assign(&c, &events, &c.pmu()) {
                let mut seen = std::collections::HashSet::new();
                for (e, ctr) in &a.core {
                    prop_assert!(seen.insert(ctr.index()));
                    prop_assert!(c.event(*e).counter_mask & (1 << ctr.index()) != 0);
                }
                let mut useen = std::collections::HashSet::new();
                for (_, ctr) in &a.uncore {
                    prop_assert!(useen.insert(ctr.index()));
                }
                prop_assert!(a.msrs_used <= c.pmu().n_msr);
                prop_assert_eq!(a.core.len() + a.uncore.len(), events.len());
            }
        }
    }
}
