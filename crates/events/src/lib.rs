//! Event catalogs, microarchitectural invariants, and derived events.
//!
//! This crate is the "domain knowledge" substrate of BayesPerf (ASPLOS'21):
//! it models what CPU vendor manuals provide — the list of countable
//! architectural/microarchitectural events per processor, the constraints on
//! which hardware counters may count them, and the *algebraic relationships*
//! between events (e.g. "DRAM bandwidth = (LLC misses × cache-line size +
//! DMA transactions × transaction size) / clocks"). BayesPerf encodes those
//! relationships as factors of a probabilistic graphical model and uses them
//! to correct multiplexing-induced measurement errors.
//!
//! Two processor models are provided, mirroring the paper's testbeds:
//!
//! * [`Arch::X86SkyLake`] — an Intel Sky Lake-like x86_64 core,
//! * [`Arch::Ppc64Power9`] — an IBM Power9-like ppc64 core.
//!
//! Both expose the same set of [`Semantic`] event roles (ppc64 lacks
//! reference cycles), so higher layers can be written architecture-neutrally
//! and instantiated per catalog.
//!
//! # Example
//!
//! ```
//! use bayesperf_events::{Arch, Catalog, Semantic};
//!
//! let cat = Catalog::new(Arch::X86SkyLake);
//! let cycles = cat.id(Semantic::Cycles).unwrap();
//! assert_eq!(cat.event(cycles).name, "CPU_CLK_UNHALTED.THREAD");
//! // Every exact invariant holds on synthesized ground truth:
//! let truth = bayesperf_events::synthesize(&cat, &bayesperf_events::FreeParams::default());
//! for inv in cat.invariants().iter().filter(|i| i.is_exact()) {
//!     assert!(inv.relative_residual(&truth).abs() < 1e-6, "{}", inv.name);
//! }
//! ```

mod arch;
mod assign;
mod catalog;
mod derived;
mod event;
mod expr;
mod id;
mod invariant;
mod source;
mod synth;

pub use arch::{Arch, ArchParams, PmuSpec};
pub use assign::{try_assign, Assignment, AssignmentError};
pub use catalog::Catalog;
pub use derived::DerivedEvent;
pub use event::{Domain, EventDesc, Semantic};
pub use expr::{EventEnv, Expr};
pub use id::{CounterId, EventId};
pub use invariant::Invariant;
pub use source::{SourceDesc, SourceId, SourceKind, SourceNoise};
pub use synth::{synthesize, synthesize_into, FreeParams};
