//! A small expression AST over events.
//!
//! Invariants and derived events are algebraic combinations of raw event
//! counts. The AST supports evaluation against any event environment,
//! collection of referenced events, and linear-form extraction (used by the
//! inference engine to build cheap Gaussian factors for linear invariants).

use crate::id::EventId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;
use std::ops;

/// Source of event values for [`Expr::eval`].
pub trait EventEnv {
    /// The current value of event `id`.
    fn value(&self, id: EventId) -> f64;
}

impl EventEnv for [f64] {
    fn value(&self, id: EventId) -> f64 {
        self[id.index()]
    }
}

impl EventEnv for Vec<f64> {
    fn value(&self, id: EventId) -> f64 {
        self[id.index()]
    }
}

impl<F: Fn(EventId) -> f64> EventEnv for F {
    fn value(&self, id: EventId) -> f64 {
        self(id)
    }
}

/// An algebraic expression over event counts.
///
/// Construct with [`Expr::event`], [`Expr::konst`] and the arithmetic
/// operators:
///
/// ```
/// use bayesperf_events::{Expr, EventId};
/// let a = Expr::event(EventId::from_raw(0));
/// let b = Expr::event(EventId::from_raw(1));
/// let sum = a + b * Expr::konst(64.0);
/// assert_eq!(sum.events().len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// A constant.
    Const(f64),
    /// The value of an event.
    Event(EventId),
    /// Sum of two subexpressions.
    Add(Box<Expr>, Box<Expr>),
    /// Difference of two subexpressions.
    Sub(Box<Expr>, Box<Expr>),
    /// Product of two subexpressions.
    Mul(Box<Expr>, Box<Expr>),
    /// Quotient of two subexpressions.
    Div(Box<Expr>, Box<Expr>),
}

impl Expr {
    /// An expression referencing a single event.
    pub fn event(id: EventId) -> Expr {
        Expr::Event(id)
    }

    /// A constant expression.
    pub fn konst(v: f64) -> Expr {
        Expr::Const(v)
    }

    /// Evaluates the expression against an environment.
    ///
    /// Division by zero yields `0.0` rather than infinity: counter
    /// denominators (cycles, instructions) are zero only in degenerate empty
    /// windows, where "no signal" is the useful answer.
    pub fn eval<E: EventEnv + ?Sized>(&self, env: &E) -> f64 {
        match self {
            Expr::Const(v) => *v,
            Expr::Event(id) => env.value(*id),
            Expr::Add(a, b) => a.eval(env) + b.eval(env),
            Expr::Sub(a, b) => a.eval(env) - b.eval(env),
            Expr::Mul(a, b) => a.eval(env) * b.eval(env),
            Expr::Div(a, b) => {
                let d = b.eval(env);
                if d == 0.0 {
                    0.0
                } else {
                    a.eval(env) / d
                }
            }
        }
    }

    /// The set of events referenced by this expression, in id order.
    pub fn events(&self) -> Vec<EventId> {
        let mut set = BTreeSet::new();
        self.collect_events(&mut set);
        set.into_iter().collect()
    }

    fn collect_events(&self, out: &mut BTreeSet<EventId>) {
        match self {
            Expr::Const(_) => {}
            Expr::Event(id) => {
                out.insert(*id);
            }
            Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) | Expr::Div(a, b) => {
                a.collect_events(out);
                b.collect_events(out);
            }
        }
    }

    /// If the expression is affine in the events (`c0 + Σ cᵢ·eᵢ`), returns
    /// `(c0, [(event, cᵢ)])` with coefficients merged per event; otherwise
    /// `None`.
    ///
    /// Products are linear only when one side is constant; quotients only
    /// when the divisor is constant.
    pub fn linear_form(&self) -> Option<(f64, Vec<(EventId, f64)>)> {
        let mut constant = 0.0;
        let mut coeffs: Vec<(EventId, f64)> = Vec::new();
        if self.accumulate_linear(1.0, &mut constant, &mut coeffs) {
            coeffs.sort_by_key(|(id, _)| *id);
            let mut merged: Vec<(EventId, f64)> = Vec::with_capacity(coeffs.len());
            for (id, c) in coeffs {
                match merged.last_mut() {
                    Some((last, acc)) if *last == id => *acc += c,
                    _ => merged.push((id, c)),
                }
            }
            merged.retain(|(_, c)| *c != 0.0);
            Some((constant, merged))
        } else {
            None
        }
    }

    fn accumulate_linear(
        &self,
        scale: f64,
        constant: &mut f64,
        coeffs: &mut Vec<(EventId, f64)>,
    ) -> bool {
        match self {
            Expr::Const(v) => {
                *constant += scale * v;
                true
            }
            Expr::Event(id) => {
                coeffs.push((*id, scale));
                true
            }
            Expr::Add(a, b) => {
                a.accumulate_linear(scale, constant, coeffs)
                    && b.accumulate_linear(scale, constant, coeffs)
            }
            Expr::Sub(a, b) => {
                a.accumulate_linear(scale, constant, coeffs)
                    && b.accumulate_linear(-scale, constant, coeffs)
            }
            Expr::Mul(a, b) => match (a.constant_value(), b.constant_value()) {
                (Some(ka), _) => b.accumulate_linear(scale * ka, constant, coeffs),
                (_, Some(kb)) => a.accumulate_linear(scale * kb, constant, coeffs),
                _ => false,
            },
            Expr::Div(a, b) => match b.constant_value() {
                Some(kb) if kb != 0.0 => a.accumulate_linear(scale / kb, constant, coeffs),
                _ => false,
            },
        }
    }

    /// If the expression contains no events, its constant value.
    pub fn constant_value(&self) -> Option<f64> {
        match self {
            Expr::Const(v) => Some(*v),
            Expr::Event(_) => None,
            Expr::Add(a, b) => Some(a.constant_value()? + b.constant_value()?),
            Expr::Sub(a, b) => Some(a.constant_value()? - b.constant_value()?),
            Expr::Mul(a, b) => Some(a.constant_value()? * b.constant_value()?),
            Expr::Div(a, b) => {
                let d = b.constant_value()?;
                if d == 0.0 {
                    None
                } else {
                    Some(a.constant_value()? / d)
                }
            }
        }
    }
}

impl ops::Add for Expr {
    type Output = Expr;
    fn add(self, rhs: Expr) -> Expr {
        Expr::Add(Box::new(self), Box::new(rhs))
    }
}

impl ops::Sub for Expr {
    type Output = Expr;
    fn sub(self, rhs: Expr) -> Expr {
        Expr::Sub(Box::new(self), Box::new(rhs))
    }
}

impl ops::Mul for Expr {
    type Output = Expr;
    fn mul(self, rhs: Expr) -> Expr {
        Expr::Mul(Box::new(self), Box::new(rhs))
    }
}

impl ops::Div for Expr {
    type Output = Expr;
    fn div(self, rhs: Expr) -> Expr {
        Expr::Div(Box::new(self), Box::new(rhs))
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Const(v) => write!(f, "{v}"),
            Expr::Event(id) => write!(f, "{id}"),
            Expr::Add(a, b) => write!(f, "({a} + {b})"),
            Expr::Sub(a, b) => write!(f, "({a} - {b})"),
            Expr::Mul(a, b) => write!(f, "({a} * {b})"),
            Expr::Div(a, b) => write!(f, "({a} / {b})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(i: u16) -> Expr {
        Expr::event(EventId::from_raw(i))
    }

    #[test]
    fn evaluates_arithmetic() {
        let env = vec![2.0, 3.0, 4.0];
        let expr = (e(0) + e(1)) * Expr::konst(2.0) - e(2) / Expr::konst(4.0);
        assert_eq!(expr.eval(&env), 9.0);
    }

    #[test]
    fn division_by_zero_is_zero() {
        let env = vec![5.0, 0.0];
        let expr = e(0) / e(1);
        assert_eq!(expr.eval(&env), 0.0);
    }

    #[test]
    fn collects_events_in_order() {
        let expr = e(3) + e(1) * e(3) + Expr::konst(1.0);
        assert_eq!(
            expr.events(),
            vec![EventId::from_raw(1), EventId::from_raw(3)]
        );
    }

    #[test]
    fn linear_form_of_affine_expression() {
        // 64*a + b - 2 is affine.
        let expr = Expr::konst(64.0) * e(0) + e(1) - Expr::konst(2.0);
        let (c, coeffs) = expr.linear_form().unwrap();
        assert_eq!(c, -2.0);
        assert_eq!(
            coeffs,
            vec![(EventId::from_raw(0), 64.0), (EventId::from_raw(1), 1.0)]
        );
    }

    #[test]
    fn linear_form_merges_repeated_events() {
        let expr = e(0) + e(0) - e(0);
        let (c, coeffs) = expr.linear_form().unwrap();
        assert_eq!(c, 0.0);
        assert_eq!(coeffs, vec![(EventId::from_raw(0), 1.0)]);
    }

    #[test]
    fn product_of_events_is_not_linear() {
        assert!((e(0) * e(1)).linear_form().is_none());
        assert!((e(0) / e(1)).linear_form().is_none());
    }

    #[test]
    fn display_is_parenthesized() {
        let expr = e(0) + e(1);
        assert_eq!(expr.to_string(), "(e0 + e1)");
    }
}
