//! Event descriptors: semantic roles, PMU domains, and counting constraints.

use crate::id::EventId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Architecture-neutral role of an event.
///
/// Each [`crate::Catalog`] maps a subset of these roles to concrete,
/// vendor-style event names. Higher layers (ground-truth synthesis, the
/// invariant library, derived events) are written against semantics so the
/// same code serves both architectures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Semantic {
    // -- fixed-function --
    /// Unhalted core clock cycles.
    Cycles,
    /// Reference (TSC-rate) cycles; x86 only.
    RefCycles,
    /// Retired instructions.
    Instructions,

    // -- pipeline / top-down --
    /// µops issued by the rename/allocate stage.
    UopsIssued,
    /// µops retired.
    UopsRetired,
    /// µops issued but squashed on a mis-speculated path.
    UopsBadSpec,
    /// Issue slots with no µop delivered by the frontend.
    IdqUopsNotDelivered,
    /// µops delivered through the legacy decode pipeline (MITE).
    IdqMiteUops,
    /// µops delivered from the decoded-µop cache (DSB).
    IdqDsbUops,
    /// µops delivered by the microcode sequencer.
    IdqMsUops,
    /// Cycles the issue stage is stalled recovering from mis-speculation.
    RecoveryCycles,
    /// Issue slots lost to backend stalls (top-down remainder).
    BackendStallSlots,
    /// Machine clears (memory ordering, SMC, ...).
    MachineClears,

    // -- branches --
    /// Retired branch instructions.
    BrInst,
    /// Retired mispredicted branches.
    BrMisp,

    // -- frontend / TLB --
    /// Instruction-cache misses.
    IcacheMisses,
    /// Instruction TLB misses.
    ItlbMisses,
    /// Data TLB load misses.
    DtlbMisses,

    // -- cache hierarchy --
    /// L1D cache line replacements (misses).
    L1dMisses,
    /// Cycles weighted by number of outstanding L1D misses (occupancy).
    L1dPendMissPending,
    /// Demand requests arriving at L2.
    L2References,
    /// L2 misses.
    L2Misses,
    /// Last-level-cache references.
    LlcReferences,
    /// Last-level-cache hits.
    LlcHits,
    /// Last-level-cache misses.
    LlcMisses,
    /// Dirty lines written back from LLC to memory.
    LlcWritebacks,

    // -- stalls --
    /// Cycles with no µop executed (total execution stalls).
    StallsTotal,
    /// Execution stalls with at least one outstanding memory load.
    StallsMemAny,
    /// Execution stalls while an L2 miss is pending.
    StallsL2Pending,
    /// Execution stalls while only L1D misses are pending.
    StallsL1dPending,
    /// Execution stalls not attributable to memory.
    StallsOther,

    // -- offcore DRAM demand-read occupancy (§4 of the paper) --
    /// Cycles with at least one outstanding offcore demand data read.
    OroDrdAnyCycles,
    /// Cycles where outstanding demand reads exceed the bandwidth threshold.
    OroDrdBwCycles,
    /// Latency-bound remainder of `OroDrdAnyCycles`.
    OroDrdLatCycles,

    // -- memory controller / IO (uncore) --
    /// DMA transactions from IO devices (cache-line sized).
    DmaTransactions,
    /// Integrated-memory-controller read CAS commands.
    ImcCasRd,
    /// Integrated-memory-controller write CAS commands.
    ImcCasWr,
    /// IIO: allocating writes from PCIe devices.
    IioWrAlloc,
    /// IIO: full cache-line writes from PCIe devices.
    IioWrFull,
    /// IIO: partial writes from PCIe devices.
    IioWrPart,
    /// IIO: non-snoop writes from PCIe devices.
    IioWrNonSnoop,
    /// IIO: demand code reads by PCIe devices.
    IioRdCode,
    /// IIO: partial / MMIO reads by PCIe devices.
    IioRdPart,
    /// IIO: total device writes (sum of the write flavors).
    IioWrTotal,
    /// IIO: total device reads (sum of the read flavors).
    IioRdTotal,

    // -- soft gauge sources (not PMU counters; see `Domain::Gauge`) --
    /// Block-layer completed read operations (diskstats-style gauge).
    DiskReadOps,
    /// Block-layer completed write operations (diskstats-style gauge).
    DiskWriteOps,
    /// Block-layer bytes read (sectors × 512, diskstats-style gauge).
    DiskReadBytes,
    /// Block-layer bytes written (sectors × 512, diskstats-style gauge).
    DiskWriteBytes,
    /// Package power draw (RAPL/IPMI-style gauge), in watt-ticks — a
    /// per-window energy proxy kept in the same per-mega-cycle rate units
    /// as every other catalog event so invariants stay homogeneous.
    PowerWatts,
}

impl Semantic {
    /// Every semantic role, in catalog order.
    pub fn all() -> &'static [Semantic] {
        use Semantic::*;
        &[
            Cycles,
            RefCycles,
            Instructions,
            UopsIssued,
            UopsRetired,
            UopsBadSpec,
            IdqUopsNotDelivered,
            IdqMiteUops,
            IdqDsbUops,
            IdqMsUops,
            RecoveryCycles,
            BackendStallSlots,
            MachineClears,
            BrInst,
            BrMisp,
            IcacheMisses,
            ItlbMisses,
            DtlbMisses,
            L1dMisses,
            L1dPendMissPending,
            L2References,
            L2Misses,
            LlcReferences,
            LlcHits,
            LlcMisses,
            LlcWritebacks,
            StallsTotal,
            StallsMemAny,
            StallsL2Pending,
            StallsL1dPending,
            StallsOther,
            OroDrdAnyCycles,
            OroDrdBwCycles,
            OroDrdLatCycles,
            DmaTransactions,
            ImcCasRd,
            ImcCasWr,
            IioWrAlloc,
            IioWrFull,
            IioWrPart,
            IioWrNonSnoop,
            IioRdCode,
            IioRdPart,
            IioWrTotal,
            IioRdTotal,
        ]
    }

    /// The soft gauge roles, in catalog order. Deliberately **not** part
    /// of [`Semantic::all`]: base catalogs stay PMU-only, and only
    /// [`crate::Catalog::with_observation_plane`] appends these.
    pub fn gauges() -> &'static [Semantic] {
        use Semantic::*;
        &[
            DiskReadOps,
            DiskWriteOps,
            DiskReadBytes,
            DiskWriteBytes,
            PowerWatts,
        ]
    }
}

impl fmt::Display for Semantic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// Which PMU a counter/event belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Domain {
    /// Fixed-function core counter: always counting, never multiplexed.
    Fixed,
    /// Core programmable counter (subject to multiplexing).
    Core,
    /// Uncore counter (IMC / IIO), its own small register pool.
    Uncore,
    /// Soft gauge: not a hardware counter at all. Gauge events are read
    /// from OS interfaces (diskstats, RAPL, `/proc`) at their own
    /// cadence; they never occupy a PMU register and are never
    /// multiplexed, so they are excluded from configuration scheduling.
    Gauge,
}

impl fmt::Display for Domain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// A countable event as published by a processor's performance manual.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EventDesc {
    /// Dense id within the owning catalog.
    pub id: EventId,
    /// Vendor-style event name (e.g. `CPU_CLK_UNHALTED.THREAD`, `PM_RUN_CYC`).
    pub name: String,
    /// Architecture-neutral role.
    pub semantic: Semantic,
    /// PMU domain the event is counted on.
    pub domain: Domain,
    /// Bitmask of core counter registers able to count this event
    /// (bit *i* set ⇒ counter *i* allowed). Ignored for `Fixed`/`Uncore`.
    pub counter_mask: u8,
    /// Whether the event consumes one of the scarce offcore-response MSRs.
    pub needs_msr: bool,
}

impl EventDesc {
    /// True if this event is subject to multiplexing (occupies a
    /// programmable PMU register). Fixed counters always count and gauge
    /// events never touch a register, so neither is programmable.
    pub fn is_programmable(&self) -> bool {
        matches!(self.domain, Domain::Core | Domain::Uncore)
    }

    /// Number of core counters this event may be scheduled on.
    pub fn core_counter_choices(&self) -> u32 {
        match self.domain {
            Domain::Core => self.counter_mask.count_ones(),
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_semantics_are_unique() {
        let all = Semantic::all();
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a, b);
            }
        }
        assert_eq!(all.len(), 45);
    }

    #[test]
    fn constrained_event_reports_fewer_choices() {
        let free = EventDesc {
            id: EventId::from_raw(0),
            name: "X".into(),
            semantic: Semantic::L1dMisses,
            domain: Domain::Core,
            counter_mask: 0b1111,
            needs_msr: false,
        };
        let pinned = EventDesc {
            counter_mask: 0b1000,
            ..free.clone()
        };
        assert_eq!(free.core_counter_choices(), 4);
        assert_eq!(pinned.core_counter_choices(), 1);
    }

    #[test]
    fn fixed_events_are_not_programmable() {
        let fixed = EventDesc {
            id: EventId::from_raw(0),
            name: "CYC".into(),
            semantic: Semantic::Cycles,
            domain: Domain::Fixed,
            counter_mask: 0,
            needs_msr: false,
        };
        assert!(!fixed.is_programmable());
        assert_eq!(fixed.core_counter_choices(), 0);
    }

    #[test]
    fn gauge_events_are_not_programmable() {
        let gauge = EventDesc {
            id: EventId::from_raw(0),
            name: "GAUGE_POWER".into(),
            semantic: Semantic::PowerWatts,
            domain: Domain::Gauge,
            counter_mask: 0,
            needs_msr: false,
        };
        assert!(!gauge.is_programmable());
        assert_eq!(gauge.core_counter_choices(), 0);
    }

    #[test]
    fn gauge_semantics_are_disjoint_from_all() {
        for g in Semantic::gauges() {
            assert!(
                !Semantic::all().contains(g),
                "gauge {g} must not appear in the base catalog list"
            );
        }
    }
}
