//! Strongly-typed identifiers for events and hardware counters.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of an event within a [`crate::Catalog`].
///
/// `EventId`s are dense (0..catalog.len()) so event-indexed data can live in
/// flat vectors. An id is only meaningful relative to the catalog that
/// produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EventId(pub(crate) u16);

impl EventId {
    /// Creates an id from a raw index.
    ///
    /// Prefer obtaining ids from [`crate::Catalog::id`]; this constructor
    /// exists for deserialization and testing.
    pub fn from_raw(raw: u16) -> Self {
        EventId(raw)
    }

    /// The dense index of this event, suitable for indexing flat vectors.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// Identifier of a hardware counter register within one PMU domain.
///
/// Counters are numbered independently per [`crate::Domain`]: fixed counters
/// `f0..`, core programmable counters `c0..`, and uncore counters `u0..`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CounterId(pub(crate) u8);

impl CounterId {
    /// Creates a counter id from a raw register index.
    pub fn from_raw(raw: u8) -> Self {
        CounterId(raw)
    }

    /// The register index within its domain.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for CounterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_id_roundtrip() {
        let id = EventId::from_raw(7);
        assert_eq!(id.index(), 7);
        assert_eq!(id.to_string(), "e7");
    }

    #[test]
    fn counter_id_roundtrip() {
        let id = CounterId::from_raw(3);
        assert_eq!(id.index(), 3);
        assert_eq!(id.to_string(), "c3");
    }

    #[test]
    fn ids_order_by_index() {
        assert!(EventId::from_raw(1) < EventId::from_raw(2));
        assert!(CounterId::from_raw(0) < CounterId::from_raw(1));
    }
}
